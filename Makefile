# Development workflow for the Streaming Balanced Clustering reproduction.

PYTHON ?= python

.PHONY: install test test-verbose bench bench-smoke bench-tenants \
	bench-tenants-smoke chaos-smoke fleet-smoke examples artifacts lint \
	lint-json clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -q

test-verbose:
	$(PYTHON) -m pytest tests/ -v

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Quick serial-vs-parallel ingest check (2 workers) plus latency
# percentiles; appends to BENCH_service.json and fails if the parallel
# backend's state diverges from the serial one.
bench-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_service_throughput.py --smoke

# Multi-tenant throughput + isolation under eviction churn.  Skipped on
# 1-core runners: the concurrent drivers just time-slice one CPU there and
# the throughput numbers mean nothing.
bench-tenants:
	@if [ "$$(nproc 2>/dev/null || echo 1)" -lt 2 ]; then \
		echo "bench-tenants: skipped (needs >= 2 cores, have $$(nproc 2>/dev/null || echo 1))"; \
	else \
		PYTHONPATH=src $(PYTHON) benchmarks/bench_service_tenants.py; \
	fi

# CI async-service smoke: boot `python -m repro serve` in a subprocess,
# drive 3 tenants concurrently, assert isolation, shut down over the wire.
bench-tenants-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_service_tenants.py --smoke

# CI chaos smoke: boot `python -m repro serve --fault-plan ...` in a
# subprocess, kill workers / reset connections / fail a checkpoint write
# mid-run, and require the final state bit-identical to a fault-free
# reference (see benchmarks/bench_service_chaos.py).
chaos-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_service_chaos.py --smoke

# CI fleet smoke: boot a real coordinator fleet — 2 `repro serve` site
# subprocesses fed over TCP — SIGKILL site 1 mid-run, recover it from its
# checkpoint + journal replay, and require the coordinator's merged state
# bit-identical to a single-process reference with wire bits matching the
# in-process E7 simulation (see benchmarks/bench_fleet.py).
fleet-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_fleet.py --smoke

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

# Generic style (ruff) + project invariants (repro lint: DET/HOT/ASYNC/WIRE;
# see docs/LINTING.md).  `repro.analysis_lint` is the same command as
# `repro lint` but never imports numpy, so it runs in minimal environments.
lint:
	@$(PYTHON) -m ruff --version >/dev/null 2>&1 || \
		{ echo "ruff is not installed; run: pip install ruff"; exit 1; }
	$(PYTHON) -m ruff check src tests benchmarks examples
	PYTHONPATH=src $(PYTHON) -m repro.analysis_lint src tests benchmarks examples

# Machine-readable finding list (schema v1) — what CI attaches as annotations.
lint-json:
	PYTHONPATH=src $(PYTHON) -m repro.analysis_lint src tests benchmarks examples --format json

artifacts:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
