"""High-level estimator facade (scikit-learn-style, dependency-free).

Most users don't want grids, guesses, and transfer mappings — they want
"balanced k-means on my (real-valued) data, fast".  :class:`BalancedKMeans`
packages the full pipeline:

    discretize → strong coreset (Theorem 3.19) → capacitated solve on the
    coreset → §3.3 extension of the assignment to all points,

with ``fit`` / ``predict`` / ``fit_predict`` semantics and all the pieces
(coreset, solution, transform) exposed as attributes for inspection.
"""

from __future__ import annotations

import numpy as np

from repro.assignment.capacitated import capacitated_assignment
from repro.assignment.transfer import extend_assignment_to_points
from repro.core import CoresetParams, build_coreset_auto
from repro.grid.discretize import discretize
from repro.grid.grids import HierarchicalGrids
from repro.metrics.distances import nearest_center
from repro.solvers.capacitated_lloyd import CapacitatedKClustering
from repro.utils.rng import derive_seed

__all__ = ["BalancedKMeans"]


class BalancedKMeans:
    """Balanced (capacitated) k-means/k-median via the paper's coreset.

    Parameters
    ----------
    k:
        Number of clusters.
    capacity_slack:
        Uniform capacity as a multiple of n/k (1.0 = perfectly balanced;
        the paper's guarantee relaxes whatever you pick by 1+O(η)).
    r:
        1 = k-median (robust), 2 = k-means (default).
    delta:
        Grid resolution Δ for the internal discretization (power of two).
    eps, eta:
        Coreset accuracy / capacity-relaxation parameters in (0, 0.5).
    seed:
        Seeds everything (construction, solver restarts).

    Attributes (after ``fit``)
    --------------------------
    centers_:
        (k, d) cluster centers in the *original* coordinate system.
    labels_:
        Training-point assignment respecting the capacities up to 1+O(η).
    coreset_:
        The underlying :class:`~repro.core.weighted.Coreset`.
    sizes_:
        Cluster loads of ``labels_``.
    """

    def __init__(self, k: int, capacity_slack: float = 1.1, r: float = 2.0,
                 delta: int = 1024, eps: float = 0.25, eta: float = 0.25,
                 seed: int = 0, restarts: int = 2):
        self.k = int(k)
        self.capacity_slack = float(capacity_slack)
        self.r = float(r)
        self.delta = int(delta)
        self.eps = float(eps)
        self.eta = float(eta)
        self.seed = int(seed)
        self.restarts = int(restarts)
        self.centers_ = None
        self.labels_ = None
        self.coreset_ = None
        self.sizes_ = None
        self._transform = None
        self._grid_centers = None

    # ------------------------------------------------------------------ fit
    def fit(self, X: np.ndarray) -> "BalancedKMeans":
        """Cluster real-valued rows of ``X`` under the capacity constraint."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or len(X) < self.k:
            raise ValueError("X must be (n, d) with n >= k")
        d = X.shape[1]
        grid, transform = discretize(X, self.delta)
        self._transform = transform
        # The model works on distinct grid points; remember multiplicity so
        # capacities refer to actual rows.
        uniq, inverse, counts = np.unique(grid, axis=0, return_inverse=True,
                                          return_counts=True)
        n_rows = len(X)

        params = CoresetParams.practical(k=self.k, d=d, delta=self.delta,
                                         r=self.r, eps=self.eps, eta=self.eta)
        grids = HierarchicalGrids(self.delta, d,
                                  seed=derive_seed(self.seed, "grids"))
        coreset = build_coreset_auto(uniq, params, grids=grids, seed=self.seed)
        self.coreset_ = coreset

        solver = CapacitatedKClustering(
            k=self.k,
            capacity=coreset.total_weight / self.k * self.capacity_slack,
            r=self.r, restarts=self.restarts, seed=self.seed,
        )
        sol = solver.fit(coreset.points.astype(float), weights=coreset.weights)
        self._grid_centers = sol.centers

        t_unique = len(uniq) / self.k * self.capacity_slack
        labels_unique = extend_assignment_to_points(
            uniq, coreset, params, grids, sol.centers, t_unique, r=self.r)
        self.labels_ = labels_unique[inverse]
        self.sizes_ = np.bincount(self.labels_, minlength=self.k).astype(float)
        self.centers_ = transform.invert(sol.centers)
        return self

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        """``fit(X)`` then return the training labels."""
        return self.fit(X).labels_

    # -------------------------------------------------------------- predict
    def predict(self, X: np.ndarray, respect_capacity: bool = False,
                t: float | None = None) -> np.ndarray:
        """Assign new rows to the fitted centers.

        ``respect_capacity=False`` (default) is nearest-center — the usual
        out-of-sample rule.  With ``respect_capacity=True`` the batch is
        routed jointly under capacity ``t`` (default: slack·|X|/k) by the
        transportation solver.
        """
        if self.centers_ is None:
            raise RuntimeError("call fit() first")
        X = np.asarray(X, dtype=np.float64)
        grid = self._transform.apply(X).astype(np.float64)
        if not respect_capacity:
            labels, _ = nearest_center(grid, self._grid_centers, self.r)
            return labels
        cap = t if t is not None else len(X) / self.k * self.capacity_slack
        res = capacitated_assignment(grid, self._grid_centers, cap, r=self.r)
        if res.labels is None:
            raise ValueError(f"capacity t={cap} infeasible for {len(X)} rows")
        return res.labels

    # ---------------------------------------------------------------- score
    def max_load_ratio(self) -> float:
        """max cluster load / (n/k) of the training assignment."""
        if self.sizes_ is None:
            raise RuntimeError("call fit() first")
        return float(self.sizes_.max() * self.k / self.sizes_.sum())
