"""The query engine: merge shards on demand, solve, memoize by version.

A query is expensive — deep-copy + fan-in of every shard, sketch decode,
coreset assembly, capacitated solve — while ingest is cheap.  The engine
therefore keys its single-entry result cache on the ingest layer's state
*version* (bumped once per applied batch): repeated queries against an
unchanged stream return the memoized :class:`QueryResult` in O(1), and any
intervening ingest invalidates it implicitly, with no bookkeeping beyond an
integer comparison.  ``stats()`` exposes hit/miss counters so cache behavior
is observable over the wire.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass

import numpy as np

from repro.core.io import params_to_dict, read_json
from repro.core.params import CoresetParams
from repro.service.shards import ShardedIngest
from repro.service.state import (
    STATE_FORMAT_VERSION,
    sharded_state_from_dict,
    write_checkpoint,
)
from repro.solvers.capacitated_lloyd import CapacitatedKClustering
from repro.utils.rng import derive_seed

__all__ = ["ServiceConfig", "QueryResult", "ClusteringService"]


def _pool_class(config: "ServiceConfig"):
    """The worker-pool implementation a config asks for (lazy imports keep
    engine importable without spawning multiprocessing machinery)."""
    if config.supervise:
        from repro.service.supervisor import SupervisedWorkerPool

        return SupervisedWorkerPool
    from repro.service.workers import WorkerPoolIngest

    return WorkerPoolIngest


@dataclass(frozen=True)
class ServiceConfig:
    """Everything needed to (re)create a service instance."""

    k: int
    d: int
    delta: int
    r: float = 2.0
    eps: float = 0.25
    eta: float = 0.25
    num_shards: int = 4
    #: Worker processes for ingest: 0 = all shards in-process (one
    #: ``StreamingCoreset`` per shard, fed sequentially); N > 0 = N shard
    #: processes, one sketch each (supersedes ``num_shards``).  Results are
    #: bit-identical either way — workers build their shards from the same
    #: ``(params, seed)``, and the merge fan-in is exact.
    workers: int = 0
    #: With workers > 0: run the pool under supervision
    #: (:class:`~repro.service.supervisor.SupervisedWorkerPool` — dead
    #: workers are respawned from their per-shard checkpoint and the
    #: journaled batches replayed, bit-identically).  False = the plain
    #: pool, where a dead worker is a hard error.
    supervise: bool = True
    seed: int = 0
    backend: str = "exact"
    #: Uniform capacity as a multiple of total_weight/k at query time.
    capacity_slack: float = 1.2
    #: k-means++ restarts of the capacitated solver per query.
    restarts: int = 2
    #: Optional guess window (lo, hi); None = auto-pilot over the full range.
    o_range: tuple[float, float] | None = None

    def make_params(self) -> CoresetParams:
        """The shared :class:`CoresetParams` of every shard."""
        return CoresetParams.practical(k=self.k, d=self.d, delta=self.delta,
                                       r=self.r, eps=self.eps, eta=self.eta)

    def to_dict(self) -> dict:
        """JSON-safe form (inverse: :meth:`from_dict`)."""
        data = dataclasses.asdict(self)
        data["o_range"] = list(self.o_range) if self.o_range is not None else None
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceConfig":
        data = dict(data)
        if data.get("o_range") is not None:
            data["o_range"] = tuple(data["o_range"])
        return cls(**data)


@dataclass(frozen=True)
class QueryResult:
    """One solved clustering snapshot of the live stream."""

    #: (k, d) solved centers in grid coordinates.
    centers: np.ndarray
    #: Capacitated cost of the solution *on the coreset*.
    cost: float
    #: Uniform capacity used by the solve.
    capacity: float
    #: Coreset size the solve ran on.
    coreset_size: int
    #: Accepted guess o of the winning instance.
    o: float
    #: Ingest-state version this result reflects.
    version: int

    def to_dict(self) -> dict:
        """JSON-safe form for the wire protocol."""
        return {
            "centers": self.centers.tolist(),
            "cost": self.cost,
            "capacity": self.capacity,
            "coreset_size": self.coreset_size,
            "o": self.o,
            "version": self.version,
        }


class ClusteringService:
    """Long-lived balanced-clustering service over a sharded dynamic stream.

    Thread-safe: one lock serializes state mutation and queries (the wire
    server is threaded per connection).  All randomness is seeded through
    the config, so two services fed the same events answer identically.
    """

    def __init__(self, config: ServiceConfig, ingest=None):
        self.config = config
        self.params = config.make_params()
        if ingest is None:
            if config.workers > 0:
                pool_cls = _pool_class(config)
                ingest = pool_cls(
                    self.params, num_workers=config.workers, seed=config.seed,
                    backend=config.backend, o_range=config.o_range,
                )
            else:
                ingest = ShardedIngest(
                    self.params, num_shards=config.num_shards, seed=config.seed,
                    backend=config.backend, o_range=config.o_range,
                )
        self.ingest = ingest
        self._lock = threading.RLock()
        self._cached: QueryResult | None = None
        self.queries = 0
        self.cache_hits = 0
        #: Nominal ingested volume (8 bytes per coordinate per event) —
        #: the figure tenant byte-quotas are enforced against.  Persisted
        #: in checkpoints so eviction/restore cannot reset a quota.
        self.bytes_ingested = 0

    def close(self) -> None:
        """Release the ingest backend (stops worker processes, if any)."""
        with self._lock:
            self.ingest.close()

    def __enter__(self) -> "ClusteringService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- ingest
    def insert(self, points) -> int:
        """Insert rows of an (n, d) int array; returns events applied."""
        with self._lock:
            n = self.ingest.insert_points(points)
            self.bytes_ingested += n * 8 * self.params.d
            return n

    def delete(self, points) -> int:
        """Delete rows of an (n, d) int array; returns events applied."""
        with self._lock:
            n = self.ingest.delete_points(points)
            self.bytes_ingested += n * 8 * self.params.d
            return n

    def apply_events(self, events) -> int:
        """Apply a mixed batch of (point, ±1) events."""
        with self._lock:
            n = self.ingest.apply_batch(events)
            self.bytes_ingested += n * 8 * self.params.d
            return n

    # -------------------------------------------------------------- queries
    def query(self, capacity_slack: float | None = None) -> tuple[QueryResult, bool]:
        """Solve capacitated k-clustering on the current live set.

        Returns ``(result, cache_hit)``.  A non-default ``capacity_slack``
        bypasses the cache (the memoized solve used the configured slack).
        """
        with self._lock:
            version = self.ingest.version
            self.queries += 1
            if (capacity_slack is None and self._cached is not None
                    and self._cached.version == version):
                self.cache_hits += 1
                return self._cached, True
            slack = self.config.capacity_slack if capacity_slack is None else capacity_slack
            merged = self.ingest.merged_state()
        # Finalize + solve outside the lock: they only touch the merged
        # deep copy, so ingest can proceed concurrently.
        coreset, instance = merged.finalize_with_instance()
        capacity = max(coreset.total_weight / self.params.k * slack, 1e-12)
        solver = CapacitatedKClustering(
            k=self.params.k, capacity=capacity, r=self.params.r,
            restarts=self.config.restarts,
            seed=derive_seed(self.config.seed, "service-solve"),
        )
        sol = solver.fit(coreset.points.astype(float), weights=coreset.weights)
        result = QueryResult(
            centers=np.asarray(sol.centers, dtype=float),
            cost=float(sol.cost),
            capacity=float(capacity),
            coreset_size=len(coreset),
            o=float(coreset.o),
            version=version,
        )
        with self._lock:
            if capacity_slack is None:
                self._cached = result
        return result, False

    # ----------------------------------------------------------- persistence
    def state_payload(self, extra: dict | None = None) -> dict:
        """The full checkpoint envelope as a JSON-safe dict (no disk I/O).

        This is the one serialization of a live service: ``checkpoint``
        writes it to disk, and the ``pull_state`` wire op ships it to a
        fleet coordinator — the checkpoint format doubling as the transfer
        encoding, so anything that can restore a checkpoint can merge a
        pulled site state.  With a worker pool, building the payload drains
        the workers first (their ``state`` requests queue behind all pending
        batches).  ``extra`` keys are merged into the envelope (the tenant
        registry stamps its stream id this way); they must not collide with
        the envelope's own fields.
        """
        with self._lock:
            payload = {
                "format_version": STATE_FORMAT_VERSION,
                "config": self.config.to_dict(),
                "counters": {"bytes_ingested": self.bytes_ingested},
                "ingest": self.ingest.to_state_dict(),
            }
            if extra:
                overlap = payload.keys() & extra.keys()
                if overlap:
                    raise ValueError(
                        f"checkpoint extra keys collide with envelope: {sorted(overlap)}")
                payload.update(extra)
            return payload

    def site_stats(self) -> dict:
        """Lightweight counters a fleet coordinator polls between pulls.

        Deliberately a fixed, small vocabulary (unlike :meth:`stats`): the
        fleet charges each ``site_stats`` reply a constant number of bits,
        so the payload must stay a handful of scalar counters.
        """
        with self._lock:
            ingest = self.ingest
            return {
                "version": ingest.version,
                "events": ingest.num_events,
                "insertions": ingest.num_insertions,
                "deletions": ingest.num_deletions,
                "num_shards": ingest.num_shards,
                "space_bits": ingest.space_bits(),
            }

    def checkpoint(self, path, extra: dict | None = None) -> dict:
        """Atomically persist config + full shard state + version to disk
        (the :meth:`state_payload` envelope via
        :func:`~repro.service.state.write_checkpoint`)."""
        with self._lock:
            write_checkpoint(path, self.state_payload(extra=extra))
            return {"path": str(path), "version": self.ingest.version,
                    "events": self.ingest.num_events}

    @classmethod
    def restore(cls, path) -> "ClusteringService":
        """Rebuild a service from :meth:`checkpoint` output.

        The restored instance is bit-identical: same hash randomness (it is
        derived from the config seed), same sketch contents, same version —
        so its next ``query`` answers exactly as the checkpointed process
        would have.
        """
        return cls.from_payload(read_json(path))

    @classmethod
    def from_payload(cls, payload: dict) -> "ClusteringService":
        """Rebuild a service from an already-parsed checkpoint envelope.

        Split out of :meth:`restore` so callers that need the envelope's
        other fields (the tenant registry reads its stamped ``tenant``
        block) can parse the JSON once.
        """
        if payload.get("format_version") != STATE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported service checkpoint format {payload.get('format_version')!r}"
            )
        config = ServiceConfig.from_dict(payload["config"])
        if config.workers > 0:
            ingest = _pool_class(config).from_state_dict(payload["ingest"])
            if ingest.num_shards != config.workers:
                ingest.close()
                raise ValueError(
                    f"checkpoint has {ingest.num_shards} shards but its "
                    f"config asks for {config.workers} workers"
                )
        else:
            ingest = sharded_state_from_dict(payload["ingest"])
        if ingest.params != config.make_params():
            ingest.close()
            raise ValueError("checkpoint shard parameters do not match its config")
        service = cls(config, ingest=ingest)
        service.bytes_ingested = int(
            payload.get("counters", {}).get("bytes_ingested", 0))
        return service

    def restore_in_place(self, path) -> None:
        """Replace this service's state with a checkpoint (keeps the object,
        and hence the wire server holding it, alive)."""
        fresh = ClusteringService.restore(path)
        with self._lock:
            stale = self.ingest
            self.config = fresh.config
            self.params = fresh.params
            self.ingest = fresh.ingest
            self.bytes_ingested = fresh.bytes_ingested
            self._cached = None
            stale.close()

    # ---------------------------------------------------------------- stats
    def stats(self) -> dict:
        """Operational counters (also served over the wire).

        With a worker pool the dict additionally carries ``worker_stats``
        (per-worker pid / event count / batch latency) and ``queue_depth``
        (pending batches per worker); gathering those synchronizes with the
        workers, so ``stats`` doubles as a drain barrier.
        """
        with self._lock:
            extra = (self.ingest.stats_extra()
                     if hasattr(self.ingest, "stats_extra") else None)
            base = {
                "version": self.ingest.version,
                "mode": extra["mode"] if extra else "in-process",
                "num_shards": self.ingest.num_shards,
                "events": self.ingest.num_events,
                "events_per_shard": list(self.ingest.events_per_shard),
                "insertions": self.ingest.num_insertions,
                "deletions": self.ingest.num_deletions,
                "live_points": self.ingest.num_insertions - self.ingest.num_deletions,
                "bytes_ingested": self.bytes_ingested,
                "queries": self.queries,
                "cache_hits": self.cache_hits,
                "cached_version": (self._cached.version
                                   if self._cached is not None else None),
                "space_bits": (extra["space_bits"] if extra
                               else self.ingest.space_bits()),
                "params": params_to_dict(self.params),
            }
            if extra is not None:
                base["queue_depth"] = extra["queue_depth"]
                base["worker_stats"] = extra["workers"]
                # Surface every other backend extra (supervision flags,
                # restart totals, recovery events) without enumerating them
                # here — the backend owns that vocabulary.
                for key, value in sorted(extra.items()):
                    if key in ("mode", "space_bits", "queue_depth", "workers"):
                        continue
                    base.setdefault(key, value)
            return base

