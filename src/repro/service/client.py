"""Resilient blocking JSON-lines client for the clustering service.

A wrapper over one TCP connection that survives the connection failing.
Transport faults — refused connects, resets mid-request, truncated reply
frames, per-op timeouts — are retried with exponential backoff and jitter
against a fresh connection, and surface as a typed
:class:`ServiceUnavailable` (never a raw ``BrokenPipeError`` or
``JSONDecodeError``) once the budget is exhausted.

Retrying a *mutating* op is only safe if the server can tell a replay from
a new request: the client therefore stamps every insert/delete frame with a
stable ``client_id`` and a monotonically increasing ``seq``.  A request
whose reply was lost to a reset is re-sent with the *same* seq; the server
answers from its replay cache instead of applying the batch twice, so a
mid-batch reconnect cannot double-count events.

Application-level failures keep their own types: ``ok: false`` responses
raise :class:`ServiceError`, and the structured ``degraded`` envelope (a
tenant's circuit breaker is open) raises :class:`ServiceDegraded` carrying
``retry_after_s`` so callers can back off deliberately.
"""

from __future__ import annotations

import json
import random
import socket
import time
import uuid

import numpy as np

from repro.service.protocol import encode_message

__all__ = ["ServiceClient", "ServiceError", "ServiceUnavailable", "ServiceDegraded"]

#: Ops never retried after a transport fault: shutdown is deliberately
#: one-shot (a retry could kill a freshly restarted server).
_NO_RETRY_OPS = frozenset({"shutdown"})

#: Ops stamped with (client_id, seq) so the server can dedupe replays.
_MUTATING_OPS = frozenset({"insert", "delete"})


class ServiceError(RuntimeError):
    """The server reported a failure for a request."""


class ServiceUnavailable(ServiceError):
    """The service could not be reached (or kept dropping the connection)
    within the retry budget.  ``op`` names the request that failed."""

    def __init__(self, message: str, op: str | None = None):
        super().__init__(message)
        self.op = op


class ServiceDegraded(ServiceError):
    """A tenant's circuit breaker is open; retry after ``retry_after_s``."""

    def __init__(self, message: str, stream_id: str | None = None,
                 retry_after_s: float = 0.0):
        super().__init__(message)
        self.stream_id = stream_id
        self.retry_after_s = float(retry_after_s)


class ServiceClient:
    """Client for one clustering server (async multi-tenant or ``--sync``).

    Usable as a context manager::

        with ServiceClient("127.0.0.1", 7071) as cli:
            cli.insert(points)
            answer = cli.query()

    The context manager always closes the socket, whatever the body raised.

    ``stream_id`` names the tenant every request addresses (multi-tenant
    servers only); ``None`` leaves the field off the wire, which servers
    treat as the ``"default"`` tenant — so a client without a stream id
    speaks the exact pre-tenant protocol.  The attribute is plain state:
    reassign ``cli.stream_id`` to switch tenants over one connection, or
    pass an explicit ``stream_id=...`` to :meth:`request` per call.

    ``retries`` bounds reconnect attempts per request (0 disables recovery
    entirely — one transport fault raises immediately).  ``timeout`` is the
    per-operation socket deadline; a request that exceeds it is treated as
    a transport fault and retried on a fresh connection, which is safe for
    every op: reads are side-effect-free and mutations are deduped by seq.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7071,
                 timeout: float | None = 60.0, stream_id: str | None = None,
                 retries: int = 4, backoff_s: float = 0.05,
                 backoff_cap_s: float = 2.0, client_id: str | None = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.stream_id = stream_id
        self.retries = max(0, int(retries))
        self.backoff_s = float(backoff_s)
        self.backoff_cap_s = float(backoff_cap_s)
        #: Stable identity for server-side replay dedupe.  Fresh per client
        #: object by default: seqs restart at 0 with a new identity, so a
        #: recycled id can never collide with a previous incarnation's.
        self.client_id = client_id or f"cli-{uuid.uuid4().hex[:20]}"
        self._seq = 0
        #: Jitter source — de-synchronizes retry storms across clients, so
        #: it must NOT be seeded identically across processes.
        self._jitter = random.Random()
        self.reconnects = 0
        # Lazy connect: the first request dials, so even a refused connect
        # flows through the retry/backoff loop and surfaces as the typed
        # ServiceUnavailable, never a raw OSError from the constructor.
        self._sock: socket.socket | None = None
        self._file = None

    # ------------------------------------------------------------ transport
    def _connect(self) -> None:
        """(Re)establish the TCP connection; raises ``OSError`` on failure."""
        self._drop()
        self._sock = socket.create_connection((self.host, self.port),
                                              timeout=self.timeout)
        self._file = self._sock.makefile("rwb")

    def _drop(self) -> None:
        """Tear down the current connection, swallowing close-time errors."""
        for closer in (self._file, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._file = None
        self._sock = None

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff with full jitter, capped."""
        span = min(self.backoff_cap_s, self.backoff_s * (2.0 ** attempt))
        return self._jitter.uniform(0.0, span)

    def _roundtrip(self, frame: bytes, op: str) -> dict:
        """One send/receive on the live connection; OSError on any fault."""
        if self._file is None:
            self._connect()
        self._file.write(frame)
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionResetError(f"connection closed during {op!r}")
        try:
            resp = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            # A truncated frame means the server died mid-write; the reply
            # is unusable and the connection is poisoned.
            raise ConnectionResetError(
                f"truncated reply during {op!r}: {exc}") from exc
        if not isinstance(resp, dict):
            raise ConnectionResetError(f"non-object reply during {op!r}")
        return resp

    # ------------------------------------------------------------ plumbing
    def request(self, op: str, **fields) -> dict:
        """Send one op and return its payload; raises on error responses.

        Transport faults are retried on a fresh connection with backoff;
        mutating ops carry a seq assigned once per *logical* request, so
        every retry of this call replays the same identity.
        """
        if self.stream_id is not None:
            fields.setdefault("stream_id", self.stream_id)
        if op in _MUTATING_OPS and "client_id" not in fields:
            fields["client_id"] = self.client_id
            fields["seq"] = self._seq
            self._seq += 1
        frame = encode_message({"op": op, **fields})
        attempts = 1 if op in _NO_RETRY_OPS else self.retries + 1
        last_exc: Exception | None = None
        for attempt in range(attempts):  # scalar-ok: bounded retry loop, not data plane
            if attempt:
                time.sleep(self._backoff(attempt - 1))
                self.reconnects += 1
            try:
                if attempt:
                    self._connect()
                resp = self._roundtrip(frame, op)
            except OSError as exc:
                self._drop()
                last_exc = exc
                continue
            if resp.get("ok"):
                return resp
            message = resp.get("error", f"unknown failure in {op!r}")
            if resp.get("degraded"):
                raise ServiceDegraded(message,
                                      stream_id=resp.get("stream_id"),
                                      retry_after_s=resp.get("retry_after_s", 0.0))
            raise ServiceError(message)
        raise ServiceUnavailable(
            f"service unreachable after {attempts} attempt(s) for {op!r}: "
            f"{last_exc}", op=op)

    def close(self) -> None:
        """Close the connection (idempotent, never raises)."""
        self._drop()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ----------------------------------------------------------- operations
    def ping(self) -> bool:
        """Liveness check."""
        return bool(self.request("ping").get("pong"))

    def insert(self, points, batch_size: int = 4096) -> int:
        """Insert rows of an (n, d) int array; returns events applied."""
        return self._send_points("insert", points, batch_size)

    def delete(self, points, batch_size: int = 4096) -> int:
        """Delete rows of an (n, d) int array; returns events applied."""
        return self._send_points("delete", points, batch_size)

    def query(self, capacity_slack: float | None = None) -> dict:
        """Solve (or fetch the memoized) clustering of the live stream.

        Returns the result dict with centers/cost/... plus ``cache_hit``.
        """
        fields = {}
        if capacity_slack is not None:
            fields["capacity_slack"] = float(capacity_slack)
        resp = self.request("query", **fields)
        result = dict(resp["result"])
        result["cache_hit"] = bool(resp["cache_hit"])
        return result

    def checkpoint(self, path) -> dict:
        """Ask the server to checkpoint its state to ``path`` (server-side)."""
        return self.request("checkpoint", path=str(path))

    def restore(self, path) -> dict:
        """Ask the server to replace its state from ``path`` (server-side)."""
        return self.request("restore", path=str(path))

    def stats(self) -> dict:
        """Operational counters (version, events, cache hits, space)."""
        return self.request("stats")["stats"]

    def pull_state(self) -> dict:
        """The tenant's full serialized sketch state (checkpoint envelope).

        The coordinator-fleet read: read-only and retry-safe, so a pull
        interrupted by a reset just re-pulls on a fresh connection.
        """
        return self.request("pull_state")["state"]

    def site_stats(self) -> dict:
        """The tenant's fixed-vocabulary site counters (fleet polling op)."""
        return self.request("site_stats")["site"]

    def tenants(self, live_only: bool = False) -> list[dict]:
        """Summaries of every known stream (live and evicted-to-disk);
        ``live_only=True`` asks only for resident tenants — O(live) on the
        server however many cold tenants its disk knows."""
        fields = {"live_only": True} if live_only else {}
        return self.request("tenants", **fields)["tenants"]

    def shutdown(self) -> None:
        """Stop the server (the connection closes afterwards)."""
        self.request("shutdown")

    # ------------------------------------------------------------- helpers
    def _send_points(self, op: str, points, batch_size: int) -> int:
        rows = np.asarray(points, dtype=np.int64)
        if rows.ndim != 2:
            raise ValueError(f"points must be (n, d), got shape {rows.shape}")
        total = 0
        for lo in range(0, len(rows), max(1, int(batch_size))):  # scalar-ok: wire chunking, not data plane
            chunk = rows[lo: lo + batch_size].tolist()
            total += int(self.request(op, points=chunk)["applied"])
        return total
