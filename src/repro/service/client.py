"""Blocking JSON-lines client for the clustering service.

A thin wrapper over one TCP connection: each method sends a request frame
and waits for its response.  Raises :class:`ServiceError` when the server
answers ``ok: false``, so callers handle failures as exceptions rather than
inspecting dicts.
"""

from __future__ import annotations

import json
import socket

import numpy as np

from repro.service.protocol import encode_message

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The server reported a failure for a request."""


class ServiceClient:
    """Client for one clustering server (async multi-tenant or ``--sync``).

    Usable as a context manager::

        with ServiceClient("127.0.0.1", 7071) as cli:
            cli.insert(points)
            answer = cli.query()

    ``stream_id`` names the tenant every request addresses (multi-tenant
    servers only); ``None`` leaves the field off the wire, which servers
    treat as the ``"default"`` tenant — so a client without a stream id
    speaks the exact pre-tenant protocol.  The attribute is plain state:
    reassign ``cli.stream_id`` to switch tenants over one connection, or
    pass an explicit ``stream_id=...`` to :meth:`request` per call.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7071,
                 timeout: float | None = 60.0, stream_id: str | None = None):
        self.stream_id = stream_id
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # ------------------------------------------------------------ plumbing
    def request(self, op: str, **fields) -> dict:
        """Send one op and return its payload; raises on error responses."""
        if self.stream_id is not None:
            fields.setdefault("stream_id", self.stream_id)
        self._file.write(encode_message({"op": op, **fields}))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceError(f"connection closed during {op!r}")
        resp = _decode_response(line)
        if not resp.get("ok"):
            raise ServiceError(resp.get("error", f"unknown failure in {op!r}"))
        return resp

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ----------------------------------------------------------- operations
    def ping(self) -> bool:
        """Liveness check."""
        return bool(self.request("ping").get("pong"))

    def insert(self, points, batch_size: int = 4096) -> int:
        """Insert rows of an (n, d) int array; returns events applied."""
        return self._send_points("insert", points, batch_size)

    def delete(self, points, batch_size: int = 4096) -> int:
        """Delete rows of an (n, d) int array; returns events applied."""
        return self._send_points("delete", points, batch_size)

    def query(self, capacity_slack: float | None = None) -> dict:
        """Solve (or fetch the memoized) clustering of the live stream.

        Returns the result dict with centers/cost/... plus ``cache_hit``.
        """
        fields = {}
        if capacity_slack is not None:
            fields["capacity_slack"] = float(capacity_slack)
        resp = self.request("query", **fields)
        result = dict(resp["result"])
        result["cache_hit"] = bool(resp["cache_hit"])
        return result

    def checkpoint(self, path) -> dict:
        """Ask the server to checkpoint its state to ``path`` (server-side)."""
        return self.request("checkpoint", path=str(path))

    def restore(self, path) -> dict:
        """Ask the server to replace its state from ``path`` (server-side)."""
        return self.request("restore", path=str(path))

    def stats(self) -> dict:
        """Operational counters (version, events, cache hits, space)."""
        return self.request("stats")["stats"]

    def tenants(self) -> list[dict]:
        """Summaries of every known stream (live and evicted-to-disk)."""
        return self.request("tenants")["tenants"]

    def shutdown(self) -> None:
        """Stop the server (the connection closes afterwards)."""
        self.request("shutdown")

    # ------------------------------------------------------------- helpers
    def _send_points(self, op: str, points, batch_size: int) -> int:
        rows = np.asarray(points, dtype=np.int64)
        if rows.ndim != 2:
            raise ValueError(f"points must be (n, d), got shape {rows.shape}")
        total = 0
        for lo in range(0, len(rows), max(1, int(batch_size))):
            chunk = rows[lo: lo + batch_size].tolist()
            total += int(self.request(op, points=chunk)["applied"])
        return total


def _decode_response(line: bytes) -> dict:
    """Responses reuse the request frame format minus the op check."""
    return json.loads(line.decode("utf-8"))
