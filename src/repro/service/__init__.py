"""Long-lived clustering service over dynamic streams.

The paper's sketches are *linear*, which is exactly what a production
service needs: state can be sharded across independent workers
(:mod:`repro.service.shards`), persisted and restored bit-identically
(:mod:`repro.service.state`), merged on demand and queried with result
memoization (:mod:`repro.service.engine`), multiplexed across any number
of named streams with cold-tenant eviction (:mod:`repro.service.tenants` /
:mod:`repro.service.eviction`), and exposed over a wire protocol
(:mod:`repro.service.aserver` / :mod:`repro.service.server` /
:mod:`repro.service.client`).

Layering: ``state`` (codec) → ``shards`` (ingest) → ``engine`` (queries)
→ ``tenants`` (multi-stream registry) → ``protocol``/``aserver``/
``server``/``client`` (wire).  Everything below the wire layer is
importable and testable without opening a socket.
"""

from repro.service.aserver import (
    AsyncClusteringServer,
    serve_forever_async,
    start_async_server,
)
from repro.service.client import ServiceClient
from repro.service.engine import ClusteringService, QueryResult, ServiceConfig
from repro.service.eviction import EvictionPolicy, LRUEvictionPolicy
from repro.service.server import ClusteringServer, serve_forever, start_server
from repro.service.shards import ShardedIngest
from repro.service.state import (
    sharded_state_from_dict,
    sharded_state_to_dict,
    streaming_state_from_dict,
    streaming_state_to_dict,
)
from repro.service.tenants import QuotaExceeded, TenantQuota, TenantRegistry
from repro.service.workers import WorkerPoolIngest

__all__ = [
    "AsyncClusteringServer",
    "ClusteringServer",
    "ClusteringService",
    "EvictionPolicy",
    "LRUEvictionPolicy",
    "QueryResult",
    "QuotaExceeded",
    "ServiceClient",
    "ServiceConfig",
    "ShardedIngest",
    "TenantQuota",
    "TenantRegistry",
    "WorkerPoolIngest",
    "serve_forever",
    "serve_forever_async",
    "sharded_state_from_dict",
    "sharded_state_to_dict",
    "start_async_server",
    "start_server",
    "streaming_state_from_dict",
    "streaming_state_to_dict",
]
