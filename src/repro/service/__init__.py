"""Long-lived clustering service over dynamic streams.

The paper's sketches are *linear*, which is exactly what a production
service needs: state can be sharded across independent workers
(:mod:`repro.service.shards`), persisted and restored bit-identically
(:mod:`repro.service.state`), merged on demand and queried with result
memoization (:mod:`repro.service.engine`), and exposed over a wire protocol
(:mod:`repro.service.server` / :mod:`repro.service.client`).

Layering: ``state`` (codec) → ``shards`` (ingest) → ``engine`` (queries)
→ ``protocol``/``server``/``client`` (wire).  Everything below the wire
layer is importable and testable without opening a socket.
"""

from repro.service.client import ServiceClient
from repro.service.engine import ClusteringService, QueryResult, ServiceConfig
from repro.service.server import ClusteringServer, serve_forever, start_server
from repro.service.shards import ShardedIngest
from repro.service.state import (
    sharded_state_from_dict,
    sharded_state_to_dict,
    streaming_state_from_dict,
    streaming_state_to_dict,
)
from repro.service.workers import WorkerPoolIngest

__all__ = [
    "ClusteringServer",
    "ClusteringService",
    "QueryResult",
    "ServiceClient",
    "ServiceConfig",
    "ShardedIngest",
    "WorkerPoolIngest",
    "serve_forever",
    "sharded_state_from_dict",
    "sharded_state_to_dict",
    "start_server",
    "streaming_state_from_dict",
    "streaming_state_to_dict",
]
