"""Long-lived clustering service over dynamic streams.

The paper's sketches are *linear*, which is exactly what a production
service needs: state can be sharded across independent workers
(:mod:`repro.service.shards`), persisted and restored bit-identically
(:mod:`repro.service.state`), merged on demand and queried with result
memoization (:mod:`repro.service.engine`), multiplexed across any number
of named streams with cold-tenant eviction (:mod:`repro.service.tenants` /
:mod:`repro.service.eviction`), and exposed over a wire protocol
(:mod:`repro.service.aserver` / :mod:`repro.service.server` /
:mod:`repro.service.client`).

Layering: ``state`` (codec) → ``shards`` (ingest) → ``engine`` (queries)
→ ``tenants`` (multi-stream registry) → ``protocol``/``aserver``/
``server``/``client`` (wire).  Everything below the wire layer is
importable and testable without opening a socket.

Robustness rides across every layer: :mod:`repro.service.faults` injects
deterministic, seeded failures at named points throughout the stack,
:mod:`repro.service.supervisor` respawns dead shard workers and replays
their journaled batches bit-identically, the client retries transport
faults with sequence-numbered idempotent mutations, and the registry's
per-tenant circuit breakers degrade failing tenants instead of letting
them brown out the rest.
"""

from repro.service import faults
from repro.service.aserver import (
    AsyncClusteringServer,
    serve_forever_async,
    start_async_server,
)
from repro.service.client import (
    ServiceClient,
    ServiceDegraded,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.engine import ClusteringService, QueryResult, ServiceConfig
from repro.service.eviction import EvictionPolicy, LRUEvictionPolicy
from repro.service.faults import FaultPlan, FaultRule, InjectedFault
from repro.service.server import ClusteringServer, serve_forever, start_server
from repro.service.shards import ShardedIngest
from repro.service.state import (
    sharded_state_from_dict,
    sharded_state_to_dict,
    streaming_state_from_dict,
    streaming_state_to_dict,
    write_checkpoint,
)
from repro.service.supervisor import CircuitBreaker, SupervisedWorkerPool
from repro.service.tenants import (
    QuotaExceeded,
    TenantDegraded,
    TenantQuota,
    TenantRegistry,
)
from repro.service.workers import WorkerDied, WorkerPoolIngest

__all__ = [
    "AsyncClusteringServer",
    "CircuitBreaker",
    "ClusteringServer",
    "ClusteringService",
    "EvictionPolicy",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "LRUEvictionPolicy",
    "QueryResult",
    "QuotaExceeded",
    "ServiceClient",
    "ServiceConfig",
    "ServiceDegraded",
    "ServiceError",
    "ServiceUnavailable",
    "ShardedIngest",
    "SupervisedWorkerPool",
    "TenantDegraded",
    "TenantQuota",
    "TenantRegistry",
    "WorkerDied",
    "WorkerPoolIngest",
    "faults",
    "serve_forever",
    "serve_forever_async",
    "sharded_state_from_dict",
    "sharded_state_to_dict",
    "start_async_server",
    "start_server",
    "streaming_state_from_dict",
    "streaming_state_to_dict",
    "write_checkpoint",
]
