"""Process-parallel shard ingest: one OS process per sketch shard.

:class:`~repro.service.shards.ShardedIngest` gives merge-*exactness* — all
shards share ``(params, seed)`` randomness, so summing their linear sketches
equals a single driver that saw the whole stream — but runs every shard in
one Python process, so sharding buys no wall-clock throughput.  The same
linearity that makes the paper's coordinator model work with ``s``
independent sites means each shard can just as well live in its own process:
:class:`WorkerPoolIngest` spawns one worker per shard, each constructing its
:class:`~repro.streaming.streaming_coreset.StreamingCoreset` *inside* the
worker from the shared ``(params, seed)`` (every bit of randomness is
derived from those, so worker shards are bit-identical to in-process ones),
and feeds it batched events over a bounded command queue.

Queries and checkpoints pull per-shard serialized sketch state (the
:mod:`repro.service.state` codec) back to the parent, where the existing
exact :func:`~repro.streaming.merge.merge_streaming_states` fan-in runs.
Because each worker's command queue is FIFO, a ``state`` request enqueued
after a set of batches observes exactly those batches — no separate barrier
or ack protocol is needed for determinism.

The public surface mirrors ``ShardedIngest`` (``apply_batch`` /
``insert_points`` / ``merged_state`` / ``to_state_dict`` / counters), so the
engine treats both backends uniformly; ``close()`` additionally tears the
workers down.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import time

import numpy as np

from repro.core.io import params_from_dict, params_to_dict
from repro.core.params import CoresetParams
from repro.grid.grids import PointCodec
from repro.service.faults import InjectedFault, fault_point
from repro.service.shards import _mix, _mix_array
from repro.service.state import (
    STATE_FORMAT_VERSION,
    build_sharded_state_dict,
    streaming_state_from_dict,
    streaming_state_to_dict,
)
from repro.streaming.merge import merge_streaming_states
from repro.streaming.stream import events_to_arrays
from repro.streaming.streaming_coreset import StreamingCoreset
from repro.utils.validation import check_stream_points, coerce_integral_rows

__all__ = ["WorkerDied", "WorkerPoolIngest", "DEFAULT_QUEUE_BATCHES"]


class WorkerDied(RuntimeError):
    """A shard worker process is gone (or reported a fatal error and
    exited).  Carries enough context for a supervisor to rebuild the shard:
    :class:`~repro.service.supervisor.SupervisedWorkerPool` catches this,
    respawns the worker from its last per-shard checkpoint, and replays the
    journaled batches; the plain pool surfaces it to the caller.
    """

    def __init__(self, shard: int, message: str, exitcode: int | None = None):
        super().__init__(message)
        self.shard = shard
        self.exitcode = exitcode

#: Bound on queued-but-unprocessed batches per worker; `apply_batch` blocks
#: once a worker falls this far behind (backpressure instead of unbounded
#: parent-side memory growth).
DEFAULT_QUEUE_BATCHES = 64

#: How long the parent waits for a worker reply before declaring it dead.
_REPLY_TIMEOUT_S = 600.0


def _worker_main(spec: dict, cmd_q, out_q) -> None:
    """Worker entry point: build (or restore) one shard, then serve commands.

    Runs in a child process.  The shard is constructed here from the shared
    ``(params, seed)`` — not pickled over — which regenerates grid shift,
    hash polynomials, and sketch layouts bit-identically to every sibling
    shard and to the in-process backend.
    """
    try:
        if spec.get("state") is not None:
            shard = streaming_state_from_dict(spec["state"])
        else:
            params = params_from_dict(spec["params"])
            o_range = (tuple(spec["o_range"])
                       if spec["o_range"] is not None else None)
            shard = StreamingCoreset(
                params, seed=spec["seed"], backend=spec["backend"],
                o_range=o_range, auto_pilot=spec["auto_pilot"],
            )
        out_q.put(("ready", os.getpid()))
    except Exception as exc:  # surface construction failures to the parent
        out_q.put(("error", f"{type(exc).__name__}: {exc}"))
        return
    events = 0
    batches = 0
    busy_s = 0.0
    while True:  # scalar-ok: per-batch command loop
        msg = cmd_q.get()
        op = msg[0]
        try:
            if op == "batch":
                t0 = time.perf_counter()
                shard.update_batch(msg[1])
                busy_s += time.perf_counter() - t0
                events += len(msg[1])
                batches += 1
            elif op == "abatch":
                # Columnar payload: (rows, signs) arrays straight into the
                # vectorized ingest path — no per-event tuples on the wire.
                t0 = time.perf_counter()
                shard.update_arrays(msg[1], msg[2])
                busy_s += time.perf_counter() - t0
                events += len(msg[2])
                batches += 1
            elif op == "state":
                out_q.put(("state", streaming_state_to_dict(shard)))
            elif op == "stats":
                out_q.put(("stats", {
                    "pid": os.getpid(),
                    "events": events,
                    "batches": batches,
                    "busy_s": busy_s,
                    "space_bits": shard.space_bits(),
                }))
            elif op == "crash":
                # Injected soft failure (FaultPlan worker.kill mode="soft"):
                # die the way a worker with a poisoned shard does — report
                # an error, then exit — so recovery handles both shapes.
                raise InjectedFault("worker.kill", "soft worker crash")
            elif op == "stop":
                out_q.put(("stopped", events))
                return
            else:
                out_q.put(("error", f"unknown worker command {op!r}"))
                return
        except Exception as exc:
            # A failed command poisons the shard state; report and die so
            # the parent's next round trip sees the error, not silence.
            out_q.put(("error", f"{type(exc).__name__}: {exc}"))
            return


class WorkerPoolIngest:
    """One logical dynamic stream over N shard *processes*.

    Parameters
    ----------
    params, seed, backend, o_range, auto_pilot:
        Exactly as for :class:`~repro.service.shards.ShardedIngest`; the
        shared ``(params, seed)`` is what makes the fan-in exact.
    num_workers:
        Worker processes, one shard each.
    start_method:
        ``multiprocessing`` start method.  Defaults to ``"spawn"`` — safe
        under the threaded wire server (``fork`` from a multi-threaded
        parent can deadlock in the child) and identical across platforms;
        shard construction is seed-derived, so the start method cannot
        affect results.
    queue_batches:
        Backpressure bound on queued batches per worker.
    shard_states:
        Internal (restore path): per-shard state dicts the workers load at
        startup instead of starting empty.
    """

    def __init__(
        self,
        params: CoresetParams,
        num_workers: int = 4,
        seed: int = 0,
        backend: str = "exact",
        o_range: tuple[float, float] | None = None,
        auto_pilot: bool | None = None,
        start_method: str = "spawn",
        queue_batches: int = DEFAULT_QUEUE_BATCHES,
        shard_states: list | None = None,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if shard_states is not None and len(shard_states) != num_workers:
            raise ValueError(
                f"got {len(shard_states)} shard states for {num_workers} workers"
            )
        self._params = params
        self._codec = PointCodec(params.delta, params.d)
        self._ctx = multiprocessing.get_context(start_method)
        self._closed = False
        self._queue_batches = max(1, int(queue_batches))
        self._base_spec = {
            "params": params_to_dict(params),
            "seed": int(seed),
            "backend": backend,
            "o_range": list(o_range) if o_range is not None else None,
            "auto_pilot": auto_pilot,
            "state": None,
        }
        self._cmd_queues = [None] * num_workers
        self._out_queues = [None] * num_workers
        self._procs = [None] * num_workers
        #: Times each worker slot has been respawned (always 0 for the
        #: plain pool; SupervisedWorkerPool increments on recovery).
        self.restart_counts = [0] * num_workers
        #: Workers close() had to SIGKILL because terminate() did not
        #: take — a wedged worker is force-reaped, not silently leaked.
        self.forced_kills = 0
        for w in range(num_workers):  # scalar-ok: per-worker spawn
            self._spawn(w, shard_states[w] if shard_states is not None else None)
        try:
            for w in range(num_workers):  # scalar-ok: per-worker handshake
                self._collect(w, "ready")
        except Exception:
            self.close()
            raise
        self.version = 0
        self.events_per_shard = [0] * num_workers
        self.num_insertions = 0
        self.num_deletions = 0

    def _spawn(self, idx: int, state: dict | None) -> None:
        """(Re)create worker slot ``idx``: fresh queues + process.

        Fresh queues matter for *respawns*: a SIGKILL'd worker can leave a
        partial pickle in its old pipes, and stale commands behind it, so a
        recovered slot must never reuse them.
        """
        spec = dict(self._base_spec)
        spec["state"] = state
        cmd_q = self._ctx.Queue(maxsize=self._queue_batches)
        out_q = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main, args=(spec, cmd_q, out_q),
            name=f"repro-shard-{idx}", daemon=True,
        )
        proc.start()
        self._cmd_queues[idx] = cmd_q
        self._out_queues[idx] = out_q
        self._procs[idx] = proc

    # ---------------------------------------------------------------- meta
    @property
    def num_shards(self) -> int:
        """Number of shard processes."""
        return len(self._procs)

    @property
    def params(self) -> CoresetParams:
        """The shared problem parameters."""
        return self._params

    @property
    def num_events(self) -> int:
        """Total events routed across all workers."""
        return sum(self.events_per_shard)

    def shard_of(self, point) -> int:
        """Deterministic shard index — identical routing to ShardedIngest."""
        return _mix(self._codec.encode_one(point)) % len(self._procs)

    # -------------------------------------------------------------- ingest
    def apply(self, point, sign: int) -> int:
        """Apply one update to its shard's worker; returns the shard index."""
        idx = self.shard_of(point)
        self._send(idx, ("batch", [(tuple(int(c) for c in point), int(sign))]))
        self.events_per_shard[idx] += 1
        self._count_sign(sign)
        self.version += 1
        return idx

    def apply_batch(self, events) -> int:
        """Apply a batch of events (StreamEvent or (point, sign) pairs).

        Normalized to coordinate/sign arrays and routed by
        :meth:`apply_arrays`.  The call returns once every per-shard slice
        is *enqueued*, not processed — workers drain asynchronously, and
        any later ``state``/``stats`` round trip observes all previously
        enqueued batches (FIFO queues).  Bumps :attr:`version` once.
        """
        rows, signs = events_to_arrays(events, d=self._params.d)
        return self.apply_arrays(rows, signs)

    def apply_arrays(self, rows, signs) -> int:
        """Vectorized ingest: validate and route the whole batch up front,
        then ship one columnar (rows, signs) slice per shard worker."""
        rows = check_stream_points(coerce_integral_rows(rows),
                                   self._params.delta)
        signs = np.asarray(signs, dtype=np.int64)
        n = len(signs)
        if n == 0:
            return 0
        keys = self._codec.encode(rows)
        nshards = len(self._procs)
        idx = (_mix_array(keys) % np.uint64(nshards)).astype(np.int64)
        for s in range(nshards):  # scalar-ok: per shard, batched inside
            mask = idx == s
            cnt = int(mask.sum())
            if not cnt:
                continue
            self._send(s, ("abatch", rows[mask], signs[mask]))
            self.events_per_shard[s] += cnt
        ins = int((signs > 0).sum())
        self.num_insertions += ins
        self.num_deletions += n - ins
        self.version += 1
        return n

    def insert_points(self, points) -> int:
        """Insert each row of an (n, d) array; one version bump."""
        rows = coerce_integral_rows(points)
        return self.apply_arrays(rows, np.ones(len(rows), dtype=np.int64))

    def delete_points(self, points) -> int:
        """Delete each row of an (n, d) array; one version bump."""
        rows = coerce_integral_rows(points)
        return self.apply_arrays(rows, np.full(len(rows), -1, dtype=np.int64))

    def _count_sign(self, sign: int) -> None:
        if sign > 0:
            self.num_insertions += 1
        else:
            self.num_deletions += 1

    # --------------------------------------------------------------- fan-in
    def merged_state(self) -> StreamingCoreset:
        """A fresh driver equal to one that saw the entire stream.

        Drains every worker (the ``state`` request queues behind all
        pending batches) and folds the deserialized shard states together
        with the exact linear-sketch merge.
        """
        states = self._shard_state_dicts()
        merged = streaming_state_from_dict(states[0])
        for rec in states[1:]:  # scalar-ok: per-shard merge fan-in
            merge_streaming_states(merged, streaming_state_from_dict(rec))
        return merged

    def space_bits(self) -> int:
        """Total charged sketch bits across all workers (round trip)."""
        return sum(rec["space_bits"] for rec in self.worker_stats())

    # ---------------------------------------------------------- persistence
    def to_state_dict(self) -> dict:
        """Checkpoint payload — same schema as the in-process backend, so
        checkpoints restore into either backend interchangeably."""
        return build_sharded_state_dict(
            self._shard_state_dicts(),
            version=self.version,
            events_per_shard=self.events_per_shard,
            num_insertions=self.num_insertions,
            num_deletions=self.num_deletions,
        )

    @classmethod
    def from_state_dict(cls, data: dict, start_method: str = "spawn",
                        queue_batches: int = DEFAULT_QUEUE_BATCHES,
                        ) -> "WorkerPoolIngest":
        """Rebuild a pool from a sharded checkpoint (workers load their
        shard state at startup)."""
        if data.get("format_version") != STATE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported sharded-state format {data.get('format_version')!r}"
            )
        shards = data["shards"]
        if len(shards) != int(data["num_shards"]):
            raise ValueError("checkpoint shard count mismatch")
        first = shards[0]
        o_range = (tuple(first["o_range"])
                   if first["o_range"] is not None else None)
        pool = cls(
            params_from_dict(first["params"]),
            num_workers=len(shards),
            seed=first["seed"],
            backend=first["backend"],
            o_range=o_range,
            auto_pilot=first["auto_pilot"],
            start_method=start_method,
            queue_batches=queue_batches,
            shard_states=list(shards),
        )
        pool.version = int(data["version"])
        pool.events_per_shard = [int(x) for x in data["events_per_shard"]]
        pool.num_insertions = int(data["num_insertions"])
        pool.num_deletions = int(data["num_deletions"])
        return pool

    # ------------------------------------------------------------- operations
    def worker_stats(self) -> list[dict]:
        """Per-worker counters: pid, events, batches, busy seconds, space.

        Synchronizing — the reply queues behind any pending batches.
        """
        for idx in range(self.num_shards):  # scalar-ok: per-worker stats round-trip
            self._send(idx, ("stats",))
        return [self._collect(idx, "stats") for idx in range(self.num_shards)]

    def queue_depths(self) -> list[int | None]:
        """Queued-but-unprocessed command count per worker (best effort —
        ``None`` where the platform lacks ``qsize``)."""
        depths: list[int | None] = []
        for q in self._cmd_queues:  # scalar-ok: per-worker queue probe
            try:
                depths.append(q.qsize())
            except NotImplementedError:  # pragma: no cover - macOS
                depths.append(None)
        return depths

    def stats_extra(self) -> dict:
        """Pool-specific stats block merged into ``ClusteringService.stats``."""
        workers = self.worker_stats()
        return {
            "mode": "parallel",
            "queue_depth": self.queue_depths(),
            "space_bits": sum(rec["space_bits"] for rec in workers),
            "restarts": sum(self.restart_counts),
            "forced_kills": self.forced_kills,
            "workers": [
                {
                    "pid": rec["pid"],
                    "events": rec["events"],
                    "batches": rec["batches"],
                    "busy_s": round(rec["busy_s"], 6),
                    "batch_latency_s": round(
                        rec["busy_s"] / rec["batches"], 6
                    ) if rec["batches"] else 0.0,
                    "exitcode": self._procs[i].exitcode,
                    "restarts": self.restart_counts[i],
                }
                for i, rec in enumerate(workers)
            ],
        }

    # --------------------------------------------------------------- teardown
    def close(self, timeout: float = 30.0) -> dict:
        """Stop all workers (idempotent).  Pending batches are drained first
        — ``stop`` queues behind them — so no enqueued event is lost.

        Escalates on a wedged worker: ``stop`` command → ``terminate()``
        (SIGTERM) → ``kill()`` (SIGKILL), so ``close()`` never returns with
        a live child, and reports what it had to do:
        ``{"stopped": n, "terminated": n, "killed": n}`` (``killed`` also
        accumulates into :attr:`forced_kills`).
        """
        report = {"stopped": 0, "terminated": 0, "killed": 0}
        if self._closed:
            return report
        self._closed = True
        for idx, q in enumerate(self._cmd_queues):  # scalar-ok: per-worker shutdown
            if self._procs[idx].is_alive():
                try:
                    q.put(("stop",), timeout=timeout)
                except queue_mod.Full:  # pragma: no cover - wedged worker
                    pass
        for proc in self._procs:  # scalar-ok: per-worker join
            proc.join(timeout)
            if not proc.is_alive():
                report["stopped"] += 1
                continue
            proc.terminate()
            proc.join(5.0)
            if not proc.is_alive():
                report["terminated"] += 1
                continue
            # SIGTERM did not take (blocked, stopped, or wedged in C code):
            # SIGKILL cannot be ignored.  Without this a wedged worker
            # outlived close() silently.
            proc.kill()
            proc.join(5.0)
            report["killed"] += 1
            self.forced_kills += 1
        for q in self._cmd_queues + self._out_queues:  # scalar-ok: per-queue close
            q.close()
            q.cancel_join_thread()
        self.last_close_report = report
        return report

    def __enter__(self) -> "WorkerPoolIngest":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # --------------------------------------------------------------- plumbing
    def _send(self, idx: int, msg: tuple) -> None:
        """Enqueue one command; blocks for backpressure when the worker lags."""
        if self._closed:
            raise RuntimeError("worker pool is closed")
        if msg[0] in ("batch", "abatch"):
            self._maybe_inject_kill(idx)
        if not self._procs[idx].is_alive():
            raise WorkerDied(
                idx,
                f"shard worker {idx} (pid {self._procs[idx].pid}) died; "
                "restore the service from its last checkpoint",
                exitcode=self._procs[idx].exitcode,
            )
        self._cmd_queues[idx].put(msg)

    def _maybe_inject_kill(self, idx: int) -> None:
        """``worker.kill`` fault point (no-op without an installed plan):
        hard = SIGKILL the shard process, soft = command it to error out
        and exit.  The very next liveness check sees the corpse."""
        act = fault_point("worker.kill", shard=idx, pid=self._procs[idx].pid)
        if act is None:
            return
        if act.mode == "soft":
            self._cmd_queues[idx].put(("crash",))
        else:
            self._procs[idx].kill()
        # Join (briefly) so the death is observable deterministically —
        # a hard-killed pid must be gone before the caller's next check.
        self._procs[idx].join(5.0)

    def _collect(self, idx: int, want: str):
        """Wait for one tagged reply from worker ``idx``; raise on errors."""
        deadline = time.monotonic() + _REPLY_TIMEOUT_S
        while True:  # scalar-ok: reply poll, per message
            try:
                tag, payload = self._out_queues[idx].get(timeout=0.5)
            except queue_mod.Empty:
                if not self._procs[idx].is_alive():
                    raise WorkerDied(
                        idx,
                        f"shard worker {idx} died without replying to {want!r}",
                        exitcode=self._procs[idx].exitcode,
                    ) from None
                if time.monotonic() > deadline:  # pragma: no cover
                    raise TimeoutError(
                        f"shard worker {idx} did not answer {want!r} within "
                        f"{_REPLY_TIMEOUT_S:.0f}s"
                    ) from None
                continue
            if tag == "error":
                # The worker exits right after reporting an error, so an
                # error reply IS a death notice — typed accordingly.
                raise WorkerDied(idx, f"shard worker {idx} failed: {payload}")
            if tag != want:  # pragma: no cover - protocol bug guard
                raise RuntimeError(
                    f"shard worker {idx} answered {tag!r}, expected {want!r}"
                )
            return payload

    def _shard_state_dicts(self) -> list[dict]:
        """Serialized state of every shard (parallel drain across workers)."""
        for idx in range(self.num_shards):  # scalar-ok: per-shard state drain
            self._send(idx, ("state",))
        return [self._collect(idx, "state") for idx in range(self.num_shards)]
