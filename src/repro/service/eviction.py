"""Cold-tenant eviction policies for the multi-tenant registry.

The registry keeps at most ``max_live_tenants`` sketches in memory; when a
lease would push it past that, a policy picks which live tenants to
checkpoint to disk.  The policy sees only *recency metadata* — it never
touches sketch state — so alternative policies (LFU, size-weighted, TTL)
can be dropped in without touching the registry's locking.

A policy must never name a *pinned* tenant (one with an operation in
flight): the registry closes a victim's service right after checkpointing
it, and an in-flight operation holding that service would observe a closed
backend.  Pinned tenants are simply skipped; the registry retries eviction
on the next lease, so an over-budget moment under load heals as soon as
operations drain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EvictionPolicy", "LRUEvictionPolicy"]


@dataclass
class EvictionPolicy:
    """Interface: track touches, pick victims.  Subclass to change *which*
    tenants get evicted; *when* (live count > budget) is the registry's
    call."""

    def touch(self, stream_id: str) -> None:
        """Record that ``stream_id`` was just used."""
        raise NotImplementedError

    def forget(self, stream_id: str) -> None:
        """Drop all bookkeeping for a tenant (it was evicted or deleted)."""
        raise NotImplementedError

    def victims(self, live: list[str], excess: int) -> list[str]:
        """Choose up to ``excess`` victims from ``live`` (already filtered
        to evictable tenants), coldest first."""
        raise NotImplementedError


@dataclass
class LRUEvictionPolicy(EvictionPolicy):
    """Least-recently-used: victims are the tenants whose last touch is
    oldest.  Ties (never observed in practice — the clock is a monotonic
    counter) break toward lexicographically smaller ids for determinism.
    """

    _clock: int = 0
    _last_touch: dict[str, int] = field(default_factory=dict)

    def touch(self, stream_id: str) -> None:
        self._clock += 1
        self._last_touch[stream_id] = self._clock

    def forget(self, stream_id: str) -> None:
        self._last_touch.pop(stream_id, None)

    def last_touch(self, stream_id: str) -> int:
        """Logical timestamp of the tenant's most recent use (0 = never)."""
        return self._last_touch.get(stream_id, 0)

    def victims(self, live: list[str], excess: int) -> list[str]:
        if excess <= 0:
            return []
        ranked = sorted(live, key=lambda sid: (self._last_touch.get(sid, 0), sid))
        return ranked[:excess]
