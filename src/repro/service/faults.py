"""Deterministic, seeded fault injection for the service stack.

The paper's recovery story rests on linearity: sketches merge exactly, so
any shard, worker, or connection that dies can be rebuilt from its last
checkpoint and replayed without changing the answer.  This module is how
we *prove* that in tests and chaos runs: a :class:`FaultPlan` is a seeded
schedule of failures — worker kills (hard SIGKILL / soft error-and-exit),
connection resets, slow and short replies, checkpoint write errors —
injected at named **fault points** wired through the service code.

Design constraints:

- **Zero cost when off.**  Every hook site calls :func:`fault_point`,
  which is a single global-``None`` check when no plan is installed.  A
  production server never pays more than that.
- **Deterministic.**  Each rule carries its own counter and its own
  ``random.Random`` seeded from ``(plan seed, rule index)``; two runs of
  the same plan against the same request schedule fire identically.  The
  chaos acceptance test relies on this to compare a faulted run against a
  fault-free reference bit for bit.
- **Activation on a stock server.**  ``repro serve --fault-plan plan.json``
  (or the ``REPRO_FAULT_PLAN`` environment variable, pointing at a file or
  holding inline JSON) installs a plan process-wide, so chaos runs drive
  the exact binaries production runs.

Fault points currently wired (see docs/SERVICE.md "Failure modes and
recovery" for the full table):

================== ========================================================
``worker.kill``     before a batch is enqueued to a shard worker
                    (``mode``: ``"hard"`` = SIGKILL, ``"soft"`` = the
                    worker reports an error and exits cleanly)
``server.reset``    after a request is executed, before its reply is
                    written (``mode``: ``"pre"`` drops the request before
                    execution instead)
``server.short``    the reply is truncated mid-frame, then the connection
                    closes — the client sees garbage JSON
``server.slow``     the reply is delayed by ``delay_s`` seconds
``checkpoint.write``the checkpoint write raises ``OSError`` before any
                    bytes reach disk (the previous checkpoint survives)
``site.kill``       fleet driver: before a batch is sent to a site, the
                    site's ``repro serve`` process is SIGKILLed
                    (``match={"site": j}``); the feeder recovers it from
                    checkpoint + journal replay (distributed/fleet.py)
================== ========================================================
"""

from __future__ import annotations

import json
import os
import random
import threading
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "ENV_FAULT_PLAN",
    "FaultAction",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "active_plan",
    "fault_point",
    "install",
    "load_plan",
    "plan_from_spec",
    "uninstall",
]

#: Environment variable holding a plan file path or inline JSON.
ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"

#: Hard bound on injected delays — a typo'd plan must not wedge a server.
MAX_DELAY_S = 30.0


class InjectedFault(RuntimeError):
    """An injected failure (raised at fault sites that fail by exception)."""

    def __init__(self, point: str, detail: str = ""):
        super().__init__(f"injected fault at {point!r}"
                         + (f": {detail}" if detail else ""))
        self.point = point


@dataclass(frozen=True)
class FaultAction:
    """What a fired rule asks the hook site to do."""

    point: str
    mode: str | None = None
    delay_s: float = 0.0
    rule_index: int = 0


@dataclass
class FaultRule:
    """One scheduled failure.

    Parameters
    ----------
    point:
        Fault-point name this rule matches (exact string).
    after:
        Skip the first ``after`` matching hits before considering firing.
    times:
        Fire at most this many times; ``None`` = no limit.
    prob:
        Per-hit firing probability once past ``after`` (evaluated with the
        rule's own seeded RNG, so the schedule is reproducible).
    mode:
        Point-specific variant (e.g. ``"hard"``/``"soft"`` for
        ``worker.kill``, ``"pre"`` for ``server.reset``).
    delay_s:
        Delay for ``server.slow`` (clamped to :data:`MAX_DELAY_S`).
    match:
        Context-equality filters: ``{"shard": 0}`` only hits shard 0,
        ``{"op": "insert"}`` only insert requests.  Keys absent from the
        hook's context never match.
    """

    point: str
    after: int = 0
    times: int | None = 1
    prob: float = 1.0
    mode: str | None = None
    delay_s: float = 0.0
    match: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.point or not isinstance(self.point, str):
            raise ValueError("fault rule needs a non-empty 'point' name")
        if self.after < 0:
            raise ValueError(f"'after' must be >= 0, got {self.after}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"'times' must be >= 1 or null, got {self.times}")
        if not (0.0 <= self.prob <= 1.0):
            raise ValueError(f"'prob' must be in [0, 1], got {self.prob}")
        if self.delay_s < 0:
            raise ValueError(f"'delay_s' must be >= 0, got {self.delay_s}")


class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s plus their firing state.

    Thread-safe: hook sites live on the event loop, in handler threads,
    and in the ingest parent, so hits are counted under one lock.  The
    plan records every fired action in :attr:`fired` (bounded) for test
    assertions and the ``stats`` op.
    """

    _MAX_FIRED_RECORDS = 1000

    def __init__(self, rules: list[FaultRule], seed: int = 0):
        self.rules = list(rules)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._hits = [0] * len(self.rules)
        self._fires = [0] * len(self.rules)
        # One RNG per rule: rules fire independently of each other's
        # schedules and of dict/iteration order.
        self._rngs = [random.Random((self.seed << 16) ^ (0x9E3779B9 + i))
                      for i in range(len(self.rules))]
        self.fired: list[dict] = []

    # ------------------------------------------------------------- decisions
    def decide(self, point: str, ctx: dict) -> FaultAction | None:
        """First matching rule that fires wins; ``None`` = no fault here."""
        with self._lock:
            for i, rule in enumerate(self.rules):  # few rules; hot path is the None check in fault_point
                if rule.point != point:
                    continue
                if any(ctx.get(k) != v for k, v in rule.match.items()):
                    continue
                self._hits[i] += 1
                if self._hits[i] <= rule.after:
                    continue
                if rule.times is not None and self._fires[i] >= rule.times:
                    continue
                if rule.prob < 1.0 and self._rngs[i].random() >= rule.prob:
                    continue
                self._fires[i] += 1
                action = FaultAction(point=point, mode=rule.mode,
                                     delay_s=min(rule.delay_s, MAX_DELAY_S),
                                     rule_index=i)
                if len(self.fired) < self._MAX_FIRED_RECORDS:
                    self.fired.append({"point": point, "rule": i,
                                       "mode": rule.mode, "ctx": dict(ctx)})
                return action
        return None

    def fire_counts(self) -> dict[str, int]:
        """Total fires per point name (for assertions and ``stats``)."""
        out: dict[str, int] = {}
        with self._lock:
            for rule, fires in zip(self.rules, self._fires):
                out[rule.point] = out.get(rule.point, 0) + fires
        return out

    def summary(self) -> dict:
        """JSON-safe snapshot surfaced by the servers' ``stats`` op."""
        with self._lock:
            return {
                "seed": self.seed,
                "rules": len(self.rules),
                "hits": list(self._hits),
                "fires": list(self._fires),
            }


# --------------------------------------------------------------- global hook
_ACTIVE: FaultPlan | None = None


def install(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` process-wide (replacing any previous plan)."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


def uninstall() -> None:
    """Remove the active plan; every fault point becomes a no-op again."""
    global _ACTIVE
    _ACTIVE = None


def active_plan() -> FaultPlan | None:
    """The installed plan, if any."""
    return _ACTIVE


def fault_point(point: str, **ctx) -> FaultAction | None:
    """Evaluate one named fault point.

    This is the zero-cost hook the service code calls: with no plan
    installed it is one global load and a ``None`` check.  With a plan, it
    returns the :class:`FaultAction` to perform (or ``None``).
    """
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.decide(point, ctx)


# ----------------------------------------------------------------- plan I/O
def plan_from_spec(spec: dict) -> FaultPlan:
    """Build a plan from a parsed JSON spec: ``{"seed": 7, "rules": [...]}``."""
    if not isinstance(spec, dict):
        raise ValueError("fault plan must be a JSON object")
    raw_rules = spec.get("rules")
    if not isinstance(raw_rules, list) or not raw_rules:
        raise ValueError("fault plan needs a non-empty 'rules' list")
    rules = []
    known = {"point", "after", "times", "prob", "mode", "delay_s", "match"}
    for i, raw in enumerate(raw_rules):
        if not isinstance(raw, dict):
            raise ValueError(f"rule {i} must be an object")
        unknown = set(raw) - known
        if unknown:
            raise ValueError(f"rule {i} has unknown keys {sorted(unknown)}")
        rules.append(FaultRule(**raw))
    return FaultPlan(rules, seed=int(spec.get("seed", 0)))


def load_plan(source: str) -> FaultPlan:
    """Load a plan from a JSON file path or an inline JSON string.

    This is what ``--fault-plan`` and :data:`ENV_FAULT_PLAN` accept: a
    value starting with ``{`` is parsed as inline JSON, anything else is
    treated as a path.
    """
    text = source.strip()
    if not text.startswith("{"):
        text = Path(source).read_text(encoding="utf-8")
    return plan_from_spec(json.loads(text))


def install_from_env() -> FaultPlan | None:
    """Install a plan from :data:`ENV_FAULT_PLAN` if the variable is set."""
    source = os.environ.get(ENV_FAULT_PLAN)
    if not source:
        return None
    return install(load_plan(source))
