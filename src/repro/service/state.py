"""Bit-exact serialization of live streaming sketch state (checkpoints).

:mod:`repro.core.io` persists *finished* coresets — a summary frozen at
finalize time.  A long-running service additionally needs to persist the
*live* sketches mid-stream so a process can restart and keep ingesting.

The key observation making this cheap: every random choice inside a
:class:`~repro.streaming.streaming_coreset.StreamingCoreset` (grid shift,
hash polynomials, sketch layouts) is derived deterministically from
``(params, seed)``.  A checkpoint therefore stores only

1. the construction arguments (params dict, seed, backend, guess window,
   ``prefer``, ``auto_pilot``), and
2. the *data* the stream wrote: per-instance Storing contents, the pilot
   ℓ₀-sampler buckets, the update counter, and any early-kill verdicts.

Restore rebuilds the driver from the arguments — regenerating identical
randomness — and pours the data back in.  The round trip is bit-identical:
``finalize()`` on the restored driver replays the same decode on the same
sketch contents.  Everything is JSON (Python's ``json`` round-trips the
arbitrary-precision integers our point/cell keys need), so checkpoints are
portable and diffable.
"""

from __future__ import annotations

from collections import Counter
from urllib.parse import quote, unquote

from repro.core.io import atomic_write_json, params_from_dict, params_to_dict
from repro.service.faults import fault_point
from repro.streaming.storing import ExactStoring, SketchStoring
from repro.streaming.streaming_coreset import StreamingCoreset

__all__ = [
    "STATE_FORMAT_VERSION",
    "streaming_state_to_dict",
    "streaming_state_from_dict",
    "build_sharded_state_dict",
    "sharded_state_to_dict",
    "sharded_state_from_dict",
    "tenant_checkpoint_filename",
    "tenant_id_from_filename",
    "write_checkpoint",
]

STATE_FORMAT_VERSION = 1

#: Prefix of per-tenant checkpoint files inside a ``--tenants-dir``.
_TENANT_FILE_PREFIX = "tenant-"
_TENANT_FILE_SUFFIX = ".ckpt.json"


# ------------------------------------------------------------ tenant files
def tenant_checkpoint_filename(stream_id: str) -> str:
    """File name a tenant's eviction checkpoint is stored under.

    The stream id is percent-encoded with no safe characters, so any
    printable id (slashes, dots, unicode) maps to exactly one flat file
    name, and :func:`tenant_id_from_filename` inverts it losslessly.
    """
    return _TENANT_FILE_PREFIX + quote(stream_id, safe="") + _TENANT_FILE_SUFFIX


def tenant_id_from_filename(name: str) -> str | None:
    """Inverse of :func:`tenant_checkpoint_filename`; ``None`` for foreign
    files (a tenants dir may also hold manifests or user checkpoints)."""
    if not (name.startswith(_TENANT_FILE_PREFIX)
            and name.endswith(_TENANT_FILE_SUFFIX)):
        return None
    return unquote(name[len(_TENANT_FILE_PREFIX): -len(_TENANT_FILE_SUFFIX)])


# ------------------------------------------------------------- durability
def write_checkpoint(path, payload: dict) -> None:
    """Crash-safe checkpoint write: every service checkpoint goes through
    here (engine checkpoints, tenant eviction, close-time persistence).

    Durability is :func:`~repro.core.io.atomic_write_json` — temp file in
    the target directory, ``fsync`` of the file *and* of the directory
    entry, then ``os.replace`` — so a reader (or a crash at any byte) sees
    either the previous complete checkpoint or the new complete one, never
    a torn mix.  The ``checkpoint.write`` fault point injects an
    ``OSError`` *before* any bytes are written, modelling a full disk or
    dead volume: the previous checkpoint must survive such a failure
    untouched, which the fault tests assert.
    """
    act = fault_point("checkpoint.write", path=str(path))
    if act is not None:
        raise OSError(f"injected checkpoint write failure: {path}")
    atomic_write_json(path, payload)


# ---------------------------------------------------------------- storing
def _storing_to_dict(store) -> dict:
    """Serialize one Storing structure's *contents* (layout is seed-derived)."""
    if isinstance(store, ExactStoring):
        return {
            "kind": "exact",
            "cells": [[int(c), int(n)] for c, n in store._cells.items()],  # repro-lint: disable=DET104 sorted-by-key snapshot property
            "points": [
                [int(cell), [[int(p), int(n)] for p, n in pts.items()]]  # repro-lint: disable=DET104 sorted-by-(cell,point) snapshot property
                for cell, pts in store._points.items()  # repro-lint: disable=DET104 sorted-by-cell snapshot property
            ],
        }
    if isinstance(store, SketchStoring):
        return {
            "kind": "sketch",
            "cells": [[r, p, b[0], int(b[1]), int(b[2])]
                      for (r, p), b in store._cells.buckets.items()],  # repro-lint: disable=DET104 first-touch bucket order IS the checkpoint byte contract
            "nested": [
                [r, p, [[r2, p2, b[0], int(b[1]), int(b[2])]
                        for (r2, p2), b in sk.buckets.items()]]  # repro-lint: disable=DET104 first-touch bucket order IS the checkpoint byte contract
                for (r, p), sk in store._nested.items()  # repro-lint: disable=DET104 first-touch nested order mirrors sequential-ingest creation order
            ],
        }
    raise TypeError(f"unknown Storing type {type(store)!r}")


def _storing_from_dict(store, data: dict) -> None:
    """Pour serialized contents back into a freshly constructed Storing."""
    if isinstance(store, ExactStoring):
        if data["kind"] != "exact":
            raise ValueError("checkpoint backend mismatch (expected exact)")
        store._cells = Counter({int(c): int(n) for c, n in data["cells"]})
        store._points = {
            int(cell): Counter({int(p): int(n) for p, n in pts})
            for cell, pts in data["points"]
        }
        return
    if isinstance(store, SketchStoring):
        if data["kind"] != "sketch":
            raise ValueError("checkpoint backend mismatch (expected sketch)")
        store._cells.buckets = {
            (r, p): [c, ks, fs] for r, p, c, ks, fs in data["cells"]
        }
        store._nested = {}
        for r, p, buckets in data["nested"]:
            sk = store._nested_at(r, p)
            sk.buckets = {(r2, p2): [c, ks, fs] for r2, p2, c, ks, fs in buckets}
        return
    raise TypeError(f"unknown Storing type {type(store)!r}")


# ------------------------------------------------------------- one driver
def streaming_state_to_dict(sc: StreamingCoreset) -> dict:
    """Full JSON-safe state of one :class:`StreamingCoreset`."""
    instances = []
    for inst in sc.instances:
        instances.append({
            "o": inst.o,
            "dead_reason": inst.dead_reason,
            "store_h": [_storing_to_dict(s) for s in inst.store_h],
            "store_hp": [_storing_to_dict(s) for s in inst.store_hp],
            "store_hhat": [_storing_to_dict(s) for s in inst.store_hhat],
        })
    pilot = None
    if sc._pilot_sampler is not None:
        pilot = [
            [[r, p, b[0], int(b[1]), int(b[2])] for (r, p), b in sk.buckets.items()]  # repro-lint: disable=DET104 first-touch bucket order IS the checkpoint byte contract
            for sk in sc._pilot_sampler._sketches
        ]
    return {
        "format_version": STATE_FORMAT_VERSION,
        "params": params_to_dict(sc.params),
        "seed": sc.seed,
        "backend": sc.backend,
        "prefer": sc.prefer,
        "o_range": list(sc.o_range) if sc.o_range is not None else None,
        "auto_pilot": sc.auto_pilot,
        "num_updates": sc.num_updates,
        "instances": instances,
        "pilot": pilot,
    }


def streaming_state_from_dict(data: dict) -> StreamingCoreset:
    """Rebuild a :class:`StreamingCoreset` from :func:`streaming_state_to_dict`.

    The driver is reconstructed from its arguments (regenerating identical
    grids and hash polynomials), then the sketch contents are restored, so
    the result is indistinguishable from the checkpointed original — it can
    keep ingesting, merge with sibling shards, and finalize.
    """
    if data.get("format_version") != STATE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported streaming-state format {data.get('format_version')!r}"
        )
    params = params_from_dict(data["params"])
    o_range = tuple(data["o_range"]) if data["o_range"] is not None else None
    sc = StreamingCoreset(
        params,
        seed=data["seed"],
        backend=data["backend"],
        o_range=o_range,
        prefer=data["prefer"],
        auto_pilot=data["auto_pilot"],
    )
    got = [inst.o for inst in sc.instances]
    want = [rec["o"] for rec in data["instances"]]
    if got != want:
        raise ValueError(
            f"checkpoint guess schedule {want} does not match rebuilt {got}"
        )
    for inst, rec in zip(sc.instances, data["instances"]):
        inst.dead_reason = rec["dead_reason"]
        for group, payload in (
            (inst.store_h, rec["store_h"]),
            (inst.store_hp, rec["store_hp"]),
            (inst.store_hhat, rec["store_hhat"]),
        ):
            if len(group) != len(payload):
                raise ValueError("checkpoint level count mismatch")
            for store, d in zip(group, payload):
                _storing_from_dict(store, d)
    if data["pilot"] is not None:
        if sc._pilot_sampler is None:
            raise ValueError("checkpoint has pilot state but rebuilt driver has none")
        for sk, buckets in zip(sc._pilot_sampler._sketches, data["pilot"]):
            sk.buckets = {(r, p): [c, ks, fs] for r, p, c, ks, fs in buckets}
    sc.num_updates = int(data["num_updates"])
    return sc


# ----------------------------------------------------------- shard fan-out
def build_sharded_state_dict(shard_dicts: list, *, version: int,
                             events_per_shard: list, num_insertions: int,
                             num_deletions: int) -> dict:
    """Assemble the sharded-checkpoint envelope from per-shard state dicts.

    Shared by the in-process backend (which serializes its own shards) and
    the worker-pool backend (whose shards serialize themselves inside their
    worker processes) — both produce the identical, interchangeable format.
    """
    return {
        "format_version": STATE_FORMAT_VERSION,
        "num_shards": len(shard_dicts),
        "version": int(version),
        "events_per_shard": [int(x) for x in events_per_shard],
        "num_insertions": int(num_insertions),
        "num_deletions": int(num_deletions),
        "shards": list(shard_dicts),
    }


def sharded_state_to_dict(ingest) -> dict:
    """JSON-safe state of a :class:`~repro.service.shards.ShardedIngest`."""
    return build_sharded_state_dict(
        [streaming_state_to_dict(s) for s in ingest.shards],
        version=ingest.version,
        events_per_shard=ingest.events_per_shard,
        num_insertions=ingest.num_insertions,
        num_deletions=ingest.num_deletions,
    )


def sharded_state_from_dict(data: dict):
    """Rebuild a :class:`~repro.service.shards.ShardedIngest` (inverse of
    :func:`sharded_state_to_dict`)."""
    from repro.service.shards import ShardedIngest

    if data.get("format_version") != STATE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported sharded-state format {data.get('format_version')!r}"
        )
    shards = [streaming_state_from_dict(rec) for rec in data["shards"]]
    if len(shards) != int(data["num_shards"]):
        raise ValueError("checkpoint shard count mismatch")
    ingest = ShardedIngest.from_shards(shards)
    ingest.version = int(data["version"])
    ingest.events_per_shard = [int(x) for x in data["events_per_shard"]]
    ingest.num_insertions = int(data["num_insertions"])
    ingest.num_deletions = int(data["num_deletions"])
    return ingest
