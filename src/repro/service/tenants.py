"""Multi-tenant registry: one named stream per sketch, evictable to disk.

The paper's summary is a small linear sketch, which is what lets one server
host *many* independent logical streams: each tenant is a full
:class:`~repro.service.engine.ClusteringService` (sharded ingest +
version-keyed query cache), created lazily the first time its ``stream_id``
is touched.  Because a tenant's entire state checkpoints to a small JSON
file and restores bit-identically (PR 1's atomic checkpoint format), cold
tenants do not have to stay resident: the registry keeps at most
``max_live_tenants`` sketches in memory and transparently evicts the
least-recently-used ones to ``tenants_dir``, restoring them on their next
touch.  A tenant that was evicted and restored answers queries exactly as
one that never left memory — the eviction tests assert bit-identity.

Concurrency model (all blocking; the asyncio front end calls in via worker
threads):

- A **lease** pins a tenant for the duration of one operation.  Pinned
  tenants are never evicted, so an in-flight ingest or query can never
  observe its service being closed under it.
- Within a tenant, the service's own lock serializes mutation — per-tenant
  serialization, no global ingest lock.  Queries snapshot the merged state
  under that lock and solve outside it, so reads do not block ingest.
- The registry's global lock protects only the record map and the
  recency clock; it is never held across sketch work, so tenants do not
  contend with each other.

Per-tenant randomness is derived from the base config's seed and the
stream id (``derive_seed(seed, "tenant:<id>")``), so distinct tenants get
independent hash functions while every tenant remains exactly reproducible
— :meth:`TenantRegistry.tenant_config` exposes the derived config, and the
isolation tests rebuild reference single-tenant services from it.  The
:data:`~repro.service.protocol.DEFAULT_STREAM_ID` tenant keeps the base
seed unchanged, so a multi-tenant server addressed by a pre-tenant client
behaves bit-identically to the old single-tenant server.
"""

from __future__ import annotations

import dataclasses
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.io import read_json
from repro.service.engine import ClusteringService, ServiceConfig
from repro.service.eviction import EvictionPolicy, LRUEvictionPolicy
from repro.service.protocol import DEFAULT_STREAM_ID
from repro.service.state import tenant_checkpoint_filename, tenant_id_from_filename
from repro.service.supervisor import CircuitBreaker
from repro.utils.rng import derive_seed

__all__ = ["QuotaExceeded", "TenantDegraded", "TenantQuota", "TenantRegistry"]


class QuotaExceeded(RuntimeError):
    """A tenant operation would exceed its configured quota.

    Mapped to an ``{"ok": false, "error": "quota exceeded: ..."}`` envelope
    at the wire layer; the offending batch is rejected atomically (zero
    events applied, no version bump).
    """

    def __init__(self, stream_id: str, message: str):
        super().__init__(message)
        self.stream_id = stream_id


class TenantDegraded(RuntimeError):
    """A tenant's circuit breaker is open: its recent operations kept
    failing, so further requests are rejected fast (without touching the
    sketch) until the cooldown passes.  Mapped to the structured
    ``degraded`` error envelope at the wire layer, which carries
    ``retry_after_s`` so clients back off instead of hammering.
    """

    def __init__(self, stream_id: str, retry_after_s: float):
        super().__init__(
            f"stream {stream_id!r} is degraded (circuit open); "
            f"retry in {retry_after_s:.2f}s")
        self.stream_id = stream_id
        self.retry_after_s = float(retry_after_s)


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant ingest limits; ``None`` disables a limit.

    ``max_bytes`` is checked against the nominal encoded volume (8 bytes
    per coordinate per event) that :class:`ClusteringService` accumulates
    in ``bytes_ingested`` — persisted across eviction, so a quota cannot be
    reset by bouncing a tenant through disk.
    """

    max_events: int | None = None
    max_bytes: int | None = None


class _TenantRecord:
    """Registry-internal bookkeeping for one stream id."""

    __slots__ = ("stream_id", "service", "lock", "pins", "evictions",
                 "restores", "last_known")

    def __init__(self, stream_id: str):
        self.stream_id = stream_id
        self.service: ClusteringService | None = None
        self.lock = threading.Lock()  # guards service presence transitions
        self.pins = 0                 # in-flight leases; >0 blocks eviction
        self.evictions = 0
        self.restores = 0
        self.last_known: dict = {}    # counters snapshot from the last evict


class TenantRegistry:
    """Lazily-created, LRU-evictable :class:`ClusteringService` per stream.

    Parameters
    ----------
    config:
        Base :class:`ServiceConfig`; every tenant shares its problem shape
        and gets a seed derived from ``(config.seed, stream_id)``.
    tenants_dir:
        Directory for eviction checkpoints (and for close-time persistence).
        ``None`` disables eviction — tenants then live until ``close()``.
    max_live_tenants:
        In-memory sketch budget; requires ``tenants_dir``.  ``None`` means
        unbounded.
    quota:
        Optional :class:`TenantQuota` applied to every tenant.
    policy:
        Victim-selection policy; defaults to :class:`LRUEvictionPolicy`.
    breaker_threshold / breaker_cooldown_s:
        Per-tenant circuit breaker: after ``breaker_threshold`` consecutive
        failed operations a tenant is *degraded* — its requests are
        rejected fast with :class:`TenantDegraded` for ``breaker_cooldown_s``
        seconds, then a single probe request is let through (half-open).
        Failures are counted per tenant, so one tenant's broken workload
        (bad disk for its checkpoints, say) cannot brown-out the rest.
    """

    def __init__(self, config: ServiceConfig, tenants_dir=None,
                 max_live_tenants: int | None = None,
                 quota: TenantQuota | None = None,
                 policy: EvictionPolicy | None = None,
                 breaker_threshold: int = 3,
                 breaker_cooldown_s: float = 5.0):
        if max_live_tenants is not None:
            if max_live_tenants < 1:
                raise ValueError(
                    f"max_live_tenants must be >= 1, got {max_live_tenants}")
            if tenants_dir is None:
                raise ValueError("max_live_tenants requires a tenants_dir "
                                 "to evict checkpoints into")
        self.config = config
        self.tenants_dir = Path(tenants_dir) if tenants_dir is not None else None
        if self.tenants_dir is not None:
            self.tenants_dir.mkdir(parents=True, exist_ok=True)
        self.max_live_tenants = max_live_tenants
        self.quota = quota
        self._policy = policy if policy is not None else LRUEvictionPolicy()
        self._records: dict[str, _TenantRecord] = {}
        #: Live-tenant index: exactly the records whose ``service`` is
        #: resident.  Kept in lockstep with every load/evict/close
        #: transition so the eviction victim scan and ``live_count`` are
        #: O(live tenants), not O(known tenants) — with thousands of cold
        #: tenants on disk, scanning ``_records`` per lease would dominate.
        self._live: dict[str, _TenantRecord] = {}
        self._lock = threading.RLock()
        self._closed = False
        self._breaker_threshold = int(breaker_threshold)
        self._breaker_cooldown_s = float(breaker_cooldown_s)
        self._breakers: dict[str, CircuitBreaker] = {}
        #: Bounded log of eviction checkpoints that failed to write (the
        #: victim stays live; surfaced via ``tenants``/``stats``).
        self.eviction_failures: list[dict] = []

    # ------------------------------------------------------------- configs
    def tenant_config(self, stream_id: str) -> ServiceConfig:
        """The exact config a tenant's service is built from — seed derived
        per stream (default tenant keeps the base seed for pre-tenant
        compatibility).  A single-tenant :class:`ClusteringService` built
        from this config and fed the same events answers bit-identically to
        the tenant, which is what the isolation tests assert."""
        if stream_id == DEFAULT_STREAM_ID:
            return self.config
        return dataclasses.replace(
            self.config, seed=derive_seed(self.config.seed, f"tenant:{stream_id}"))

    def _tenant_path(self, stream_id: str) -> Path:
        return self.tenants_dir / tenant_checkpoint_filename(stream_id)

    def _breaker(self, stream_id: str) -> CircuitBreaker:
        """The tenant's circuit breaker (created on first touch).
        Caller holds the registry lock."""
        br = self._breakers.get(stream_id)
        if br is None:
            br = self._breakers[stream_id] = CircuitBreaker(
                failure_threshold=self._breaker_threshold,
                cooldown_s=self._breaker_cooldown_s)
        return br

    # -------------------------------------------------------------- leases
    @contextmanager
    def _lease(self, stream_id: str):
        """Pin a tenant for one operation, loading (create or restore) it
        if cold.  Eviction happens on the way in, so the live count never
        exceeds the budget by more than the concurrently pinned tenants.

        The tenant's circuit breaker brackets the lease: an open circuit
        rejects the operation before any sketch work, and the operation's
        outcome (exception vs. clean return) feeds the breaker.  Quota
        rejections and the degraded rejection itself are *not* failures —
        they are the service working as intended."""
        with self._lock:
            if self._closed:
                raise RuntimeError("tenant registry is closed")
            rec = self._records.get(stream_id)
            if rec is None:
                rec = self._records[stream_id] = _TenantRecord(stream_id)
            rec.pins += 1
            self._policy.touch(stream_id)
            breaker = self._breaker(stream_id)
        try:
            if not breaker.allow():
                raise TenantDegraded(stream_id, breaker.retry_after_s())
            try:
                if rec.service is None:
                    self._make_room(exclude=stream_id)
                with rec.lock:
                    if rec.service is None:
                        self._load_locked(rec)
                yield rec
            except (QuotaExceeded, TenantDegraded):
                raise
            except Exception:
                breaker.record_failure()
                raise
            else:
                breaker.record_success()
        finally:
            with self._lock:
                rec.pins -= 1

    def _load_locked(self, rec: _TenantRecord) -> None:
        """Create a fresh tenant, or restore its eviction checkpoint.
        Caller holds ``rec.lock``."""
        path = (self._tenant_path(rec.stream_id)
                if self.tenants_dir is not None else None)
        if path is not None and path.exists():
            payload = read_json(path)
            meta = payload.get("tenant") or {}
            stamped = meta.get("stream_id")
            if stamped is not None and stamped != rec.stream_id:
                raise ValueError(
                    f"tenant checkpoint {path} is stamped for stream "
                    f"{stamped!r}, not {rec.stream_id!r}")
            rec.service = ClusteringService.from_payload(payload)
            rec.evictions = max(rec.evictions, int(meta.get("evictions", 0)))
            rec.restores += 1
        else:
            rec.service = ClusteringService(self.tenant_config(rec.stream_id))
        with self._lock:
            self._live[rec.stream_id] = rec

    # ------------------------------------------------------------- eviction
    def _make_room(self, exclude: str) -> None:
        """Evict cold tenants until one more can be loaded within budget.
        Pinned tenants are skipped; if everything is pinned the budget is
        allowed to overshoot and heals on the next lease."""
        if self.max_live_tenants is None:
            return
        failed: set[str] = set()  # victims whose checkpoint write failed this pass
        while True:
            with self._lock:
                # O(live): only the live index is scanned, never the full
                # record map — with 1000 known tenants and a budget of 4,
                # this loop touches 4 records, not 1000.
                excess = len(self._live) - self.max_live_tenants + 1
                evictable = [sid for sid, r in self._live.items()
                             if r.pins == 0 and sid != exclude
                             and sid not in failed]
                victims = self._policy.victims(evictable, excess)
                if not victims:
                    return
                vrec = self._records[victims[0]]
                vrec.pins += 1  # reserve: no competing evictor, no surprise close
            try:
                with vrec.lock:
                    with self._lock:
                        busy = vrec.pins > 1
                    if not busy and vrec.service is not None:
                        try:
                            self._evict_locked(vrec)
                        except OSError as exc:
                            # Disk said no (full volume, injected fault).
                            # The victim keeps its in-memory state — losing
                            # it would lose events — and the budget is
                            # allowed to overshoot; the next lease retries.
                            failed.add(vrec.stream_id)
                            with self._lock:
                                if len(self.eviction_failures) < 100:
                                    self.eviction_failures.append({
                                        "stream_id": vrec.stream_id,
                                        "error": str(exc),
                                    })
            finally:
                with self._lock:
                    vrec.pins -= 1

    def _evict_locked(self, rec: _TenantRecord) -> None:
        """Checkpoint one live tenant to disk and release its memory.
        Caller holds ``rec.lock``; the tenant is not pinned by anyone else."""
        service = rec.service
        info = service.checkpoint(
            self._tenant_path(rec.stream_id),
            extra={"tenant": {"stream_id": rec.stream_id,
                              "evictions": rec.evictions + 1}},
        )
        rec.last_known = {
            "events": info["events"],
            "version": info["version"],
            "bytes_ingested": service.bytes_ingested,
        }
        service.close()
        rec.service = None
        rec.evictions += 1
        with self._lock:
            # Recency bookkeeping for a cold tenant is dead weight; its
            # next touch re-registers it.
            self._live.pop(rec.stream_id, None)
            self._policy.forget(rec.stream_id)

    def evict(self, stream_id: str) -> bool:
        """Explicitly checkpoint one tenant to disk and drop it from memory
        (tests and operators; the LRU path calls the same internals).
        Returns False if the tenant is cold, unknown, or pinned."""
        if self.tenants_dir is None:
            raise RuntimeError("eviction requires a tenants_dir")
        with self._lock:
            rec = self._records.get(stream_id)
            if rec is None or rec.service is None or rec.pins > 0:
                return False
            rec.pins += 1
        try:
            with rec.lock:
                with self._lock:
                    busy = rec.pins > 1
                if busy or rec.service is None:
                    return False
                self._evict_locked(rec)
                return True
        finally:
            with self._lock:
                rec.pins -= 1

    # ---------------------------------------------------------------- quota
    def _check_quota(self, rec: _TenantRecord, n_events: int) -> None:
        if self.quota is None:
            return
        service = rec.service
        q = self.quota
        if (q.max_events is not None
                and service.ingest.num_events + n_events > q.max_events):
            raise QuotaExceeded(
                rec.stream_id,
                f"stream {rec.stream_id!r}: {n_events} events would exceed "
                f"the {q.max_events}-event quota "
                f"({service.ingest.num_events} already ingested)")
        n_bytes = n_events * 8 * self.config.d
        if (q.max_bytes is not None
                and service.bytes_ingested + n_bytes > q.max_bytes):
            raise QuotaExceeded(
                rec.stream_id,
                f"stream {rec.stream_id!r}: {n_bytes} bytes would exceed "
                f"the {q.max_bytes}-byte quota "
                f"({service.bytes_ingested} already ingested)")

    # ------------------------------------------------------------- operations
    def insert(self, stream_id: str, points) -> dict:
        """Insert rows of an (n, d) int array into one tenant's stream."""
        arr = np.asarray(points)
        with self._lease(stream_id) as rec:
            self._check_quota(rec, len(arr))
            applied = rec.service.insert(arr)
            return {"applied": applied, "version": rec.service.ingest.version}

    def delete(self, stream_id: str, points) -> dict:
        """Delete rows of an (n, d) int array from one tenant's stream."""
        arr = np.asarray(points)
        with self._lease(stream_id) as rec:
            self._check_quota(rec, len(arr))
            applied = rec.service.delete(arr)
            return {"applied": applied, "version": rec.service.ingest.version}

    def apply_events(self, stream_id: str, events) -> dict:
        """Apply a mixed (point, ±1) batch to one tenant's stream."""
        events = list(events)
        with self._lease(stream_id) as rec:
            self._check_quota(rec, len(events))
            applied = rec.service.apply_events(events)
            return {"applied": applied, "version": rec.service.ingest.version}

    def query(self, stream_id: str, capacity_slack: float | None = None):
        """Solve (or fetch the memoized) clustering of one tenant's stream;
        returns ``(QueryResult, cache_hit)``.  The solve runs outside the
        tenant's ingest lock, so concurrent ingest proceeds."""
        with self._lease(stream_id) as rec:
            return rec.service.query(capacity_slack=capacity_slack)

    def stats(self, stream_id: str) -> dict:
        """One tenant's service counters plus registry-level metadata
        (including its circuit-breaker snapshot and any eviction-checkpoint
        failures, so a degraded tenant is diagnosable over the wire)."""
        with self._lease(stream_id) as rec:
            stats = rec.service.stats()
            with self._lock:
                breaker = self._breaker(rec.stream_id).snapshot()
                failures = [f for f in self.eviction_failures
                            if f["stream_id"] == rec.stream_id]
            stats.update({
                "stream_id": rec.stream_id,
                "seed": rec.service.config.seed,
                "evictions": rec.evictions,
                "restores": rec.restores,
                "breaker": breaker,
                "eviction_failures": failures,
            })
            return stats

    def pull_state(self, stream_id: str) -> dict:
        """One tenant's full serialized sketch state (wire ``pull_state``).

        Returns the checkpoint envelope as a dict — exactly what
        :meth:`checkpoint` would write to disk, stamped with the same tenant
        metadata — so a coordinator that pulls it can feed it straight to
        the restore path or merge it by linearity
        (:mod:`repro.distributed.fleet`)."""
        with self._lease(stream_id) as rec:
            return rec.service.state_payload(
                extra={"tenant": {"stream_id": rec.stream_id,
                                  "evictions": rec.evictions}})

    def site_stats(self, stream_id: str) -> dict:
        """One tenant's fixed-vocabulary site counters (wire ``site_stats``).

        Unlike :meth:`stats`, the reply is a small constant set of numeric
        fields, so the fleet's bit accounting can charge a known constant
        per poll (see ``repro.distributed.fleet.SITE_STATS_FIELDS``)."""
        with self._lease(stream_id) as rec:
            return dict(rec.service.site_stats(), stream_id=rec.stream_id)

    def checkpoint(self, stream_id: str, path) -> dict:
        """Checkpoint one tenant to an explicit path (wire ``checkpoint``)."""
        with self._lease(stream_id) as rec:
            return rec.service.checkpoint(
                path, extra={"tenant": {"stream_id": rec.stream_id,
                                        "evictions": rec.evictions}})

    def restore(self, stream_id: str, path) -> dict:
        """Replace one tenant's state from an explicit path (wire
        ``restore``)."""
        with self._lease(stream_id) as rec:
            rec.service.restore_in_place(path)
            return {"version": rec.service.ingest.version,
                    "events": rec.service.ingest.num_events}

    # ------------------------------------------------------------- overview
    def live_count(self) -> int:
        """Number of tenants currently resident in memory (O(1): the live
        index is maintained on every load/evict transition)."""
        with self._lock:
            return len(self._live)

    def overview(self, live_only: bool = False) -> list[dict]:
        """One summary row per known tenant — live ones from their in-memory
        counters, evicted ones from the registry's last-known snapshot, and
        on-disk tenants this process has never touched as bare stubs.  Never
        loads a cold tenant.

        ``live_only=True`` reads just the live index — O(live tenants),
        regardless of how many cold tenants are known or on disk — which is
        what dashboards polling a server with thousands of cold tenants
        should ask for (wire: ``{"op": "tenants", "live_only": true}``).
        """
        rows: dict[str, dict] = {}
        with self._lock:
            source = self._live if live_only else self._records
            for sid, rec in sorted(source.items()):
                service = rec.service
                if service is not None:
                    row = {
                        "stream_id": sid,
                        "live": True,
                        "events": service.ingest.num_events,
                        "version": service.ingest.version,
                        "bytes_ingested": service.bytes_ingested,
                    }
                else:
                    row = {"stream_id": sid, "live": False, **rec.last_known}
                row["evictions"] = rec.evictions
                row["restores"] = rec.restores
                breaker = self._breakers.get(sid)
                if breaker is not None:
                    snap = breaker.snapshot()
                    row["degraded"] = snap["state"] != "closed"
                    row["breaker"] = snap
                rows[sid] = row
        if self.tenants_dir is not None and not live_only:
            for path in sorted(self.tenants_dir.iterdir()):
                sid = tenant_id_from_filename(path.name)
                if sid is not None and sid not in rows:
                    rows[sid] = {"stream_id": sid, "live": False}
        return [rows[sid] for sid in sorted(rows)]

    # -------------------------------------------------------------- teardown
    def close(self, persist: bool | None = None) -> None:
        """Shut every live tenant down (idempotent).  With ``persist`` (the
        default whenever a ``tenants_dir`` is configured) each live tenant
        is checkpointed first, so a restarted registry restores the full
        tenant population on touch."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            records = list(self._records.values())
        if persist is None:
            persist = self.tenants_dir is not None
        for rec in records:
            with rec.lock:
                if rec.service is None:
                    continue
                if persist:
                    self._evict_locked(rec)
                else:
                    rec.service.close()
                    rec.service = None
                    with self._lock:
                        self._live.pop(rec.stream_id, None)

    def __enter__(self) -> "TenantRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
