"""Sharded ingest: one logical dynamic stream over N parallel sketches.

Every shard is a full :class:`~repro.streaming.streaming_coreset.StreamingCoreset`
built from the *same* ``(params, seed)`` — hence identical grid shift, hash
polynomials, and sketch layouts.  Because all of that state is a linear
sketch, the sum of the shards equals the state of a single driver that saw
the whole stream, and
:func:`~repro.streaming.merge.merge_streaming_states` fan-in is *exact*,
not approximate (Section 4.3's streaming↔distributed bridge).

Routing is by point key, so an insertion and its later deletion meet in the
same shard and per-shard live sets stay balanced.  Linearity means this is
an optimization, not a requirement: a deletion applied to a *different*
shard than its insertion leaves that shard with a negative count that
cancels at merge time (the cross-shard-deletion tests exercise exactly
this), which is what makes at-least-once routing layers safe to put in
front of the service.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.core.params import CoresetParams
from repro.grid.grids import HierarchicalGrids
from repro.streaming.merge import merge_streaming_states
from repro.streaming.stream import StreamEvent
from repro.streaming.streaming_coreset import StreamingCoreset
from repro.utils.rng import derive_seed

__all__ = ["ShardedIngest", "normalize_events"]

#: Fibonacci-style multiplicative mixer: point keys are mixed-radix encodings
#: whose low bits carry only the last coordinate, so reducing the raw key
#: modulo ``num_shards`` would route entire coordinate slices to one shard.
_MIX = 0x9E3779B97F4A7C15
_MIX_MASK = (1 << 64) - 1


def _mix(key: int) -> int:
    """64-bit multiplicative hash spreading structured point keys."""
    h = (int(key) * _MIX) & _MIX_MASK
    h ^= h >> 29
    return h


def normalize_events(events) -> list[tuple[tuple, int]]:
    """Normalize StreamEvents / (point, sign) pairs to (int tuple, int) pairs.

    Both ingest backends funnel through this so points are hashable,
    cheaply picklable (for worker queues), and uniform regardless of
    whether the caller handed over tuples, lists, or ndarrays.
    """
    norm: list[tuple[tuple, int]] = []
    for ev in events:
        point, sign = ((ev.point, ev.sign) if isinstance(ev, StreamEvent)
                       else (ev[0], ev[1]))
        norm.append((tuple(int(c) for c in point), int(sign)))
    return norm


class ShardedIngest:
    """Partition one logical dynamic stream across N sketch shards.

    Parameters
    ----------
    params:
        Shared :class:`CoresetParams` of every shard.
    num_shards:
        Number of independent sketches; each sees ~1/N of the events.
    seed:
        Shared by *all* shards — this is what makes merging exact.
    backend, o_range, auto_pilot:
        Forwarded to every :class:`StreamingCoreset`.

    Notes
    -----
    Every applied batch bumps :attr:`version`; the query engine keys its
    memoization on it, so "has anything changed since the last query?" is a
    single integer comparison.
    """

    def __init__(
        self,
        params: CoresetParams,
        num_shards: int = 4,
        seed: int = 0,
        backend: str = "exact",
        o_range: tuple[float, float] | None = None,
        auto_pilot: bool | None = None,
    ):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        # One grid object shared by all shards (identical by construction
        # anyway, since the shift is derived from the shared seed).
        grids = HierarchicalGrids(params.delta, params.d,
                                  seed=derive_seed(seed, "grids"))
        self.shards = [
            StreamingCoreset(params, seed=seed, backend=backend,
                             o_range=o_range, grids=grids, auto_pilot=auto_pilot)
            for _ in range(num_shards)
        ]
        self._init_counters()

    def _init_counters(self) -> None:
        self.version = 0
        self.events_per_shard = [0] * len(self.shards)
        self.num_insertions = 0
        self.num_deletions = 0

    @classmethod
    def from_shards(cls, shards: list[StreamingCoreset]) -> "ShardedIngest":
        """Adopt restored shards (used by checkpoint restore)."""
        if not shards:
            raise ValueError("need at least one shard")
        ingest = cls.__new__(cls)
        ingest.shards = list(shards)
        ingest._init_counters()
        return ingest

    # ---------------------------------------------------------------- meta
    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return len(self.shards)

    @property
    def params(self) -> CoresetParams:
        """The shared problem parameters."""
        return self.shards[0].params

    @property
    def num_events(self) -> int:
        """Total events applied across all shards."""
        return sum(self.events_per_shard)

    def shard_of(self, point) -> int:
        """Deterministic shard index of a point (same for insert/delete)."""
        key = self.shards[0].grids.point_codec.encode_one(point)
        return _mix(key) % len(self.shards)

    # -------------------------------------------------------------- ingest
    def apply(self, point, sign: int) -> int:
        """Apply one update to its shard; returns the shard index.

        Bumps :attr:`version` — prefer :meth:`apply_batch` for bulk traffic
        so the version moves once per batch.
        """
        idx = self._apply_one(point, sign)
        self.version += 1
        return idx

    def apply_batch(self, events) -> int:
        """Apply a batch of events (StreamEvent or (point, sign) pairs).

        Events are grouped per shard and fed through
        :meth:`StreamingCoreset.process` so hash values are computed in
        vectorized sweeps; within each shard the original order is kept
        (irrelevant for the linear sketches, cheap to preserve).  Returns
        the number of events applied; bumps :attr:`version` once.
        """
        groups: dict[int, list] = {}
        count = 0
        # Grouping validates every point (shard_of encodes it) before any
        # shard is touched, so a malformed event rejects the whole batch
        # instead of leaving a partially applied, version-less state.
        for point, sign in normalize_events(events):
            idx = self.shard_of(point)
            groups.setdefault(idx, []).append((point, sign))
            count += 1
        for idx, batch in groups.items():
            self.shards[idx].process(batch)
            self.events_per_shard[idx] += len(batch)
            for _, sign in batch:
                self._count_sign(sign)
        if count:
            self.version += 1
        return count

    def insert_points(self, points) -> int:
        """Insert each row of an (n, d) array; one version bump."""
        rows = np.asarray(points, dtype=np.int64)
        return self.apply_batch((tuple(int(c) for c in row), 1) for row in rows)

    def delete_points(self, points) -> int:
        """Delete each row of an (n, d) array; one version bump."""
        rows = np.asarray(points, dtype=np.int64)
        return self.apply_batch((tuple(int(c) for c in row), -1) for row in rows)

    def _apply_one(self, point, sign: int) -> int:
        point = tuple(int(c) for c in point)
        idx = self.shard_of(point)
        self.shards[idx].update(point, sign)
        self.events_per_shard[idx] += 1
        self._count_sign(sign)
        return idx

    def _count_sign(self, sign: int) -> None:
        if sign > 0:
            self.num_insertions += 1
        else:
            self.num_deletions += 1

    # --------------------------------------------------------------- fan-in
    def merged_state(self) -> StreamingCoreset:
        """A fresh driver equal to one that saw the entire stream.

        Deep-copies shard 0 (merging is in-place and must not disturb live
        ingest state) and folds the remaining shards in; they are only read.
        """
        merged = copy.deepcopy(self.shards[0])
        for shard in self.shards[1:]:
            merge_streaming_states(merged, shard)
        return merged

    def space_bits(self) -> int:
        """Total charged sketch bits across all shards."""
        return sum(s.space_bits() for s in self.shards)

    # ---------------------------------------------------------- persistence
    def to_state_dict(self) -> dict:
        """Checkpoint payload (same schema as the worker-pool backend)."""
        from repro.service.state import sharded_state_to_dict

        return sharded_state_to_dict(self)

    def close(self) -> None:
        """No-op: in-process shards hold no external resources.  Exists so
        the engine can close any ingest backend uniformly."""
