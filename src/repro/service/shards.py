"""Sharded ingest: one logical dynamic stream over N parallel sketches.

Every shard is a full :class:`~repro.streaming.streaming_coreset.StreamingCoreset`
built from the *same* ``(params, seed)`` — hence identical grid shift, hash
polynomials, and sketch layouts.  Because all of that state is a linear
sketch, the sum of the shards equals the state of a single driver that saw
the whole stream, and
:func:`~repro.streaming.merge.merge_streaming_states` fan-in is *exact*,
not approximate (Section 4.3's streaming↔distributed bridge).

Routing is by point key, so an insertion and its later deletion meet in the
same shard and per-shard live sets stay balanced.  Linearity means this is
an optimization, not a requirement: a deletion applied to a *different*
shard than its insertion leaves that shard with a negative count that
cancels at merge time (the cross-shard-deletion tests exercise exactly
this), which is what makes at-least-once routing layers safe to put in
front of the service.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.core.params import CoresetParams
from repro.grid.grids import HierarchicalGrids
from repro.streaming.merge import merge_streaming_states
from repro.streaming.stream import events_to_arrays
from repro.streaming.streaming_coreset import StreamingCoreset
from repro.utils.rng import derive_seed
from repro.utils.validation import check_stream_points, coerce_integral_rows

__all__ = ["ShardedIngest", "normalize_events"]

#: Fibonacci-style multiplicative mixer: point keys are mixed-radix encodings
#: whose low bits carry only the last coordinate, so reducing the raw key
#: modulo ``num_shards`` would route entire coordinate slices to one shard.
_MIX = 0x9E3779B97F4A7C15
_MIX_MASK = (1 << 64) - 1


def _mix(key: int) -> int:
    """64-bit multiplicative hash spreading structured point keys."""
    h = (int(key) * _MIX) & _MIX_MASK
    h ^= h >> 29
    return h


def _mix_array(keys: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_mix` (uint64 wrap-around multiply), bigint-safe."""
    if keys.dtype == object:
        return np.array([_mix(k) for k in keys.tolist()],  # scalar-ok: bigints
                        dtype=np.uint64)
    h = keys.astype(np.uint64) * np.uint64(_MIX)
    h ^= h >> np.uint64(29)
    return h


def normalize_events(events) -> list[tuple[tuple, int]]:
    """Normalize StreamEvents / (point, sign) pairs to (int tuple, int) pairs.

    Points are made hashable, cheaply picklable (for worker queues), and
    uniform regardless of whether the caller handed over tuples, lists, or
    ndarrays.  Funnels through :func:`events_to_arrays`, so non-integral
    coordinates raise ``ValueError`` instead of being truncated.
    """
    rows, signs = events_to_arrays(events)
    return [(tuple(r), int(s))
            for r, s in zip(rows.tolist(), signs.tolist())]  # scalar-ok: legacy tuple view, test-only helper


class ShardedIngest:
    """Partition one logical dynamic stream across N sketch shards.

    Parameters
    ----------
    params:
        Shared :class:`CoresetParams` of every shard.
    num_shards:
        Number of independent sketches; each sees ~1/N of the events.
    seed:
        Shared by *all* shards — this is what makes merging exact.
    backend, o_range, auto_pilot:
        Forwarded to every :class:`StreamingCoreset`.

    Notes
    -----
    Every applied batch bumps :attr:`version`; the query engine keys its
    memoization on it, so "has anything changed since the last query?" is a
    single integer comparison.
    """

    def __init__(
        self,
        params: CoresetParams,
        num_shards: int = 4,
        seed: int = 0,
        backend: str = "exact",
        o_range: tuple[float, float] | None = None,
        auto_pilot: bool | None = None,
    ):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        # One grid object shared by all shards (identical by construction
        # anyway, since the shift is derived from the shared seed).
        grids = HierarchicalGrids(params.delta, params.d,
                                  seed=derive_seed(seed, "grids"))
        self.shards = [
            StreamingCoreset(params, seed=seed, backend=backend,
                             o_range=o_range, grids=grids, auto_pilot=auto_pilot)
            for _ in range(num_shards)
        ]
        self._init_counters()

    def _init_counters(self) -> None:
        self.version = 0
        self.events_per_shard = [0] * len(self.shards)
        self.num_insertions = 0
        self.num_deletions = 0

    @classmethod
    def from_shards(cls, shards: list[StreamingCoreset]) -> "ShardedIngest":
        """Adopt restored shards (used by checkpoint restore)."""
        if not shards:
            raise ValueError("need at least one shard")
        ingest = cls.__new__(cls)
        ingest.shards = list(shards)
        ingest._init_counters()
        return ingest

    # ---------------------------------------------------------------- meta
    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return len(self.shards)

    @property
    def params(self) -> CoresetParams:
        """The shared problem parameters."""
        return self.shards[0].params

    @property
    def num_events(self) -> int:
        """Total events applied across all shards."""
        return sum(self.events_per_shard)

    def shard_of(self, point) -> int:
        """Deterministic shard index of a point (same for insert/delete)."""
        key = self.shards[0].grids.point_codec.encode_one(point)
        return _mix(key) % len(self.shards)

    # -------------------------------------------------------------- ingest
    def apply(self, point, sign: int) -> int:
        """Apply one update to its shard; returns the shard index.

        Bumps :attr:`version` — prefer :meth:`apply_batch` for bulk traffic
        so the version moves once per batch.
        """
        idx = self._apply_one(point, sign)
        self.version += 1
        return idx

    def apply_batch(self, events) -> int:
        """Apply a batch of events (StreamEvent or (point, sign) pairs).

        The batch is normalized to coordinate/sign arrays and routed by
        :meth:`apply_arrays` — one vectorized encode + mix instead of a
        per-event ``shard_of``.  Returns the number of events applied;
        bumps :attr:`version` once.
        """
        rows, signs = events_to_arrays(events, d=self.params.d)
        return self.apply_arrays(rows, signs)

    def apply_arrays(self, rows, signs) -> int:
        """Vectorized ingest: (n, d) coordinate rows + sign vector.

        The whole batch is validated and routed *before* any shard is
        touched, so a malformed event rejects the batch instead of leaving
        a partially applied, version-less state.  Within each shard the
        original event order is kept (irrelevant for the linear sketches,
        cheap to preserve).
        """
        rows = check_stream_points(coerce_integral_rows(rows), self.params.delta)
        signs = np.asarray(signs, dtype=np.int64)
        n = len(signs)
        if n == 0:
            return 0
        keys = self.shards[0].grids.point_codec.encode(rows)
        idx = (_mix_array(keys) % np.uint64(len(self.shards))).astype(np.int64)
        for s in range(len(self.shards)):  # scalar-ok: per shard, batched inside
            mask = idx == s
            cnt = int(mask.sum())
            if not cnt:
                continue
            self.shards[s].update_arrays(rows[mask], signs[mask])
            self.events_per_shard[s] += cnt
        ins = int((signs > 0).sum())
        self.num_insertions += ins
        self.num_deletions += n - ins
        self.version += 1
        return n

    def insert_points(self, points) -> int:
        """Insert each row of an (n, d) array; one version bump."""
        rows = coerce_integral_rows(points)
        return self.apply_arrays(rows, np.ones(len(rows), dtype=np.int64))

    def delete_points(self, points) -> int:
        """Delete each row of an (n, d) array; one version bump."""
        rows = coerce_integral_rows(points)
        return self.apply_arrays(rows, np.full(len(rows), -1, dtype=np.int64))

    def _apply_one(self, point, sign: int) -> int:
        point = tuple(int(c) for c in point)
        idx = self.shard_of(point)
        self.shards[idx].update(point, sign)
        self.events_per_shard[idx] += 1
        self._count_sign(sign)
        return idx

    def _count_sign(self, sign: int) -> None:
        if sign > 0:
            self.num_insertions += 1
        else:
            self.num_deletions += 1

    # --------------------------------------------------------------- fan-in
    def merged_state(self) -> StreamingCoreset:
        """A fresh driver equal to one that saw the entire stream.

        Deep-copies shard 0 (merging is in-place and must not disturb live
        ingest state) and folds the remaining shards in; they are only read.
        """
        merged = copy.deepcopy(self.shards[0])
        for shard in self.shards[1:]:  # scalar-ok: per-shard merge fan-in
            merge_streaming_states(merged, shard)
        return merged

    def space_bits(self) -> int:
        """Total charged sketch bits across all shards."""
        return sum(s.space_bits() for s in self.shards)

    # ---------------------------------------------------------- persistence
    def to_state_dict(self) -> dict:
        """Checkpoint payload (same schema as the worker-pool backend)."""
        from repro.service.state import sharded_state_to_dict

        return sharded_state_to_dict(self)

    def close(self) -> None:
        """No-op: in-process shards hold no external resources.  Exists so
        the engine can close any ingest backend uniformly."""
