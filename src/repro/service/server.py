"""Stdlib TCP server exposing a :class:`ClusteringService` over JSON lines.

``socketserver.ThreadingTCPServer`` with one handler thread per connection;
the service's own lock serializes state access, so any number of clients
can ingest and query concurrently.  No dependencies beyond the standard
library — the service runs anywhere the library does.
"""

from __future__ import annotations

import socketserver
import threading

import numpy as np

from repro.service.engine import ClusteringService, ServiceConfig
from repro.service.protocol import (
    DEFAULT_MAX_REQUEST_BYTES,
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode_message,
    error_response,
    ok_response,
)
from repro.utils.validation import FailedConstruction

__all__ = ["ClusteringServer", "start_server", "serve_forever"]


def _parse_points(req: dict, d: int, delta: int) -> np.ndarray:
    """Validate a request's ``points`` field into an (n, d) int array.

    Range-checks coordinates against the codec's injective window [0, Δ]:
    an out-of-range coordinate would alias to a *different* valid point's
    key under the mixed-radix encoding and silently corrupt the sketches,
    so it is rejected at the wire boundary before any shard is touched.
    """
    pts = req.get("points")
    if not isinstance(pts, list) or not pts:
        raise ProtocolError("'points' must be a non-empty list of rows")
    try:
        arr = np.asarray(pts, dtype=np.int64)
    except (TypeError, ValueError, OverflowError) as exc:
        raise ProtocolError(f"'points' rows must be integers: {exc}") from exc
    if arr.ndim != 2 or arr.shape[1] != d:
        raise ProtocolError(f"'points' must be (n, {d}), got shape {arr.shape}")
    if arr.size and (arr.min() < 0 or arr.max() > delta):
        raise ProtocolError(
            f"point coordinates must lie in [0, {delta}], got range "
            f"[{arr.min()}, {arr.max()}]"
        )
    return arr


class _Handler(socketserver.StreamRequestHandler):
    """One connection: loop over request lines until EOF or shutdown."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        limit = self.server.max_request_bytes
        while True:
            # Bounded read: a client that never sends a newline must not be
            # able to grow this buffer (and the server's memory) without
            # limit.  readline(limit+1) returns at most limit+1 bytes even
            # with no newline in sight.
            line = self.rfile.readline(limit + 1)
            if not line:
                return
            if len(line) > limit:
                # Over-long frame: answer with a protocol error, then close
                # — with the line truncated mid-frame there is no way to
                # resynchronize on the next request boundary.
                self.wfile.write(encode_message(error_response(
                    f"request line exceeds {limit} bytes; "
                    "chunk ingest batches client-side")))
                self.wfile.flush()
                return
            if not line.strip():
                continue
            response, stop = self.server.dispatch(line)
            self.wfile.write(encode_message(response))
            self.wfile.flush()
            if stop:
                return


class ClusteringServer(socketserver.ThreadingTCPServer):
    """Threaded JSON-lines front-end for one :class:`ClusteringService`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: ClusteringService,
                 max_request_bytes: int | None = None):
        super().__init__(address, _Handler)
        self.service = service
        if max_request_bytes is None:
            max_request_bytes = DEFAULT_MAX_REQUEST_BYTES
        self.max_request_bytes = min(int(max_request_bytes), MAX_LINE_BYTES)
        if self.max_request_bytes < 1024:
            raise ValueError("max_request_bytes must be at least 1 KiB")

    # ------------------------------------------------------------- dispatch
    def dispatch(self, line: bytes) -> tuple[dict, bool]:
        """Route one request line; returns (response, close_connection)."""
        try:
            req = decode_line(line)
            return self._execute(req)
        except ProtocolError as exc:
            return error_response(str(exc)), False
        except FailedConstruction as exc:
            return error_response(f"construction failed: {exc.reason}"), False
        except Exception as exc:  # surface, don't kill the worker thread
            return error_response(f"{type(exc).__name__}: {exc}"), False

    def _execute(self, req: dict) -> tuple[dict, bool]:
        service = self.service
        op = req["op"]
        if op == "ping":
            return ok_response(pong=True), False
        if op == "insert":
            n = service.insert(
                _parse_points(req, service.params.d, service.params.delta))
            return ok_response(applied=n, version=service.ingest.version), False
        if op == "delete":
            n = service.delete(
                _parse_points(req, service.params.d, service.params.delta))
            return ok_response(applied=n, version=service.ingest.version), False
        if op == "query":
            slack = req.get("capacity_slack")
            result, hit = service.query(
                capacity_slack=float(slack) if slack is not None else None)
            return ok_response(result=result.to_dict(), cache_hit=hit), False
        if op == "checkpoint":
            if not req.get("path"):
                raise ProtocolError("'checkpoint' needs a 'path'")
            return ok_response(**service.checkpoint(req["path"])), False
        if op == "restore":
            if not req.get("path"):
                raise ProtocolError("'restore' needs a 'path'")
            service.restore_in_place(req["path"])
            return ok_response(version=service.ingest.version,
                               events=service.ingest.num_events), False
        if op == "stats":
            return ok_response(stats=service.stats()), False
        if op == "shutdown":
            # Shut down asynchronously: serve_forever() must not be joined
            # from a handler thread it itself is blocking on.
            threading.Thread(target=self.shutdown, daemon=True).start()
            return ok_response(stopping=True), True
        raise ProtocolError(f"unhandled op {op!r}")  # unreachable; decode_line vets


def start_server(service: ClusteringService, host: str = "127.0.0.1",
                 port: int = 0, max_request_bytes: int | None = None,
                 ) -> tuple[ClusteringServer, threading.Thread]:
    """Bind and serve in a daemon thread; returns (server, thread).

    ``port=0`` picks a free port — read it back from
    ``server.server_address``.  Used by tests and by embedders that want the
    service in-process.
    """
    server = ClusteringServer((host, port), service,
                              max_request_bytes=max_request_bytes)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def serve_forever(config: ServiceConfig, host: str, port: int,
                  restore_path=None, max_request_bytes: int | None = None,
                  ) -> None:
    """Blocking entry point used by ``repro serve``."""
    if restore_path:
        service = ClusteringService.restore(restore_path)
        print(f"restored state from {restore_path} "
              f"(version {service.ingest.version}, {service.ingest.num_events} events)")
    else:
        service = ClusteringService(config)
    mode = (f"{service.config.workers} worker processes"
            if service.config.workers > 0
            else f"{service.ingest.num_shards} in-process shards")
    try:
        with ClusteringServer((host, port), service,
                              max_request_bytes=max_request_bytes) as server:
            addr = server.server_address
            print(f"repro service listening on {addr[0]}:{addr[1]} "
                  f"(k={service.params.k}, d={service.params.d}, "
                  f"delta={service.params.delta}, {mode}, "
                  f"backend={service.config.backend})")
            try:
                server.serve_forever()
            except KeyboardInterrupt:  # pragma: no cover - interactive only
                print("shutting down")
    finally:
        service.close()
