"""Stdlib TCP server exposing a :class:`ClusteringService` over JSON lines.

``socketserver.ThreadingTCPServer`` with one handler thread per connection;
the service's own lock serializes state access, so any number of clients
can ingest and query concurrently.  No dependencies beyond the standard
library — the service runs anywhere the library does.
"""

from __future__ import annotations

import socketserver
import threading

import numpy as np

from repro.service.engine import ClusteringService, ServiceConfig
from repro.service.protocol import (
    ProtocolError,
    decode_line,
    encode_message,
    error_response,
    ok_response,
)
from repro.utils.validation import FailedConstruction

__all__ = ["ClusteringServer", "start_server", "serve_forever"]


def _parse_points(req: dict, d: int) -> np.ndarray:
    """Validate a request's ``points`` field into an (n, d) int array."""
    pts = req.get("points")
    if not isinstance(pts, list) or not pts:
        raise ProtocolError("'points' must be a non-empty list of rows")
    arr = np.asarray(pts, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != d:
        raise ProtocolError(f"'points' must be (n, {d}), got shape {arr.shape}")
    return arr


class _Handler(socketserver.StreamRequestHandler):
    """One connection: loop over request lines until EOF or shutdown."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        while True:
            line = self.rfile.readline()
            if not line:
                return
            if not line.strip():
                continue
            response, stop = self.server.dispatch(line)
            self.wfile.write(encode_message(response))
            self.wfile.flush()
            if stop:
                return


class ClusteringServer(socketserver.ThreadingTCPServer):
    """Threaded JSON-lines front-end for one :class:`ClusteringService`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: ClusteringService):
        super().__init__(address, _Handler)
        self.service = service

    # ------------------------------------------------------------- dispatch
    def dispatch(self, line: bytes) -> tuple[dict, bool]:
        """Route one request line; returns (response, close_connection)."""
        try:
            req = decode_line(line)
            return self._execute(req)
        except ProtocolError as exc:
            return error_response(str(exc)), False
        except FailedConstruction as exc:
            return error_response(f"construction failed: {exc.reason}"), False
        except Exception as exc:  # surface, don't kill the worker thread
            return error_response(f"{type(exc).__name__}: {exc}"), False

    def _execute(self, req: dict) -> tuple[dict, bool]:
        service = self.service
        op = req["op"]
        if op == "ping":
            return ok_response(pong=True), False
        if op == "insert":
            n = service.insert(_parse_points(req, service.params.d))
            return ok_response(applied=n, version=service.ingest.version), False
        if op == "delete":
            n = service.delete(_parse_points(req, service.params.d))
            return ok_response(applied=n, version=service.ingest.version), False
        if op == "query":
            slack = req.get("capacity_slack")
            result, hit = service.query(
                capacity_slack=float(slack) if slack is not None else None)
            return ok_response(result=result.to_dict(), cache_hit=hit), False
        if op == "checkpoint":
            if not req.get("path"):
                raise ProtocolError("'checkpoint' needs a 'path'")
            return ok_response(**service.checkpoint(req["path"])), False
        if op == "restore":
            if not req.get("path"):
                raise ProtocolError("'restore' needs a 'path'")
            service.restore_in_place(req["path"])
            return ok_response(version=service.ingest.version,
                               events=service.ingest.num_events), False
        if op == "stats":
            return ok_response(stats=service.stats()), False
        if op == "shutdown":
            # Shut down asynchronously: serve_forever() must not be joined
            # from a handler thread it itself is blocking on.
            threading.Thread(target=self.shutdown, daemon=True).start()
            return ok_response(stopping=True), True
        raise ProtocolError(f"unhandled op {op!r}")  # unreachable; decode_line vets


def start_server(service: ClusteringService, host: str = "127.0.0.1",
                 port: int = 0) -> tuple[ClusteringServer, threading.Thread]:
    """Bind and serve in a daemon thread; returns (server, thread).

    ``port=0`` picks a free port — read it back from
    ``server.server_address``.  Used by tests and by embedders that want the
    service in-process.
    """
    server = ClusteringServer((host, port), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def serve_forever(config: ServiceConfig, host: str, port: int,
                  restore_path=None) -> None:
    """Blocking entry point used by ``repro serve``."""
    if restore_path:
        service = ClusteringService.restore(restore_path)
        print(f"restored state from {restore_path} "
              f"(version {service.ingest.version}, {service.ingest.num_events} events)")
    else:
        service = ClusteringService(config)
    with ClusteringServer((host, port), service) as server:
        addr = server.server_address
        print(f"repro service listening on {addr[0]}:{addr[1]} "
              f"(k={service.params.k}, d={service.params.d}, "
              f"delta={service.params.delta}, shards={service.ingest.num_shards}, "
              f"backend={service.config.backend})")
        try:
            server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            print("shutting down")
