"""Threaded TCP fallback server for one single-tenant service (``--sync``).

``socketserver.ThreadingTCPServer`` with one handler thread per connection
— many clients can be connected and ingest/query concurrently; the
service's own lock serializes state access.  No dependencies beyond the
standard library — the service runs anywhere the library does.

This is no longer the default front end: ``repro serve`` now runs the
asyncio multi-tenant server (:mod:`repro.service.aserver`), and this
threaded server stays available behind ``repro serve --sync`` for
environments where an event loop is unwelcome (embedders that own the main
thread, asyncio-less test rigs).  It speaks the same wire protocol but
hosts exactly **one** tenant: requests without a ``stream_id`` (or naming
the default tenant) work unchanged, anything else gets a clean error
pointing at the async server.
"""

from __future__ import annotations

import socketserver
import threading
import time

from repro.service.engine import ClusteringService, ServiceConfig
from repro.service.faults import active_plan, fault_point
from repro.service.protocol import (
    DEFAULT_MAX_REQUEST_BYTES,
    DEFAULT_STREAM_ID,
    MAX_LINE_BYTES,
    IdempotencyCache,
    ProtocolError,
    decode_line,
    encode_message,
    error_response,
    ok_response,
    parse_idempotency,
    parse_points,
    parse_stream_id,
)
from repro.utils.validation import FailedConstruction

__all__ = ["ClusteringServer", "start_server", "serve_forever"]


class _Handler(socketserver.StreamRequestHandler):
    """One connection: loop over request lines until EOF or shutdown."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        limit = self.server.max_request_bytes
        while True:
            # Bounded read: a client that never sends a newline must not be
            # able to grow this buffer (and the server's memory) without
            # limit.  readline(limit+1) returns at most limit+1 bytes even
            # with no newline in sight.
            line = self.rfile.readline(limit + 1)
            if not line:
                return
            if len(line) > limit:
                # Over-long frame: answer with a protocol error, then close
                # — with the line truncated mid-frame there is no way to
                # resynchronize on the next request boundary.
                self.wfile.write(encode_message(error_response(
                    f"request line exceeds {limit} bytes; "
                    "chunk ingest batches client-side")))
                self.wfile.flush()
                return
            if not line.strip():
                continue
            response, stop, op = self.server.dispatch(line)
            if response is None:
                # Injected connection reset: executed effects stand, the
                # reply is dropped, the connection closes.
                return
            act = fault_point("server.slow", op=op)
            if act is not None:
                time.sleep(act.delay_s)
            frame = encode_message(response)
            act = fault_point("server.short", op=op)
            if act is not None:
                self.wfile.write(frame[: max(1, len(frame) // 2)])
                self.wfile.flush()
                return
            self.wfile.write(frame)
            self.wfile.flush()
            if stop:
                return


class ClusteringServer(socketserver.ThreadingTCPServer):
    """Threaded JSON-lines front-end for one :class:`ClusteringService`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: ClusteringService,
                 max_request_bytes: int | None = None):
        super().__init__(address, _Handler)
        self.service = service
        if max_request_bytes is None:
            max_request_bytes = DEFAULT_MAX_REQUEST_BYTES
        self.max_request_bytes = min(int(max_request_bytes), MAX_LINE_BYTES)
        if self.max_request_bytes < 1024:
            raise ValueError("max_request_bytes must be at least 1 KiB")
        self._idem = IdempotencyCache()

    # ------------------------------------------------------------- dispatch
    def dispatch(self, line: bytes) -> tuple[dict | None, bool, str | None]:
        """Route one request line; returns (response, close_connection, op).

        A ``None`` response asks the handler to drop the connection without
        replying (injected ``server.reset``; see the async server's
        ``_dispatch`` for the pre/post semantics).
        """
        op: str | None = None
        try:
            req = decode_line(line)
            op = req["op"]
            reset = fault_point("server.reset", op=op)
            if reset is not None and reset.mode == "pre":
                return None, False, op
            response, stop = self._execute(req)
            if reset is not None:
                return None, False, op
            return response, stop, op
        except ProtocolError as exc:
            return error_response(str(exc)), False, op
        except FailedConstruction as exc:
            return error_response(f"construction failed: {exc.reason}"), False, op
        except Exception as exc:  # surface, don't kill the worker thread
            return error_response(f"{type(exc).__name__}: {exc}"), False, op

    def _execute(self, req: dict) -> tuple[dict, bool]:
        service = self.service
        op = req["op"]
        if op == "ping":
            return ok_response(pong=True), False
        if op == "tenants":
            return ok_response(tenants=[{
                "stream_id": DEFAULT_STREAM_ID,
                "live": True,
                "events": service.ingest.num_events,
                "version": service.ingest.version,
                "bytes_ingested": service.bytes_ingested,
            }], live=1, max_live_tenants=None), False
        if op != "shutdown" and parse_stream_id(req) != DEFAULT_STREAM_ID:
            raise ProtocolError(
                f"this is the single-tenant --sync server; only the "
                f"{DEFAULT_STREAM_ID!r} stream exists here.  Run the default "
                "(async) `repro serve` for named streams")
        if op in ("insert", "delete"):
            idem = parse_idempotency(req)
            if idem is not None:
                cached = self._idem.check(*idem)
                if cached is not None:
                    # Retry of an already-applied mutation: answer from the
                    # cache, touch no shard — no double count.
                    return cached, False
            pts = parse_points(req, service.params.d, service.params.delta)
            n = (service.insert(pts) if op == "insert" else service.delete(pts))
            response = ok_response(applied=n, version=service.ingest.version)
            if idem is not None:
                self._idem.record(idem[0], idem[1], response)
            return response, False
        if op == "query":
            slack = req.get("capacity_slack")
            result, hit = service.query(
                capacity_slack=float(slack) if slack is not None else None)
            return ok_response(result=result.to_dict(), cache_hit=hit), False
        if op == "checkpoint":
            if not req.get("path"):
                raise ProtocolError("'checkpoint' needs a 'path'")
            return ok_response(**service.checkpoint(req["path"])), False
        if op == "restore":
            if not req.get("path"):
                raise ProtocolError("'restore' needs a 'path'")
            service.restore_in_place(req["path"])
            return ok_response(version=service.ingest.version,
                               events=service.ingest.num_events), False
        if op == "pull_state":
            # Coordinator-fleet read: the full checkpoint envelope in the
            # reply instead of on disk, same encoding either way.
            return ok_response(stream_id=DEFAULT_STREAM_ID,
                               state=service.state_payload()), False
        if op == "site_stats":
            site = dict(service.site_stats(), stream_id=DEFAULT_STREAM_ID)
            return ok_response(stream_id=DEFAULT_STREAM_ID, site=site), False
        if op == "stats":
            stats = service.stats()
            plan = active_plan()
            if plan is not None:
                stats["fault_plan"] = dict(plan.summary(),
                                           fire_counts=plan.fire_counts())
            return ok_response(stats=stats), False
        if op == "shutdown":
            # Shut down asynchronously: serve_forever() must not be joined
            # from a handler thread it itself is blocking on.
            threading.Thread(target=self.shutdown, daemon=True).start()
            return ok_response(stopping=True), True
        raise ProtocolError(f"unhandled op {op!r}")  # unreachable; decode_line vets


def start_server(service: ClusteringService, host: str = "127.0.0.1",
                 port: int = 0, max_request_bytes: int | None = None,
                 ) -> tuple[ClusteringServer, threading.Thread]:
    """Bind and serve in a daemon thread; returns (server, thread).

    ``port=0`` picks a free port — read it back from
    ``server.server_address``.  Used by tests and by embedders that want the
    service in-process.
    """
    server = ClusteringServer((host, port), service,
                              max_request_bytes=max_request_bytes)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def serve_forever(config: ServiceConfig, host: str, port: int,
                  restore_path=None, max_request_bytes: int | None = None,
                  ) -> None:
    """Blocking entry point used by ``repro serve --sync``."""
    if restore_path:
        service = ClusteringService.restore(restore_path)
        print(f"restored state from {restore_path} "
              f"(version {service.ingest.version}, {service.ingest.num_events} events)")
    else:
        service = ClusteringService(config)
    mode = (f"{service.config.workers} worker processes"
            if service.config.workers > 0
            else f"{service.ingest.num_shards} in-process shards")
    try:
        with ClusteringServer((host, port), service,
                              max_request_bytes=max_request_bytes) as server:
            addr = server.server_address
            print(f"repro service listening on {addr[0]}:{addr[1]} "
                  f"(sync single-tenant, k={service.params.k}, "
                  f"d={service.params.d}, delta={service.params.delta}, "
                  f"{mode}, backend={service.config.backend})", flush=True)
            try:
                server.serve_forever()
            except KeyboardInterrupt:  # pragma: no cover - interactive only
                print("shutting down")
    finally:
        service.close()
