"""Supervised recovery for the process-parallel ingest backend.

The whole service design leans on the paper's linearity argument: a shard
is a linear sketch whose state is a deterministic function of ``(params,
seed)`` and the multiset of events routed to it.  So a shard worker that
dies — SIGKILL, OOM, a poisoned batch — is not a disaster but a *replay
problem*: rebuild the shard from its last known-good serialized state and
re-feed the events sent since, and the recovered shard is **bit-identical**
to one that never crashed (the tests assert this at the serialized-state
level, same oracle style as ``test_vectorized_identity.py``).

:class:`SupervisedWorkerPool` implements exactly that on top of
:class:`~repro.service.workers.WorkerPoolIngest`:

- every batch command sent to shard ``i`` is appended to a **bounded
  in-flight journal** for ``i``;
- every ``checkpoint_every_batches`` batches (and on every state drain —
  queries, checkpoints) the shard's serialized state is pulled back and
  becomes the shard's **recovery checkpoint**, truncating the journal;
- a dead worker — detected by ``exitcode``/queue sentinels surfacing as
  :class:`~repro.service.workers.WorkerDied` — is respawned from the
  recovery checkpoint, and the journal is replayed into it in original
  order before the interrupted operation is retried.

Because the parent's counters (``events_per_shard``, ``version``, ...)
are only advanced once per *logical* send, recovery neither loses nor
double-counts events, no matter how far into its queue the dead worker
got.

:class:`CircuitBreaker` is the graceful-degradation half: the async
front end uses one per tenant so that a tenant whose pool is repeatedly
failing (or mid-recovery) answers with a structured ``degraded`` error
envelope instead of queueing callers behind a broken backend.
"""

from __future__ import annotations

import queue as queue_mod
import threading
import time

from repro.service.workers import (
    DEFAULT_QUEUE_BATCHES,
    WorkerDied,
    WorkerPoolIngest,
)

__all__ = [
    "CircuitBreaker",
    "SupervisedWorkerPool",
    "DEFAULT_CHECKPOINT_EVERY_BATCHES",
    "DEFAULT_MAX_RESTARTS",
]

#: Per-shard batches between automatic recovery checkpoints — the bound on
#: both journal memory and replay work after a crash.
DEFAULT_CHECKPOINT_EVERY_BATCHES = 32

#: Respawn budget per worker slot: a shard that keeps dying (e.g. a
#: poisoned batch that crashes deterministically on every replay) must
#: surface as an error, not an infinite respawn loop.
DEFAULT_MAX_RESTARTS = 8


class SupervisedWorkerPool(WorkerPoolIngest):
    """A :class:`WorkerPoolIngest` whose workers are allowed to die.

    Drop-in replacement — same public surface, same bit-identical results
    (supervision only adds parent-side journaling; the bytes sent to live
    workers are unchanged).  Additional parameters:

    checkpoint_every_batches:
        Pull a shard's serialized state (and truncate its journal) every
        this many batches.  Clamped to ``queue_batches`` so a full journal
        always fits back into a fresh worker's command queue during
        replay.
    max_restarts:
        Per-worker respawn budget; exceeding it raises
        :class:`~repro.service.workers.WorkerDied` to the caller.

    Not thread-safe by itself (same contract as the base pool): callers
    serialize access — :class:`~repro.service.engine.ClusteringService`
    holds its lock across every pool call.
    """

    def __init__(self, *args,
                 checkpoint_every_batches: int = DEFAULT_CHECKPOINT_EVERY_BATCHES,
                 max_restarts: int = DEFAULT_MAX_RESTARTS,
                 **kwargs):
        queue_batches = kwargs.get("queue_batches", DEFAULT_QUEUE_BATCHES)
        self._checkpoint_every = max(1, min(int(checkpoint_every_batches),
                                            int(queue_batches)))
        self._max_restarts = int(max_restarts)
        shard_states = kwargs.get("shard_states")
        self._journals: list[list[tuple]] = []
        self._shard_ckpts: list[dict | None] = []
        #: One record per recovery: shard, exit code of the dead worker,
        #: batches replayed, reason.  Surfaced through ``stats``.
        self.recovery_events: list[dict] = []
        super().__init__(*args, **kwargs)
        n = self.num_shards
        self._journals = [[] for _ in range(n)]
        self._shard_ckpts = (list(shard_states) if shard_states is not None
                             else [None] * n)

    # -------------------------------------------------------------- sending
    def _send(self, idx: int, msg: tuple) -> None:
        """Journal batch commands, then deliver with crash recovery."""
        if self._closed:
            raise RuntimeError("worker pool is closed")
        if not self._journals:  # construction-time handshake, pre-journal
            super()._send(idx, msg)
            return
        is_batch = msg[0] in ("batch", "abatch")
        if is_batch:
            self._journals[idx].append(msg)
            self._maybe_inject_kill(idx)
        if not self._procs[idx].is_alive():
            self._recover(idx, "worker found dead before send",
                          exitcode=self._procs[idx].exitcode)
            if is_batch:
                # The journal replay above already delivered this batch.
                self._maybe_checkpoint(idx)
                return
        self._put_robust(idx, msg, already_journaled=is_batch)
        if is_batch:
            self._maybe_checkpoint(idx)

    def _put_robust(self, idx: int, msg: tuple,
                    already_journaled: bool) -> None:
        """Enqueue with backpressure, recovering if the worker dies while
        we wait on a full queue (a dead consumer never drains it)."""
        while True:
            try:
                self._cmd_queues[idx].put(msg, timeout=0.5)
                return
            except queue_mod.Full:
                if self._procs[idx].is_alive():
                    continue
                self._recover(idx, "worker died under backpressure",
                              exitcode=self._procs[idx].exitcode)
                if already_journaled:
                    return  # replay delivered it
                # Non-batch request: retry on the fresh queue.

    # ------------------------------------------------------------- recovery
    def _recover(self, idx: int, reason: str,
                 exitcode: int | None = None) -> None:
        """Respawn worker ``idx`` from its checkpoint and replay its journal.

        The respawned shard is bit-identical to an uncrashed one: the
        checkpoint is a full serialized shard state (known good — it was
        produced by a drained worker), and the journal holds exactly the
        batches sent after it, in order.
        """
        if self.restart_counts[idx] >= self._max_restarts:
            raise WorkerDied(
                idx,
                f"shard worker {idx} exceeded {self._max_restarts} restarts "
                f"(last reason: {reason}); giving up",
                exitcode=exitcode,
            )
        self.restart_counts[idx] += 1
        old = self._procs[idx]
        if old.is_alive():
            old.kill()
        old.join(5.0)
        for q in (self._cmd_queues[idx], self._out_queues[idx]):
            # Fresh pipes for the fresh worker: a SIGKILL mid-write can
            # leave a truncated pickle in the old ones.
            q.close()
            q.cancel_join_thread()
        self._spawn(idx, self._shard_ckpts[idx])
        WorkerPoolIngest._collect(self, idx, "ready")
        journal = self._journals[idx]
        for msg in journal:
            self._cmd_queues[idx].put(msg)
        self.recovery_events.append({
            "shard": idx,
            "exitcode": exitcode if exitcode is not None else old.exitcode,
            "replayed_batches": len(journal),
            "restart": self.restart_counts[idx],
            "reason": reason,
        })

    def _request(self, idx: int, msg: tuple, want: str):
        """One request/reply round trip that survives worker death."""
        while True:
            try:
                self._send(idx, msg)
                return WorkerPoolIngest._collect(self, idx, want)
            except WorkerDied as exc:
                self._recover(idx, str(exc), exitcode=exc.exitcode)

    # ---------------------------------------------------------- checkpoints
    def _maybe_checkpoint(self, idx: int) -> None:
        if len(self._journals[idx]) >= self._checkpoint_every:
            self._pull_state(idx)

    def _pull_state(self, idx: int) -> dict:
        """Drain one shard's serialized state; it becomes the shard's
        recovery checkpoint and truncates the journal prefix it covers."""
        while True:
            mark = len(self._journals[idx])
            try:
                self._send(idx, ("state",))
                state = WorkerPoolIngest._collect(self, idx, "state")
            except WorkerDied as exc:
                self._recover(idx, str(exc), exitcode=exc.exitcode)
                continue
            self._shard_ckpts[idx] = state
            del self._journals[idx][:mark]
            return state

    # ------------------------------------------------------------ round trips
    def _shard_state_dicts(self) -> list[dict]:
        """Parallel drain (like the base pool), but every reply doubles as
        that shard's recovery checkpoint, and a death mid-drain recovers."""
        n = self.num_shards
        marks = []
        for idx in range(n):
            marks.append(len(self._journals[idx]))
            self._send(idx, ("state",))
        out = []
        for idx in range(n):
            try:
                state = WorkerPoolIngest._collect(self, idx, "state")
            except WorkerDied as exc:
                self._recover(idx, str(exc), exitcode=exc.exitcode)
                out.append(self._pull_state(idx))
                continue
            self._shard_ckpts[idx] = state
            del self._journals[idx][:marks[idx]]
            out.append(state)
        return out

    def worker_stats(self) -> list[dict]:
        """Per-worker counters, recovering dead workers along the way.

        After a recovery the *worker-local* ``events``/``batches`` count
        restarts from the checkpoint; the parent's ``events_per_shard``
        stays authoritative for totals.
        """
        n = self.num_shards
        for idx in range(n):
            self._send(idx, ("stats",))
        out = []
        for idx in range(n):
            try:
                out.append(WorkerPoolIngest._collect(self, idx, "stats"))
            except WorkerDied as exc:
                self._recover(idx, str(exc), exitcode=exc.exitcode)
                out.append(self._request(idx, ("stats",), "stats"))
        return out

    # ---------------------------------------------------------------- stats
    def stats_extra(self) -> dict:
        extra = super().stats_extra()
        extra["supervised"] = True
        extra["checkpoint_every_batches"] = self._checkpoint_every
        extra["journal_batches"] = [len(j) for j in self._journals]
        extra["recovery_events"] = list(self.recovery_events[-20:])
        return extra


class CircuitBreaker:
    """Per-tenant fail-fast switch for the async front end.

    Closed (normal) → records consecutive failures; at
    ``failure_threshold`` it **opens**: operations are refused immediately
    (the server answers a structured ``degraded`` envelope instead of
    queueing callers behind a broken or recovering backend).  After
    ``cooldown_s`` one probe operation is let through (**half-open**);
    success closes the breaker, failure re-opens it for another cooldown.

    ``clock`` is injectable for deterministic tests.  Thread-safe: wire
    handler threads for one tenant may race.
    """

    def __init__(self, failure_threshold: int = 3, cooldown_s: float = 5.0,
                 clock=None):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.times_opened = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"``."""
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """Whether an operation may proceed right now."""
        with self._lock:
            if self._state == "closed":
                return True
            now = self._clock()
            if self._state == "open":
                if now - self._opened_at < self.cooldown_s:
                    return False
                self._state = "half-open"
                self._probing = True
                return True  # the single probe
            # half-open: one probe at a time
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._consecutive_failures = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            self._probing = False
            if (self._state == "half-open"
                    or self._consecutive_failures >= self.failure_threshold):
                if self._state != "open":
                    self.times_opened += 1
                self._state = "open"
                self._opened_at = self._clock()

    def retry_after_s(self) -> float:
        """Seconds until the next probe is allowed (0 when not open)."""
        with self._lock:
            if self._state != "open":
                return 0.0
            return max(0.0, self.cooldown_s - (self._clock() - self._opened_at))

    def snapshot(self) -> dict:
        """JSON-safe state for ``stats``/``tenants`` rows."""
        with self._lock:
            remaining = 0.0
            if self._state == "open":
                remaining = max(0.0, self.cooldown_s
                                - (self._clock() - self._opened_at))
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "times_opened": self.times_opened,
                "retry_after_s": round(remaining, 3),
            }
