"""Asyncio JSON-lines front end for the multi-tenant registry.

The default ``repro serve`` server: ``asyncio.start_server`` accepts any
number of concurrent connections on one thread, parses frames on the event
loop, and runs sketch work (ingest, solve, checkpoint) in worker threads
via ``asyncio.to_thread``.  Serialization is **per tenant**, not global —
each tenant's own service lock orders its mutations, the registry's pins
keep eviction away from in-flight operations, and queries solve on a
version-keyed snapshot outside the ingest lock, so one tenant's expensive
solve never stalls another tenant's (or its own) ingest.

Wire compatibility: the protocol is the same JSON-lines format as the
threaded single-tenant server (kept available behind ``repro serve
--sync``), plus the optional ``stream_id`` field routing each request to a
named tenant and the ``tenants`` op listing them.  A request without
``stream_id`` addresses the ``"default"`` tenant, so pre-tenant clients
work unchanged.
"""

from __future__ import annotations

import asyncio
import threading

from repro.service.engine import ServiceConfig
from repro.service.faults import active_plan, fault_point
from repro.service.protocol import (
    DEFAULT_MAX_REQUEST_BYTES,
    MAX_LINE_BYTES,
    IdempotencyCache,
    ProtocolError,
    decode_line,
    degraded_response,
    encode_message,
    error_response,
    ok_response,
    parse_idempotency,
    parse_points,
    parse_stream_id,
)
from repro.service.tenants import (
    QuotaExceeded,
    TenantDegraded,
    TenantQuota,
    TenantRegistry,
)
from repro.utils.validation import FailedConstruction

__all__ = ["AsyncClusteringServer", "start_async_server", "serve_forever_async"]


class AsyncClusteringServer:
    """One asyncio listener over one :class:`TenantRegistry`."""

    def __init__(self, registry: TenantRegistry, host: str = "127.0.0.1",
                 port: int = 0, max_request_bytes: int | None = None):
        self.registry = registry
        self._host = host
        self._port = port
        if max_request_bytes is None:
            max_request_bytes = DEFAULT_MAX_REQUEST_BYTES
        self.max_request_bytes = min(int(max_request_bytes), MAX_LINE_BYTES)
        if self.max_request_bytes < 1024:
            raise ValueError("max_request_bytes must be at least 1 KiB")
        self.address: tuple[str, int] | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stop_event: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._idem = IdempotencyCache()

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        """Bind the listening socket; sets :attr:`address`."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        # The reader limit enforces the per-connection request-line cap at
        # the transport: a client that never sends a newline cannot grow
        # server memory past it (readline raises instead).
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port,
            limit=self.max_request_bytes)
        self.address = self._server.sockets[0].getsockname()[:2]

    async def wait_stopped(self) -> None:
        """Block until a ``shutdown`` op (or :meth:`shutdown`) fires, then
        close the listener."""
        await self._stop_event.wait()
        self._server.close()
        await self._server.wait_closed()

    async def serve(self, ready: threading.Event | None = None) -> None:
        """Start and serve until stopped (``ready`` is set after bind)."""
        await self.start()
        if ready is not None:
            ready.set()
        await self.wait_stopped()

    def shutdown(self) -> None:
        """Request a stop from any thread (idempotent)."""
        loop, stop = self._loop, self._stop_event
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    # ------------------------------------------------------------ connection
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Over-long frame: answer with a protocol error, then
                    # close — truncated mid-frame there is no way to
                    # resynchronize on the next request boundary.
                    writer.write(encode_message(error_response(
                        f"request line exceeds {self.max_request_bytes} "
                        "bytes; chunk ingest batches client-side")))
                    await writer.drain()
                    return
                if not line:
                    return
                if not line.strip():
                    continue
                response, stop, op = await self._dispatch(line)
                if response is None:
                    # Injected connection reset: if the request executed,
                    # its effects stand — only the reply is lost, exactly
                    # like a real mid-reply connection failure.
                    return
                act = fault_point("server.slow", op=op)
                if act is not None:
                    await asyncio.sleep(act.delay_s)
                frame = encode_message(response)
                act = fault_point("server.short", op=op)
                if act is not None:
                    # Truncated reply: the client reads garbage JSON and
                    # must treat the connection as poisoned.
                    writer.write(frame[: max(1, len(frame) // 2)])
                    await writer.drain()
                    return
                writer.write(frame)
                await writer.drain()
                if stop:
                    # Response is flushed; now let serve() unwind.
                    self._stop_event.set()
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-frame; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # -------------------------------------------------------------- dispatch
    async def _dispatch(self, line: bytes) -> tuple[dict | None, bool, str | None]:
        """Route one request line; returns (response, stop_server, op).

        A ``None`` response asks the connection handler to drop the link
        without replying (the injected ``server.reset`` fault): ``"pre"``
        mode drops the request before execution, the default drops only
        the reply *after* the request took effect — the case idempotent
        retries exist for.
        """
        op: str | None = None
        try:
            req = decode_line(line)
            op = req["op"]
            reset = fault_point("server.reset", op=op)
            if reset is not None and reset.mode == "pre":
                return None, False, op
            response, stop = await self._execute(req)
            if reset is not None:
                return None, False, op
            return response, stop, op
        except ProtocolError as exc:
            return error_response(str(exc)), False, op
        except TenantDegraded as exc:
            return degraded_response(exc.stream_id, exc.retry_after_s,
                                     str(exc)), False, op
        except QuotaExceeded as exc:
            return error_response(f"quota exceeded: {exc}"), False, op
        except FailedConstruction as exc:
            return error_response(f"construction failed: {exc.reason}"), False, op
        except Exception as exc:  # surface, don't kill the connection
            return error_response(f"{type(exc).__name__}: {exc}"), False, op

    async def _execute(self, req: dict) -> tuple[dict, bool]:
        registry = self.registry
        op = req["op"]
        if op == "ping":
            return ok_response(pong=True), False
        if op == "shutdown":
            return ok_response(stopping=True), True
        if op == "tenants":
            # One hop off the loop for both registry reads: overview() and
            # live_count() take the registry lock, which an evicting thread
            # may hold while checkpointing a tenant to disk.
            live_only = bool(req.get("live_only", False))

            def _tenants_payload():
                return registry.overview(live_only=live_only), registry.live_count()

            rows, live = await asyncio.to_thread(_tenants_payload)
            return ok_response(
                tenants=rows,
                live=live,
                max_live_tenants=registry.max_live_tenants,
                eviction_failures=list(registry.eviction_failures),
            ), False
        stream_id = parse_stream_id(req)
        config: ServiceConfig = registry.config
        if op in ("insert", "delete"):
            idem = parse_idempotency(req)
            if idem is not None:
                cached = self._idem.check(*idem)
                if cached is not None:
                    # A retry of a mutation we already applied: answer from
                    # the cache, touch nothing — no double count.
                    return cached, False
            arr = parse_points(req, config.d, config.delta)
            fn = registry.insert if op == "insert" else registry.delete
            payload = await asyncio.to_thread(fn, stream_id, arr)
            response = ok_response(stream_id=stream_id, **payload)
            if idem is not None:
                self._idem.record(idem[0], idem[1], response)
            return response, False
        if op == "query":
            slack = req.get("capacity_slack")
            result, hit = await asyncio.to_thread(
                registry.query, stream_id,
                float(slack) if slack is not None else None)
            return ok_response(stream_id=stream_id, result=result.to_dict(),
                               cache_hit=hit), False
        if op == "checkpoint":
            if not req.get("path"):
                raise ProtocolError("'checkpoint' needs a 'path'")
            info = await asyncio.to_thread(
                registry.checkpoint, stream_id, req["path"])
            return ok_response(stream_id=stream_id, **info), False
        if op == "restore":
            if not req.get("path"):
                raise ProtocolError("'restore' needs a 'path'")
            info = await asyncio.to_thread(
                registry.restore, stream_id, req["path"])
            return ok_response(stream_id=stream_id, **info), False
        if op == "pull_state":
            # Coordinator-fleet read: the tenant's full checkpoint envelope,
            # serialized in the reply instead of written to disk.
            state = await asyncio.to_thread(registry.pull_state, stream_id)
            return ok_response(stream_id=stream_id, state=state), False
        if op == "site_stats":
            site = await asyncio.to_thread(registry.site_stats, stream_id)
            return ok_response(stream_id=stream_id, site=site), False
        if op == "stats":
            stats = await asyncio.to_thread(registry.stats, stream_id)
            plan = active_plan()
            if plan is not None:
                stats["fault_plan"] = dict(plan.summary(),
                                           fire_counts=plan.fire_counts())
            return ok_response(stats=stats), False
        raise ProtocolError(f"unhandled op {op!r}")  # unreachable; decode_line vets


def start_async_server(registry: TenantRegistry, host: str = "127.0.0.1",
                       port: int = 0, max_request_bytes: int | None = None,
                       ) -> tuple[AsyncClusteringServer, threading.Thread]:
    """Serve in a daemon thread running its own event loop; returns
    ``(server, thread)`` once the socket is bound.

    The blocking-client ergonomics of :func:`repro.service.server.start_server`,
    for tests and embedders: drive it with :class:`ServiceClient` from any
    thread, stop it with ``server.shutdown()``.
    """
    server = AsyncClusteringServer(registry, host, port,
                                   max_request_bytes=max_request_bytes)
    ready = threading.Event()
    errors: list[BaseException] = []

    def _run() -> None:
        try:
            asyncio.run(server.serve(ready=ready))
        except BaseException as exc:  # surface bind failures to the caller
            errors.append(exc)
        finally:
            ready.set()

    thread = threading.Thread(target=_run, daemon=True, name="repro-aserver")
    thread.start()
    ready.wait(30.0)
    if errors:
        raise errors[0]
    if server.address is None:
        raise RuntimeError("async server failed to start within 30s")
    return server, thread


def serve_forever_async(config: ServiceConfig, host: str, port: int, *,
                        tenants_dir=None, max_live_tenants: int | None = None,
                        quota: TenantQuota | None = None,
                        restore_path=None,
                        max_request_bytes: int | None = None) -> None:
    """Blocking entry point used by ``repro serve`` (the default mode)."""
    registry = TenantRegistry(config, tenants_dir=tenants_dir,
                              max_live_tenants=max_live_tenants, quota=quota)
    try:
        if restore_path:
            info = registry.restore("default", restore_path)
            print(f"restored default tenant from {restore_path} "
                  f"(version {info['version']}, {info['events']} events)",
                  flush=True)
        server = AsyncClusteringServer(registry, host, port,
                                       max_request_bytes=max_request_bytes)

        async def _main() -> None:
            await server.start()
            addr = server.address
            budget = (f"max_live_tenants={max_live_tenants}"
                      if max_live_tenants is not None else "unbounded tenants")
            where = (f", tenants_dir={tenants_dir}"
                     if tenants_dir is not None else "")
            print(f"repro service listening on {addr[0]}:{addr[1]} "
                  f"(async multi-tenant, k={config.k}, d={config.d}, "
                  f"delta={config.delta}, {budget}{where}, "
                  f"backend={config.backend})", flush=True)
            await server.wait_stopped()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            print("shutting down", flush=True)
    finally:
        # Persists every live tenant when a tenants_dir is configured, so a
        # restarted server restores its population on touch.
        registry.close()
