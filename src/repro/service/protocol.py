"""JSON-lines wire protocol shared by the servers and the client.

One request per line, one response per line, UTF-8 JSON — trivially
debuggable with ``nc`` and language-agnostic.  Requests are objects with an
``op`` field; responses always carry ``ok`` (bool) plus either the op's
payload or an ``error`` string.  Malformed input yields an error response,
never a dropped connection, so a misbehaving client cannot wedge a worker
thread mid-frame.

Multi-tenancy rides on one optional field: every tenant-scoped request may
carry a ``stream_id`` string naming the logical stream it addresses.  The
field is *optional* — a request without it addresses the
:data:`DEFAULT_STREAM_ID` tenant, so every pre-tenant client (and the whole
pre-tenant wire protocol) keeps working unchanged against a multi-tenant
server.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict

import numpy as np

from repro.utils.validation import coerce_integral_rows

__all__ = [
    "DEFAULT_MAX_REQUEST_BYTES",
    "DEFAULT_STREAM_ID",
    "IDEMPOTENCY_CACHE_CLIENTS",
    "IdempotencyCache",
    "MAX_CLIENT_ID_CHARS",
    "MAX_LINE_BYTES",
    "MAX_STREAM_ID_CHARS",
    "OPS",
    "ProtocolError",
    "decode_line",
    "degraded_response",
    "encode_message",
    "error_response",
    "ok_response",
    "parse_idempotency",
    "parse_points",
    "parse_stream_id",
]

#: Backstop against unbounded request frames (ingest batches should be
#: chunked client-side well below this).
MAX_LINE_BYTES = 64 * 1024 * 1024

#: Per-connection request-line cap enforced while *reading* — a client that
#: never sends a newline must not grow server memory without bound.  The
#: default comfortably holds the stock client's 4096-row batches; servers
#: accepting bigger frames can raise it (``--max-request-mb``) up to the
#: :data:`MAX_LINE_BYTES` backstop.
DEFAULT_MAX_REQUEST_BYTES = 8 * 1024 * 1024

#: The operations the service exposes.  ``pull_state`` and ``site_stats``
#: are the coordinator-fleet ops (:mod:`repro.distributed.fleet`): a
#: coordinator polls ``site_stats`` for a site's lightweight counters and
#: pulls the site's full serialized sketch state — the checkpoint envelope,
#: reused as the transfer encoding — with ``pull_state``, then merges the
#: states by sketch linearity.
OPS = ("ping", "insert", "delete", "query", "checkpoint", "restore",
       "pull_state", "site_stats", "stats", "tenants", "shutdown")

#: Tenant addressed by requests that carry no ``stream_id`` field.
DEFAULT_STREAM_ID = "default"

#: Upper bound on ``stream_id`` length — ids become checkpoint file names
#: (percent-encoded), and most filesystems cap names at 255 bytes.
MAX_STREAM_ID_CHARS = 128

#: Upper bound on ``client_id`` length (it keys the server's replay cache).
MAX_CLIENT_ID_CHARS = 64

#: Distinct client ids the server-side replay cache retains (LRU).  Each
#: entry is one (seq, response) pair, so memory is bounded regardless of
#: how many short-lived clients connect.
IDEMPOTENCY_CACHE_CLIENTS = 1024


class ProtocolError(ValueError):
    """A request line that cannot be parsed into a valid operation."""


def parse_stream_id(req: dict) -> str:
    """Validate a request's optional ``stream_id`` into a tenant name.

    Absent (or ``null``) means the :data:`DEFAULT_STREAM_ID` tenant — the
    pre-tenant protocol unchanged.  Present, it must be a non-empty string
    of at most :data:`MAX_STREAM_ID_CHARS` printable characters.
    """
    sid = req.get("stream_id")
    if sid is None:
        return DEFAULT_STREAM_ID
    if not isinstance(sid, str) or not sid:
        raise ProtocolError("'stream_id' must be a non-empty string")
    if len(sid) > MAX_STREAM_ID_CHARS:
        raise ProtocolError(
            f"'stream_id' exceeds {MAX_STREAM_ID_CHARS} characters")
    if any(ord(c) < 0x20 or ord(c) == 0x7F for c in sid):
        raise ProtocolError("'stream_id' must not contain control characters")
    return sid


def parse_points(req: dict, d: int, delta: int) -> np.ndarray:
    """Validate a request's ``points`` field into an (n, d) int array.

    Range-checks coordinates against the codec's injective window [0, Δ]:
    an out-of-range coordinate would alias to a *different* valid point's
    key under the mixed-radix encoding and silently corrupt the sketches,
    so it is rejected at the wire boundary before any shard is touched.
    Non-integral coordinates (JSON numbers like 2.7) are likewise rejected
    rather than truncated — truncation would silently ingest a different
    point (integral floats such as 2.0 are accepted).
    """
    pts = req.get("points")
    if not isinstance(pts, list) or not pts:
        raise ProtocolError("'points' must be a non-empty list of rows")
    try:
        arr = coerce_integral_rows(pts)
    except (TypeError, ValueError, OverflowError) as exc:
        raise ProtocolError(f"'points' rows must be integers: {exc}") from exc
    if arr.ndim != 2 or arr.shape[1] != d:
        raise ProtocolError(f"'points' must be (n, {d}), got shape {arr.shape}")
    if arr.size and (arr.min() < 0 or arr.max() > delta):
        raise ProtocolError(
            f"point coordinates must lie in [0, {delta}], got range "
            f"[{arr.min()}, {arr.max()}]"
        )
    return arr


def encode_message(obj: dict) -> bytes:
    """Serialize one message to a newline-terminated JSON frame."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict:
    """Parse one request frame; raises :class:`ProtocolError` on junk."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"request exceeds {MAX_LINE_BYTES} bytes")
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed JSON request: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {OPS}")
    return obj


def parse_idempotency(req: dict) -> tuple[str, int] | None:
    """Validate a request's optional idempotency pair (``client_id``, ``seq``).

    A client that retries mutating ops after a connection loss cannot know
    whether the lost request was applied before the cut or never arrived.
    Tagging each *logical* mutation with a stable ``client_id`` and a
    monotonically increasing ``seq`` lets the server answer a replayed
    request from its cache instead of applying it twice.  Both fields must
    appear together; requests without them are applied unconditionally
    (the pre-retry protocol unchanged).
    """
    cid, seq = req.get("client_id"), req.get("seq")
    if cid is None and seq is None:
        return None
    if cid is None or seq is None:
        raise ProtocolError("'client_id' and 'seq' must be sent together")
    if not isinstance(cid, str) or not cid:
        raise ProtocolError("'client_id' must be a non-empty string")
    if len(cid) > MAX_CLIENT_ID_CHARS:
        raise ProtocolError(
            f"'client_id' exceeds {MAX_CLIENT_ID_CHARS} characters")
    if any(ord(c) < 0x20 or ord(c) == 0x7F for c in cid):
        raise ProtocolError("'client_id' must not contain control characters")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise ProtocolError("'seq' must be a non-negative integer")
    return cid, seq


class IdempotencyCache:
    """Per-client replay cache for sequence-numbered mutating requests.

    Stores the most recent ``(seq, response)`` per client id: a retried
    request with the *same* seq gets the cached response back (stamped
    ``replayed: true``) without touching any shard, so a mid-batch
    connection reset followed by a client retry cannot double-count
    events.  One entry per client suffices because the client assigns seqs
    monotonically and never pipelines mutations — a replay is always of
    the latest logical request.  Client ids are evicted LRU beyond
    :data:`IDEMPOTENCY_CACHE_CLIENTS`.  Thread-safe (the sync server
    handles connections on threads).
    """

    def __init__(self, max_clients: int = IDEMPOTENCY_CACHE_CLIENTS):
        self._max = int(max_clients)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[int, dict]] = OrderedDict()

    def check(self, cid: str, seq: int) -> dict | None:
        """The cached response if (cid, seq) was already answered, else None.

        A seq *lower* than the cached one is a protocol violation (the
        single-entry cache can no longer vouch for it) and is rejected
        rather than silently re-applied.
        """
        with self._lock:
            entry = self._entries.get(cid)
            if entry is None:
                return None
            self._entries.move_to_end(cid)
            last_seq, response = entry
            if seq == last_seq:
                return dict(response, replayed=True)
            if seq < last_seq:
                raise ProtocolError(
                    f"stale seq {seq} for client {cid!r} (last was {last_seq})")
            return None

    def record(self, cid: str, seq: int, response: dict) -> None:
        """Remember the response for (cid, seq), evicting LRU clients."""
        with self._lock:
            self._entries[cid] = (seq, dict(response))
            self._entries.move_to_end(cid)
            while len(self._entries) > self._max:
                self._entries.popitem(last=False)


def ok_response(**payload) -> dict:
    """A success response carrying ``payload``."""
    return {"ok": True, **payload}


def error_response(message: str) -> dict:
    """A failure response with a human-readable reason."""
    return {"ok": False, "error": str(message)}


def degraded_response(stream_id: str, retry_after_s: float, message: str) -> dict:
    """A structured failure telling the client a tenant's circuit is open.

    Distinguished from :func:`error_response` by ``degraded: true`` plus a
    machine-readable ``retry_after_s`` so clients can back off instead of
    hammering a tenant that is repeatedly failing.
    """
    return {
        "ok": False,
        "error": str(message),
        "degraded": True,
        "stream_id": stream_id,
        "retry_after_s": float(retry_after_s),
    }
