"""JSON-lines wire protocol shared by the server and the client.

One request per line, one response per line, UTF-8 JSON — trivially
debuggable with ``nc`` and language-agnostic.  Requests are objects with an
``op`` field; responses always carry ``ok`` (bool) plus either the op's
payload or an ``error`` string.  Malformed input yields an error response,
never a dropped connection, so a misbehaving client cannot wedge a worker
thread mid-frame.
"""

from __future__ import annotations

import json

__all__ = [
    "DEFAULT_MAX_REQUEST_BYTES",
    "MAX_LINE_BYTES",
    "OPS",
    "ProtocolError",
    "decode_line",
    "encode_message",
    "error_response",
    "ok_response",
]

#: Backstop against unbounded request frames (ingest batches should be
#: chunked client-side well below this).
MAX_LINE_BYTES = 64 * 1024 * 1024

#: Per-connection request-line cap enforced while *reading* — a client that
#: never sends a newline must not grow server memory without bound.  The
#: default comfortably holds the stock client's 4096-row batches; servers
#: accepting bigger frames can raise it (``--max-request-mb``) up to the
#: :data:`MAX_LINE_BYTES` backstop.
DEFAULT_MAX_REQUEST_BYTES = 8 * 1024 * 1024

#: The operations the service exposes.
OPS = ("ping", "insert", "delete", "query", "checkpoint", "restore",
       "stats", "shutdown")


class ProtocolError(ValueError):
    """A request line that cannot be parsed into a valid operation."""


def encode_message(obj: dict) -> bytes:
    """Serialize one message to a newline-terminated JSON frame."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict:
    """Parse one request frame; raises :class:`ProtocolError` on junk."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"request exceeds {MAX_LINE_BYTES} bytes")
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed JSON request: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {OPS}")
    return obj


def ok_response(**payload) -> dict:
    """A success response carrying ``payload``."""
    return {"ok": True, **payload}


def error_response(message: str) -> dict:
    """A failure response with a human-readable reason."""
    return {"ok": False, "error": str(message)}
