"""The distributed protocols of Section 4.3.

:func:`distributed_storing` implements Lemma 4.6: every machine computes its
local non-empty cells for one (level, sub-stream), sends cells + local
counts + local small-cell points (or FAIL when it holds more than α cells),
and the coordinator merges — yielding exactly the :class:`StoringResult`
contract of the streaming sketches.

:func:`distributed_coreset` implements Theorem 4.7:

1. the coordinator broadcasts the grid shift and hash seeds (all machines
   must agree on the randomness);
2. a two-round pilot protocol stands in for the [FL11/BFL16/…] distributed
   2-approximation of OPT: machines send uniform samples, the coordinator
   seeds centers and broadcasts them, machines return their exact local
   costs — the summed cost upper-bounds OPT over the full input;
3. guesses o descend from pilot/8; for each, the 3(L+1) Storing protocols
   run and the coordinator replays Algorithms 1+2 via
   :func:`repro.streaming.streaming_coreset.assemble_coreset`; a FAIL
   halves o and retries (every retry's communication stays charged).
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.core.params import CoresetParams
from repro.core.weighted import Coreset
from repro.distributed.network import Network
from repro.grid.grids import HierarchicalGrids
from repro.metrics.costs import uncapacitated_cost
from repro.solvers.kmeanspp import kmeans_plusplus
from repro.streaming.storing import StoringResult
from repro.streaming.streaming_coreset import _SharedHashes, assemble_coreset
from repro.utils.bits import cells_bits, float_bits, point_bits
from repro.utils.rng import as_rng, derive_seed
from repro.utils.validation import FailedConstruction

__all__ = ["distributed_storing", "distributed_coreset"]


def distributed_storing(
    network: Network,
    local_items: list,
    alpha: int,
    beta: int,
    params: CoresetParams,
    recover_points: bool = True,
    label: str = "storing",
) -> StoringResult:
    """Lemma 4.6: merge per-machine (cell_key, point_key) multisets.

    ``local_items[j]`` is machine j's list of (cell_key, point_key) pairs for
    this sub-stream.  Raises :class:`FailedConstruction` when any machine
    exceeds α local non-empty cells (the lemma's FAIL).
    """
    merged_cells: Counter = Counter()
    merged_points: dict[int, Counter] = {}
    cell_id_bits = cells_bits(1, params.d, params.delta, params.L + 2)
    pt_bits = point_bits(params.d, params.delta)

    for j, items in enumerate(local_items):
        cells: Counter = Counter()
        pts: dict[int, Counter] = {}
        for ck, pk in items:
            cells[ck] += 1
            if recover_points:
                pts.setdefault(ck, Counter())[pk] += 1
        if len(cells) > alpha:
            network.send_up(j, "FAIL", bits=8, label=f"{label}-fail")
            raise FailedConstruction(
                f"machine {j}: {len(cells)} local cells exceed alpha={alpha}"
            )
        small_local = {c: p for c, p in pts.items() if cells[c] <= beta}
        n_small = sum(len(p) for p in small_local.values())
        bits = len(cells) * (cell_id_bits + 64) + n_small * pt_bits
        network.send_up(j, (cells, small_local), bits=bits, label=label)
        merged_cells.update(cells)
        for c, p in small_local.items():
            merged_points.setdefault(c, Counter()).update(p)

    small = {}
    if recover_points:
        for c, cnt in merged_cells.items():
            if cnt <= beta:
                # Every machine's local share was ≤ β, so all points arrived.
                small[c] = dict(merged_points.get(c, {}))
    return StoringResult(cells=dict(merged_cells), small_points=small)


def _machine_substreams(points: np.ndarray, grids: HierarchicalGrids,
                        shared: _SharedHashes, params: CoresetParams, o: float):
    """Local (cell, point) selections per level for the three sub-streams."""
    L = params.L
    out_h: list[list] = [[] for _ in range(L + 1)]
    out_hp: list[list] = [[] for _ in range(L + 1)]
    out_hhat: list[list] = [[] for _ in range(L + 1)]
    if points.shape[0] == 0:
        return out_h, out_hp, out_hhat
    pkeys = [int(x) for x in grids.point_keys(points)]
    for i in range(L + 1):
        ckeys = grids.cell_keys(points, i)
        thr_h = int(params.psi(i, o) * shared.h[i].prime)
        thr_hp = int(params.psi_part(i, o) * shared.hp[i].prime)
        thr_hhat = int(params.phi(i, o) * shared.hhat[i].prime)
        vh = shared.h[i].values(pkeys)
        vhp = shared.hp[i].values(pkeys)
        vhh = shared.hhat[i].values(pkeys)
        for idx, pk in enumerate(pkeys):
            ck = int(ckeys[idx])
            if vh[idx] < thr_h:
                out_h[i].append((ck, pk))
            if vhp[idx] < thr_hp:
                out_hp[i].append((ck, pk))
            if vhh[idx] < thr_hhat:
                out_hhat[i].append((ck, pk))
    return out_h, out_hp, out_hhat


def _distributed_pilot(network: Network, params: CoresetParams, seed: int,
                       sample_per_machine: int = 256) -> float:
    """Two-round distributed upper bound on OPT^(r) (the 2-approx stand-in)."""
    rng = as_rng(derive_seed(seed, "dist-pilot"))
    pooled = []
    pt_bits = point_bits(params.d, params.delta)
    for m in network.machines:
        if m.n == 0:
            continue
        take = min(sample_per_machine, m.n)
        idx = rng.choice(m.n, size=take, replace=False)
        sample = m.points[idx]
        network.send_up(m.machine_id, sample, bits=take * pt_bits, label="pilot-sample")
        pooled.append(sample)
    if not pooled:
        return 0.0
    pool = np.concatenate(pooled, axis=0)
    centers = kmeans_plusplus(pool, min(params.k, len(pool)), r=params.r,
                              seed=derive_seed(seed, "dist-pilot-seeding"))
    network.broadcast(centers, bits=params.k * params.d * 64, label="pilot-centers")
    total = 0.0
    for m in network.machines:
        local = uncapacitated_cost(m.points, centers, r=params.r) if m.n else 0.0
        network.send_up(m.machine_id, local, bits=float_bits(1), label="pilot-cost")
        total += local
    return total


def distributed_coreset(
    network: Network,
    params: CoresetParams,
    seed: int = 0,
    o: float | None = None,
    grids: HierarchicalGrids | None = None,
) -> Coreset:
    """Theorem 4.7: leave a strong (η, ε)-coreset at the coordinator.

    ``network.total_bits`` afterwards holds the exact communication cost.
    """
    if grids is None:
        grids = HierarchicalGrids(params.delta, params.d,
                                  seed=derive_seed(seed, "grids"))
    # Round 0: broadcast shared randomness (shift vector + hash seeds).
    network.broadcast(None, bits=params.d * 64 + 64, label="randomness")
    shared = _SharedHashes(params, grids, derive_seed(seed, "hashes"))

    if o is None:
        pilot = _distributed_pilot(network, params, seed)
        o = max(1.0, pilot / 8.0)

    last_reason = "no attempts"
    guess = float(o)
    while guess >= 0.5:
        try:
            return _attempt(network, params, grids, shared, guess)
        except FailedConstruction as exc:
            last_reason = exc.reason
            guess /= 2.0
    raise FailedConstruction(f"all distributed guesses failed; last: {last_reason}")


def _attempt(network: Network, params: CoresetParams, grids: HierarchicalGrids,
             shared: _SharedHashes, o: float) -> Coreset:
    per_machine = [
        _machine_substreams(m.points, grids, shared, params, o)
        for m in network.machines
    ]
    res_h, res_hp, res_hhat = [], [], []
    for i in range(params.L + 1):
        res_h.append(distributed_storing(
            network, [pm[0][i] for pm in per_machine],
            alpha=params.storing_alpha(i, o, params.psi(i, o)), beta=1,
            params=params, recover_points=False, label=f"h-{i}",
        ))
        res_hp.append(distributed_storing(
            network, [pm[1][i] for pm in per_machine],
            alpha=params.storing_alpha(i, o, params.psi_part(i, o)), beta=1,
            params=params, recover_points=False, label=f"hp-{i}",
        ))
        res_hhat.append(distributed_storing(
            network, [pm[2][i] for pm in per_machine],
            alpha=params.storing_alpha(i, o, params.phi(i, o)),
            beta=params.storing_beta(i, o),
            params=params, recover_points=True, label=f"hhat-{i}",
        ))
    coreset = assemble_coreset(params, o, grids, res_h, res_hp, res_hhat)
    if math.isfinite(o):
        coreset.input_size = sum(m.n for m in network.machines)
    return coreset
