"""Real multi-process coordinator fleet: Theorem 4.7 over the wire.

:mod:`repro.distributed.protocol` validates the paper's distributed result
in one process.  This module promotes it to a real deployment: each of
``s`` **sites** is a separate ``repro serve`` process ingesting its local
share of the stream, and a :class:`Coordinator` pulls every site's full
serialized sketch state over the JSON-lines wire protocol (the
``pull_state`` op — the checkpoint envelope doubling as the transfer
encoding) and merges the states through sketch linearity
(:func:`repro.streaming.merge.merge_streaming_states`).  Because every
site is built from the same ``(params, seed)``, and routing of points to
shards is the same deterministic function everywhere, shard ``j`` summed
across sites equals shard ``j`` of a single process that saw the whole
stream — so the coordinator's merged state, and every query answer derived
from it, is **bit-identical** to a single-process reference.

Bit accounting
--------------
Theorem 4.7 is a statement about communication *bits*, so the fleet keeps
the exact accounting discipline of the in-process simulation: every wire
exchange is charged to a :class:`~repro.distributed.network.Network` via
the policy functions below (:func:`pull_state_bits`,
:data:`SITE_STATS_FIELDS`, :data:`REQUEST_BITS`).  The charge is computed
from the *structure* of the payload — sketch bits via ``space_bits()``,
one :data:`~repro.utils.bits.FLOAT_BITS` word per counter — never from
JSON byte counts, which would measure the encoding, not the algorithm
(exactly how :mod:`repro.distributed.protocol` charges its messages).
Both the real :class:`Coordinator` and :func:`simulate_fleet` charge
through the same functions on sketches with identical contents, so the
real path's measured bits equal the in-process simulation's by
construction — which is what `bench_fleet.py` asserts.

Site-local ingest (the feeder delivering a site its own stream) is *not*
charged: in the coordinator model of Section 4.3 each machine holds its
share for free and only machine ↔ coordinator traffic counts.

Failure and recovery
--------------------
:class:`SiteFeeder` integrates the PR 7 fault plan via the ``site.kill``
fault point: a fired rule SIGKILLs the site process *before* the next
batch is sent.  Recovery is checkpoint + journal replay: the feeder
checkpoints its site every ``checkpoint_every`` acked batches and journals
every batch since the last checkpoint, so on a dead site it restarts the
process from the last checkpoint (``repro serve --restore``) and replays
the journal.  A batch is acked only after it is applied, and checkpoints
happen only after acks, so the restored-state + journal replay applies
every batch exactly once — the recovered site is bit-identical to one that
never died, which the fleet tests assert end to end.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.distributed.network import Machine, Network
from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.engine import ClusteringService, ServiceConfig
from repro.service.faults import fault_point
from repro.service.protocol import DEFAULT_STREAM_ID
from repro.service.state import sharded_state_from_dict
from repro.service.tenants import TenantRegistry
from repro.streaming.merge import merge_streaming_states
from repro.utils.bits import float_bits

# This module speaks the service wire protocol from outside its directory;
# the WIRE lint cross-checks these call sites against protocol.OPS.
# repro-lint: wire-speaker=../service/protocol.py ops=insert,delete,query,checkpoint,pull_state,site_stats,shutdown

__all__ = [
    "REQUEST_BITS",
    "SITE_STATS_FIELDS",
    "Coordinator",
    "FleetRunner",
    "SiteFeeder",
    "SiteProcess",
    "accountant",
    "merge_sharded",
    "plan_site_ops",
    "pull_state_bits",
    "run_fleet",
    "simulate_fleet",
]

#: Bits charged for one coordinator → site request frame: an op code from
#: the protocol's fixed vocabulary (well under 2^16 ops).
REQUEST_BITS = 16

#: The fixed vocabulary of a ``site_stats`` reply — the engine guarantees
#: exactly these scalar counters, so the reply is charged a constant
#: ``float_bits(len(SITE_STATS_FIELDS))``.
SITE_STATS_FIELDS = ("version", "events", "insertions", "deletions",
                     "num_shards", "space_bits")


# --------------------------------------------------------------- bit policy
def pull_state_bits(ingest) -> int:
    """Bits charged for one ``pull_state`` reply.

    The sketch payload at its information-theoretic size (``space_bits()``
    — the same figure E3/E7 charge for sketch storage) plus one word per
    ingest counter: version, insertions, deletions, and one event count
    per shard.
    """
    return ingest.space_bits() + float_bits(3 + ingest.num_shards)


def accountant(num_sites: int) -> Network:
    """A :class:`Network` used purely as a bit meter (no local points) —
    what a coordinator attaching to already-running sites charges into."""
    return Network(machines=[Machine(j, np.empty((0, 1), dtype=np.int64))
                             for j in range(num_sites)])


# ----------------------------------------------------------------- merging
def merge_sharded(ingests: list):
    """Fold pulled site states into one
    :class:`~repro.service.shards.ShardedIngest` (in place, into the
    first; the others are consumed).

    Shard-wise: shard ``j`` of the result is the sketch sum of shard ``j``
    across sites.  All sites route points with the same deterministic
    key-mix over the same shard count, so this equals shard ``j`` of a
    single process that ingested the concatenated stream — the fan-in is
    exact, not approximate.  Counters sum likewise; the merged ``version``
    is the total number of batches applied fleet-wide, which is exactly
    the version a single process fed the same batches would report.
    """
    ingests = list(ingests)
    if not ingests:
        raise ValueError("need at least one site state to merge")
    acc = ingests[0]
    for other in ingests[1:]:  # scalar-ok: per-site fan-in, not data plane
        if other.num_shards != acc.num_shards:
            raise ValueError(
                f"cannot merge fleet states with {acc.num_shards} vs "
                f"{other.num_shards} shards")
        for sa, sb in zip(acc.shards, other.shards):
            merge_streaming_states(sa, sb)
        acc.version += other.version
        acc.events_per_shard = [a + b for a, b in
                                zip(acc.events_per_shard, other.events_per_shard)]
        acc.num_insertions += other.num_insertions
        acc.num_deletions += other.num_deletions
    return acc


# ------------------------------------------------------------- coordinator
class Coordinator:
    """Pulls and merges site states over the wire, with exact bit metering.

    Parameters
    ----------
    sites:
        ``(host, port)`` of each running site server.
    network:
        The bit meter; defaults to a fresh :func:`accountant`.
    stream_id:
        Tenant every site request addresses; ``None`` = the ``"default"``
        tenant, whose seed is the base config seed on every site — which
        is what makes the cross-site merge exact.  A named stream works
        too: ``derive_seed`` is deterministic, so all sites agree on its
        randomness (the single-process reference must then be built from
        the same derived config).
    """

    def __init__(self, sites: list[tuple[str, int]], network: Network | None = None,
                 stream_id: str | None = None, timeout: float = 60.0,
                 retries: int = 4):
        self.sites = [(str(h), int(p)) for h, p in sites]
        self.network = network if network is not None else accountant(len(self.sites))
        self.stream_id = stream_id
        self._clients = [ServiceClient(h, p, timeout=timeout,
                                       stream_id=stream_id, retries=retries)
                         for h, p in self.sites]

    # ---------------------------------------------------------------- polls
    def poll_site_stats(self) -> list[dict]:
        """One ``site_stats`` round: poll every site's fixed counters,
        charging a request frame down and a constant reply up per site."""
        out = []
        for j, cli in enumerate(self._clients):
            self.network.send_down(j, None, bits=REQUEST_BITS,
                                   label="site_stats-req")
            site = cli.site_stats()
            self.network.send_up(j, None,
                                 bits=float_bits(len(SITE_STATS_FIELDS)),
                                 label="site_stats")
            out.append(site)
        return out

    def pull_ingests(self) -> tuple[ServiceConfig, list, list[dict]]:
        """One ``pull_state`` round: every site's full serialized sketch.

        Returns ``(shared config, rebuilt ShardedIngest per site, raw
        envelopes)``.  Verifies all sites were built from one logical
        config (seed/params/backend/shards) — anything else would make
        the merge silently wrong.  ``workers`` and ``supervise`` are
        normalized away: a site running its shards in worker processes
        serializes the identical state.
        """
        envelopes = []
        for j, cli in enumerate(self._clients):
            self.network.send_down(j, None, bits=REQUEST_BITS,
                                   label="pull_state-req")
            envelopes.append(cli.pull_state())
        configs = [
            dataclasses.replace(ServiceConfig.from_dict(env["config"]),
                                workers=0, supervise=True)
            for env in envelopes
        ]
        base = configs[0]
        for j, cfg in enumerate(configs[1:], start=1):
            if cfg != base:
                raise ValueError(
                    f"site {j} config {cfg} differs from site 0 config "
                    f"{base}; a fleet must share one (params, seed)")
        ingests = []
        for j, env in enumerate(envelopes):
            ingest = sharded_state_from_dict(env["ingest"])
            self.network.send_up(j, None, bits=pull_state_bits(ingest),
                                 label="pull_state")
            ingests.append(ingest)
        return base, ingests, envelopes

    def merged_service(self) -> ClusteringService:
        """Pull every site and return a service over the merged state.

        The returned :class:`ClusteringService` runs the *exact* engine
        query path — same solver seed, restarts, and capacity policy as
        any single-process service with this config — so its answers are
        bit-identical to the reference the fleet tests compare against.
        """
        config, ingests, envelopes = self.pull_ingests()
        merged = merge_sharded(ingests)
        service = ClusteringService(config, ingest=merged)
        service.bytes_ingested = sum(
            int(env.get("counters", {}).get("bytes_ingested", 0))
            for env in envelopes)
        return service

    def close(self) -> None:
        """Close every site connection (idempotent)."""
        for cli in self._clients:
            cli.close()

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ------------------------------------------------------------ site process
_BANNER_RE = re.compile(r"listening on ([\d.]+):(\d+)")


def _serve_argv(config: ServiceConfig, port: int = 0,
                restore: str | None = None) -> list[str]:
    """The ``repro serve`` command line reproducing ``config`` exactly."""
    argv = [sys.executable, "-m", "repro", "serve", "--port", str(port),
            "--k", str(config.k), "--d", str(config.d),
            "--delta", str(config.delta), "--r", str(config.r),
            "--eps", str(config.eps), "--eta", str(config.eta),
            "--shards", str(config.num_shards),
            "--workers", str(config.workers),
            "--backend", config.backend,
            "--capacity-slack", str(config.capacity_slack),
            "--restarts", str(config.restarts),
            "--seed", str(config.seed)]
    if restore is not None:
        argv += ["--restore", str(restore)]
    return argv


class SiteProcess:
    """One spawned ``repro serve`` worker — a real site of the fleet.

    The subprocess runs the stock CLI entry point (the same binary
    operators run), binds an ephemeral port, and reports it through its
    startup banner, which :meth:`spawn` parses.
    """

    def __init__(self, site_id: int, config: ServiceConfig,
                 host: str = "127.0.0.1"):
        self.site_id = int(site_id)
        self.config = config
        self.host = host
        self.proc: subprocess.Popen | None = None
        self.address: tuple[str, int] | None = None

    def spawn(self, restore: str | None = None, timeout_s: float = 30.0) -> tuple[str, int]:
        """Start the server process; returns ``(host, port)`` once bound."""
        import repro

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = (src_dir + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else src_dir)
        # Sites must not inherit the driver's fault plan: site.kill is the
        # *driver's* fault point (it kills the subprocess), and in-server
        # faults are a separate experiment (bench_service_chaos).
        env.pop("REPRO_FAULT_PLAN", None)
        self.proc = subprocess.Popen(
            _serve_argv(self.config, port=0, restore=restore),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env)
        deadline = time.monotonic() + timeout_s
        line = ""
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            m = _BANNER_RE.search(line)
            if m:
                self.address = (m.group(1), int(m.group(2)))
                return self.address
        raise RuntimeError(
            f"site {self.site_id} did not start (last output: {line!r})")

    def is_alive(self) -> bool:
        """Whether the subprocess is still running."""
        return self.proc is not None and self.proc.poll() is None

    def kill(self) -> None:
        """SIGKILL the site (the ``site.kill`` fault action) and reap it."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=30)

    def shutdown(self, timeout_s: float = 30.0) -> None:
        """Graceful stop over the wire, falling back to SIGKILL."""
        if self.proc is None or self.proc.poll() is not None:
            return
        try:
            if self.address is not None:
                with ServiceClient(*self.address, retries=0, timeout=5.0) as cli:
                    cli.shutdown()
            self.proc.wait(timeout=timeout_s)
        except Exception:
            self.kill()


class FleetRunner:
    """Spawn and supervise ``num_sites`` real site processes.

    Owns a working directory for per-site recovery checkpoints.  All
    sites share one :class:`ServiceConfig` — the precondition for exact
    merging — and every restart rebuilds the site from the stock CLI, so
    recovery exercises the same path an operator would.
    """

    def __init__(self, config: ServiceConfig, num_sites: int,
                 workdir=None, host: str = "127.0.0.1"):
        if num_sites < 1:
            raise ValueError(f"num_sites must be >= 1, got {num_sites}")
        self.config = config
        self.num_sites = int(num_sites)
        self._owns_workdir = workdir is None
        self.workdir = Path(workdir) if workdir is not None else Path(
            tempfile.mkdtemp(prefix="repro_fleet_"))
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.host = host
        self.sites: list[SiteProcess] = []
        self.restarts = 0

    def start(self) -> list[tuple[str, int]]:
        """Spawn every site; returns their addresses."""
        self.sites = [SiteProcess(j, self.config, host=self.host)
                      for j in range(self.num_sites)]
        return [site.spawn() for site in self.sites]

    def addresses(self) -> list[tuple[str, int]]:
        """Current ``(host, port)`` of every site (ports move on restart)."""
        return [site.address for site in self.sites]

    def checkpoint_path(self, site_id: int) -> Path:
        """Where site ``site_id``'s recovery checkpoints live."""
        return self.workdir / f"site-{site_id}.ckpt.json"

    def kill_site(self, site_id: int) -> None:
        """SIGKILL one site (fault injection's hammer)."""
        self.sites[site_id].kill()

    def restart_site(self, site_id: int, restore: str | None = None,
                     ) -> tuple[str, int]:
        """Replace a dead (or killed) site with a fresh process, optionally
        restored from its last recovery checkpoint; returns the new address."""
        old = self.sites[site_id]
        old.kill()
        site = SiteProcess(site_id, self.config, host=self.host)
        site.spawn(restore=restore)
        self.sites[site_id] = site
        self.restarts += 1
        return site.address

    def close(self) -> None:
        """Stop every site and remove an owned workdir (idempotent)."""
        for site in self.sites:
            site.shutdown()
        self.sites = []
        if self._owns_workdir and self.workdir.exists():
            shutil.rmtree(self.workdir, ignore_errors=True)

    def __enter__(self) -> "FleetRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------- feeding
class SiteFeeder:
    """Deliver one site its local stream with exactly-once recovery.

    Every batch is journaled before it is sent; every ``checkpoint_every``
    acked batches the site is checkpointed over the wire (into the
    runner's workdir) and the journal truncated.  When the site dies —
    the ``site.kill`` fault point fires between batches, or a send runs
    out of retries — the feeder restarts it from the last checkpoint and
    replays the journal.  Acks happen only after application and
    checkpoints only after acks, so restore + replay applies each batch
    exactly once and the recovered site is bit-identical to an unkilled
    one.
    """

    def __init__(self, runner: FleetRunner, site_id: int,
                 stream_id: str | None = None, checkpoint_every: int | None = 4,
                 retries: int = 2, timeout: float = 30.0):
        self.runner = runner
        self.site_id = int(site_id)
        self.stream_id = stream_id
        self.checkpoint_every = checkpoint_every
        host, port = runner.sites[site_id].address
        self.client = ServiceClient(host, port, timeout=timeout,
                                    stream_id=stream_id, retries=retries,
                                    backoff_s=0.02, backoff_cap_s=0.2)
        self.journal: list[tuple[str, np.ndarray]] = []
        self.batches_sent = 0
        self.events_sent = 0
        self.recoveries = 0
        self._since_checkpoint = 0
        self._has_checkpoint = False

    # ------------------------------------------------------------ ingestion
    def apply(self, op: str, rows: np.ndarray) -> int:
        """Apply one batch (``"insert"`` or ``"delete"``) with recovery.

        Fires the ``site.kill`` fault point first — a kill always lands
        *between* batches, the deterministic schedule the chaos tests
        replay — then sends, recovering the site if the send fails.
        """
        rows = np.asarray(rows)
        if op not in ("insert", "delete"):
            raise ValueError(f"unknown feeder op {op!r}")
        act = fault_point("site.kill", site=self.site_id,
                          batch=self.batches_sent)
        if act is not None:
            self.runner.kill_site(self.site_id)
        self.journal.append((op, rows))
        try:
            applied = self._send(op, rows)
        except ServiceUnavailable:
            self._recover()
            applied = len(rows)  # replay delivered the whole journal
        self.batches_sent += 1
        self.events_sent += len(rows)
        self._since_checkpoint += 1
        if (self.checkpoint_every is not None
                and self._since_checkpoint >= self.checkpoint_every):
            self.checkpoint()
        return applied

    def insert(self, rows) -> int:
        """Insert one batch of (n, d) rows into the site's stream."""
        return self.apply("insert", rows)

    def delete(self, rows) -> int:
        """Delete one batch of (n, d) rows from the site's stream."""
        return self.apply("delete", rows)

    def _send(self, op: str, rows: np.ndarray) -> int:
        fn = self.client.insert if op == "insert" else self.client.delete
        return fn(rows, batch_size=max(1, len(rows)))

    # ------------------------------------------------------------- recovery
    def checkpoint(self) -> None:
        """Checkpoint the site over the wire and truncate the journal."""
        path = self.runner.checkpoint_path(self.site_id)
        self.client.checkpoint(str(path))
        self.journal.clear()
        self._since_checkpoint = 0
        self._has_checkpoint = True

    def _recover(self) -> None:
        """Restart the dead site from its last checkpoint and replay the
        journal (which includes the batch whose send just failed)."""
        restore = (str(self.runner.checkpoint_path(self.site_id))
                   if self._has_checkpoint else None)
        host, port = self.runner.restart_site(self.site_id, restore=restore)
        self.client.host, self.client.port = host, port
        self.client.close()  # drop the poisoned connection; next send redials
        for op, rows in self.journal:
            self._send(op, rows)
        self.recoveries += 1

    def close(self) -> None:
        """Close the wire connection (the site keeps running)."""
        self.client.close()


# ------------------------------------------------------------ fleet driver
def plan_site_ops(points: np.ndarray, num_sites: int, *, seed: int = 0,
                  mode: str = "random", batch_size: int = 512,
                  delete_fraction: float = 0.0) -> list[list[tuple[str, np.ndarray]]]:
    """Deterministic per-site batch schedule for one fleet run.

    Partitions ``points`` over sites with
    :meth:`Network.partition`'s exact policy (same ``seed``/``mode`` ⇒ same
    shares), chunks each share into insert batches, and optionally appends
    delete batches for the first ``delete_fraction`` of each share — the
    churn that makes linearity visible.  Both :func:`run_fleet` and
    :func:`simulate_fleet` consume this schedule, so the real and
    simulated runs see identical streams.
    """
    net = Network.partition(points, num_sites, seed=seed, mode=mode)
    ops: list[list[tuple[str, np.ndarray]]] = []
    step = max(1, int(batch_size))
    for machine in net.machines:
        local = machine.points
        site_ops = [("insert", local[lo: lo + step])
                    for lo in range(0, len(local), step)]
        doomed = local[: int(len(local) * delete_fraction)]
        site_ops += [("delete", doomed[lo: lo + step])
                     for lo in range(0, len(doomed), step)]
        ops.append([(op, rows) for op, rows in site_ops if len(rows)])
    return ops


def _reference_service(config: ServiceConfig,
                       site_ops: list[list[tuple[str, np.ndarray]]],
                       ) -> ClusteringService:
    """Single-process reference fed the same batches in site order.

    Batch structure is preserved (one version bump per batch), so even
    the version counter matches the fleet's merged state exactly.
    """
    ref = ClusteringService(dataclasses.replace(config, workers=0))
    for ops in site_ops:
        for op, rows in ops:
            (ref.insert if op == "insert" else ref.delete)(rows)
    return ref


def _merged_state_json(service: ClusteringService) -> str:
    """Canonical JSON of a service's full ingest state (the bit-identity
    comparison medium; JSON round-trips our arbitrary-precision keys)."""
    return json.dumps(service.ingest.to_state_dict(), sort_keys=True,
                      separators=(",", ":"))


def simulate_fleet(config: ServiceConfig,
                   site_ops: list[list[tuple[str, np.ndarray]]],
                   ) -> tuple[ClusteringService, Network]:
    """In-process twin of a fleet run, charging the identical bit policy.

    Builds one in-process service per site, applies the planned batches,
    then performs the coordinator's exchange — one ``site_stats`` poll and
    one ``pull_state`` per site — against a fresh bit meter.  Returns the
    merged service and the meter; the real run's ``uplink_bits`` /
    ``downlink_bits`` must equal this meter's exactly (the sketches hold
    identical contents, and both paths charge through the same policy
    functions).
    """
    network = accountant(len(site_ops))
    services = []
    for ops in site_ops:
        svc = ClusteringService(dataclasses.replace(config, workers=0))
        for op, rows in ops:
            (svc.insert if op == "insert" else svc.delete)(rows)
        services.append(svc)
    for j, svc in enumerate(services):
        network.send_down(j, None, bits=REQUEST_BITS, label="site_stats-req")
        network.send_up(j, None, bits=float_bits(len(SITE_STATS_FIELDS)),
                        label="site_stats")
    ingests = []
    for j, svc in enumerate(services):
        network.send_down(j, None, bits=REQUEST_BITS, label="pull_state-req")
        ingest = sharded_state_from_dict(svc.ingest.to_state_dict())
        network.send_up(j, None, bits=pull_state_bits(ingest),
                        label="pull_state")
        ingests.append(ingest)
        svc.close()
    merged = ClusteringService(dataclasses.replace(config, workers=0),
                               ingest=merge_sharded(ingests))
    return merged, network


def run_fleet(config: ServiceConfig, points: np.ndarray, num_sites: int, *,
              partition_seed: int = 0, mode: str = "random",
              batch_size: int = 512, delete_fraction: float = 0.0,
              checkpoint_every: int | None = 4, stream_id: str | None = None,
              verify: bool = True, query: bool = True,
              workdir=None) -> dict:
    """One end-to-end fleet run: spawn, feed, pull, merge, account, verify.

    Spawns ``num_sites`` real ``repro serve`` processes, feeds each its
    :func:`plan_site_ops` share (recovering any site the active fault
    plan kills), then pulls and merges all site states through a
    bit-metered :class:`Coordinator`.  With ``verify=True`` the merged
    state is compared byte-for-byte against a single-process reference
    fed the same batches, and the measured wire bits against
    :func:`simulate_fleet`'s accounting of the identical schedule.

    Returns a JSON-safe report (sites, events, bits, timings, verify
    verdicts) — the record `bench_fleet.py` appends to BENCH_service.json.
    """
    site_ops = plan_site_ops(points, num_sites, seed=partition_seed,
                             mode=mode, batch_size=batch_size,
                             delete_fraction=delete_fraction)
    # The config the sites' tenant actually runs: a named stream gets its
    # per-tenant derived seed (identically on every site), so the reference
    # and the simulation must derive it the same way.
    effective = TenantRegistry(config).tenant_config(
        stream_id if stream_id is not None else DEFAULT_STREAM_ID)
    report: dict = {
        "sites": num_sites,
        "events": int(sum(len(r) for ops in site_ops for _, r in ops)),
        "batches": int(sum(len(ops) for ops in site_ops)),
        "partition_mode": mode,
        "config": config.to_dict(),
    }
    network = accountant(num_sites)
    merged = reference = None
    with FleetRunner(config, num_sites, workdir=workdir) as runner:
        runner.start()
        feeders = [SiteFeeder(runner, j, stream_id=stream_id,
                              checkpoint_every=checkpoint_every)
                   for j in range(num_sites)]
        try:
            t0 = time.perf_counter()
            for j, ops in enumerate(site_ops):
                for op, rows in ops:
                    feeders[j].apply(op, rows)
            ingest_s = time.perf_counter() - t0
            report["recoveries"] = sum(f.recoveries for f in feeders)
            report["restarts"] = runner.restarts
            with Coordinator(runner.addresses(), network=network,
                             stream_id=stream_id) as coord:
                t0 = time.perf_counter()
                report["site_stats"] = coord.poll_site_stats()
                merged = coord.merged_service()
                report["merge_s"] = round(time.perf_counter() - t0, 3)
        finally:
            for f in feeders:
                f.close()
    report.update({
        "ingest_s": round(ingest_s, 3),
        "events_per_s": int(report["events"] / max(ingest_s, 1e-9)),
        "uplink_bits": network.uplink_bits,
        "downlink_bits": network.downlink_bits,
        "messages": network.messages,
    })
    try:
        if query:
            result, _ = merged.query()
            report["result"] = result.to_dict()
        if verify:
            reference = _reference_service(effective, site_ops)
            state_ok = _merged_state_json(merged) == _merged_state_json(reference)
            report["state_identical"] = bool(state_ok)
            if query:
                ref_result, _ = reference.query()
                report["answer_identical"] = (
                    result.to_dict() == ref_result.to_dict())
            sim_merged, sim_net = simulate_fleet(effective, site_ops)
            report["sim_uplink_bits"] = sim_net.uplink_bits
            report["sim_downlink_bits"] = sim_net.downlink_bits
            report["bits_match_simulation"] = (
                network.uplink_bits == sim_net.uplink_bits
                and network.downlink_bits == sim_net.downlink_bits)
            sim_merged.close()
            report["passed"] = bool(
                report["state_identical"]
                and report.get("answer_identical", True)
                and report["bits_match_simulation"])
    finally:
        if merged is not None:
            merged.close()
        if reference is not None:
            reference.close()
    return report
