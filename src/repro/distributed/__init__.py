"""Coordinator-model distributed coreset construction (Section 4.3).

The model of [KVW14, BWZ16, …]: s machines each hold a share of Q; all
communication flows machine ↔ coordinator and is charged in bits.

- :mod:`repro.distributed.network` — the simulated machines/coordinator with
  exact bit accounting;
- :mod:`repro.distributed.protocol` — the Lemma 4.6 Storing protocol and
  the Theorem 4.7 driver producing a strong coreset at the coordinator with
  s·poly(ε⁻¹η⁻¹kd·logΔ) bits of communication;
- :mod:`repro.distributed.fleet` — the *real* deployment of the same
  protocol shape: one ``repro serve`` process per site, a
  :class:`~repro.distributed.fleet.Coordinator` pulling serialized sketch
  states over the wire protocol and merging them by linearity, with the
  identical bit accounting (import it explicitly; it is kept out of this
  package's eager imports so simulation-only users don't load the whole
  service stack).
"""

from repro.distributed.network import Network, Machine
from repro.distributed.protocol import distributed_storing, distributed_coreset

__all__ = ["Network", "Machine", "distributed_storing", "distributed_coreset"]
