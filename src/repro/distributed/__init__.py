"""Coordinator-model distributed coreset construction (Section 4.3).

The model of [KVW14, BWZ16, …]: s machines each hold a share of Q; all
communication flows machine ↔ coordinator and is charged in bits.

- :mod:`repro.distributed.network` — the simulated machines/coordinator with
  exact bit accounting;
- :mod:`repro.distributed.protocol` — the Lemma 4.6 Storing protocol and
  the Theorem 4.7 driver producing a strong coreset at the coordinator with
  s·poly(ε⁻¹η⁻¹kd·logΔ) bits of communication.
"""

from repro.distributed.network import Network, Machine
from repro.distributed.protocol import distributed_storing, distributed_coreset

__all__ = ["Network", "Machine", "distributed_storing", "distributed_coreset"]
