"""Simulated coordinator network with exact bit accounting.

Theorem 4.7 is a statement about communication *bits*; the simulation runs
in one process but every message is charged through :class:`Network`, which
the benchmarks read.  Message payloads are plain Python values; the charge
is computed from their structure (cell ids, counts, points, floats) by the
caller via the helpers in :mod:`repro.utils.bits` — the network records
whatever it is told a message costs, keeping the accounting policy visible
at each call site.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Machine", "Network"]


@dataclass
class Machine:
    """One machine holding a local share of the input points."""

    machine_id: int
    points: np.ndarray

    def __post_init__(self):
        self.points = np.asarray(self.points)

    @property
    def n(self) -> int:
        """Number of local points on this machine."""
        return self.points.shape[0]


@dataclass
class Network:
    """Bit-metered star network: machines ↔ coordinator."""

    machines: list
    uplink_bits: int = 0      # machines -> coordinator
    downlink_bits: int = 0    # coordinator -> machines (broadcasts)
    messages: int = 0
    log: list = field(default_factory=list)

    @classmethod
    def partition(cls, points: np.ndarray, s: int, seed=0, mode: str = "random") -> "Network":
        """Split a point set over ``s`` machines.

        ``mode="random"`` shuffles points uniformly; ``mode="skewed"`` sorts
        by first coordinate so machines hold disjoint spatial slabs — the
        adversarial case where no machine sees the global structure.
        """
        pts = np.asarray(points)
        rng = np.random.default_rng(seed)
        if mode == "random":
            order = rng.permutation(len(pts))
        elif mode == "skewed":
            order = np.argsort(pts[:, 0], kind="stable")
        else:
            raise ValueError(f"unknown partition mode {mode!r}")
        shares = np.array_split(order, s)
        return cls(machines=[Machine(i, pts[idx]) for i, idx in enumerate(shares)])

    @property
    def s(self) -> int:
        """Number of machines."""
        return len(self.machines)

    def send_up(self, machine_id: int, payload, bits: int, label: str = ""):
        """Machine → coordinator; returns the payload (zero-copy simulation)."""
        self.uplink_bits += int(bits)
        self.messages += 1
        self.log.append(("up", machine_id, label, int(bits)))
        return payload

    def send_down(self, machine_id: int, payload, bits: int, label: str = ""):
        """Coordinator → one machine (unicast, e.g. a fleet request frame)."""
        self.downlink_bits += int(bits)
        self.messages += 1
        self.log.append(("down", machine_id, label, int(bits)))
        return payload

    def broadcast(self, payload, bits: int, label: str = ""):
        """Coordinator → all machines; charged once per machine."""
        self.downlink_bits += int(bits) * self.s
        self.messages += self.s
        self.log.append(("down", -1, label, int(bits) * self.s))
        return payload

    @property
    def total_bits(self) -> int:
        """Total communication (both directions), the Theorem 4.7 metric."""
        return self.uplink_bits + self.downlink_bits
