"""Linear sketches for dynamic geometric streams.

The ``Storing`` subroutine of Lemma 4.2 must, under arbitrary interleavings
of insertions and deletions, recover at the end of the stream (a) all
non-empty cells with exact counts and (b) the points of every small cell.
The classic tool is an invertible-Bloom-lookup-table (IBLT) style sketch:

- each **bucket** holds a signed counter, a key-weighted sum, and a
  fingerprint sum over a random hash of the key.  A bucket is *1-sparse*
  (holds exactly one distinct key) iff ``keysum = count · key`` for the
  integer ``key = keysum / count`` and the fingerprint matches — the
  fingerprint makes false positives vanishingly unlikely;
- an :class:`IBLTSketch` hashes every key into one bucket per row (3 rows)
  and **peels**: recover a key from any 1-sparse bucket, subtract it
  everywhere, repeat.  Decoding succeeds w.h.p. whenever the number of
  distinct live keys is within the sketch's capacity, and the sketch is
  *linear*: updates commute, deletions are negative insertions.

Implementation notes (performance — see the HPC guide):

- bucket state is **sparse-columnar**: a dict maps each touched
  ``row·m + pos`` flat position to a slot index into three parallel growable
  accumulator arrays (int64 counts; object-dtype key/fingerprint sums, since
  both can exceed 64 bits).  :meth:`IBLTSketch.update_many` applies a whole
  batch with two Horner sweeps and three ``np.add.at`` scatters.  Slots are
  assigned in *first-touch event order* (event-major, row-minor — exactly
  the order the scalar path materializes buckets), so the :attr:`buckets`
  view, and therefore checkpoint bytes, are identical whether a stream was
  ingested one event at a time or in batches of any size.
- a zeroed slot is equivalent to an absent one; decoding only walks touched
  slots.  ``space_bits`` still charges the full pre-allocated layout a
  space-bounded implementation would use; ``resident_bits`` reports what is
  actually materialized.
- many sketches of identical shape (the nested per-bucket point sketches of
  :class:`~repro.streaming.storing.SketchStoring`) share one
  :class:`SketchHashFamily`, so creating a nested sketch allocates nothing
  but a dict and three empty arrays, and the per-key hash sweeps can be
  computed once per batch and fanned out to every nested sketch via
  :meth:`IBLTSketch.apply_hashed`.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.kwise import KWiseHash, UniformBucketHash
from repro.utils.rng import derive_seed

__all__ = ["IBLTSketch", "SketchHashFamily", "DecodeFailure"]


class DecodeFailure(Exception):
    """The sketch held more distinct keys than its capacity allows."""


class SketchHashFamily:
    """Row hashes + fingerprint shared by every IBLT of one shape."""

    ROWS = 3
    FP_MOD = (1 << 61) - 1

    def __init__(self, buckets_per_row: int, universe_bits: int, seed=0):
        self.m = int(buckets_per_row)
        self.universe_bits = int(universe_bits)
        self.row_hash = [
            UniformBucketHash(self.m, independence=6, universe_bits=universe_bits,
                              seed=derive_seed(seed, f"iblt-row-{r}"))
            for r in range(self.ROWS)
        ]
        self._fp = KWiseHash(independence=4, universe_bits=universe_bits,
                             seed=derive_seed(seed, "iblt-fp"))

    def positions(self, key: int) -> tuple[int, ...]:
        """Bucket index of ``key`` in every row."""
        return tuple(h.bucket(key) for h in self.row_hash)

    def fingerprint(self, key: int) -> int:
        """Verification fingerprint of ``key`` (mod a 61-bit prime)."""
        return self._fp.value(key) % self.FP_MOD

    def positions_np(self, keys) -> np.ndarray:
        """Bucket indices for a batch: shape ``(ROWS, n)`` int64 array."""
        return np.stack([h.buckets(keys) for h in self.row_hash])

    def fingerprints_np(self, keys) -> np.ndarray:
        """Fingerprints for a batch (int64 on the fast path, else object)."""
        vals = self._fp.values_np(keys) % self.FP_MOD
        return vals

    @property
    def randomness_bits(self) -> int:
        """Stored randomness of the row hashes plus the fingerprint hash."""
        return (sum(h.randomness_bits for h in self.row_hash)
                + self._fp.randomness_bits)


class IBLTSketch:
    """Peelable key/count sketch with a given distinct-key capacity.

    Parameters
    ----------
    capacity:
        Number of distinct keys the decoder must handle (the α or β of
        Lemma 4.2).  Buckets per row default to 2×capacity (min 8).
    universe_bits:
        Keys satisfy 0 ≤ key < 2^universe_bits (Python bigints fine).
    seed:
        Seeds a private hash family; ignored when ``family`` is given.
    family:
        Optional shared :class:`SketchHashFamily` (must match the bucket
        count implied by ``capacity``/``buckets_per_row``).
    """

    ROWS = SketchHashFamily.ROWS

    def __init__(self, capacity: int, universe_bits: int, seed=0,
                 buckets_per_row: int | None = None,
                 family: SketchHashFamily | None = None):
        self.capacity = int(capacity)
        self.universe_bits = int(universe_bits)
        m = buckets_per_row if buckets_per_row is not None else max(8, 2 * self.capacity)
        if family is not None and family.m != int(m):
            raise ValueError("shared family bucket count mismatch")
        self.family = family if family is not None else SketchHashFamily(
            int(m), universe_bits, seed=seed)
        self.m = self.family.m
        # Sparse-columnar bucket state: flat position (row·m + pos) → slot
        # index into the parallel accumulator arrays.  Slots are assigned in
        # first-touch order, which keeps the `buckets` view (and checkpoint
        # bytes) identical between the scalar and batched update paths.
        self._slot: dict[int, int] = {}
        self._count = np.zeros(0, dtype=np.int64)
        self._keysum = np.zeros(0, dtype=object)  # can exceed 64 bits
        self._fpsum = np.zeros(0, dtype=object)   # count · fp exceeds 2^63 fast

    # -- columnar plumbing ----------------------------------------------------
    def _ensure_capacity(self, need: int) -> None:
        cap = len(self._count)
        if need <= cap:
            return
        new_cap = max(16, 2 * cap, need)
        count = np.zeros(new_cap, dtype=np.int64)
        keysum = np.zeros(new_cap, dtype=object)
        fpsum = np.zeros(new_cap, dtype=object)
        n = len(self._slot)
        count[:n] = self._count[:n]
        keysum[:n] = self._keysum[:n]
        fpsum[:n] = self._fpsum[:n]
        self._count, self._keysum, self._fpsum = count, keysum, fpsum

    def _slot_of(self, flat: int) -> int:
        """Slot of a flat position, materializing it at zero if absent."""
        idx = self._slot.get(flat)
        if idx is None:
            idx = len(self._slot)
            self._ensure_capacity(idx + 1)
            self._slot[flat] = idx
        return idx

    @property
    def buckets(self) -> dict[tuple[int, int], list]:
        """Materialized buckets as ``{(row, pos): [count, keysum, fpsum]}``.

        A fresh dict of Python ints in first-touch order — the exact view
        (and serialization order) the pre-columnar implementation stored.
        Mutating the returned dict does not write through; use
        :meth:`update` / :meth:`update_many` / :meth:`merge_from`.
        """
        m = self.m
        count, keysum, fpsum = self._count, self._keysum, self._fpsum
        return {
            divmod(flat, m): [int(count[i]), int(keysum[i]), int(fpsum[i])]
            for flat, i in self._slot.items()
        }

    @buckets.setter
    def buckets(self, mapping: dict) -> None:
        """Load bucket state (checkpoint restore); preserves mapping order."""
        self._slot = {}
        n = len(mapping)
        self._count = np.zeros(n, dtype=np.int64)
        self._keysum = np.zeros(n, dtype=object)
        self._fpsum = np.zeros(n, dtype=object)
        m = self.m
        for (r, pos), b in mapping.items():  # scalar-ok: checkpoint restore
            i = len(self._slot)
            self._slot[r * m + pos] = i
            self._count[i] = int(b[0])
            self._keysum[i] = int(b[1])
            self._fpsum[i] = int(b[2])

    # -- updates -------------------------------------------------------------
    def update(self, key: int, delta: int = 1) -> None:
        """Add ``delta`` (may be negative) copies of ``key`` (scalar path)."""
        key = int(key)
        fp = self.family.fingerprint(key)
        dk = delta * key
        dfp = delta * fp
        m = self.m
        for r, pos in enumerate(self.family.positions(key)):  # scalar-ok: ROWS=3
            i = self._slot_of(r * m + pos)
            self._count[i] += delta
            self._keysum[i] += dk
            self._fpsum[i] += dfp

    def update_many(self, keys, deltas) -> None:
        """Apply a batch of signed updates in vectorized sweeps.

        ``keys``/``deltas`` are equal-length sequences; the result is
        bit-identical to calling :meth:`update` per element in order.
        """
        if not isinstance(keys, np.ndarray):
            keys = list(keys)
            try:
                keys = np.asarray(keys, dtype=np.int64)
            except (OverflowError, TypeError, ValueError):
                keys = np.array([int(k) for k in keys], dtype=object)
        if keys.size == 0:
            return
        deltas = np.asarray(deltas, dtype=np.int64)
        pos_rows = self.family.positions_np(keys)
        fps = self.family.fingerprints_np(keys)
        self.apply_hashed(pos_rows, fps, keys, deltas)

    def apply_hashed(self, pos_rows: np.ndarray, fps: np.ndarray,
                     keys, deltas: np.ndarray) -> None:
        """Batched scatter with hash sweeps precomputed by the caller.

        ``pos_rows`` is the ``(ROWS, n)`` output of
        :meth:`SketchHashFamily.positions_np` and ``fps`` the matching
        fingerprints — shared-family callers (the nested point sketches of
        ``SketchStoring``) hash once per batch and fan the arrays out here.
        """
        n = pos_rows.shape[1]
        m = self.m
        rows = self.ROWS
        # Flat positions interleaved in scalar visitation order: entry
        # 3·i + r is event i, row r — so first-touch slot assignment matches
        # the per-event path exactly.
        flat = np.empty(rows * n, dtype=np.int64)
        for r in range(rows):  # scalar-ok: ROWS=3, vectorized over events
            flat[r::rows] = np.int64(r) * m + pos_rows[r]
        slot = self._slot
        uniq, first = np.unique(flat, return_index=True)
        fresh = np.fromiter((u not in slot for u in uniq.tolist()),  # scalar-ok: dict-backed slot lookup, per distinct bucket
                            dtype=bool, count=len(uniq))
        if fresh.any():
            new_ids = uniq[fresh]
            order = np.argsort(first[fresh], kind="stable")
            base = len(slot)
            self._ensure_capacity(base + len(new_ids))
            for u in new_ids[order].tolist():  # scalar-ok: per new bucket
                slot[u] = base
                base += 1
        idx = np.fromiter((slot[u] for u in flat.tolist()),  # scalar-ok: dict-backed slot lookup
                          dtype=np.int64, count=len(flat))
        dk = deltas.astype(object) * (
            keys.astype(object) if isinstance(keys, np.ndarray)
            else np.array([int(k) for k in keys], dtype=object))
        dfp = deltas.astype(object) * fps.astype(object)
        np.add.at(self._count, idx, np.repeat(deltas, rows))
        np.add.at(self._keysum, idx, np.repeat(dk, rows))
        np.add.at(self._fpsum, idx, np.repeat(dfp, rows))

    def merge_from(self, other: "IBLTSketch") -> None:
        """Add another sketch's bucket state into this one (linearity)."""
        for flat, j in other._slot.items():  # scalar-ok: merge fan-in
            i = self._slot_of(flat)
            self._count[i] += other._count[j]
            self._keysum[i] += other._keysum[j]
            self._fpsum[i] += other._fpsum[j]

    def total_count(self) -> int:
        """Signed total of all updates (row 0 holds every key once)."""
        total = 0
        m = self.m
        for flat, i in self._slot.items():  # scalar-ok: accounting
            if flat < m:
                total += int(self._count[i])
        return total

    # -- decoding -------------------------------------------------------------
    def _try_extract(self, b: list):
        """Return (key, count) if the bucket is verified 1-sparse, else None."""
        cnt, ks, fs = b
        if cnt == 0:
            return None
        if ks % cnt != 0:
            return None
        key = ks // cnt
        if key < 0 or key >= (1 << self.universe_bits):
            return None
        if fs != cnt * self.family.fingerprint(key):
            return None
        return key, cnt

    def decode(self) -> dict[int, int]:
        """Peel a copy of the sketch; returns {key: count} for live keys.

        Raises :class:`DecodeFailure` when peeling stalls with residual mass
        (more distinct keys than capacity, w.h.p.).
        """
        work = {pos: b for pos, b in self.buckets.items() if any(b)}
        out: dict[int, int] = {}
        queue = list(work.keys())
        while queue:  # scalar-ok: peeling decode, ≤ capacity keys
            pos = queue.pop()
            b = work.get(pos)
            if b is None or not any(b):
                continue
            got = self._try_extract(b)
            if got is None:
                continue
            key, cnt = got
            out[key] = out.get(key, 0) + cnt
            fp = self.family.fingerprint(key)
            for r, p in enumerate(self.family.positions(key)):  # scalar-ok: ROWS=3
                wb = work.get((r, p))
                if wb is None:
                    wb = [0, 0, 0]
                    work[(r, p)] = wb
                wb[0] -= cnt
                wb[1] -= cnt * key
                wb[2] -= cnt * fp
                queue.append((r, p))
        for b in work.values():  # scalar-ok: stall check after decode
            if any(b):
                raise DecodeFailure(f"IBLT peeling stalled (capacity {self.capacity})")
        return {k: v for k, v in out.items() if v != 0}

    # -- accounting ----------------------------------------------------------
    PER_BUCKET_OVERHEAD = 61  # fingerprint-sum modulus bits

    def _per_bucket_bits(self, max_count_bits: int = 32) -> int:
        return (max_count_bits
                + (self.universe_bits + max_count_bits)
                + (self.PER_BUCKET_OVERHEAD + max_count_bits))

    def space_bits(self, max_count_bits: int = 32) -> int:
        """Worst-case pre-allocated layout: every bucket of every row, plus
        the hash-family randomness."""
        return (self.ROWS * self.m * self._per_bucket_bits(max_count_bits)
                + self.family.randomness_bits)

    def resident_bits(self, max_count_bits: int = 32) -> int:
        """Bits of the buckets actually materialized (data-dependent)."""
        return (len(self._slot) * self._per_bucket_bits(max_count_bits)
                + self.family.randomness_bits)
