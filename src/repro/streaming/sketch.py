"""Linear sketches for dynamic geometric streams.

The ``Storing`` subroutine of Lemma 4.2 must, under arbitrary interleavings
of insertions and deletions, recover at the end of the stream (a) all
non-empty cells with exact counts and (b) the points of every small cell.
The classic tool is an invertible-Bloom-lookup-table (IBLT) style sketch:

- each **bucket** holds a signed counter, a key-weighted sum, and a
  fingerprint sum over a random hash of the key.  A bucket is *1-sparse*
  (holds exactly one distinct key) iff ``keysum = count · key`` for the
  integer ``key = keysum / count`` and the fingerprint matches — the
  fingerprint makes false positives vanishingly unlikely;
- an :class:`IBLTSketch` hashes every key into one bucket per row (3 rows)
  and **peels**: recover a key from any 1-sparse bucket, subtract it
  everywhere, repeat.  Decoding succeeds w.h.p. whenever the number of
  distinct live keys is within the sketch's capacity, and the sketch is
  *linear*: updates commute, deletions are negative insertions.

Implementation notes (performance — see the HPC guide):

- buckets live in a dict keyed by position, materialized on first touch;
  a zeroed bucket is equivalent to an absent one, so decoding only walks
  touched positions.  ``space_bits`` still charges the full pre-allocated
  layout a space-bounded implementation would use; ``resident_bits``
  reports what is actually materialized.
- many sketches of identical shape (the nested per-bucket point sketches of
  :class:`~repro.streaming.storing.SketchStoring`) share one
  :class:`SketchHashFamily`, so creating a nested sketch allocates nothing
  but a dict.
"""

from __future__ import annotations

from repro.hashing.kwise import KWiseHash, UniformBucketHash
from repro.utils.rng import derive_seed

__all__ = ["IBLTSketch", "SketchHashFamily", "DecodeFailure"]


class DecodeFailure(Exception):
    """The sketch held more distinct keys than its capacity allows."""


class SketchHashFamily:
    """Row hashes + fingerprint shared by every IBLT of one shape."""

    ROWS = 3
    FP_MOD = (1 << 61) - 1

    def __init__(self, buckets_per_row: int, universe_bits: int, seed=0):
        self.m = int(buckets_per_row)
        self.universe_bits = int(universe_bits)
        self.row_hash = [
            UniformBucketHash(self.m, independence=6, universe_bits=universe_bits,
                              seed=derive_seed(seed, f"iblt-row-{r}"))
            for r in range(self.ROWS)
        ]
        self._fp = KWiseHash(independence=4, universe_bits=universe_bits,
                             seed=derive_seed(seed, "iblt-fp"))

    def positions(self, key: int) -> tuple[int, ...]:
        """Bucket index of ``key`` in every row."""
        return tuple(h.bucket(key) for h in self.row_hash)

    def fingerprint(self, key: int) -> int:
        """Verification fingerprint of ``key`` (mod a 61-bit prime)."""
        return self._fp.value(key) % self.FP_MOD

    @property
    def randomness_bits(self) -> int:
        """Stored randomness of the row hashes plus the fingerprint hash."""
        return (sum(h.randomness_bits for h in self.row_hash)
                + self._fp.randomness_bits)


class IBLTSketch:
    """Peelable key/count sketch with a given distinct-key capacity.

    Parameters
    ----------
    capacity:
        Number of distinct keys the decoder must handle (the α or β of
        Lemma 4.2).  Buckets per row default to 2×capacity (min 8).
    universe_bits:
        Keys satisfy 0 ≤ key < 2^universe_bits (Python bigints fine).
    seed:
        Seeds a private hash family; ignored when ``family`` is given.
    family:
        Optional shared :class:`SketchHashFamily` (must match the bucket
        count implied by ``capacity``/``buckets_per_row``).
    """

    ROWS = SketchHashFamily.ROWS

    def __init__(self, capacity: int, universe_bits: int, seed=0,
                 buckets_per_row: int | None = None,
                 family: SketchHashFamily | None = None):
        self.capacity = int(capacity)
        self.universe_bits = int(universe_bits)
        m = buckets_per_row if buckets_per_row is not None else max(8, 2 * self.capacity)
        if family is not None and family.m != int(m):
            raise ValueError("shared family bucket count mismatch")
        self.family = family if family is not None else SketchHashFamily(
            int(m), universe_bits, seed=seed)
        self.m = self.family.m
        # buckets[(row, pos)] = [count, keysum, fpsum]; absent == all-zero.
        self.buckets: dict[tuple[int, int], list] = {}

    # -- updates -------------------------------------------------------------
    def update(self, key: int, delta: int = 1) -> None:
        """Add ``delta`` (may be negative) copies of ``key``."""
        key = int(key)
        fp = self.family.fingerprint(key)
        dk = delta * key
        dfp = delta * fp
        buckets = self.buckets
        for r, pos in enumerate(self.family.positions(key)):
            b = buckets.get((r, pos))
            if b is None:
                buckets[(r, pos)] = [delta, dk, dfp]
            else:
                b[0] += delta
                b[1] += dk
                b[2] += dfp

    def total_count(self) -> int:
        """Signed total of all updates (row 0 holds every key once)."""
        return sum(b[0] for (r, _), b in self.buckets.items() if r == 0)

    # -- decoding -------------------------------------------------------------
    def _try_extract(self, b: list):
        """Return (key, count) if the bucket is verified 1-sparse, else None."""
        cnt, ks, fs = b
        if cnt == 0:
            return None
        if ks % cnt != 0:
            return None
        key = ks // cnt
        if key < 0 or key >= (1 << self.universe_bits):
            return None
        if fs != cnt * self.family.fingerprint(key):
            return None
        return key, cnt

    def decode(self) -> dict[int, int]:
        """Peel a copy of the sketch; returns {key: count} for live keys.

        Raises :class:`DecodeFailure` when peeling stalls with residual mass
        (more distinct keys than capacity, w.h.p.).
        """
        work = {pos: list(b) for pos, b in self.buckets.items() if any(b)}
        out: dict[int, int] = {}
        queue = list(work.keys())
        while queue:
            pos = queue.pop()
            b = work.get(pos)
            if b is None or not any(b):
                continue
            got = self._try_extract(b)
            if got is None:
                continue
            key, cnt = got
            out[key] = out.get(key, 0) + cnt
            fp = self.family.fingerprint(key)
            for r, p in enumerate(self.family.positions(key)):
                wb = work.get((r, p))
                if wb is None:
                    wb = [0, 0, 0]
                    work[(r, p)] = wb
                wb[0] -= cnt
                wb[1] -= cnt * key
                wb[2] -= cnt * fp
                queue.append((r, p))
        for b in work.values():
            if any(b):
                raise DecodeFailure(f"IBLT peeling stalled (capacity {self.capacity})")
        return {k: v for k, v in out.items() if v != 0}

    # -- accounting ----------------------------------------------------------
    PER_BUCKET_OVERHEAD = 61  # fingerprint-sum modulus bits

    def _per_bucket_bits(self, max_count_bits: int = 32) -> int:
        return (max_count_bits
                + (self.universe_bits + max_count_bits)
                + (self.PER_BUCKET_OVERHEAD + max_count_bits))

    def space_bits(self, max_count_bits: int = 32) -> int:
        """Worst-case pre-allocated layout: every bucket of every row, plus
        the hash-family randomness."""
        return (self.ROWS * self.m * self._per_bucket_bits(max_count_bits)
                + self.family.randomness_bits)

    def resident_bits(self, max_count_bits: int = 32) -> int:
        """Bits of the buckets actually materialized (data-dependent)."""
        return (len(self.buckets) * self._per_bucket_bits(max_count_bits)
                + self.family.randomness_bits)
