"""Algorithm 4 / Theorem 4.5 — one-pass coreset over a dynamic stream.

For a fixed guess ``o``, the algorithm maintains, per level i ∈ {0…L}, three
λ-wise independently sub-sampled sub-streams, each fed into a ``Storing``
structure (Lemma 4.2):

====================  =========================  ============================
sub-stream (rate)      Storing budget             role
====================  =========================  ============================
h_i   (ψ_i)            (α_i, β=1), counts only    τ(C∩Q): heavy-cell decisions
h'_i  (ψ'_i)           (α'_i, β=1), counts only   τ(Q_{i,j}): part sizes
ĥ_i   (φ_i)            (α̂_i, β̂_i), with points    the coreset samples themselves
====================  =========================  ============================

At the end of the stream, the decoded counts replay Algorithms 1+2 *exactly*
(same hash functions ⇒ same samples as the offline construction in
``use_sampled_counts`` mode), and the coreset points are recovered from the
ĥ sketches of crucial cells in retained parts.

:class:`StreamingCoreset` is the Theorem 4.5 driver: it runs one instance
per guess o ∈ {1, 2, 4, …, Δ^d·(√dΔ)^r} in parallel (all instances *share*
the underlying hash polynomials — only the acceptance thresholds differ) and
returns the smallest guess whose instance does not FAIL.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.params import CoresetParams
from repro.core.partition import ROOT_CELL_KEY
from repro.core.weighted import Coreset, PartInfo
from repro.grid.grids import HierarchicalGrids
from repro.hashing.kwise import KWiseHash, StackedHashes, exact_field_threshold
from repro.streaming.storing import ExactStoring, SketchStoring
from repro.streaming.stream import events_to_arrays
from repro.utils.rng import derive_seed
from repro.utils.validation import (
    FailedConstruction,
    check_stream_points,
    coerce_integral_rows,
)

__all__ = ["StreamingCoresetInstance", "StreamingCoreset", "assemble_coreset"]


def _parent_key(grids: HierarchicalGrids, cell_key: int) -> int:
    """Key of a cell's parent one level up (nested grids ⇒ halve coords)."""
    ck = grids.decode_cell_key(int(cell_key))
    if ck.level == 0:
        return ROOT_CELL_KEY
    parent = np.floor_divide(np.asarray(ck.coords, dtype=np.int64), 2)
    return grids.encode_cell(parent, ck.level - 1)


def assemble_coreset(params: CoresetParams, o: float, grids: HierarchicalGrids,
                     res_h, res_hp, res_hhat) -> Coreset:
    """Replay Algorithms 1+2 from decoded Storing results (one per level).

    Shared by the streaming (Theorem 4.5) and distributed (Theorem 4.7)
    drivers — the coordinator holds merged StoringResults with identical
    semantics.  ``res_h``/``res_hp``/``res_hhat`` are lists indexed by level
    0…L of :class:`~repro.streaming.storing.StoringResult`.

    Raises :class:`FailedConstruction` with the paper's FAIL conditions.
    """
    L = params.L

    # --- Algorithm 1: heavy cells, top-down. -------------------------------
    heavy: dict[int, set] = {}
    total_q = sum(res_h[0].cells.values()) / params.psi(0, o)
    heavy[-1] = {ROOT_CELL_KEY} if total_q >= params.threshold(-1, o) else set()
    if not heavy[-1] and total_q > 0:
        # Fact A.1: the root is heavy whenever o ≤ OPT; an un-heavy root
        # means the guess overshot and the whole input would be dropped.
        raise FailedConstruction(
            f"assemble: root cell not heavy (guess o={o:g} too large)"
        )
    total_heavy = len(heavy[-1])
    for i in range(0, L):  # scalar-ok: finalize: per level
        psi = params.psi(i, o)
        level_heavy = set()
        for cell, cnt in res_h[i].cells.items():  # scalar-ok: finalize: <= alpha cells
            if cnt / psi < params.threshold(i, o):
                continue
            if _parent_key(grids, cell) in heavy[i - 1]:
                level_heavy.add(cell)
        heavy[i] = level_heavy
        total_heavy += len(level_heavy)
        if total_heavy > params.max_heavy_cells():
            raise FailedConstruction(
                f"assemble: {total_heavy} heavy cells exceed "
                f"{params.max_heavy_cells():.0f} (o={o:g})"
            )
    heavy[L] = set()

    # --- crucial cells and part sizes from the h' sketches. ----------------
    part_tau: dict[tuple[int, int], float] = {}
    for i in range(0, L + 1):  # scalar-ok: finalize: per level
        psip = params.psi_part(i, o)
        level_mass = 0.0
        for cell, cnt in res_hp[i].cells.items():  # scalar-ok: finalize: <= alpha cells
            if i < L and cell in heavy[i]:
                continue
            parent = _parent_key(grids, cell)
            if parent not in heavy[i - 1]:
                continue
            est = cnt / psip
            key = (i, int(parent))
            part_tau[key] = part_tau.get(key, 0.0) + est
            level_mass += est
        if level_mass > params.max_level_mass(i, o):
            raise FailedConstruction(
                f"assemble: level {i} mass {level_mass:.1f} exceeds "
                f"{params.max_level_mass(i, o):.1f} (o={o:g})"
            )

    # --- coreset samples from the ĥ sketches. ------------------------------
    retained: dict[tuple[int, int], int] = {}
    parts_info: list[PartInfo] = []
    pts_rows: list[np.ndarray] = []
    weights: list[float] = []
    part_ids: list[int] = []
    for i in range(0, L + 1):  # scalar-ok: finalize: per level
        phi = params.phi(i, o)
        cutoff = params.small_part_cutoff(i, o)
        res = res_hhat[i]
        beta = params.storing_beta(i, o)
        for cell, cnt in res.cells.items():  # scalar-ok: finalize: <= alpha cells
            # Crucial-cell test mirrors the h'-stream logic.
            if i < L and cell in heavy[i]:
                continue
            parent = _parent_key(grids, cell)
            if parent not in heavy[i - 1]:
                continue
            key = (i, int(parent))
            tau = part_tau.get(key, 0.0)
            if tau < cutoff:
                continue  # dropped small part (Lemma 3.4)
            if cnt > beta:
                raise FailedConstruction(
                    f"assemble: crucial cell at level {i} holds {cnt} "
                    f"samples > beta={beta} (o={o:g})"
                )
            if key not in retained:
                retained[key] = len(parts_info)
                parts_info.append(PartInfo(
                    level=i, parent_cell_key=int(parent),
                    size_estimate=tau, phi=phi,
                ))
            pid = retained[key]
            for pkey, pcnt in res.small_points.get(cell, {}).items():  # scalar-ok: finalize: <= beta samples per cell
                row = grids.point_codec.decode(pkey)
                for _ in range(int(pcnt)):  # scalar-ok: finalize: multiplicity expansion
                    pts_rows.append(row)
                    weights.append(1.0 / phi)
                    part_ids.append(pid)

    if pts_rows:
        q_points = np.stack(pts_rows).astype(np.int64)
        q_weights = np.asarray(weights)
        q_part_ids = np.asarray(part_ids, dtype=np.int64)
    else:
        q_points = np.empty((0, params.d), dtype=np.int64)
        q_weights = np.empty(0)
        q_part_ids = np.empty(0, dtype=np.int64)
    return Coreset(
        points=q_points, weights=q_weights, part_ids=q_part_ids,
        parts=parts_info, o=float(o), delta=params.delta, input_size=-1,
    )


class _SharedHashes:
    """One λ-wise hash polynomial per (level, sub-stream); every guess-o
    instance reuses the same field values with its own threshold, exactly as
    if each instance drew its own function — Bernoulli(φ) needs only
    ``value < φ·p`` — while paying the Horner evaluation once.

    Each sub-stream's per-level polynomials additionally stack into one
    :class:`~repro.hashing.kwise.StackedHashes` (they share a prime), so a
    batch evaluates all L+1 levels in a single broadcast Horner sweep."""

    def __init__(self, params: CoresetParams, grids: HierarchicalGrids, seed: int):
        ub = grids.point_codec.universe_bits
        self.h = [KWiseHash(params.lam_est, ub, seed=derive_seed(seed, f"h-{i}"))
                  for i in range(params.L + 1)]
        self.hp = [KWiseHash(params.lam_est, ub, seed=derive_seed(seed, f"hp-{i}"))
                   for i in range(params.L + 1)]
        self.hhat = [KWiseHash(params.lam, ub, seed=derive_seed(seed, f"hhat-{i}"))
                     for i in range(params.L + 1)]
        self.stacked_h = StackedHashes(self.h)
        self.stacked_hp = StackedHashes(self.hp)
        self.stacked_hhat = StackedHashes(self.hhat)

    def randomness_bits(self) -> int:
        """Total bits of stored hash-polynomial randomness."""
        return sum(f.randomness_bits for f in self.h + self.hp + self.hhat)


def _threshold_column(thresholds) -> np.ndarray:
    """Thresholds as an (L+1, 1) column for broadcast against value rows."""
    try:
        col = np.asarray(thresholds, dtype=np.int64)
    except OverflowError:
        col = np.array([int(t) for t in thresholds], dtype=object)
    return col[:, None]


def _bool_mask(x: np.ndarray) -> np.ndarray:
    """Ensure a comparison result is a native bool array (object inputs)."""
    return x if x.dtype == np.bool_ else np.asarray(x, dtype=bool)


class StreamingCoresetInstance:
    """Algorithm 4 for one fixed guess ``o``."""

    def __init__(
        self,
        params: CoresetParams,
        o: float,
        grids: HierarchicalGrids,
        shared: _SharedHashes,
        seed: int = 0,
        backend: str = "exact",
        early_kill_factor: float | None = 32.0,
    ):
        self.params = params
        self.o = float(o)
        self.grids = grids
        self.shared = shared
        self.backend = backend
        self.dead_reason: str | None = None
        self._early_kill = early_kill_factor if backend == "exact" else None
        L = params.L

        def make_storing(alpha: int, beta: int, recover: bool, tag: str):
            """Construct one Storing structure for the chosen backend."""
            if backend == "exact":
                return ExactStoring(alpha, beta, recover_points=recover)
            if backend == "sketch":
                return SketchStoring(
                    alpha, beta,
                    cell_universe_bits=grids.cell_universe_bits,
                    point_universe_bits=grids.point_codec.universe_bits,
                    seed=derive_seed(seed, f"{tag}-o{self.o:g}"),
                    recover_points=recover,
                )
            raise ValueError(f"unknown backend {backend!r}")

        # Acceptance thresholds against the shared hash values.
        self._thr_h, self._thr_hp, self._thr_hhat = [], [], []
        self.store_h, self.store_hp, self.store_hhat = [], [], []
        for i in range(L + 1):  # scalar-ok: constructor: per level
            psi = params.psi(i, o)
            psip = params.psi_part(i, o)
            phi = params.phi(i, o)
            # Exact-integer thresholds: the float product int(psi * prime)
            # deviates from ⌊psi·p⌋ once the prime outgrows float64's 53-bit
            # mantissa, skewing every realized sampling rate.
            self._thr_h.append(exact_field_threshold(psi, shared.h[i].prime))
            self._thr_hp.append(exact_field_threshold(psip, shared.hp[i].prime))
            self._thr_hhat.append(exact_field_threshold(phi, shared.hhat[i].prime))
            self.store_h.append(make_storing(
                params.storing_alpha(i, o, psi), 1, False, f"st-h-{i}"))
            self.store_hp.append(make_storing(
                params.storing_alpha(i, o, psip), 1, False, f"st-hp-{i}"))
            self.store_hhat.append(make_storing(
                params.storing_alpha(i, o, phi), params.storing_beta(i, o),
                True, f"st-hhat-{i}"))
        self._thr_h_col = _threshold_column(self._thr_h)
        self._thr_hp_col = _threshold_column(self._thr_hp)
        self._thr_hhat_col = _threshold_column(self._thr_hhat)

    # -- streaming -----------------------------------------------------------
    def update_with_values(self, point_key: int, cell_keys, sign: int,
                           values_h, values_hp, values_hhat) -> None:
        """Process one update given precomputed hash values per level."""
        if self.dead_reason is not None:
            return
        for i in range(self.params.L + 1):  # scalar-ok: scalar reference path, per level
            ck = int(cell_keys[i])
            if values_h[i] < self._thr_h[i]:
                self.store_h[i].update(ck, point_key, sign)
                if self._early_kill is not None:
                    store = self.store_h[i]
                    bound = self._early_kill * store.alpha
                    # Cheap overcount first; compact for the exact count only
                    # when the bound might actually be crossed.
                    if (store.live_cells_upper() > bound
                            and store.live_cells() > bound):
                        self.dead_reason = (
                            f"level {i} cell count blew past "
                            f"{self._early_kill:g}x alpha (o={self.o:g})"
                        )
                        return
            if values_hp[i] < self._thr_hp[i]:
                self.store_hp[i].update(ck, point_key, sign)
            if values_hhat[i] < self._thr_hhat[i]:
                self.store_hhat[i].update(ck, point_key, sign)

    @staticmethod
    def _scatter(store, cell_keys, pkeys, signs, mask, nsel: int, n: int) -> None:
        """Feed the mask-selected events of a batch into one store.

        A fully-selected level (ψ or φ = 1, the common case for the winning
        guesses) hands over the shared batch arrays without copying.
        """
        if not nsel:
            return
        if nsel == n:
            store.update_many(cell_keys, pkeys, signs)
            return
        idx = np.flatnonzero(mask)
        store.update_many(cell_keys[idx], pkeys[idx], signs[idx])

    def update_batch_arrays(self, pkeys, cell_keys, signs,
                            vh, vhp, vhhat) -> None:
        """Batched :meth:`update_with_values` over per-level value arrays.

        ``cell_keys`` is a list indexed by level; ``vh``/``vhp``/``vhhat``
        are ``(L+1, n)`` value matrices aligned with ``pkeys``/``signs``.
        Threshold masks come from one broadcast compare per sub-stream and
        Storing scatters run per level instead of per event, bit-identically
        to the scalar path — including the early-kill semantics: the scalar
        path may die *mid-batch* (skipping the rest of the stream), so
        whenever a batch could push any level's cell count past the kill
        line, this falls back to exact per-event replay for the whole batch.
        """
        if self.dead_reason is not None:
            return
        L1 = self.params.L + 1
        n = len(signs)
        mh = _bool_mask(vh < self._thr_h_col)
        nh = mh.sum(axis=1)
        if self._early_kill is not None:
            for i in range(L1):  # scalar-ok: per level per batch
                nsel = int(nh[i])
                if not nsel:
                    continue
                store = self.store_h[i]
                bound = self._early_kill * store.alpha
                if (store.live_cells_upper() + nsel > bound
                        and store.live_cells() + nsel > bound):
                    self._replay_scalar(pkeys, cell_keys, signs, vh, vhp, vhhat)
                    return
        mhp = _bool_mask(vhp < self._thr_hp_col)
        mhh = _bool_mask(vhhat < self._thr_hhat_col)
        nhp = mhp.sum(axis=1)
        nhh = mhh.sum(axis=1)
        for i in range(L1):  # scalar-ok: per level per batch
            ck = cell_keys[i]
            self._scatter(self.store_h[i], ck, pkeys, signs, mh[i], int(nh[i]), n)
            self._scatter(self.store_hp[i], ck, pkeys, signs, mhp[i], int(nhp[i]), n)
            self._scatter(self.store_hhat[i], ck, pkeys, signs, mhh[i], int(nhh[i]), n)

    def _replay_scalar(self, pkeys, cell_keys, signs, vh, vhp, vhhat) -> None:
        """Per-event replay of a batch (reference semantics, incl. mid-batch
        early kill).  Only reached when an instance is about to die, which
        happens at most once per instance — never on the steady-state path."""
        L1 = self.params.L + 1
        for j in range(len(signs)):  # scalar-ok: early-kill replay
            if self.dead_reason is not None:
                return
            self.update_with_values(
                int(pkeys[j]),
                [cell_keys[i][j] for i in range(L1)],
                int(signs[j]),
                [vh[i][j] for i in range(L1)],
                [vhp[i][j] for i in range(L1)],
                [vhhat[i][j] for i in range(L1)],
            )

    # -- finalization ----------------------------------------------------------
    def finalize(self) -> Coreset:
        """Replay Algorithms 1+2 from the decoded sketches; may FAIL."""
        if self.dead_reason is not None:
            raise FailedConstruction(self.dead_reason)
        res_h = [s.result() for s in self.store_h]
        res_hp = [s.result() for s in self.store_hp]
        res_hhat = [s.result() for s in self.store_hhat]
        return assemble_coreset(self.params, self.o, self.grids,
                                res_h, res_hp, res_hhat)

    # -- accounting -----------------------------------------------------------
    def space_bits(self) -> int:
        """Total sketch space (bits) of this instance."""
        total = 0
        for group in (self.store_h, self.store_hp, self.store_hhat):  # scalar-ok: accounting, per store group
            for s in group:  # scalar-ok: accounting, per store
                total += s.space_bits()
        return total


class StreamingCoreset:
    """Theorem 4.5: parallel guess-o instances over one dynamic stream.

    Parameters
    ----------
    params:
        Problem parameters; the guess schedule spans [1, Δ^d·(√dΔ)^r] (the
        paper's predetermined range — the stream length is unknown a priori).
    backend:
        ``"exact"`` (dictionary Storing; fast reference) or ``"sketch"``
        (true sublinear IBLT sketches; what E3 measures).
    o_range:
        Optional (lo, hi) to restrict the guesses, standing in for the
        streaming 2-approximation of OPT the paper runs in parallel
        ([HSYZ18]); guesses outside the window provably FAIL or lose to a
        smaller non-FAIL guess.
    auto_pilot:
        When True (default if no ``o_range`` is given), maintain an
        ℓ₀-sampler alongside the sketches; at finalize time a k-means++
        pilot on the recovered uniform sample of the *live* set upper-bounds
        OPT and anchors the guess selection — the fully single-pass,
        deletion-proof replacement for the parallel OPT estimator.
    """

    def __init__(
        self,
        params: CoresetParams,
        seed: int = 0,
        backend: str = "exact",
        o_range: tuple[float, float] | None = None,
        grids: HierarchicalGrids | None = None,
        prefer: str | None = None,
        auto_pilot: bool | None = None,
    ):
        """``prefer`` picks among non-FAIL guesses at finalize time:
        ``"smallest"`` is Theorem 3.19's rule (always quality-safe);
        ``"largest"`` maximizes compression and is the right choice when
        ``o_range`` is anchored by an OPT estimate (the Theorem 4.5 setting,
        where o ∈ [OPT/10, OPT]).  Default: largest when an ``o_range`` is
        given, smallest otherwise."""
        if auto_pilot is None:
            auto_pilot = o_range is None
        if prefer is None:
            prefer = "largest" if (o_range is not None or auto_pilot) else "smallest"
        if prefer not in ("largest", "smallest"):
            raise ValueError(f"prefer must be 'largest' or 'smallest', got {prefer!r}")
        self.prefer = prefer
        self.params = params
        # Construction arguments, kept so checkpoints (repro.service.state)
        # can rebuild an identical driver — every bit of randomness below is
        # derived from (params, seed), so (args, sketch contents) is a
        # complete, bit-exact description of the state.
        self.seed = int(seed)
        self.backend = backend
        self.o_range = None if o_range is None else (float(o_range[0]), float(o_range[1]))
        self.auto_pilot = bool(auto_pilot)
        self.grids = grids if grids is not None else HierarchicalGrids(
            params.delta, params.d, seed=derive_seed(seed, "grids"))
        self.shared = _SharedHashes(params, self.grids, derive_seed(seed, "hashes"))
        top = (params.delta ** params.d) * (math.sqrt(params.d) * params.delta) ** params.r
        lo, hi = (1.0, top) if o_range is None else (max(1.0, o_range[0]), o_range[1])
        self.instances: list[StreamingCoresetInstance] = []
        o = 1.0
        while o <= top * 2:  # scalar-ok: constructor: guess schedule
            if lo <= o <= hi or (o <= lo < 2 * o):
                self.instances.append(StreamingCoresetInstance(
                    params, o, self.grids, self.shared,
                    seed=derive_seed(seed, f"inst-{o:g}"), backend=backend,
                ))
            o *= 2.0
        self.num_updates = 0
        self._value_cache: dict[int, tuple] = {}
        self._pilot_sampler = None
        if auto_pilot:
            from repro.streaming.l0sampler import DistinctSampler

            self._pilot_sampler = DistinctSampler(
                sample_size=512,
                universe_bits=self.grids.point_codec.universe_bits,
                seed=derive_seed(seed, "pilot-l0"),
            )

    #: Entries kept in the per-point hash-value cache (a deletion re-hashes
    #: the same key as its insertion; caching halves the Horner work on
    #: churn streams).  Values are deterministic per key, so the cache can
    #: never go stale; eviction is arbitrary.
    VALUE_CACHE_LIMIT = 200_000

    # -- streaming ------------------------------------------------------------
    def update(self, point, sign: int) -> None:
        """Process one insertion (+1) / deletion (−1).

        Coordinates are validated against the codec's injective window
        [0, Δ] *before* any sketch is touched — an out-of-range or
        non-integral coordinate would otherwise alias (or truncate) to a
        different point's key and silently corrupt the state.
        """
        row = check_stream_points(coerce_integral_rows(point), self.params.delta)
        pkey = int(self.grids.point_codec.encode(row)[0])
        self._apply_keyed(pkey, self._entry_for(pkey, row), sign)

    def update_batch(self, events) -> int:
        """Apply a batch of :class:`StreamEvent` / ``(point, sign)`` pairs.

        The batch entry point the worker processes use: points are
        normalized and validated up front (the whole batch is rejected
        before any state mutation if a single event is malformed —
        non-integral coordinates included), then the batch runs through the
        fully vectorized :meth:`update_arrays`.  Returns the number of
        events applied.
        """
        rows, signs = events_to_arrays(events, d=self.params.d)
        return self.update_arrays(rows, signs)

    def update_arrays(self, rows, signs) -> int:
        """Vectorized ingest of an (n, d) coordinate array + sign vector.

        One Horner sweep per (level, sub-stream) over the batch's *distinct*
        point keys replaces per-event hashing; threshold masks and sketch
        scatters run per level.  Bit-identical to per-event :meth:`update`
        calls in the same order (asserted by the property tests and the
        bench harness).
        """
        rows = check_stream_points(np.asarray(rows), self.params.delta)
        n = len(rows)
        if n == 0:
            return 0
        signs = np.asarray(signs, dtype=np.int64)
        pkeys = self.grids.point_codec.encode(rows)
        levels = range(self.params.L + 1)
        cell_keys = [self.grids.cell_keys(rows, i) for i in levels]
        # Hash each distinct key once; churn streams (delete = re-hash of an
        # earlier insert) and duplicate-heavy batches pay per distinct key.
        # One stacked Horner sweep per sub-stream covers all L+1 levels.
        uniq, inverse = np.unique(pkeys, return_inverse=True)
        vh = self.shared.stacked_h.values_np(uniq)[:, inverse]
        vhp = self.shared.stacked_hp.values_np(uniq)[:, inverse]
        vhh = self.shared.stacked_hhat.values_np(uniq)[:, inverse]
        for inst in self.instances:  # scalar-ok: per instance per batch
            inst.update_batch_arrays(pkeys, cell_keys, signs, vh, vhp, vhh)
        if self._pilot_sampler is not None:
            self._pilot_sampler.update_many(pkeys, signs)
        self.num_updates += n
        return n

    def process(self, stream) -> int:
        """Consume an iterable of :class:`StreamEvent` (or (point, sign) pairs)."""
        return self.update_batch(stream)

    def _entry_for(self, pkey: int, row: np.ndarray):
        """Cached (cell keys, hash values) tuple for one encoded point."""
        cached = self._value_cache.get(pkey)
        if cached is None:
            levels = range(self.params.L + 1)
            cached = (
                [int(self.grids.cell_keys(row, i)[0]) for i in levels],
                [self.shared.h[i].value(pkey) for i in levels],
                [self.shared.hp[i].value(pkey) for i in levels],
                [self.shared.hhat[i].value(pkey) for i in levels],
            )
            if len(self._value_cache) >= self.VALUE_CACHE_LIMIT:
                self._value_cache.pop(next(iter(self._value_cache)))
            self._value_cache[pkey] = cached
        return cached

    def _apply_keyed(self, pkey: int, entry, sign: int) -> None:
        """Feed one keyed update into every instance plus the pilot sampler."""
        cell_keys, vh, vhp, vhh = entry
        for inst in self.instances:  # scalar-ok: scalar reference path, per instance
            inst.update_with_values(pkey, cell_keys, sign, vh, vhp, vhh)
        if self._pilot_sampler is not None:
            self._pilot_sampler.update(pkey, sign)
        self.num_updates += 1

    # -- results ---------------------------------------------------------------
    def finalize(self) -> Coreset:
        """Return the coreset of the preferred non-FAIL guess.

        Non-destructive: decoding copies the sketches, so this may be called
        at any point of the stream (a *snapshot* of the current live set)
        and streaming can continue afterwards.
        """
        return self.finalize_with_instance()[0]

    #: Alias making the any-time-query semantics explicit.
    snapshot = finalize

    def finalize_with_instance(self):
        """Like :meth:`finalize` but also returns the winning instance."""
        last = "no instances"
        order = self.instances if self.prefer == "smallest" else self.instances[::-1]
        cap = self._pilot_upper_bound()
        deferred = []
        for inst in order:  # scalar-ok: finalize: per guess
            if cap is not None and inst.o > cap:
                deferred.append(inst)  # above the OPT estimate: try last
                continue
            try:
                return inst.finalize(), inst
            except FailedConstruction as exc:
                last = exc.reason
        for inst in deferred:  # scalar-ok: finalize: per guess
            try:
                return inst.finalize(), inst
            except FailedConstruction as exc:
                last = exc.reason
        raise FailedConstruction(f"all streaming guesses failed; last: {last}")

    def _pilot_upper_bound(self) -> float | None:
        """Estimate of OPT/4 from the ℓ₀-sampler (None without auto_pilot).

        A k-means++/Lloyd solution on a uniform sample of the live set,
        scaled by the estimated live count, upper-bounds OPT up to sampling
        noise; dividing by 4 keeps the anchor on the safe (≤ OPT) side,
        mirroring the offline pilot/8 descent.
        """
        if self._pilot_sampler is None:
            return None
        keys, live_estimate = self._pilot_sampler.sample()
        if len(keys) < max(2 * self.params.k, 8) or live_estimate <= 0:
            return None
        from repro.solvers.lloyd import lloyd

        pts = self.grids.point_codec.decode_many(keys).astype(np.float64)
        res = lloyd(pts, min(self.params.k, len(pts)), r=self.params.r,
                    seed=derive_seed(0, "pilot-lloyd"), max_iter=8)
        pilot = res.cost * live_estimate / len(pts)
        return max(1.0, pilot / 4.0)

    def space_bits(self) -> int:
        """Total bits across all live instances plus shared randomness."""
        return (sum(inst.space_bits() for inst in self.instances)
                + self.shared.randomness_bits())
