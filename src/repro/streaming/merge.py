"""Merging streaming states (parallel shards of one logical stream).

Everything Algorithm 4 maintains is a *linear sketch*, so two instances
built with the same randomness over disjoint sub-streams can be **added**:
the merged state equals the state of one instance that saw the concatenated
stream.  This is the streaming↔distributed bridge the paper exploits in
Section 4.3 — here exposed directly so users can shard a stream across
workers and merge, or combine checkpointed states.

Requirements (checked): identical parameters, identical seeds (same grids,
hash polynomials, and sketch layouts), same backend.
"""

from __future__ import annotations

from repro.streaming.storing import ExactStoring, SketchStoring
from repro.streaming.streaming_coreset import StreamingCoreset

__all__ = ["merge_many", "merge_streaming_states", "merge_storing"]


def merge_storing(a, b):
    """Merge two Storing structures of the same shape *in place* into ``a``."""
    if type(a) is not type(b):
        raise ValueError("cannot merge different Storing backends")
    if (a.alpha, a.beta, a.recover_points) != (b.alpha, b.beta, b.recover_points):
        raise ValueError("cannot merge Storing structures with different budgets")
    if isinstance(a, ExactStoring):
        a.merge_from(b)
        return a
    if isinstance(a, SketchStoring):
        _add_iblt(a._cells, b._cells)
        # repro-lint: disable=DET104 merging in b's first-touch order creates
        # any nested sketch new to `a` exactly where sequential ingest of the
        # concatenated stream (a's events then b's) would have created it.
        for pos, sk in b._nested.items():
            _add_iblt(a._nested_at(*pos), sk)
        return a
    raise TypeError(f"unknown Storing type {type(a)!r}")


def _add_iblt(dst, src) -> None:
    if dst.m != src.m or dst.universe_bits != src.universe_bits:
        raise ValueError("cannot merge IBLTs of different shapes")
    dst.merge_from(src)


def merge_streaming_states(a: StreamingCoreset, b: StreamingCoreset) -> StreamingCoreset:
    """Merge ``b``'s state into ``a`` (in place; returns ``a``).

    Both drivers must have been constructed with identical ``params``,
    ``seed``, ``backend``, and guess windows — i.e. they are shards of one
    logical computation, differing only in which updates they saw.
    """
    if a.params != b.params:
        raise ValueError("cannot merge: different parameters")
    oa = [inst.o for inst in a.instances]
    ob = [inst.o for inst in b.instances]
    if oa != ob:
        raise ValueError("cannot merge: different guess schedules")
    if any(x.backend != y.backend for x, y in zip(a.instances, b.instances)):
        raise ValueError("cannot merge: different backends")
    # Same seed ⇒ same grid shift; cheap proxy check on the shift vector.
    import numpy as np

    if not np.allclose(a.grids.shift, b.grids.shift):
        raise ValueError("cannot merge: different grid randomness (seeds differ)")

    for ia, ib in zip(a.instances, b.instances):
        ia.dead_reason = ia.dead_reason or ib.dead_reason
        for ga, gb in ((ia.store_h, ib.store_h), (ia.store_hp, ib.store_hp),
                       (ia.store_hhat, ib.store_hhat)):
            for sa, sb in zip(ga, gb):
                merge_storing(sa, sb)
    if a._pilot_sampler is not None and b._pilot_sampler is not None:
        for sa, sb in zip(a._pilot_sampler._sketches, b._pilot_sampler._sketches):
            _add_iblt(sa, sb)
    a.num_updates += b.num_updates
    return a


def merge_many(states) -> StreamingCoreset:
    """Fold a sequence of compatible drivers into the first one (in place).

    The fleet fan-in: the coordinator merges one pulled site state per
    site.  Addition of linear sketches is associative and commutative, so
    any fold order — and any site arrival order — yields the same result;
    the fleet property tests assert this bit for bit.
    """
    states = list(states)
    if not states:
        raise ValueError("need at least one state to merge")
    acc = states[0]
    for other in states[1:]:  # scalar-ok: per-site fan-in, not data plane
        acc = merge_streaming_states(acc, other)
    return acc
