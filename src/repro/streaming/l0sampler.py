"""ℓ₀ (distinct-element) sampling over dynamic streams.

To pick the guess ``o`` the paper runs a streaming 2-approximation of OPT in
parallel ([HSYZ18]).  The core primitive such estimators need — and the one
we implement here — is a *uniform sample of the live set* that survives
deletions: a classic ℓ₀-sampler.

Construction (standard): for levels j = 0, 1, …, U, keep an IBLT of capacity
O(m) holding exactly the keys with h(key) < 2^{−j} (one shared λ-wise hash
``h``; a key's level set is a prefix, so updates touch ~2 levels in
expectation).  At the end of the stream, the *deepest* level that still
decodes yields up to O(m) uniformly-sampled live keys plus an unbiased
estimate ``|decoded| · 2^j`` of the number of live items.  Everything is
linear, so insertions and deletions in any order are handled.

:class:`DistinctSampler` is used by
:class:`~repro.streaming.streaming_coreset.StreamingCoreset` (``pilot="auto"``)
to estimate OPT at finalize time and select the guess — making the whole
pipeline genuinely single-pass on dynamic streams.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.kwise import KWiseHash
from repro.streaming.sketch import DecodeFailure, IBLTSketch
from repro.utils.rng import derive_seed

__all__ = ["DistinctSampler"]


class DistinctSampler:
    """Uniform sampling from the live set of a dynamic stream.

    Parameters
    ----------
    sample_size:
        Target m — the decoder returns between ~m/2 and ~2m keys when the
        live set is larger than m (all of it when smaller).
    universe_bits:
        Keys are integers below 2^universe_bits.
    seed:
        Seeds the level hash and the per-level sketches.
    """

    def __init__(self, sample_size: int, universe_bits: int, seed=0):
        self.m = int(sample_size)
        self.universe_bits = int(universe_bits)
        # Enough levels to thin any stream below m: live sets are at most
        # 2^universe_bits, but practically bounded by stream length; 64
        # levels cover everything representable.
        self.num_levels = min(48, self.universe_bits + 2)
        self._level_hash = KWiseHash(independence=8, universe_bits=universe_bits,
                                     seed=derive_seed(seed, "l0-level"))
        self._sketches = [
            IBLTSketch(max(8, 2 * self.m), universe_bits,
                       seed=derive_seed(seed, f"l0-{j}"))
            for j in range(self.num_levels)
        ]

    def _level_of(self, key: int) -> int:
        """Deepest level j with h(key) < 2^{−j} (levels form a prefix)."""
        p = self._level_hash.prime
        v = self._level_hash.value(int(key))
        j = 0
        threshold = p
        while j + 1 < self.num_levels:
            threshold //= 2
            if v >= threshold:
                break
            j += 1
        return j

    def update(self, key: int, sign: int) -> None:
        """Insert (+1) or delete (−1) a key."""
        deepest = self._level_of(key)
        for j in range(deepest + 1):
            self._sketches[j].update(int(key), sign)

    def update_many(self, keys, signs) -> None:
        """Batched :meth:`update`: one Horner sweep decides every key's
        deepest level, then each level sketch takes one batched scatter.

        Bit-identical to per-event updates: a key's level set is a prefix
        (level j holds exactly the keys with hash below p/2^j), so sketch j
        receives the in-order subsequence of events whose deepest level is
        ≥ j — the same subsequence the scalar path feeds it.
        """
        if not isinstance(keys, np.ndarray):
            keys = np.asarray(keys)
        if keys.size == 0:
            return
        signs = np.asarray(signs, dtype=np.int64)
        vals = self._level_hash.values_np(keys)
        # deepest(key) = number of successive halvings p//2, p//4, … that
        # the hash value stays below (exactly `_level_of`'s loop, unrolled
        # across the batch; p//2^t == iterated floor-halving for t >= 1).
        p = self._level_hash.prime
        deepest = np.zeros(len(vals), dtype=np.int64)
        for t in range(1, self.num_levels):
            below = np.asarray(vals < (p >> t), dtype=bool)
            if not below.any():
                break
            deepest += below
        for j in range(self.num_levels):
            mask = deepest >= j
            if j > 0 and not mask.any():
                break
            self._sketches[j].update_many(keys[mask] if j else keys,
                                          signs[mask] if j else signs)

    def sample(self):
        """Return (keys, live_count_estimate).

        ``keys`` is a list of live keys — the whole live set when it fits,
        else a (λ-wise independent) uniform subsample of ≈ m keys.  Returns
        ``([], 0.0)`` for an empty stream.  Raises ``DecodeFailure`` only if
        even the deepest level is too dense (astronomically unlikely for
        streams shorter than 2^num_levels·m).
        """
        last_error = None
        for j in range(self.num_levels):
            try:
                decoded = self._sketches[j].decode()
            except DecodeFailure as exc:
                last_error = exc
                continue
            if j == 0 or decoded:
                # Sorted: the decode (peeling) order depends on the order
                # updates touched the buckets, and downstream consumers seed
                # RNGs over the sample by row index.  Canonicalizing makes
                # the sample a function of the live *set* alone — required
                # for shard-merge and checkpoint-restore to answer exactly
                # like an unsharded, never-restarted run.
                return sorted(decoded.keys()), float(len(decoded)) * (2.0**j)
        if last_error is not None:
            raise last_error
        return [], 0.0

    def space_bits(self) -> int:
        """Charged bits across all level sketches."""
        return (sum(s.space_bits() for s in self._sketches)
                + self._level_hash.randomness_bits)
