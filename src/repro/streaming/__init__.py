"""Dynamic streaming implementation (Section 4).

- :mod:`repro.streaming.stream` — the dynamic stream model: a sequence of
  point insertions and deletions over [Δ]^d.
- :mod:`repro.streaming.sketch` — linear sketches: 1-sparse recovery buckets
  and IBLT-style peelable key/count sketches.
- :mod:`repro.streaming.storing` — the ``Storing(G_i, α, β, δ)`` subroutine
  of Lemma 4.2 ([HSYZ18]): recover all non-empty cells, their counts, and
  the points of small cells — in both an exact-dictionary reference form and
  the true sublinear sketch form.
- :mod:`repro.streaming.streaming_coreset` — Algorithm 4 / Theorem 4.5: the
  one-pass dynamic-stream coreset, including the parallel guess-``o`` driver.
"""

from repro.streaming.stream import StreamEvent, Stream, INSERT, DELETE, materialize
from repro.streaming.storing import ExactStoring, SketchStoring, StoringResult
from repro.streaming.streaming_coreset import StreamingCoreset, StreamingCoresetInstance
from repro.streaming.l0sampler import DistinctSampler
from repro.streaming.merge import merge_streaming_states

__all__ = [
    "StreamEvent",
    "Stream",
    "INSERT",
    "DELETE",
    "materialize",
    "ExactStoring",
    "SketchStoring",
    "StoringResult",
    "StreamingCoreset",
    "StreamingCoresetInstance",
    "DistinctSampler",
    "merge_streaming_states",
]
