"""The ``Storing(G_i, α, β, δ)`` subroutine (Lemma 4.2, from [HSYZ18]).

Contract: after processing a dynamic stream of points (each update tagged
with its grid-cell key at level i and its point key), the structure either
FAILs or returns

- ``cells``       — every non-empty cell with its exact point count;
- ``small_points``— for every cell with ≤ β points, those points;

and it must not FAIL (w.h.p.) whenever the number of non-empty cells is ≤ α.

Two interchangeable implementations:

- :class:`ExactStoring` — a dictionary (reference semantics; linear space in
  the live set, used for fast experiments and as the test oracle);
- :class:`SketchStoring` — the true sublinear linear sketch: a cell-level
  IBLT of capacity α whose every (row, bucket) slot carries a *nested* point
  IBLT of capacity β (all nested sketches share one hash family; their
  bucket dicts materialize lazily).  After peeling the cell IBLT, every
  decoded cell that is alone in some (row, bucket) has its points
  recoverable from that slot's nested sketch.  Updates are linear, so
  insertions and deletions in any order work — the property Theorem 4.5
  needs.

Space: ``space_bits`` charges the full pre-allocated O(α·β) layout of a
space-bounded implementation (the quantity Lemma 4.2 bounds);
``resident_bits`` reports the materialized buckets (data-dependent, what
the Python process actually holds).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.streaming.sketch import DecodeFailure, IBLTSketch, SketchHashFamily
from repro.utils.rng import derive_seed
from repro.utils.validation import FailedConstruction

__all__ = ["StoringResult", "ExactStoring", "SketchStoring"]


@dataclass
class StoringResult:
    """Decoded contents of a Storing structure."""

    #: Non-empty cells: cell key → exact count.
    cells: dict = field(default_factory=dict)
    #: Cells with ≤ β points: cell key → {point key: count}.
    small_points: dict = field(default_factory=dict)


def _as_key_array(x) -> np.ndarray:
    """Coerce a key sequence to int64, falling back to object for bigints."""
    if isinstance(x, np.ndarray):
        return x
    try:
        return np.asarray(x, dtype=np.int64)
    except (OverflowError, TypeError, ValueError):
        return np.array([int(v) for v in x], dtype=object)


def _group_sum(keys: np.ndarray, deltas: np.ndarray):
    """Aggregate signed deltas per key; returns (sorted keys, nonzero sums)."""
    uniq, inverse = np.unique(keys, return_inverse=True)
    sums = np.zeros(len(uniq), dtype=np.int64)
    np.add.at(sums, inverse, deltas)
    keep = sums != 0
    if keep.all():
        return uniq, sums
    return uniq[keep], sums[keep]


def _group_sum_pairs(cells: np.ndarray, points: np.ndarray, deltas: np.ndarray):
    """Aggregate per (cell, point) pair; lexicographically sorted, nonzero."""
    if len(cells) == 0:
        return cells, points, deltas
    order = np.lexsort((points, cells))
    c, p, v = cells[order], points[order], deltas[order]
    boundary = np.empty(len(c), dtype=bool)
    boundary[0] = True
    if len(c) > 1:
        np.logical_or(np.asarray(c[1:] != c[:-1], dtype=bool),
                      np.asarray(p[1:] != p[:-1], dtype=bool),
                      out=boundary[1:])
    gid = np.cumsum(boundary) - 1
    sums = np.zeros(int(gid[-1]) + 1, dtype=np.int64)
    np.add.at(sums, gid, v)
    starts = np.flatnonzero(boundary)
    keep = sums != 0
    return c[starts][keep], p[starts][keep], sums[keep]


class ExactStoring:
    """Reference implementation, log-structured columnar.

    Updates *append* to a pending log — one O(1) list append per batch (or
    per event on the scalar path) — and a flush aggregates the log into the
    compacted state with numpy group-by sweeps: cell keys sorted ascending
    with their nonzero exact counts, plus (cell, point) pairs in
    lexicographic order when ``recover_points``.  Flushes happen at query /
    checkpoint / merge time and whenever the log outgrows the compacted
    state, so ingest does no per-event Python dict work at all while every
    observable output (results, counts, serialized state) is a canonical
    function of the multiset of updates — independent of event order and of
    how the stream was batched.
    """

    #: Minimum pending-log size before an automatic compaction; beyond it
    #: the log may grow to the compacted size (amortized O(n log n) total).
    FLUSH_THRESHOLD = 4096

    def __init__(self, alpha: int, beta: int, recover_points: bool = True):
        self.alpha = int(alpha)
        self.beta = int(beta)
        self.recover_points = bool(recover_points)
        self._ckeys = np.empty(0, dtype=np.int64)   # sorted, counts nonzero
        self._ccounts = np.empty(0, dtype=np.int64)
        self._pcell = np.empty(0, dtype=np.int64)   # pairs, lex-sorted
        self._ppoint = np.empty(0, dtype=np.int64)
        self._pcount = np.empty(0, dtype=np.int64)
        self._log: list = []      # (cells, points | None, signs) array triples
        self._slog_c: list = []   # scalar-update staging (Python ints)
        self._slog_p: list = []
        self._slog_s: list = []
        self._log_events = 0

    def update(self, cell_key: int, point_key: int, sign: int) -> None:
        """Apply one insertion (+1) / deletion (−1) of a point in a cell."""
        self._slog_c.append(int(cell_key))
        self._slog_p.append(int(point_key))
        self._slog_s.append(int(sign))
        self._log_events += 1
        if self._log_events > max(self.FLUSH_THRESHOLD, len(self._ckeys)):
            self._flush()

    def update_many(self, cell_keys, point_keys, signs) -> None:
        """Append a batch of signed updates (one vectorized log entry).

        Arrays are logged by reference — callers must not mutate them after
        handing them over (the streaming driver's slices are fresh).
        """
        cell_keys = _as_key_array(cell_keys)
        n = len(cell_keys)
        if n == 0:
            return
        signs = np.asarray(signs, dtype=np.int64)
        pts = _as_key_array(point_keys) if self.recover_points else None
        self._log.append((cell_keys, pts, signs))
        self._log_events += n
        if self._log_events > max(self.FLUSH_THRESHOLD, len(self._ckeys)):
            self._flush()

    def _flush(self) -> None:
        """Compact the pending log into the sorted columnar state."""
        if not self._log_events:
            return
        if self._slog_c:
            self._log.append((
                _as_key_array(self._slog_c),
                _as_key_array(self._slog_p) if self.recover_points else None,
                np.asarray(self._slog_s, dtype=np.int64),
            ))
            self._slog_c, self._slog_p, self._slog_s = [], [], []
        logs, self._log = self._log, []
        self._log_events = 0
        cells = np.concatenate([self._ckeys] + [c for c, _, _ in logs])
        deltas = np.concatenate([self._ccounts] + [s for _, _, s in logs])
        self._ckeys, self._ccounts = _group_sum(cells, deltas)
        if self.recover_points:
            pc = np.concatenate([self._pcell] + [c for c, _, _ in logs])
            pp = np.concatenate([self._ppoint] + [p for _, p, _ in logs])
            pn = np.concatenate([self._pcount] + [s for _, _, s in logs])
            self._pcell, self._ppoint, self._pcount = _group_sum_pairs(pc, pp, pn)

    # -- live-count queries (early-kill support) ------------------------------
    def live_cells_upper(self) -> int:
        """Cheap overcount of non-empty cells (compacted + pending log)."""
        return len(self._ckeys) + self._log_events

    def live_cells(self) -> int:
        """Exact number of non-empty cells (forces a compaction)."""
        self._flush()
        return len(self._ckeys)

    # -- dict views (tests, merge, checkpoint codec) --------------------------
    @property
    def _cells(self) -> Counter:
        """Counter snapshot of the exact cell counts, sorted by key.

        A fresh object: mutations do not write through — use :meth:`update`
        / :meth:`update_many` / :meth:`merge_from` (or assign a full mapping,
        as checkpoint restore does).
        """
        self._flush()
        return Counter(dict(zip(self._ckeys.tolist(), self._ccounts.tolist())))  # scalar-ok: snapshot view

    @_cells.setter
    def _cells(self, mapping) -> None:
        items = sorted((int(k), int(v)) for k, v in mapping.items() if v)
        self._ckeys = _as_key_array([k for k, _ in items])
        self._ccounts = np.asarray([v for _, v in items], dtype=np.int64)

    @property
    def _points(self) -> dict:
        """Per-cell point Counters (fresh snapshot, sorted; see `_cells`)."""
        self._flush()
        out: dict[int, Counter] = {}
        for c, p, v in zip(self._pcell.tolist(), self._ppoint.tolist(),  # scalar-ok: snapshot view
                           self._pcount.tolist()):  # scalar-ok: snapshot view
            out.setdefault(c, Counter())[p] = v
        return out

    @_points.setter
    def _points(self, mapping) -> None:
        flat = sorted((int(c), int(p), int(v))
                      for c, pts in mapping.items()
                      for p, v in pts.items() if v)
        self._pcell = _as_key_array([c for c, _, _ in flat])
        self._ppoint = _as_key_array([p for _, p, _ in flat])
        self._pcount = np.asarray([v for _, _, v in flat], dtype=np.int64)

    def merge_from(self, other: "ExactStoring") -> None:
        """Add another structure's counts into this one (linearity)."""
        self._flush()
        other._flush()
        self._ckeys, self._ccounts = _group_sum(
            np.concatenate([self._ckeys, other._ckeys]),
            np.concatenate([self._ccounts, other._ccounts]))
        if self.recover_points:
            self._pcell, self._ppoint, self._pcount = _group_sum_pairs(
                np.concatenate([self._pcell, other._pcell]),
                np.concatenate([self._ppoint, other._ppoint]),
                np.concatenate([self._pcount, other._pcount]))

    def result(self) -> StoringResult:
        """Decode the structure (Lemma 4.2's output); FAIL if > α cells."""
        self._flush()
        if len(self._ckeys) > self.alpha:
            raise FailedConstruction(
                f"Storing: {len(self._ckeys)} non-empty cells exceed alpha={self.alpha}"
            )
        cells = dict(zip(self._ckeys.tolist(), self._ccounts.tolist()))  # scalar-ok: decode, <= alpha cells
        small = {}
        if self.recover_points:
            pcell = self._pcell
            for cell, cnt in cells.items():  # scalar-ok: decode, ≤ alpha cells
                if cnt > self.beta:
                    continue
                lo = np.searchsorted(pcell, cell, side="left")
                hi = np.searchsorted(pcell, cell, side="right")
                small[cell] = dict(zip(self._ppoint[lo:hi].tolist(),  # scalar-ok: decode, small cells only
                                       self._pcount[lo:hi].tolist()))  # scalar-ok: decode, small cells only
        return StoringResult(cells=cells, small_points=small)

    def space_bits(self, cell_bits: int = 64, point_bits: int = 64) -> int:
        """Actual content bits (the reference implementation is not sublinear)."""
        self._flush()
        bits = len(self._ckeys) * (cell_bits + 32)
        if self.recover_points:
            bits += len(self._pcount) * (point_bits + 32)
        return bits

    def resident_bits(self, cell_bits: int = 64, point_bits: int = 64) -> int:
        """Same as :meth:`space_bits` (only live content is held)."""
        return self.space_bits(cell_bits, point_bits)


class SketchStoring:
    """The sublinear linear-sketch implementation of Lemma 4.2."""

    def __init__(
        self,
        alpha: int,
        beta: int,
        cell_universe_bits: int,
        point_universe_bits: int,
        seed=0,
        recover_points: bool = True,
    ):
        self.alpha = int(alpha)
        self.beta = int(beta)
        self.recover_points = bool(recover_points)
        self.cell_universe_bits = int(cell_universe_bits)
        self.point_universe_bits = int(point_universe_bits)
        seed = int(seed) & 0xFFFFFFFF
        self._cells = IBLTSketch(self.alpha, cell_universe_bits,
                                 seed=derive_seed(seed, "cells"))
        # One shared hash family serves every nested point sketch; nested
        # sketches are just lazily-materialized bucket dicts.
        self._pt_family = SketchHashFamily(
            max(8, 2 * self.beta), point_universe_bits,
            seed=derive_seed(seed, "pt-family")) if recover_points else None
        self._nested: dict[tuple[int, int], IBLTSketch] = {}

    def _nested_at(self, row: int, pos: int) -> IBLTSketch:
        key = (row, pos)
        sk = self._nested.get(key)
        if sk is None:
            sk = IBLTSketch(self.beta, self.point_universe_bits,
                            family=self._pt_family)
            self._nested[key] = sk
        return sk

    def update(self, cell_key: int, point_key: int, sign: int) -> None:
        """Apply one signed update to the cell IBLT and its nested sketches.

        Routed through the shared :class:`IBLTSketch` update path (the
        scalar reference of the batched :meth:`update_many`); the cell and
        nested updates are no longer hand-inlined here, so there is exactly
        one implementation of the bucket arithmetic to keep correct.
        """
        cell_key = int(cell_key)
        self._cells.update(cell_key, sign)
        if self.recover_points:
            pk = int(point_key)
            for r, pos in enumerate(self._cells.family.positions(cell_key)):  # scalar-ok: ROWS=3
                self._nested_at(r, pos).update(pk, sign)

    def update_many(self, cell_keys, point_keys, signs) -> None:
        """Apply a batch of signed updates in vectorized sweeps.

        Bit-identical to calling :meth:`update` per event in order: the cell
        IBLT takes one batched scatter, and the point-side hash sweeps run
        once for the whole batch (every nested sketch shares one hash
        family) before fanning out per (row, cell-bucket) group.  Nested
        sketches materialize in first-touch event order — the same order the
        scalar path creates them — so checkpoint bytes are unchanged.
        """
        if not isinstance(cell_keys, np.ndarray):
            cell_keys = np.asarray(cell_keys)
        n = len(cell_keys)
        if n == 0:
            return
        signs = np.asarray(signs, dtype=np.int64)
        cells = self._cells
        fam = cells.family
        pos_rows = fam.positions_np(cell_keys)
        fps = fam.fingerprints_np(cell_keys)
        cells.apply_hashed(pos_rows, fps, cell_keys, signs)
        if not self.recover_points:
            return
        if not isinstance(point_keys, np.ndarray):
            point_keys = np.asarray(point_keys)
        pfam = self._pt_family
        ppos = pfam.positions_np(point_keys)
        pfps = pfam.fingerprints_np(point_keys)
        rows = cells.ROWS
        m = cells.m
        # Flat (row, cell-bucket) ids in scalar visitation order (event-major,
        # row-minor): drives both nested-sketch creation order and grouping.
        flat = np.empty(rows * n, dtype=np.int64)
        for r in range(rows):  # scalar-ok: ROWS=3, vectorized over events
            flat[r::rows] = np.int64(r) * m + pos_rows[r]
        uniq, first, inverse = np.unique(flat, return_index=True,
                                         return_inverse=True)
        nested = self._nested
        for u in np.argsort(first, kind="stable").tolist():  # scalar-ok: per touched bucket
            key = divmod(int(uniq[u]), m)
            if key not in nested:
                nested[key] = IBLTSketch(self.beta, self.point_universe_bits,
                                         family=pfam)
        # Group flat entries by bucket; stable sort keeps event order inside
        # each group, so every nested sketch sees its scalar subsequence.
        order = np.argsort(inverse, kind="stable")
        bounds = np.searchsorted(inverse[order], np.arange(len(uniq) + 1))
        for u in range(len(uniq)):  # scalar-ok: per touched bucket, batched inside
            sel = order[bounds[u]: bounds[u + 1]] // rows
            nested[divmod(int(uniq[u]), m)].apply_hashed(
                ppos[:, sel], pfps[sel], point_keys[sel], signs[sel])

    def result(self) -> StoringResult:
        """Peel the sketches into Lemma 4.2's output; FAIL on stall."""
        try:
            cells = self._cells.decode()
        except DecodeFailure as exc:
            raise FailedConstruction(f"Storing sketch: {exc}") from exc
        if len(cells) > self.alpha:
            raise FailedConstruction(
                f"Storing sketch: decoded {len(cells)} cells exceed alpha={self.alpha}"
            )
        small: dict[int, dict[int, int]] = {}
        if self.recover_points:
            # Which cells share each (row, bucket)?  We know all live cells,
            # so bucket occupancy is computable exactly.
            occupancy: dict[tuple[int, int], int] = {}
            positions: dict[int, tuple[int, ...]] = {}
            fam = self._cells.family
            for cell in cells:  # scalar-ok: decode, ≤ alpha cells
                pos_list = fam.positions(cell)
                positions[cell] = pos_list
                for r, pos in enumerate(pos_list):  # scalar-ok: ROWS=3
                    occupancy[(r, pos)] = occupancy.get((r, pos), 0) + 1
            for cell, cnt in cells.items():  # scalar-ok: decode, ≤ alpha cells
                if cnt > self.beta:
                    continue
                decoded = None
                for r, pos in enumerate(positions[cell]):  # scalar-ok: ROWS=3
                    if occupancy[(r, pos)] != 1:
                        continue  # bucket shared: nested sketch is polluted
                    nested = self._nested.get((r, pos))
                    if nested is None:
                        decoded = {}
                        break
                    try:
                        decoded = nested.decode()
                    except DecodeFailure:
                        continue
                    break
                if decoded is None:
                    raise FailedConstruction(
                        f"Storing sketch: small cell {cell} never isolated "
                        f"in any row; cannot recover its points"
                    )
                small[cell] = decoded
        return StoringResult(cells=cells, small_points=small)

    # -- accounting ------------------------------------------------------------
    def space_bits(self) -> int:
        """Worst-case pre-allocated layout: the cell IBLT plus one nested
        point IBLT per (row, bucket) slot — the O(α·β) of Lemma 4.2."""
        bits = self._cells.space_bits()
        if self.recover_points:
            proto = IBLTSketch(self.beta, self.point_universe_bits,
                               family=self._pt_family)
            bits += (self._cells.ROWS * self._cells.m * proto.space_bits()
                     - (self._cells.ROWS * self._cells.m - 1)
                     * self._pt_family.randomness_bits)
        return bits

    def resident_bits(self) -> int:
        """Bits of buckets actually materialized (data-dependent)."""
        bits = self._cells.resident_bits()
        if self.recover_points:
            bits += self._pt_family.randomness_bits
            for sk in self._nested.values():  # scalar-ok: accounting
                bits += sk.resident_bits() - self._pt_family.randomness_bits
        return bits
