"""The ``Storing(G_i, α, β, δ)`` subroutine (Lemma 4.2, from [HSYZ18]).

Contract: after processing a dynamic stream of points (each update tagged
with its grid-cell key at level i and its point key), the structure either
FAILs or returns

- ``cells``       — every non-empty cell with its exact point count;
- ``small_points``— for every cell with ≤ β points, those points;

and it must not FAIL (w.h.p.) whenever the number of non-empty cells is ≤ α.

Two interchangeable implementations:

- :class:`ExactStoring` — a dictionary (reference semantics; linear space in
  the live set, used for fast experiments and as the test oracle);
- :class:`SketchStoring` — the true sublinear linear sketch: a cell-level
  IBLT of capacity α whose every (row, bucket) slot carries a *nested* point
  IBLT of capacity β (all nested sketches share one hash family; their
  bucket dicts materialize lazily).  After peeling the cell IBLT, every
  decoded cell that is alone in some (row, bucket) has its points
  recoverable from that slot's nested sketch.  Updates are linear, so
  insertions and deletions in any order work — the property Theorem 4.5
  needs.

Space: ``space_bits`` charges the full pre-allocated O(α·β) layout of a
space-bounded implementation (the quantity Lemma 4.2 bounds);
``resident_bits`` reports the materialized buckets (data-dependent, what
the Python process actually holds).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.streaming.sketch import DecodeFailure, IBLTSketch, SketchHashFamily
from repro.utils.rng import derive_seed
from repro.utils.validation import FailedConstruction

__all__ = ["StoringResult", "ExactStoring", "SketchStoring"]


@dataclass
class StoringResult:
    """Decoded contents of a Storing structure."""

    #: Non-empty cells: cell key → exact count.
    cells: dict = field(default_factory=dict)
    #: Cells with ≤ β points: cell key → {point key: count}.
    small_points: dict = field(default_factory=dict)


class ExactStoring:
    """Reference implementation backed by dictionaries."""

    def __init__(self, alpha: int, beta: int, recover_points: bool = True):
        self.alpha = int(alpha)
        self.beta = int(beta)
        self.recover_points = bool(recover_points)
        self._cells: Counter = Counter()
        self._points: dict[int, Counter] = {}

    def update(self, cell_key: int, point_key: int, sign: int) -> None:
        """Apply one insertion (+1) / deletion (−1) of a point in a cell."""
        self._cells[cell_key] += sign
        if self._cells[cell_key] == 0:
            del self._cells[cell_key]
        if self.recover_points:
            bucket = self._points.setdefault(cell_key, Counter())
            bucket[point_key] += sign
            if bucket[point_key] == 0:
                del bucket[point_key]
            if not bucket:
                del self._points[cell_key]

    def result(self) -> StoringResult:
        """Decode the structure (Lemma 4.2's output); FAIL if > α cells."""
        if len(self._cells) > self.alpha:
            raise FailedConstruction(
                f"Storing: {len(self._cells)} non-empty cells exceed alpha={self.alpha}"
            )
        small = {}
        if self.recover_points:
            for cell, cnt in self._cells.items():
                if cnt <= self.beta:
                    small[cell] = dict(self._points.get(cell, {}))
        return StoringResult(cells=dict(self._cells), small_points=small)

    def space_bits(self, cell_bits: int = 64, point_bits: int = 64) -> int:
        """Actual content bits (the reference implementation is not sublinear)."""
        bits = len(self._cells) * (cell_bits + 32)
        if self.recover_points:
            bits += sum(len(c) for c in self._points.values()) * (point_bits + 32)
        return bits

    def resident_bits(self, cell_bits: int = 64, point_bits: int = 64) -> int:
        """Same as :meth:`space_bits` (the dictionary holds only content)."""
        return self.space_bits(cell_bits, point_bits)


class SketchStoring:
    """The sublinear linear-sketch implementation of Lemma 4.2."""

    def __init__(
        self,
        alpha: int,
        beta: int,
        cell_universe_bits: int,
        point_universe_bits: int,
        seed=0,
        recover_points: bool = True,
    ):
        self.alpha = int(alpha)
        self.beta = int(beta)
        self.recover_points = bool(recover_points)
        self.cell_universe_bits = int(cell_universe_bits)
        self.point_universe_bits = int(point_universe_bits)
        seed = int(seed) & 0xFFFFFFFF
        self._cells = IBLTSketch(self.alpha, cell_universe_bits,
                                 seed=derive_seed(seed, "cells"))
        # One shared hash family serves every nested point sketch; nested
        # sketches are just lazily-materialized bucket dicts.
        self._pt_family = SketchHashFamily(
            max(8, 2 * self.beta), point_universe_bits,
            seed=derive_seed(seed, "pt-family")) if recover_points else None
        self._nested: dict[tuple[int, int], IBLTSketch] = {}

    def _nested_at(self, row: int, pos: int) -> IBLTSketch:
        key = (row, pos)
        sk = self._nested.get(key)
        if sk is None:
            sk = IBLTSketch(self.beta, self.point_universe_bits,
                            family=self._pt_family)
            self._nested[key] = sk
        return sk

    def update(self, cell_key: int, point_key: int, sign: int) -> None:
        """Apply one signed update to the cell IBLT and its nested sketch."""
        cell_key = int(cell_key)
        fam = self._cells.family
        fp = fam.fingerprint(cell_key)
        dk = sign * cell_key
        dfp = sign * fp
        buckets = self._cells.buckets
        for r, pos in enumerate(fam.positions(cell_key)):
            b = buckets.get((r, pos))
            if b is None:
                buckets[(r, pos)] = [sign, dk, dfp]
            else:
                b[0] += sign
                b[1] += dk
                b[2] += dfp
            if self.recover_points:
                self._nested_at(r, pos).update(int(point_key), sign)

    def result(self) -> StoringResult:
        """Peel the sketches into Lemma 4.2's output; FAIL on stall."""
        try:
            cells = self._cells.decode()
        except DecodeFailure as exc:
            raise FailedConstruction(f"Storing sketch: {exc}") from exc
        if len(cells) > self.alpha:
            raise FailedConstruction(
                f"Storing sketch: decoded {len(cells)} cells exceed alpha={self.alpha}"
            )
        small: dict[int, dict[int, int]] = {}
        if self.recover_points:
            # Which cells share each (row, bucket)?  We know all live cells,
            # so bucket occupancy is computable exactly.
            occupancy: dict[tuple[int, int], int] = {}
            positions: dict[int, tuple[int, ...]] = {}
            fam = self._cells.family
            for cell in cells:
                pos_list = fam.positions(cell)
                positions[cell] = pos_list
                for r, pos in enumerate(pos_list):
                    occupancy[(r, pos)] = occupancy.get((r, pos), 0) + 1
            for cell, cnt in cells.items():
                if cnt > self.beta:
                    continue
                decoded = None
                for r, pos in enumerate(positions[cell]):
                    if occupancy[(r, pos)] != 1:
                        continue  # bucket shared: nested sketch is polluted
                    nested = self._nested.get((r, pos))
                    if nested is None:
                        decoded = {}
                        break
                    try:
                        decoded = nested.decode()
                    except DecodeFailure:
                        continue
                    break
                if decoded is None:
                    raise FailedConstruction(
                        f"Storing sketch: small cell {cell} never isolated "
                        f"in any row; cannot recover its points"
                    )
                small[cell] = decoded
        return StoringResult(cells=cells, small_points=small)

    # -- accounting ------------------------------------------------------------
    def space_bits(self) -> int:
        """Worst-case pre-allocated layout: the cell IBLT plus one nested
        point IBLT per (row, bucket) slot — the O(α·β) of Lemma 4.2."""
        bits = self._cells.space_bits()
        if self.recover_points:
            proto = IBLTSketch(self.beta, self.point_universe_bits,
                               family=self._pt_family)
            bits += (self._cells.ROWS * self._cells.m * proto.space_bits()
                     - (self._cells.ROWS * self._cells.m - 1)
                     * self._pt_family.randomness_bits)
        return bits

    def resident_bits(self) -> int:
        """Bits of buckets actually materialized (data-dependent)."""
        bits = self._cells.resident_bits()
        if self.recover_points:
            bits += self._pt_family.randomness_bits
            for sk in self._nested.values():
                bits += sk.resident_bits() - self._pt_family.randomness_bits
        return bits
