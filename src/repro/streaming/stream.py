"""The dynamic stream model (Section 4.2).

A stream is a sequence of ``(point, ±1)`` events: ``(p, +1)`` inserts p into
Q and ``(p, −1)`` deletes it.  The model guarantees a deletion only targets a
currently-present point; :func:`materialize` (the reference semantics used by
tests) enforces this.

The paper's footnote 4 assumes no two *distinct* points share coordinates;
equivalently Q is a set.  We follow that convention: inserting a point that
is already present is a model violation that :func:`materialize` rejects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.utils.validation import coerce_integral_rows

__all__ = ["INSERT", "DELETE", "StreamEvent", "Stream", "materialize",
           "events_to_arrays"]

INSERT = 1
DELETE = -1


@dataclass(frozen=True)
class StreamEvent:
    """One stream update: a point and a sign (+1 insert / −1 delete)."""

    point: tuple
    sign: int

    def __post_init__(self):
        if self.sign not in (INSERT, DELETE):
            raise ValueError(f"sign must be ±1, got {self.sign}")


class Stream:
    """A replayable sequence of stream events with convenience constructors."""

    def __init__(self, events: Iterable[StreamEvent]):
        self.events: list[StreamEvent] = list(events)

    def __iter__(self) -> Iterator[StreamEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @classmethod
    def from_points(cls, points: np.ndarray, sign: int = INSERT) -> "Stream":
        """All-insert (or all-delete) stream of the rows of ``points``."""
        pts = np.asarray(points)
        return cls(StreamEvent(tuple(int(c) for c in row), sign) for row in pts)

    def __add__(self, other: "Stream") -> "Stream":
        return Stream(self.events + list(other.events))

    def num_insertions(self) -> int:
        """Number of +1 events in the stream."""
        return sum(1 for e in self.events if e.sign == INSERT)

    def num_deletions(self) -> int:
        """Number of −1 events in the stream."""
        return sum(1 for e in self.events if e.sign == DELETE)


def events_to_arrays(events, d: int | None = None):
    """Normalize a batch of events to ``(rows, signs)`` numpy arrays.

    Accepts any iterable of :class:`StreamEvent` or ``(point, sign)`` pairs
    and returns an (n, d) int64 coordinate array plus an (n,) int64 sign
    vector — the columnar form every batched ingest path consumes.
    Non-integral coordinates raise ``ValueError`` (via
    :func:`~repro.utils.validation.coerce_integral_rows`) before any
    consumer state can be touched.
    """
    points: list = []
    signs: list = []
    for ev in events:
        if isinstance(ev, StreamEvent):
            points.append(ev.point)
            signs.append(ev.sign)
        else:
            points.append(ev[0])
            signs.append(int(ev[1]))
    if not points:
        return (np.empty((0, d or 0), dtype=np.int64),
                np.empty(0, dtype=np.int64))
    return coerce_integral_rows(points), np.asarray(signs, dtype=np.int64)


def materialize(stream: Iterable[StreamEvent], d: int | None = None) -> np.ndarray:
    """Reference semantics: the surviving point set after replaying the stream.

    Raises on model violations (deleting an absent point, double insertion).
    """
    live: dict[tuple, bool] = {}
    for ev in stream:
        if ev.sign == INSERT:
            if ev.point in live:
                raise ValueError(f"double insertion of {ev.point}")
            live[ev.point] = True
        else:
            if ev.point not in live:
                raise ValueError(f"deletion of absent point {ev.point}")
            del live[ev.point]
    if not live:
        return np.empty((0, d or 0), dtype=np.int64)
    return np.array(sorted(live.keys()), dtype=np.int64)
