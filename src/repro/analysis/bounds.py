"""The paper's explicit bounds as executable formulas.

Every function cites the statement it encodes.  These are *upper bounds
proved in the paper*, not targets: measured values (E1, E3) sit far below
them, which is itself part of the reproduction story — the theory constants
are sized for the union-bound proofs, not for tightness.
"""

from __future__ import annotations

import math

from repro.core.params import CoresetParams

__all__ = [
    "coreset_size_bound",
    "heavy_cells_bound",
    "num_guesses",
    "small_part_removal_error",
    "storing_space_bound_bits",
]


def coreset_size_bound(params: CoresetParams) -> float:
    """Lemma 3.18's size bound:

        |Q'| ≤ 8·10¹² · 2^{10(r+10)} · r · k⁶ · d · (k + d^{1.5r})⁵ · L¹⁰
               · log(kdL) / min(ε, η)⁴.
    """
    k, d, L, r = params.k, params.d, params.L, params.r
    dd = params.d_pow
    return (8e12 * 2.0 ** (10 * (r + 10)) * r * k**6 * d * (k + dd) ** 5
            * L**10 * math.log(max(k * d * L, 2))
            / min(params.eps, params.eta) ** 4)


def heavy_cells_bound(params: CoresetParams, opt_over_o: float = 1.0) -> float:
    """Lemma 3.3: Σ heavy cells ≤ 2000·(k + d^{1.5r})·L · OPT/o."""
    return 2000.0 * (params.k + params.d_pow) * params.L * opt_over_o


def num_guesses(params: CoresetParams, n: int | None = None) -> int:
    """Length of the o-enumeration {1, 2, 4, …}.

    With ``n`` given, the offline range n·(√dΔ)^r (Theorem 3.19); otherwise
    the streaming universe range Δ^d·(√dΔ)^r (Algorithm 1's predetermined
    interval).
    """
    top = (params.guess_upper_bound(n) if n is not None
           else (params.delta ** params.d)
           * (math.sqrt(params.d) * params.delta) ** params.r)
    return int(math.ceil(math.log2(max(top, 2.0)))) + 1


def small_part_removal_error(params: CoresetParams) -> tuple[float, float]:
    """Lemma 3.4's guarantee for the γ cutoff, as (cost factor, capacity slack).

    Removing all parts below 2γ·T_i(o) changes any capacitated cost by at
    most (1+ε) while relaxing capacity by (1+η) — *provided* γ respects the
    lemma's premise γ ≤ min(η/(8·2^r kL), ε/(4000·2^{2r}(k+d^{1.5r})L)).
    Returns the (ε, η) the current γ actually certifies by inverting that
    premise; practical-mode γ values certify larger-but-finite factors.
    """
    k, L, r = params.k, params.L, params.r
    dd = params.d_pow
    eta_certified = params.gamma * 8 * 2**r * k * L
    eps_certified = params.gamma * 4000 * 2 ** (2 * r) * (k + dd) * L
    return eps_certified, eta_certified


def storing_space_bound_bits(params: CoresetParams, o: float) -> int:
    """Lemma 4.2 structure: Σ over levels/sub-streams of O(α·β·dL·log²(αβ)).

    Uses the instance's actual (α, β) budgets; this is the worst-case layout
    the SketchStoring ``space_bits`` accounting charges, summed analytically.
    """
    total = 0.0
    dL = params.d * params.L
    for i in range(params.L + 1):
        for rate, beta in (
            (params.psi(i, o), 1),
            (params.psi_part(i, o), 1),
            (params.phi(i, o), params.storing_beta(i, o)),
        ):
            alpha = params.storing_alpha(i, o, rate)
            ab = max(2, alpha * beta)
            total += ab * dL * math.log2(ab) ** 2
    return int(total)
