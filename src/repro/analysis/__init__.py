"""Closed-form theory bounds from the paper, as executable formulas.

These let experiments and users compare *measured* quantities against the
paper's *stated* bounds (Lemma 3.18's coreset size, Lemma 3.3's heavy-cell
count, the guess-enumeration length, the streaming space structure).
"""

from repro.analysis.bounds import (
    coreset_size_bound,
    heavy_cells_bound,
    num_guesses,
    small_part_removal_error,
    storing_space_bound_bits,
)

__all__ = [
    "coreset_size_bound",
    "heavy_cells_bound",
    "num_guesses",
    "small_part_removal_error",
    "storing_space_bound_bits",
]
