"""Randomly shifted hierarchical grids (Section 3.1) and integer key codecs.

The grid structure provides, for every level ``i ∈ {-1, 0, …, L}`` with cell
side ``g_i = Δ / 2^i`` (so ``g_{-1} = 2Δ`` and a single level-(-1) cell
contains all of [Δ]^d), the map from points to cell coordinates
``t = ⌊(p − v)/g_i⌋``.  Because every level shares the same shift ``v`` and
sides halve between levels, cells are *nested*: the parent of a cell is
obtained by halving (floor-dividing) its coordinate vector.

Keys
----
Sketches and hash families need points and cells as integers.  The codecs
here are **injective and invertible** (the IBLT decoder must map recovered
integer keys back to actual points/cells), implemented in mixed radix with a
fast ``int64`` path when the universe fits in 62 bits and a Python-bigint
path otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import check_delta, check_points

__all__ = ["HierarchicalGrids", "PointCodec", "CellKey"]


def _encode_rows(coords: np.ndarray, base: int, fits64: bool) -> np.ndarray:
    """Mixed-radix encode each row of a non-negative int array to one integer.

    Returns an int64 array on the fast path, else an object array of Python
    ints.  Row order of digits is most-significant-first on axis 1.
    """
    n, d = coords.shape
    if fits64:
        acc = np.zeros(n, dtype=np.int64)
        for j in range(d):
            acc = acc * base + coords[:, j]
        return acc
    acc = np.zeros(n, dtype=object)
    cols = coords.astype(object)
    for j in range(d):
        acc = acc * base + cols[:, j]
    return acc


def _decode_key(key: int, base: int, d: int) -> tuple[int, ...]:
    """Invert :func:`_encode_rows` for a single key."""
    digits = []
    k = int(key)
    for _ in range(d):
        digits.append(k % base)
        k //= base
    if k != 0:
        raise ValueError(f"key {key} out of range for base {base}, d={d}")
    return tuple(reversed(digits))


@dataclass(frozen=True)
class CellKey:
    """A decoded grid cell: its level and integer coordinate vector."""

    level: int
    coords: tuple[int, ...]


class PointCodec:
    """Injective codec between points of [Δ]^d and integers in [0, (Δ+1)^d)."""

    def __init__(self, delta: int, d: int):
        self.delta = check_delta(delta)
        self.d = int(d)
        self.base = self.delta + 1
        self.universe_bits = max(16, math.ceil(self.d * math.log2(self.base)) + 1)
        self._fits64 = self.universe_bits <= 62

    def encode(self, points: np.ndarray) -> np.ndarray:
        """Encode an (n, d) integer point array to n integer keys.

        Coordinates must lie in [0, Δ] — the codec is injective only
        there; out-of-range digits would alias to a *different* valid
        point's key, so they are rejected rather than encoded.
        """
        pts = np.asarray(points)
        if pts.ndim == 1:
            pts = pts[None, :]
        if pts.size and (pts.min() < 0 or pts.max() > self.delta):
            raise ValueError(
                f"cannot encode coordinates outside [0, {self.delta}]: got "
                f"range [{pts.min()}, {pts.max()}]"
            )
        return _encode_rows(pts, self.base, self._fits64)

    def encode_one(self, point) -> int:
        """Encode a single point (sequence of d ints) to its key."""
        acc = 0
        for c in point:
            c = int(c)
            if not 0 <= c <= self.delta:
                raise ValueError(
                    f"cannot encode coordinate {c} outside [0, {self.delta}]"
                )
            acc = acc * self.base + c
        return acc

    def decode(self, key: int) -> np.ndarray:
        """Decode an integer key back to a length-d point."""
        return np.array(_decode_key(key, self.base, self.d), dtype=np.int64)

    def decode_many(self, keys) -> np.ndarray:
        """Decode a sequence of keys to an (n, d) point array."""
        if len(keys) == 0:
            return np.empty((0, self.d), dtype=np.int64)
        return np.stack([self.decode(k) for k in keys])


class HierarchicalGrids:
    """The randomly shifted nested grids G₋₁, G₀, …, G_L of Section 3.1.

    Parameters
    ----------
    delta:
        Coordinate range Δ (power of two); L = log₂ Δ.
    d:
        Dimension.
    seed:
        Seed / Generator for the uniform shift v ∈ [0, Δ]^d.  Two grid
        objects built from the same (delta, d, seed) are identical — this is
        how the streaming and distributed algorithms share one grid.
    """

    def __init__(self, delta: int, d: int, seed=0):
        self.delta = check_delta(delta)
        self.d = int(d)
        self.L = int(math.log2(self.delta))
        rng = as_rng(seed)
        #: The random shift v; one cell of each grid has a corner at v.
        self.shift = rng.uniform(0.0, float(self.delta), size=self.d)
        # Cell-coordinate encoding: t ∈ [⌊(1-Δ)/g⌋, ⌊Δ/g⌋]; offsetting by
        # 2^i + 1 (≥ Δ/g_i rounded up) makes coordinates non-negative at
        # every level; base covers the full offset range.
        self._coord_base = 2 * self.delta + 4
        self._level_base = self.L + 3
        bits = math.ceil(
            math.log2(self._level_base) + self.d * math.log2(self._coord_base)
        )
        self.cell_universe_bits = max(16, bits + 1)
        self._fits64 = self.cell_universe_bits <= 62
        self.point_codec = PointCodec(self.delta, self.d)

    # -- geometry ------------------------------------------------------------
    def side(self, level: int) -> float:
        """Cell side length g_i = Δ / 2^i (g_{-1} = 2Δ)."""
        self._check_level(level)
        return float(self.delta) / (2.0**level)

    def levels(self):
        """Iterate usable levels 0…L (the partition's levels)."""
        return range(0, self.L + 1)

    def cell_coords(self, points: np.ndarray, level: int) -> np.ndarray:
        """Integer cell coordinates ⌊(p − v)/g_i⌋ for each point, shape (n, d)."""
        self._check_level(level)
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim == 1:
            pts = pts[None, :]
        g = self.side(level)
        return np.floor((pts - self.shift[None, :]) / g).astype(np.int64)

    def cell_diameter(self, level: int) -> float:
        """Upper bound √d · g_i on the distance between two points in one cell."""
        return math.sqrt(self.d) * self.side(level)

    @staticmethod
    def parent_coords(coords: np.ndarray) -> np.ndarray:
        """Coordinates of the parent cell one level up (nested grids ⇒ halve)."""
        return np.floor_divide(np.asarray(coords), 2)

    # -- keys ------------------------------------------------------------------
    def _offset(self, level: int) -> int:
        # Makes shifted coordinates non-negative: |t| ≤ 2^level + 1.
        return (1 << max(level, 0)) + 2

    def cell_keys(self, points: np.ndarray, level: int) -> np.ndarray:
        """Injective integer keys for the cells containing each point."""
        coords = self.cell_coords(points, level)
        return self.encode_cell_coords(coords, level)

    def encode_cell_coords(self, coords: np.ndarray, level: int) -> np.ndarray:
        """Encode raw (n, d) cell coordinates at ``level`` into integer keys."""
        self._check_level(level)
        shifted = np.asarray(coords) + self._offset(level)
        if shifted.size and shifted.min() < 0:
            raise ValueError("cell coordinates below representable range")
        # cell_universe_bits ≤ 62 guarantees level·radix + body < 2^62, so
        # the whole encode stays on the int64 fast path.
        body = _encode_rows(shifted, self._coord_base, fits64=self._fits64)
        lvl = level + 1  # shift level -1 -> 0
        radix = self._coord_base**self.d
        keys = body + lvl * radix
        if self._fits64:
            return keys.astype(np.int64)
        return keys

    def encode_cell(self, coords, level: int) -> int:
        """Encode one cell coordinate vector."""
        arr = np.asarray(coords, dtype=np.int64)[None, :]
        return int(self.encode_cell_coords(arr, level)[0])

    def decode_cell_key(self, key: int) -> CellKey:
        """Decode an integer cell key back to (level, coordinates)."""
        radix = self._coord_base**self.d
        k = int(key)
        lvl = k // radix - 1
        self._check_level(lvl)
        digits = _decode_key(k % radix, self._coord_base, self.d)
        coords = tuple(t - self._offset(lvl) for t in digits)
        return CellKey(level=lvl, coords=coords)

    def point_keys(self, points: np.ndarray) -> np.ndarray:
        """Injective integer keys for points (for point-level hashing/sketches)."""
        return self.point_codec.encode(check_points(points, self.delta))

    # -- misc -------------------------------------------------------------------
    def _check_level(self, level: int) -> None:
        if not (-1 <= level <= self.L):
            raise ValueError(f"level must be in [-1, {self.L}], got {level}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HierarchicalGrids(delta={self.delta}, d={self.d}, L={self.L})"
