"""Discretization of real-valued data into the paper's [Δ]^d model.

Section 1.1: "we suppose all input and output points are in {1, …, Δ}^d …
this assumption is without loss of generality since if the clustering cost is
non-zero, we can always discretize the space by changing the cost by an
arbitrary small multiplicative error."  These helpers perform exactly that
reduction: affine-map a real point cloud into the grid and snap to integers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_delta

__all__ = ["Discretization", "discretize", "dediscretize"]


@dataclass(frozen=True)
class Discretization:
    """The affine map used to discretize; kept so results can be mapped back.

    ``grid = round((x - offset) * scale) + 1`` with ``grid ∈ [1, Δ]^d``.
    """

    offset: np.ndarray
    scale: float
    delta: int

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Map real points into [Δ]^d with the stored transform."""
        pts = np.asarray(points, dtype=np.float64)
        grid = np.rint((pts - self.offset[None, :]) * self.scale).astype(np.int64) + 1
        return np.clip(grid, 1, self.delta)

    def invert(self, grid_points: np.ndarray) -> np.ndarray:
        """Map grid points back to (approximate) original coordinates."""
        g = np.asarray(grid_points, dtype=np.float64)
        return (g - 1.0) / self.scale + self.offset[None, :]


def discretize(points: np.ndarray, delta: int) -> tuple[np.ndarray, Discretization]:
    """Snap a real-valued (n, d) point cloud to [Δ]^d.

    The bounding box is scaled to span [1, Δ] along its *longest* side
    (isotropic scaling, so relative distances — and hence clustering costs —
    are preserved up to the rounding error of half a grid cell).

    Returns the integer point array and the :class:`Discretization` transform.
    """
    delta = check_delta(delta)
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError(f"points must be (n, d), got shape {pts.shape}")
    if pts.shape[0] == 0:
        t = Discretization(offset=np.zeros(pts.shape[1]), scale=1.0, delta=delta)
        return np.empty((0, pts.shape[1]), dtype=np.int64), t
    lo = pts.min(axis=0)
    span = float((pts.max(axis=0) - lo).max())
    scale = (delta - 1) / span if span > 0 else 1.0
    t = Discretization(offset=lo, scale=scale, delta=delta)
    return t.apply(pts), t


def dediscretize(grid_points: np.ndarray, transform: Discretization) -> np.ndarray:
    """Convenience inverse of :func:`discretize`."""
    return transform.invert(grid_points)
