"""Randomly shifted hierarchical grids over [Δ]^d and data discretization.

Section 3.1 of the paper partitions the space by grids G₋₁, G₀, …, G_L
(L = log₂ Δ) where level i has cell side g_i = Δ/2^i and all levels share one
uniformly random shift vector v ∈ [0, Δ]^d, so cells are nested across levels.
"""

from repro.grid.grids import HierarchicalGrids, PointCodec
from repro.grid.discretize import discretize, dediscretize

__all__ = ["HierarchicalGrids", "PointCodec", "discretize", "dediscretize"]
