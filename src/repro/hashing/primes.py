"""Deterministic primality testing and prime generation.

The λ-wise independent hash families need a prime modulus strictly larger
than the key universe (which for points of [Δ]^d has d·log2(Δ) bits, easily
beyond 64).  We use a deterministic Miller-Rabin test: for n < 3.3·10²⁴ the
witness set {2,3,5,7,11,13,17,19,23,29,31,37} is exact, and for larger n we
add enough fixed witnesses that a composite slipping through is (for the
purposes of a randomized clustering algorithm with 0.9 success probability)
negligible.
"""

from __future__ import annotations

from functools import lru_cache

__all__ = ["is_prime", "next_prime"]

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97,
)

# Deterministic for n < 3,317,044,064,679,887,385,961,981.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

# Extra fixed witnesses for very large n (heuristic but astronomically safe).
_MR_EXTRA = (41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97, 101)


def is_prime(n: int) -> bool:
    """Miller-Rabin primality test (deterministic below 3.3e24)."""
    n = int(n)
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n-1 = d * 2^s with d odd.
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1
    witnesses = _MR_WITNESSES if n < 3_317_044_064_679_887_385_961_981 else _MR_WITNESSES + _MR_EXTRA
    for a in witnesses:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


@lru_cache(maxsize=4096)
def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n`` (memoized — hash families
    are created in bulk for the same few universe sizes)."""
    c = int(n) + 1
    if c <= 2:
        return 2
    if c % 2 == 0:
        c += 1
    while not is_prime(c):
        c += 2
    return c
