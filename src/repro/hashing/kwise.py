"""λ-wise independent hash families via random polynomials over a prime field.

A uniformly random polynomial of degree λ−1 over GF(p), evaluated at distinct
keys, yields λ-wise independent, uniformly distributed field values.  From
that single primitive we derive the three shapes the algorithms need:

- :class:`KWiseHash` — raw field values / uniform reals in [0, 1);
- :class:`BernoulliHash` — the λ-wise independent indicator
  ``Pr[h(p) = 1] = φ`` used by Algorithms 2, 3, and 4 for subsampling;
- :class:`UniformBucketHash` — bucket assignment for the IBLT sketches.

Evaluation uses Horner's rule with Python integers, so keys and the modulus
may exceed 64 bits (point/cell encodings over [Δ]^d routinely do).  The
coefficient vector is the *entire* stored randomness: λ field elements, i.e.
λ·log2(p) bits, which is what the space accounting charges.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.hashing.primes import next_prime
from repro.utils.rng import as_rng

__all__ = ["KWiseHash", "BernoulliHash", "UniformBucketHash"]


def _random_field_elements(rng: np.random.Generator, count: int, p: int) -> list[int]:
    """Draw ``count`` independent uniform elements of GF(p) (p may exceed 64 bits)."""
    nbits = p.bit_length()
    nbytes = (nbits + 7) // 8
    out: list[int] = []
    while len(out) < count:
        # Rejection sampling from [0, 2^(8·nbytes)) to [0, p).
        raw = rng.bytes(nbytes * (count - len(out) + 4))
        for i in range(0, len(raw) - nbytes + 1, nbytes):
            v = int.from_bytes(raw[i : i + nbytes], "big")
            if v < p:
                out.append(v)
                if len(out) == count:
                    break
    return out


class KWiseHash:
    """A single function drawn from a λ-wise independent family GF(p) → GF(p).

    Parameters
    ----------
    independence:
        λ — the order of independence (polynomial degree is λ−1).  λ ≥ 2.
    universe_bits:
        Keys must satisfy ``0 <= key < 2**universe_bits``; the modulus is the
        next prime above the universe so the key → field map is injective.
    seed:
        Integer seed or ``numpy`` Generator.
    """

    def __init__(self, independence: int, universe_bits: int, seed=0):
        if independence < 1:
            raise ValueError(f"independence must be >= 1, got {independence}")
        if independence > 1_000_000:
            # The paper's theory-mode λ can reach 10⁸⁺; materializing that
            # many coefficients (and paying O(λ) per evaluation) is never
            # intended — theory mode only reaches a sampler when φ < 1,
            # which needs inputs far beyond a single machine.
            raise ValueError(
                f"independence {independence} is impractically large; "
                "use CoresetParams.practical() or cap params.lam"
            )
        self.independence = int(independence)
        self.universe_bits = int(universe_bits)
        self.prime = next_prime(max(1 << self.universe_bits, 1 << 16))
        rng = as_rng(seed)
        self._coeffs = _random_field_elements(rng, self.independence, self.prime)

    # -- core evaluation ---------------------------------------------------
    def value(self, key: int) -> int:
        """Field value of a single key (Horner's rule, O(λ) multiplications)."""
        p = self.prime
        acc = 0
        for c in self._coeffs:
            acc = (acc * key + c) % p
        return acc

    def values(self, keys: Iterable[int]) -> list[int]:
        """Field values for a batch of keys.

        Fast path: when the prime fits in 31 bits (small universes, e.g.
        d·log₂Δ ≤ 30), Horner's rule runs vectorized in int64 numpy — every
        intermediate product stays below 2^62.  Otherwise a Python-int loop
        handles arbitrary-size fields.
        """
        p = self.prime
        coeffs = self._coeffs
        keys = keys if isinstance(keys, list) else list(keys)
        if p < (1 << 31) and keys:
            arr = np.asarray(keys, dtype=np.int64) % p
            acc = np.zeros(len(keys), dtype=np.int64)
            for c in coeffs:
                acc = (acc * arr + c) % p
            return acc.tolist()
        out = []
        for key in keys:
            acc = 0
            for c in coeffs:
                acc = (acc * key + c) % p
            out.append(acc)
        return out

    def uniform(self, keys: Sequence[int]) -> np.ndarray:
        """Map keys to λ-wise independent uniforms in [0, 1) (float64)."""
        p = float(self.prime)
        return np.array([v / p for v in self.values(keys)], dtype=np.float64)

    # -- accounting ---------------------------------------------------------
    @property
    def randomness_bits(self) -> int:
        """Bits of stored randomness: λ coefficients of log2(p) bits each."""
        return self.independence * self.prime.bit_length()


class BernoulliHash:
    """λ-wise independent indicator with ``Pr[h(key) = 1] = phi``.

    Implemented as ``value(key) < floor(phi · p)``; the realized probability
    differs from φ by < 1/p, i.e. by less than one part in the universe size,
    which the paper's analysis absorbs without comment.
    """

    def __init__(self, phi: float, independence: int, universe_bits: int, seed=0):
        if not (0.0 <= phi <= 1.0):
            raise ValueError(f"phi must be in [0, 1], got {phi}")
        self.phi = float(phi)
        self._h = KWiseHash(independence, universe_bits, seed=seed)
        self._threshold = int(self.phi * self._h.prime)

    def indicator(self, key: int) -> bool:
        """Whether ``key`` is sampled."""
        if self.phi >= 1.0:
            return True
        return self._h.value(key) < self._threshold

    def select(self, keys: Sequence[int]) -> np.ndarray:
        """Boolean mask of sampled keys."""
        if self.phi >= 1.0:
            return np.ones(len(keys), dtype=bool)
        t = self._threshold
        return np.array([v < t for v in self._h.values(keys)], dtype=bool)

    @property
    def independence(self) -> int:
        """The λ of the underlying λ-wise independent family."""
        return self._h.independence

    @property
    def randomness_bits(self) -> int:
        """Bits of stored randomness (delegates to the field polynomial)."""
        return self._h.randomness_bits


class UniformBucketHash:
    """λ-wise independent map from keys to ``num_buckets`` buckets.

    Used by the IBLT-style sketches in :mod:`repro.streaming.sketch`.  The
    field value is reduced mod the bucket count; the induced non-uniformity
    is < num_buckets / p, negligible for universe-sized primes.
    """

    def __init__(self, num_buckets: int, independence: int, universe_bits: int, seed=0):
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self.num_buckets = int(num_buckets)
        self._h = KWiseHash(independence, universe_bits, seed=seed)

    def bucket(self, key: int) -> int:
        """Bucket index of a single key."""
        return self._h.value(key) % self.num_buckets

    def buckets(self, keys: Sequence[int]) -> np.ndarray:
        """Bucket indices for a batch of keys."""
        m = self.num_buckets
        return np.array([v % m for v in self._h.values(keys)], dtype=np.int64)

    @property
    def randomness_bits(self) -> int:
        """Bits of stored randomness (delegates to the field polynomial)."""
        return self._h.randomness_bits
