"""λ-wise independent hash families via random polynomials over a prime field.

A uniformly random polynomial of degree λ−1 over GF(p), evaluated at distinct
keys, yields λ-wise independent, uniformly distributed field values.  From
that single primitive we derive the three shapes the algorithms need:

- :class:`KWiseHash` — raw field values / uniform reals in [0, 1);
- :class:`BernoulliHash` — the λ-wise independent indicator
  ``Pr[h(p) = 1] = φ`` used by Algorithms 2, 3, and 4 for subsampling;
- :class:`UniformBucketHash` — bucket assignment for the IBLT sketches.

Evaluation is Horner's rule, batched: :meth:`KWiseHash.values_np` runs the
whole sweep in numpy int64 whenever every intermediate provably fits —
directly for primes below 2^31, and via a multi-limb modular product (the
key is split into ``s``-bit limbs so every partial product stays below 2^63;
no float128, no Barrett approximation) for primes up to ~2^55.  Only truly
huge universes fall back to chunked Python-int arithmetic on object arrays.
The coefficient vector is the *entire* stored randomness: λ field elements,
i.e. λ·log2(p) bits, which is what the space accounting charges.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Sequence

import numpy as np

from repro.hashing.primes import next_prime
from repro.utils.rng import as_rng

__all__ = ["KWiseHash", "BernoulliHash", "UniformBucketHash", "StackedHashes",
           "exact_field_threshold"]

#: Largest prime bit-length handled by the int64 multi-limb Horner path.
#: Beyond this the limb count (⌈B/(62−B)⌉) grows past ~8 and the object
#: fallback wins; it also keeps every intermediate strictly below 2^63.
_MULTI_LIMB_MAX_BITS = 55

#: Chunk size of the Python-int (object dtype) fallback — bounds the peak
#: number of live bigint temporaries per Horner sweep.
_OBJECT_CHUNK = 32768


def exact_field_threshold(phi: float, prime: int) -> int:
    """``⌊φ·p⌋`` in exact integer arithmetic.

    ``int(phi * prime)`` computes the product in float64, which has only 53
    bits of mantissa — for primes above 2^53 the realized threshold (and so
    the realized sampling probability of every ``value < threshold`` test)
    can deviate from φ by far more than the documented 1/p.  Going through
    the float's exact rational value keeps the error strictly below one
    field element for any prime size.
    """
    if phi >= 1.0:
        return int(prime)
    if phi <= 0.0:
        return 0
    frac = Fraction(phi)  # exact binary expansion of the float
    return (frac.numerator * int(prime)) // frac.denominator


def _random_field_elements(rng: np.random.Generator, count: int, p: int) -> list[int]:
    """Draw ``count`` independent uniform elements of GF(p) (p may exceed 64 bits)."""
    nbits = p.bit_length()
    nbytes = (nbits + 7) // 8
    out: list[int] = []
    while len(out) < count:  # scalar-ok: λ draws at construction time
        # Rejection sampling from [0, 2^(8·nbytes)) to [0, p).
        raw = rng.bytes(nbytes * (count - len(out) + 4))
        for i in range(0, len(raw) - nbytes + 1, nbytes):  # scalar-ok
            v = int.from_bytes(raw[i : i + nbytes], "big")
            if v < p:
                out.append(v)
                if len(out) == count:
                    break
    return out


class KWiseHash:
    """A single function drawn from a λ-wise independent family GF(p) → GF(p).

    Parameters
    ----------
    independence:
        λ — the order of independence (polynomial degree is λ−1).  λ ≥ 2.
    universe_bits:
        Keys must satisfy ``0 <= key < 2**universe_bits``; the modulus is the
        next prime above the universe so the key → field map is injective.
    seed:
        Integer seed or ``numpy`` Generator.
    """

    def __init__(self, independence: int, universe_bits: int, seed=0):
        if independence < 1:
            raise ValueError(f"independence must be >= 1, got {independence}")
        if independence > 1_000_000:
            # The paper's theory-mode λ can reach 10⁸⁺; materializing that
            # many coefficients (and paying O(λ) per evaluation) is never
            # intended — theory mode only reaches a sampler when φ < 1,
            # which needs inputs far beyond a single machine.
            raise ValueError(
                f"independence {independence} is impractically large; "
                "use CoresetParams.practical() or cap params.lam"
            )
        self.independence = int(independence)
        self.universe_bits = int(universe_bits)
        self.prime = next_prime(max(1 << self.universe_bits, 1 << 16))
        rng = as_rng(seed)
        self._coeffs = _random_field_elements(rng, self.independence, self.prime)

    # -- core evaluation ---------------------------------------------------
    def value(self, key: int) -> int:
        """Field value of a single key (scalar reference path; O(λ) mults)."""
        p = self.prime
        acc = 0
        for c in self._coeffs:  # scalar-ok: reference oracle for values_np
            acc = (acc * key + c) % p
        return acc

    def values_np(self, keys) -> np.ndarray:
        """Field values for a batch of keys, as a numpy array.

        Three paths, all bit-identical to :meth:`value`:

        - ``p < 2^31``: plain int64 Horner (every product < 2^62);
        - ``p < 2^55``: int64 Horner with a multi-limb modular product —
          each key is split once into ``s = 62 − bits(p)`` bit limbs and
          ``acc·key mod p`` runs as a short Horner over the limbs, keeping
          every intermediate below 2^63 with no float128 and no Barrett
          approximation;
        - larger primes (or keys beyond int64): chunked Python-int Horner
          on object arrays — kept only for huge universes.

        Returns int64 for the fast paths, object dtype for the fallback.
        """
        p = self.prime
        coeffs = self._coeffs
        if isinstance(keys, np.ndarray) and keys.dtype == np.int64:
            arr = keys
        else:
            seq = keys if isinstance(keys, (list, np.ndarray)) else list(keys)
            if len(seq) == 0:
                return np.empty(0, dtype=np.int64)
            try:
                arr = np.asarray(seq, dtype=np.int64)
            except (OverflowError, TypeError, ValueError):
                return self._values_object(seq)
        if arr.size == 0:
            return np.empty(0, dtype=np.int64)
        bits = p.bit_length()
        if bits <= 31:
            arr = arr % p
            acc = np.full(arr.shape, coeffs[0], dtype=np.int64)
            for c in coeffs[1:]:  # scalar-ok: per-coefficient, not per-key
                acc = (acc * arr + c) % p
            return acc
        if bits <= _MULTI_LIMB_MAX_BITS:
            return self._values_multi_limb(arr % p, bits)
        return self._values_object(arr.tolist())  # scalar-ok: object-int fallback for >55-bit primes

    def _values_multi_limb(self, arr: np.ndarray, bits: int) -> np.ndarray:
        """int64 Horner for 2^31 ≤ p < 2^55 via limbed modular products.

        With ``s = 62 − bits(p)`` the key splits into ``k = ⌈bits/s⌉`` limbs
        below 2^s.  Each Horner step ``acc·key + c mod p`` runs as
        ``r ← (r·2^s + acc·limb) mod p`` over the limbs (high to low):
        ``r < p < 2^bits`` and ``limb < 2^s`` bound every product and shift
        by 2^(bits+s) = 2^62, so the sum stays below 2^63 — exact int64
        arithmetic, no float128, no Barrett approximation.
        """
        p = self.prime
        s = 62 - bits
        nlimbs = -(-bits // s)
        mask = (1 << s) - 1
        limbs = [(arr >> (s * j)) & mask for j in range(nlimbs - 1, -1, -1)]
        acc = np.full(arr.shape, self._coeffs[0], dtype=np.int64)
        for c in self._coeffs[1:]:  # scalar-ok: per-coefficient sweep
            r = np.zeros(arr.shape, dtype=np.int64)
            for limb in limbs:  # scalar-ok: ≤8 limbs, vectorized over keys
                r = ((r << s) + acc * limb) % p
            acc = (r + c) % p
        return acc

    def _values_object(self, seq) -> np.ndarray:
        """Chunked Python-int Horner for huge universes (object dtype)."""
        p = self.prime
        coeffs = self._coeffs
        out = np.empty(len(seq), dtype=object)
        for lo in range(0, len(seq), _OBJECT_CHUNK):  # scalar-ok: per-chunk
            chunk = np.array([int(k) % p for k in seq[lo: lo + _OBJECT_CHUNK]],
                             dtype=object)
            acc = np.full(chunk.shape, coeffs[0], dtype=object)
            for c in coeffs[1:]:  # scalar-ok: per-coefficient sweep
                acc = (acc * chunk + c) % p
            out[lo: lo + len(chunk)] = acc
        return out

    def values(self, keys: Iterable[int]) -> list[int]:
        """Field values for a batch of keys, as a list of Python ints."""
        keys = keys if isinstance(keys, (list, np.ndarray)) else list(keys)
        return [int(v) for v in self.values_np(keys)]

    def uniform(self, keys: Sequence[int]) -> np.ndarray:
        """Map keys to λ-wise independent uniforms in [0, 1) (float64).

        Division runs per element in Python so huge field values round
        once (int/int is correctly rounded) instead of twice through an
        intermediate float64 conversion.
        """
        p = self.prime
        return np.array([int(v) / p for v in self.values_np(keys)],
                        dtype=np.float64)

    # -- accounting ---------------------------------------------------------
    @property
    def randomness_bits(self) -> int:
        """Bits of stored randomness: λ coefficients of log2(p) bits each."""
        return self.independence * self.prime.bit_length()


class StackedHashes:
    """Batched evaluation of several :class:`KWiseHash` functions at once.

    All functions must share one prime (same ``universe_bits``).  Their
    coefficient vectors are stacked into one ``(H, λ_max)`` matrix — shorter
    polynomials are *left*-padded with zeros, which is a no-op under Horner
    (``0·k + 0 = 0`` until the first real coefficient) — so one sweep of
    λ_max broadcast steps evaluates every function on every key.  This
    amortizes numpy's per-op dispatch over H rows: the streaming driver
    evaluates 11 levels × 3 sub-streams per batch, and stacking turns ~600
    small array ops into ~50 medium ones.

    Bit-identical to calling each function's :meth:`KWiseHash.values_np`.
    """

    def __init__(self, hashes: Sequence[KWiseHash]):
        if not hashes:
            raise ValueError("need at least one hash")
        self.hashes = list(hashes)
        self.prime = hashes[0].prime
        if any(h.prime != self.prime for h in self.hashes):
            raise ValueError("stacked hashes must share one prime")
        lam_max = max(h.independence for h in self.hashes)
        bits = self.prime.bit_length()
        self._bits = bits
        if bits <= _MULTI_LIMB_MAX_BITS:
            coeffs = np.zeros((len(self.hashes), lam_max), dtype=np.int64)
            for row, h in enumerate(self.hashes):  # scalar-ok: construction
                coeffs[row, lam_max - h.independence:] = h._coeffs
            self._coeffs = coeffs
        else:
            self._coeffs = None  # huge prime: per-row object fallback

    def values_np(self, keys) -> np.ndarray:
        """Field values, shape ``(len(hashes), len(keys))``."""
        if not isinstance(keys, np.ndarray):
            keys = np.asarray(keys)
        if self._coeffs is None or keys.dtype == object:
            return np.stack([h.values_np(keys) for h in self.hashes])
        p = self.prime
        bits = self._bits
        arr = keys % p
        C = self._coeffs
        acc = np.zeros((C.shape[0], arr.shape[0]), dtype=np.int64)
        if bits <= 31:
            for step in range(C.shape[1]):  # scalar-ok: per-coefficient sweep
                acc = (acc * arr + C[:, step, None]) % p
            return acc
        s = 62 - bits
        nlimbs = -(-bits // s)
        mask = (1 << s) - 1
        limbs = [(arr >> (s * j)) & mask for j in range(nlimbs - 1, -1, -1)]
        for step in range(C.shape[1]):  # scalar-ok: per-coefficient sweep
            r = np.zeros_like(acc)
            for limb in limbs:  # scalar-ok: ≤8 limbs, vectorized over keys
                r = ((r << s) + acc * limb) % p
            acc = (r + C[:, step, None]) % p
        return acc


class BernoulliHash:
    """λ-wise independent indicator with ``Pr[h(key) = 1] = phi``.

    Implemented as ``value(key) < ⌊phi · p⌋`` with the threshold computed in
    exact integer arithmetic (:func:`exact_field_threshold`); the realized
    probability differs from φ by < 1/p for *any* prime size — float
    multiplication would blow that to ~p/2^53 for primes above 2^53.
    """

    def __init__(self, phi: float, independence: int, universe_bits: int, seed=0):
        if not (0.0 <= phi <= 1.0):
            raise ValueError(f"phi must be in [0, 1], got {phi}")
        self.phi = float(phi)
        self._h = KWiseHash(independence, universe_bits, seed=seed)
        self._threshold = exact_field_threshold(self.phi, self._h.prime)

    def indicator(self, key: int) -> bool:
        """Whether ``key`` is sampled."""
        if self.phi >= 1.0:
            return True
        return self._h.value(key) < self._threshold

    def select(self, keys: Sequence[int]) -> np.ndarray:
        """Boolean mask of sampled keys (one vectorized Horner sweep)."""
        if self.phi >= 1.0:
            return np.ones(len(keys), dtype=bool)
        return np.asarray(self._h.values_np(keys) < self._threshold, dtype=bool)

    @property
    def independence(self) -> int:
        """The λ of the underlying λ-wise independent family."""
        return self._h.independence

    @property
    def randomness_bits(self) -> int:
        """Bits of stored randomness (delegates to the field polynomial)."""
        return self._h.randomness_bits


class UniformBucketHash:
    """λ-wise independent map from keys to ``num_buckets`` buckets.

    Used by the IBLT-style sketches in :mod:`repro.streaming.sketch`.  The
    field value is reduced mod the bucket count; the induced non-uniformity
    is < num_buckets / p, negligible for universe-sized primes.
    """

    def __init__(self, num_buckets: int, independence: int, universe_bits: int, seed=0):
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self.num_buckets = int(num_buckets)
        self._h = KWiseHash(independence, universe_bits, seed=seed)

    def bucket(self, key: int) -> int:
        """Bucket index of a single key (scalar reference path)."""
        return self._h.value(key) % self.num_buckets

    def buckets(self, keys: Sequence[int]) -> np.ndarray:
        """Bucket indices for a batch of keys (int64, one Horner sweep)."""
        vals = self._h.values_np(keys)
        return (vals % self.num_buckets).astype(np.int64, copy=False)

    @property
    def randomness_bits(self) -> int:
        """Bits of stored randomness (delegates to the field polynomial)."""
        return self._h.randomness_bits
