"""λ-wise independent hashing over large key universes.

Algorithm 2 (line 10), Algorithm 3, and Algorithm 4 of the paper all sample
points with *limited-independence* hash functions so that the space used for
randomness is ``poly(ε⁻¹η⁻¹ k d log Δ)`` bits rather than one random bit per
point of the universe.  Lemma 3.13 ([BR94]) is the concentration bound that
makes λ-wise independence sufficient.

We implement the textbook construction: a uniformly random polynomial of
degree λ−1 over a prime field whose size exceeds the key universe, evaluated
with Horner's rule.  Keys are arbitrary non-negative Python integers (grid
cells and points are encoded in mixed radix, which can exceed 64 bits).
"""

from repro.hashing.primes import is_prime, next_prime
from repro.hashing.kwise import KWiseHash, BernoulliHash, UniformBucketHash

__all__ = [
    "is_prime",
    "next_prime",
    "KWiseHash",
    "BernoulliHash",
    "UniformBucketHash",
]
