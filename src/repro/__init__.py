"""repro — Streaming Balanced Clustering.

A production-quality reproduction of *"Streaming Balanced Clustering"*
(Esfandiari, Mirrokni, Zhong; SPAA 2023 brief announcement, full version
arXiv:1910.00788): strong (η, ε)-coresets for capacitated / balanced
k-clustering in ℓr over Euclidean space [Δ]^d, constructible

- offline in near-linear time (Theorem 3.19) — :func:`repro.build_coreset_auto`,
- over dynamic streams with insertions *and* deletions (Theorem 4.5) —
  :class:`repro.streaming.StreamingCoreset`,
- and in the coordinator distributed model (Theorem 4.7) —
  :func:`repro.distributed.distributed_coreset`.

Quick start::

    import numpy as np
    from repro import CoresetParams, build_coreset_auto
    from repro.solvers import CapacitatedKClustering

    points = ...                        # (n, d) ints in [1, delta]
    params = CoresetParams.practical(k=4, d=points.shape[1], delta=1024)
    coreset = build_coreset_auto(points, params, seed=7)
    solver = CapacitatedKClustering(k=4, capacity=len(points) / 4 * 1.1)
    solution = solver.fit(coreset.points, weights=coreset.weights)
"""

from repro.core import (
    CoresetParams,
    Coreset,
    WeightedPointSet,
    build_coreset,
    build_coreset_auto,
)
from repro.grid import HierarchicalGrids, discretize
from repro.utils.validation import FailedConstruction

__version__ = "1.0.0"

__all__ = [
    "CoresetParams",
    "Coreset",
    "WeightedPointSet",
    "build_coreset",
    "build_coreset_auto",
    "BalancedKMeans",
    "HierarchicalGrids",
    "discretize",
    "FailedConstruction",
    "__version__",
]


def __getattr__(name):
    """Lazy import of the facade (it pulls in solvers/assignment)."""
    if name == "BalancedKMeans":
        from repro.api import BalancedKMeans

        return BalancedKMeans
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
