"""Structured synthetic geometries for robustness testing.

The Gaussian mixtures of :mod:`repro.data.synthetic` are the friendly case;
these generators produce the shapes that historically break grid-based
clustering summaries: power-law cluster sizes, ring/annulus structures
(mass far from any single center), anisotropic filaments, and nested
clusters at two scales.  Used by the robustness tests and available to
users for their own stress testing.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import check_delta

__all__ = ["power_law_clusters", "annulus", "filaments", "two_scale_clusters"]


def _snap(real: np.ndarray, delta: int) -> np.ndarray:
    return np.clip(np.rint(real).astype(np.int64), 1, delta)


def power_law_clusters(n: int, d: int, delta: int, k: int, alpha: float = 1.5,
                       spread: float = 0.02, seed=0) -> np.ndarray:
    """k clusters whose sizes follow a power law (size_i ∝ i^{−α}).

    Heavy-tailed cluster sizes are the regime where per-part uniform rates
    must adapt: the big head cluster spans many heavy cells while the tail
    clusters live in single crucial cells near the retention cutoff.
    """
    delta = check_delta(delta)
    rng = as_rng(seed)
    sizes = np.array([(i + 1.0) ** (-alpha) for i in range(k)])
    sizes = np.maximum(1, np.round(sizes / sizes.sum() * n)).astype(int)
    means = rng.uniform(0.2 * delta, 0.8 * delta, size=(k, d))
    chunks = [
        means[i] + rng.normal(0, spread * delta, size=(sizes[i], d))
        for i in range(k)
    ]
    pts = np.vstack(chunks)[:n]
    rng.shuffle(pts, axis=0)
    return _snap(pts, delta)


def annulus(n: int, delta: int, radius_frac: float = 0.3,
            width_frac: float = 0.03, seed=0) -> np.ndarray:
    """2-D ring: every point far from the natural center.

    Grid cells along the ring are thin and numerous — the partition must
    cover a 1-D manifold with 2-D cells without blowing the heavy-cell
    budget.
    """
    delta = check_delta(delta)
    rng = as_rng(seed)
    theta = rng.uniform(0, 2 * np.pi, size=int(n))
    radius = rng.normal(radius_frac * delta, width_frac * delta, size=int(n))
    center = delta / 2.0
    pts = np.stack([center + radius * np.cos(theta),
                    center + radius * np.sin(theta)], axis=1)
    return _snap(pts, delta)


def filaments(n: int, delta: int, k: int = 3, width_frac: float = 0.01,
              seed=0) -> np.ndarray:
    """2-D anisotropic line segments (elongated clusters).

    Stress for the isotropic grid: a filament crosses many cells at fine
    levels, so crucial cells chain along it.
    """
    delta = check_delta(delta)
    rng = as_rng(seed)
    per = int(n) // k
    chunks = []
    for _ in range(k):
        a = rng.uniform(0.15 * delta, 0.85 * delta, size=2)
        direction = rng.normal(size=2)
        direction /= np.linalg.norm(direction)
        length = rng.uniform(0.2, 0.4) * delta
        t = rng.uniform(0, 1, size=per)[:, None]
        noise = rng.normal(0, width_frac * delta, size=(per, 2))
        chunks.append(a + t * direction * length + noise)
    pts = np.vstack(chunks)
    rng.shuffle(pts, axis=0)
    return _snap(pts, delta)


def two_scale_clusters(n: int, d: int, delta: int, k: int = 3,
                       macro_spread: float = 0.015, micro_spread: float = 0.002,
                       seed=0) -> np.ndarray:
    """Clusters of sub-clusters: structure at two grid scales.

    Each macro cluster contains several micro clusters, so heavy cells exist
    at two separated levels of the hierarchy simultaneously.
    """
    delta = check_delta(delta)
    rng = as_rng(seed)
    macro = rng.uniform(0.2 * delta, 0.8 * delta, size=(k, d))
    chunks = []
    per_macro = int(n) // k
    for i in range(k):
        micro = macro[i] + rng.normal(0, macro_spread * delta, size=(4, d))
        which = rng.integers(0, 4, size=per_macro)
        chunks.append(micro[which] + rng.normal(0, micro_spread * delta,
                                                size=(per_macro, d)))
    pts = np.vstack(chunks)
    rng.shuffle(pts, axis=0)
    return _snap(pts, delta)
