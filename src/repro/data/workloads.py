"""Dynamic-stream workload generators (experiments E3/E4).

Streams are built from a base point set; deletions always target previously
inserted, still-live points (the model's guarantee).  Points are de-duplicated
first — the paper's footnote 4 treats Q as a set of distinct points.
"""

from __future__ import annotations

import numpy as np

from repro.streaming.stream import DELETE, INSERT, Stream, StreamEvent
from repro.utils.rng import as_rng

__all__ = ["insertion_stream", "churn_stream", "deletion_heavy_stream", "dedupe"]


def dedupe(points: np.ndarray) -> np.ndarray:
    """Distinct rows of a point array (stream model requires a set)."""
    return np.unique(np.asarray(points), axis=0)


def insertion_stream(points: np.ndarray, seed=0) -> Stream:
    """Insert all (distinct) points in random order; no deletions."""
    pts = dedupe(points)
    rng = as_rng(seed)
    order = rng.permutation(len(pts))
    return Stream.from_points(pts[order])


def churn_stream(
    points: np.ndarray,
    delete_fraction: float = 0.5,
    seed=0,
) -> Stream:
    """Insert everything, interleaving deletions of a random subset.

    A ``delete_fraction`` of the points is inserted *and later deleted*, with
    deletions interleaved randomly after their insertions, so intermediate
    states are larger than the final set — the regime where sketches must be
    linear (Theorem 4.5's "handles insertions and deletions").

    Returns a stream whose survivor set is the non-deleted points.
    """
    pts = dedupe(points)
    rng = as_rng(seed)
    n = len(pts)
    order = rng.permutation(n)
    doomed = rng.random(n) < delete_fraction
    events: list[StreamEvent] = []
    pending: list[StreamEvent] = []
    for pos, idx in enumerate(order):
        row = tuple(int(c) for c in pts[idx])
        events.append(StreamEvent(row, INSERT))
        if doomed[idx]:
            pending.append(StreamEvent(row, DELETE))
        # Flush a random number of pending deletions to interleave them.
        while pending and rng.random() < 0.5:
            j = int(rng.integers(len(pending)))
            events.append(pending.pop(j))
    events.extend(pending)
    return Stream(events)


def deletion_heavy_stream(
    points: np.ndarray,
    cluster_labels: np.ndarray,
    delete_clusters,
    seed=0,
) -> Stream:
    """Insert everything, then delete entire clusters.

    Deleting whole clusters changes the *structure* of the optimum (not just
    its size), which is the hardest case for a dynamic coreset: the heavy
    cells of the survivor set differ from those of the full set.  Experiment
    E4 uses this to show the sketch's linearity really buys correctness.
    """
    pts = np.asarray(points)
    labels = np.asarray(cluster_labels)
    if len(labels) != len(pts):
        raise ValueError("cluster_labels must align with points")
    # De-duplicate while keeping one label per surviving row.
    _, first_idx = np.unique(pts, axis=0, return_index=True)
    pts, labels = pts[first_idx], labels[first_idx]
    rng = as_rng(seed)
    order = rng.permutation(len(pts))
    events = [
        StreamEvent(tuple(int(c) for c in pts[i]), INSERT) for i in order
    ]
    doomed = np.isin(labels, np.asarray(list(delete_clusters)))
    for i in rng.permutation(np.flatnonzero(doomed)):
        events.append(StreamEvent(tuple(int(c) for c in pts[i]), DELETE))
    return Stream(events)
