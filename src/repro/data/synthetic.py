"""Seeded synthetic point-set generators over [Δ]^d.

All generators return integer arrays valid for the paper's model (entries in
[1, Δ]); real-valued intermediate samples are snapped with clipping.  Every
generator takes a seed so experiments are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import check_delta

__all__ = [
    "gaussian_mixture",
    "unbalanced_mixture",
    "uniform_points",
    "clustered_with_outliers",
]


def _snap(real: np.ndarray, delta: int) -> np.ndarray:
    return np.clip(np.rint(real).astype(np.int64), 1, delta)


def uniform_points(n: int, d: int, delta: int, seed=0) -> np.ndarray:
    """n i.i.d. uniform points of [Δ]^d."""
    delta = check_delta(delta)
    rng = as_rng(seed)
    return rng.integers(1, delta + 1, size=(int(n), int(d)), dtype=np.int64)


def gaussian_mixture(
    n: int,
    d: int,
    delta: int,
    k: int,
    spread: float = 0.02,
    seed=0,
    return_truth: bool = False,
):
    """Balanced mixture of k spherical Gaussians with well-separated means.

    ``spread`` is the cluster standard deviation as a fraction of Δ.  With
    ``return_truth`` the planted means (snapped to the grid) and component
    labels are returned too.
    """
    delta = check_delta(delta)
    rng = as_rng(seed)
    means = rng.uniform(0.2 * delta, 0.8 * delta, size=(int(k), int(d)))
    labels = rng.integers(0, k, size=int(n))
    pts = means[labels] + rng.normal(0.0, spread * delta, size=(int(n), int(d)))
    out = _snap(pts, delta)
    if return_truth:
        return out, _snap(means, delta), labels
    return out


def unbalanced_mixture(
    n: int,
    d: int,
    delta: int,
    k: int,
    imbalance: float = 8.0,
    spread: float = 0.02,
    seed=0,
    return_truth: bool = False,
):
    """Mixture where one component holds ``imbalance``× the mass of each other.

    This is the regime where capacity constraints bind: an unconstrained
    clustering puts ~imbalance/(imbalance+k−1) of the points in one cluster,
    which any capacity t close to n/k forbids.  Used by experiments E2/E6.
    """
    delta = check_delta(delta)
    rng = as_rng(seed)
    k = int(k)
    probs = np.ones(k)
    probs[0] = float(imbalance)
    probs /= probs.sum()
    means = rng.uniform(0.2 * delta, 0.8 * delta, size=(k, int(d)))
    labels = rng.choice(k, size=int(n), p=probs)
    pts = means[labels] + rng.normal(0.0, spread * delta, size=(int(n), int(d)))
    out = _snap(pts, delta)
    if return_truth:
        return out, _snap(means, delta), labels
    return out


def clustered_with_outliers(
    n: int,
    d: int,
    delta: int,
    k: int,
    outlier_fraction: float = 0.02,
    spread: float = 0.01,
    seed=0,
) -> np.ndarray:
    """Gaussian mixture plus a sprinkling of uniform far outliers.

    Outliers stress the partition's light-cell handling (they land in cells
    that never become heavy) and the small-part-removal of Lemma 3.4.
    """
    rng = as_rng(seed)
    n = int(n)
    n_out = int(round(outlier_fraction * n))
    base = gaussian_mixture(n - n_out, d, delta, k, spread=spread, seed=rng)
    out = uniform_points(n_out, d, delta, seed=rng)
    pts = np.concatenate([base, out], axis=0)
    rng.shuffle(pts, axis=0)
    return pts
