"""Synthetic point-set generators and dynamic-stream workloads.

The paper's guarantees are worst-case over any Q ⊆ [Δ]^d; the generators
here produce the regimes the experiments need: balanced/unbalanced planted
Gaussian mixtures (where capacitated and unconstrained clustering diverge),
uniform noise, adversarial far-outlier sets, and insert/delete stream
workloads including full-cluster deletions.
"""

from repro.data.synthetic import (
    gaussian_mixture,
    unbalanced_mixture,
    uniform_points,
    clustered_with_outliers,
)
from repro.data.structured import (
    annulus,
    filaments,
    power_law_clusters,
    two_scale_clusters,
)
from repro.data.workloads import (
    insertion_stream,
    churn_stream,
    deletion_heavy_stream,
)

__all__ = [
    "gaussian_mixture",
    "unbalanced_mixture",
    "uniform_points",
    "clustered_with_outliers",
    "insertion_stream",
    "churn_stream",
    "deletion_heavy_stream",
    "annulus",
    "filaments",
    "power_law_clusters",
    "two_scale_clusters",
]
