"""Command-line interface: ``python -m repro.cli <command>``.

Subcommands
-----------
``generate``   write a synthetic point set (.npy) in [Δ]^d
``build``      build a strong coreset from a .npy point set → .npz
``stream``     replay a churn stream over a point set and build the coreset
               with the one-pass dynamic algorithm
``evaluate``   check the strong-coreset sandwich of a saved coreset
``solve``      balanced k-clustering on a saved coreset (optionally extend
               the assignment to the original points)
``info``       print a saved coreset's provenance
``serve``      run the long-lived clustering service (JSON-lines TCP; async
               multi-tenant by default, threaded single-tenant via --sync)
``coordinator`` pull and merge a fleet of site servers over the wire
               (--sites host:port,... attaches to running sites;
               --sites spawn:N launches, feeds, and verifies a local fleet)
``client``     talk to a running service (insert/delete/query/checkpoint/
               pull_state/site_stats/tenants/...; --stream addresses a
               named tenant)
``lint``       project-specific static analysis (determinism, hot-path,
               async-safety, wire-protocol invariants); exit code 0 clean /
               1 findings / 2 usage error

Every command is seeded and prints exactly what it did; these are the same
code paths the library exposes, so the CLI doubles as an end-to-end smoke
test of the installation.
"""

from __future__ import annotations

import argparse
import math
import sys
import time

import numpy as np

from repro.core import CoresetParams, build_coreset_auto
from repro.core.io import load_coreset, save_coreset
from repro.utils.tables import render_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Streaming Balanced Clustering — capacitated-coreset toolkit",
    )
    sub = p.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a synthetic point set")
    g.add_argument("output", help="output .npy path")
    g.add_argument("--n", type=int, default=10000)
    g.add_argument("--d", type=int, default=3)
    g.add_argument("--delta", type=int, default=1024)
    g.add_argument("--k", type=int, default=4)
    g.add_argument("--kind", choices=["mixture", "unbalanced", "uniform", "outliers"],
                   default="mixture")
    g.add_argument("--seed", type=int, default=0)

    b = sub.add_parser("build", help="build a strong coreset (Theorem 3.19)")
    b.add_argument("points", help="input .npy of (n, d) ints in [1, delta]")
    b.add_argument("output", help="output coreset .npz")
    b.add_argument("--k", type=int, required=True)
    b.add_argument("--delta", type=int, required=True)
    b.add_argument("--r", type=float, default=2.0)
    b.add_argument("--eps", type=float, default=0.25)
    b.add_argument("--eta", type=float, default=0.25)
    b.add_argument("--seed", type=int, default=7)

    s = sub.add_parser("stream", help="one-pass dynamic-stream coreset (Thm 4.5)")
    s.add_argument("points", help="input .npy")
    s.add_argument("output", help="output coreset .npz")
    s.add_argument("--k", type=int, required=True)
    s.add_argument("--delta", type=int, required=True)
    s.add_argument("--delete-fraction", type=float, default=0.3)
    s.add_argument("--backend", choices=["exact", "sketch"], default="exact")
    s.add_argument("--eps", type=float, default=0.25)
    s.add_argument("--eta", type=float, default=0.25)
    s.add_argument("--seed", type=int, default=7)

    e = sub.add_parser("evaluate", help="verify the strong-coreset sandwich")
    e.add_argument("points", help="original .npy point set")
    e.add_argument("coreset", help="coreset .npz (with saved params)")
    e.add_argument("--centers", type=int, default=3,
                   help="number of random/k-means++ center sets to test")
    e.add_argument("--seed", type=int, default=3)

    v = sub.add_parser("solve", help="balanced k-clustering on a coreset")
    v.add_argument("coreset", help="coreset .npz (with saved params)")
    v.add_argument("--capacity-slack", type=float, default=1.1)
    v.add_argument("--seed", type=int, default=5)

    i = sub.add_parser("info", help="print a saved coreset's provenance")
    i.add_argument("coreset")

    srv = sub.add_parser("serve", help="run the streaming clustering service "
                                       "(async multi-tenant by default)")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=7071)
    srv.add_argument("--k", type=int, default=4)
    srv.add_argument("--d", type=int, default=2)
    srv.add_argument("--delta", type=int, default=256)
    srv.add_argument("--r", type=float, default=2.0)
    srv.add_argument("--eps", type=float, default=0.25)
    srv.add_argument("--eta", type=float, default=0.25)
    srv.add_argument("--shards", type=int, default=4)
    srv.add_argument("--workers", type=int, default=0,
                     help="shard worker processes per tenant; 0 = run the "
                          "--shards in-process (N > 0 supersedes --shards "
                          "and gives one sketch shard per process — results "
                          "are bit-identical either way)")
    srv.add_argument("--max-request-mb", type=int, default=8,
                     help="per-connection request-line cap in MiB; "
                          "over-long frames get an error envelope")
    srv.add_argument("--backend", choices=["exact", "sketch"], default="exact")
    srv.add_argument("--capacity-slack", type=float, default=1.2)
    srv.add_argument("--restarts", type=int, default=2,
                     help="k-means restarts per query solve (fleet sites "
                          "must match the coordinator's reference exactly)")
    srv.add_argument("--seed", type=int, default=7)
    srv.add_argument("--restore", default=None, metavar="CKPT",
                     help="start from a checkpoint instead of empty state "
                          "(async mode: restores the 'default' tenant)")
    srv.add_argument("--sync", action="store_true",
                     help="run the threaded single-tenant server instead of "
                          "the async multi-tenant one (for environments "
                          "without an event loop)")
    srv.add_argument("--tenants-dir", default=None, metavar="DIR",
                     help="directory for cold-tenant eviction checkpoints; "
                          "enables LRU eviction and shutdown persistence "
                          "(async mode only)")
    srv.add_argument("--max-live-tenants", type=int, default=None,
                     metavar="N",
                     help="keep at most N tenant sketches in memory, "
                          "evicting the least-recently-used to --tenants-dir "
                          "(default: unbounded)")
    srv.add_argument("--max-events-per-tenant", type=int, default=None,
                     metavar="N", help="per-tenant ingest quota in events")
    srv.add_argument("--max-mb-per-tenant", type=float, default=None,
                     metavar="MB", help="per-tenant ingest quota in MiB of "
                                        "nominal encoded volume")
    srv.add_argument("--fault-plan", default=None, metavar="PLAN",
                     help="chaos testing: install a seeded fault-injection "
                          "plan (JSON file path or inline JSON) before "
                          "serving; the REPRO_FAULT_PLAN environment "
                          "variable is the no-flag equivalent")

    coord = sub.add_parser(
        "coordinator",
        help="pull and merge a fleet of site servers (Theorem 4.7 for real)")
    coord.add_argument("--sites", required=True, metavar="ADDRS|spawn:N",
                       help="comma-separated host:port site addresses to "
                            "attach to, or 'spawn:N' to launch N local "
                            "site processes, feed them a partitioned "
                            "synthetic stream, and verify the merge "
                            "against a single-process reference")
    coord.add_argument("--stream", default=None, metavar="ID",
                       help="stream_id of the tenant to pull on every site "
                            "(default: each site's 'default' tenant)")
    coord.add_argument("--stats-only", action="store_true",
                       help="poll site_stats and stop (no pull, no merge)")
    coord.add_argument("--k", type=int, default=4)
    coord.add_argument("--d", type=int, default=2)
    coord.add_argument("--delta", type=int, default=256)
    coord.add_argument("--shards", type=int, default=4)
    coord.add_argument("--backend", choices=["exact", "sketch"],
                       default="exact")
    coord.add_argument("--seed", type=int, default=7)
    coord.add_argument("--n", type=int, default=4000,
                       help="spawn mode: synthetic stream size")
    coord.add_argument("--points", default=None,
                       help="spawn mode: feed this .npy instead of "
                            "generating --n synthetic points")
    coord.add_argument("--delete-fraction", type=float, default=0.2,
                       help="spawn mode: churn fraction per site share")
    coord.add_argument("--batch-size", type=int, default=512)
    coord.add_argument("--partition", choices=["random", "skewed"],
                       default="random",
                       help="spawn mode: how the stream is split over sites")
    coord.add_argument("--no-verify", action="store_true",
                       help="spawn mode: skip the single-process reference "
                            "and bit-accounting cross-checks")
    coord.add_argument("--fault-plan", default=None, metavar="PLAN",
                       help="spawn mode: install a fault plan in the fleet "
                            "driver (e.g. site.kill rules) before feeding")

    c = sub.add_parser("client", help="send one request to a running service")
    c.add_argument("op", choices=["ping", "insert", "delete", "query",
                                  "checkpoint", "restore", "pull_state",
                                  "site_stats", "stats", "tenants",
                                  "shutdown"])
    c.add_argument("--host", default="127.0.0.1")
    c.add_argument("--port", type=int, default=7071)
    c.add_argument("--stream", default=None, metavar="ID",
                   help="stream_id of the tenant to address (default: the "
                        "server's 'default' tenant)")
    c.add_argument("--points", default=None,
                   help=".npy of int rows for insert/delete")
    c.add_argument("--path", default=None,
                   help="server-side checkpoint path for checkpoint/restore")
    c.add_argument("--capacity-slack", type=float, default=None)

    from repro.analysis_lint.cli import add_lint_arguments

    lint = sub.add_parser("lint", help="AST-based static analysis "
                                       "(DET/HOT/ASYNC/WIRE rule families)")
    add_lint_arguments(lint)
    return p


def _cmd_generate(args) -> int:
    from repro.data.synthetic import (
        clustered_with_outliers,
        gaussian_mixture,
        unbalanced_mixture,
        uniform_points,
    )

    gen = {
        "mixture": lambda: gaussian_mixture(args.n, args.d, args.delta, args.k,
                                            seed=args.seed),
        "unbalanced": lambda: unbalanced_mixture(args.n, args.d, args.delta,
                                                 args.k, seed=args.seed),
        "uniform": lambda: uniform_points(args.n, args.d, args.delta,
                                          seed=args.seed),
        "outliers": lambda: clustered_with_outliers(args.n, args.d, args.delta,
                                                    args.k, seed=args.seed),
    }[args.kind]
    pts = np.unique(gen(), axis=0)
    np.save(args.output, pts)
    print(f"wrote {len(pts)} distinct points to {args.output}")
    return 0


def _cmd_build(args) -> int:
    pts = np.load(args.points)
    params = CoresetParams.practical(k=args.k, d=pts.shape[1], delta=args.delta,
                                     r=args.r, eps=args.eps, eta=args.eta)
    t0 = time.time()
    cs = build_coreset_auto(pts, params, seed=args.seed)
    save_coreset(args.output, cs, params)
    print(f"coreset: {len(cs)} points ({len(pts) / max(len(cs), 1):.1f}x), "
          f"o={cs.o:.3g}, {time.time() - t0:.2f}s -> {args.output}")
    return 0


def _cmd_stream(args) -> int:
    from repro.data.workloads import churn_stream
    from repro.solvers.pilot import estimate_opt_cost
    from repro.streaming import StreamingCoreset, materialize

    pts = np.load(args.points)
    params = CoresetParams.practical(k=args.k, d=pts.shape[1], delta=args.delta,
                                     eps=args.eps, eta=args.eta)
    stream = churn_stream(pts, delete_fraction=args.delete_fraction,
                          seed=args.seed)
    survivors = materialize(stream, d=pts.shape[1])
    pilot = estimate_opt_cost(survivors, args.k, r=2.0, seed=args.seed)
    sc = StreamingCoreset(params, seed=args.seed, backend=args.backend,
                          o_range=(pilot / 64, pilot / 4))
    t0 = time.time()
    sc.process(stream)
    cs = sc.finalize()
    save_coreset(args.output, cs, params)
    print(f"stream: {len(stream)} events ({stream.num_deletions()} deletions), "
          f"{len(survivors)} survivors")
    print(f"coreset: {len(cs)} points, o={cs.o:.3g}, "
          f"{time.time() - t0:.2f}s -> {args.output}")
    return 0


def _cmd_evaluate(args) -> int:
    from repro.metrics.evaluation import evaluate_coreset_quality
    from repro.solvers.kmeanspp import kmeans_plusplus

    pts = np.load(args.points)
    cs, params = load_coreset(args.coreset)
    if params is None:
        print("coreset was saved without parameters; cannot evaluate",
              file=sys.stderr)
        return 2
    n = len(pts)
    rng = np.random.default_rng(args.seed)
    Zs = [kmeans_plusplus(pts.astype(float), params.k, r=params.r, seed=args.seed)]
    for _ in range(max(0, args.centers - 1)):
        Zs.append(rng.integers(1, params.delta + 1,
                               size=(params.k, pts.shape[1])).astype(float))
    caps = [n / params.k, 1.5 * n / params.k, math.inf]
    rep = evaluate_coreset_quality(pts, cs, Zs, caps, r=params.r,
                                   eps=params.eps, eta=params.eta)
    rows = [[f"{e.t:.0f}", f"{e.full_cost:.4g}", f"{e.coreset_cost:.4g}",
             f"{max(e.upper_ratio, e.lower_ratio):.4f}"] for e in rep.entries]
    print(render_table("strong-coreset sandwich",
                       ["t", "cost_t(Q,Z)", "cost_(1+η)t(Q',Z,w')", "ratio"],
                       rows))
    verdict = "PASS" if rep.holds() else "FAIL"
    print(f"worst ratio {rep.worst_ratio:.4f} vs bound {1 + params.eps:.2f}: {verdict}")
    return 0 if rep.holds() else 1


def _cmd_solve(args) -> int:
    from repro.solvers import CapacitatedKClustering

    cs, params = load_coreset(args.coreset)
    if params is None:
        print("coreset was saved without parameters; cannot solve",
              file=sys.stderr)
        return 2
    cap = cs.total_weight / params.k * args.capacity_slack
    solver = CapacitatedKClustering(k=params.k, capacity=cap, r=params.r,
                                    seed=args.seed)
    sol = solver.fit(cs.points.astype(float), weights=cs.weights)
    print(render_table(
        "balanced clustering on the coreset",
        ["center", "coordinates", "load"],
        [[i, np.array2string(np.round(z, 1)), f"{sol.sizes[i]:.0f}"]
         for i, z in enumerate(sol.centers)],
    ))
    print(f"cost {sol.cost:.5g}, max load / capacity = {sol.max_violation():.3f}")
    return 0


def _cmd_info(args) -> int:
    cs, params = load_coreset(args.coreset)
    levels = sorted({p.level for p in cs.parts})
    print(render_table(
        "coreset",
        ["field", "value"],
        [["points", len(cs)],
         ["total weight", f"{cs.total_weight:.1f}"],
         ["input size", cs.input_size],
         ["accepted guess o", f"{cs.o:.4g}"],
         ["delta", cs.delta],
         ["parts", len(cs.parts)],
         ["levels used", levels],
         ["storage bits", cs.storage_bits()],
         ["params", "saved" if params else "absent"]],
    ))
    return 0


def _cmd_serve(args) -> int:
    from repro.service import ServiceConfig, faults

    if args.fault_plan:
        plan = faults.install(faults.load_plan(args.fault_plan))
        print(f"fault plan installed: {len(plan.rules)} rule(s), "
              f"seed={plan.seed}", flush=True)
    elif faults.install_from_env() is not None:
        print(f"fault plan installed from ${faults.ENV_FAULT_PLAN}",
              flush=True)

    config = ServiceConfig(
        k=args.k, d=args.d, delta=args.delta, r=args.r, eps=args.eps,
        eta=args.eta, num_shards=args.shards, workers=args.workers,
        seed=args.seed, backend=args.backend,
        capacity_slack=args.capacity_slack, restarts=args.restarts,
    )
    max_bytes = args.max_request_mb * 1024 * 1024
    if args.sync:
        from repro.service.server import serve_forever

        for flag, name in ((args.tenants_dir, "--tenants-dir"),
                           (args.max_live_tenants, "--max-live-tenants"),
                           (args.max_events_per_tenant, "--max-events-per-tenant"),
                           (args.max_mb_per_tenant, "--max-mb-per-tenant")):
            if flag is not None:
                print(f"{name} requires the async server; drop --sync",
                      file=sys.stderr)
                return 2
        serve_forever(config, args.host, args.port, restore_path=args.restore,
                      max_request_bytes=max_bytes)
        return 0
    from repro.service import TenantQuota
    from repro.service.aserver import serve_forever_async

    quota = None
    if args.max_events_per_tenant is not None or args.max_mb_per_tenant is not None:
        quota = TenantQuota(
            max_events=args.max_events_per_tenant,
            max_bytes=(int(args.max_mb_per_tenant * 1024 * 1024)
                       if args.max_mb_per_tenant is not None else None))
    serve_forever_async(config, args.host, args.port,
                        tenants_dir=args.tenants_dir,
                        max_live_tenants=args.max_live_tenants,
                        quota=quota, restore_path=args.restore,
                        max_request_bytes=max_bytes)
    return 0


def _parse_sites(spec: str) -> tuple[int | None, list[tuple[str, int]]]:
    """``spawn:N`` → (N, []); ``host:port,host:port`` → (None, addresses)."""
    spec = spec.strip()
    if spec.startswith("spawn:"):
        n = int(spec.split(":", 1)[1])
        if n < 1:
            raise ValueError(f"spawn count must be >= 1, got {n}")
        return n, []
    addrs = []
    for part in spec.split(","):
        host, _, port = part.strip().rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"bad site address {part!r}; want host:port")
        addrs.append((host, int(port)))
    return None, addrs


def _cmd_coordinator(args) -> int:
    import json

    from repro.distributed.fleet import Coordinator, run_fleet
    from repro.service import ServiceConfig, faults

    spawn_n, addrs = _parse_sites(args.sites)
    if spawn_n is not None:
        if args.fault_plan:
            plan = faults.install(faults.load_plan(args.fault_plan))
            print(f"fault plan installed: {len(plan.rules)} rule(s), "
                  f"seed={plan.seed}", flush=True)
        config = ServiceConfig(k=args.k, d=args.d, delta=args.delta,
                               num_shards=args.shards, seed=args.seed,
                               backend=args.backend)
        if args.points:
            pts = np.load(args.points)
        else:
            from repro.data.synthetic import gaussian_mixture

            pts = np.unique(gaussian_mixture(args.n, args.d, args.delta,
                                             args.k, seed=args.seed), axis=0)
        print(f"spawning {spawn_n} site processes for {len(pts)} points "
              f"({args.partition} partition)", flush=True)
        report = run_fleet(config, pts, spawn_n,
                           partition_seed=args.seed, mode=args.partition,
                           batch_size=args.batch_size,
                           delete_fraction=args.delete_fraction,
                           stream_id=args.stream,
                           verify=not args.no_verify)
        rows = [[key, report[key]] for key in
                ("sites", "events", "batches", "events_per_s", "recoveries",
                 "restarts", "uplink_bits", "downlink_bits", "messages")]
        for key in ("state_identical", "answer_identical",
                    "bits_match_simulation", "passed"):
            if key in report:
                rows.append([key, report[key]])
        print(render_table("fleet run", ["field", "value"], rows))
        if not args.no_verify and not report.get("passed"):
            return 1
        return 0

    with Coordinator(addrs, stream_id=args.stream) as coord:
        stats = coord.poll_site_stats()
        print(render_table(
            "sites",
            ["site", "events", "insertions", "deletions", "version",
             "space_bits"],
            [[j, s["events"], s["insertions"], s["deletions"], s["version"],
              s["space_bits"]] for j, s in enumerate(stats)]))
        if args.stats_only:
            return 0
        merged = coord.merged_service()
        try:
            result, _ = merged.query()
            print(json.dumps(result.to_dict(), indent=2))
        finally:
            merged.close()
        net = coord.network
        print(f"communication: up {net.uplink_bits} bits, "
              f"down {net.downlink_bits} bits, {net.messages} messages")
    return 0


def _cmd_client(args) -> int:
    import json

    from repro.service import ServiceClient

    with ServiceClient(args.host, args.port, stream_id=args.stream) as cli:
        if args.op in ("insert", "delete"):
            if not args.points:
                print(f"{args.op} needs --points FILE.npy", file=sys.stderr)
                return 2
            pts = np.load(args.points)
            applied = (cli.insert(pts) if args.op == "insert"
                       else cli.delete(pts))
            print(f"{args.op}: {applied} events applied")
            return 0
        if args.op in ("checkpoint", "restore"):
            if not args.path:
                print(f"{args.op} needs --path CKPT", file=sys.stderr)
                return 2
            print(json.dumps(getattr(cli, args.op)(args.path), indent=2))
            return 0
        if args.op == "query":
            result = cli.query(capacity_slack=args.capacity_slack)
            rows = [[i, np.array2string(np.round(np.asarray(z), 1))]
                    for i, z in enumerate(result["centers"])]
            print(render_table("service clustering snapshot",
                               ["center", "coordinates"], rows))
            print(f"cost {result['cost']:.5g}, coreset {result['coreset_size']} "
                  f"points, o={result['o']:.4g}, version {result['version']}, "
                  f"cache_hit={result['cache_hit']}")
            return 0
        if args.op == "stats":
            print(json.dumps(cli.stats(), indent=2))
            return 0
        if args.op == "site_stats":
            print(json.dumps(cli.site_stats(), indent=2))
            return 0
        if args.op == "pull_state":
            state = cli.pull_state()
            if args.path:
                with open(args.path, "w", encoding="utf-8") as fh:
                    json.dump(state, fh)
                print(f"pulled state ({state['ingest']['num_shards']} shards, "
                      f"version {state['ingest']['version']}) -> {args.path}")
            else:
                print(json.dumps({k: state[k] for k in ("format_version",
                                                        "config", "counters")},
                                 indent=2))
                print(f"ingest: {state['ingest']['num_shards']} shards, "
                      f"version {state['ingest']['version']} "
                      f"(use --path FILE to save the full state)")
            return 0
        if args.op == "tenants":
            rows = [[t["stream_id"], "yes" if t.get("live") else "no",
                     t.get("events", "?"), t.get("version", "?"),
                     t.get("bytes_ingested", "?")]
                    for t in cli.tenants()]
            print(render_table("streams", ["stream_id", "live", "events",
                                           "version", "bytes"], rows))
            return 0
        if args.op == "ping":
            print("pong" if cli.ping() else "no pong")
            return 0
        cli.shutdown()
        print("server stopping")
        return 0


def _cmd_lint(args) -> int:
    from repro.analysis_lint.cli import run_from_args

    return run_from_args(args)


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return {
        "generate": _cmd_generate,
        "build": _cmd_build,
        "stream": _cmd_stream,
        "evaluate": _cmd_evaluate,
        "solve": _cmd_solve,
        "info": _cmd_info,
        "serve": _cmd_serve,
        "coordinator": _cmd_coordinator,
        "client": _cmd_client,
        "lint": _cmd_lint,
    }[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
