"""``python -m repro.analysis_lint`` — standalone linter entry point."""

from repro.analysis_lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
