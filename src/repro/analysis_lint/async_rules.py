"""ASYNC — event-loop safety of the asyncio service front end.

``repro serve`` runs every connection on one event loop thread
(:mod:`repro.service.aserver`); sketch work, registry mutation, and file
I/O are *blocking* and must be pushed through ``asyncio.to_thread`` or the
loop stalls every tenant at once (the ROADMAP's multi-tenant scalability
rests on this).  Conversely, a coroutine must never ``await`` while holding
a ``threading.Lock``-style lock or a registry lease: the awaited operation
can yield to another coroutine on the same thread that then blocks on the
same lock — a single-threaded deadlock no load test reliably reproduces.

Codes
-----
ASYNC301  direct blocking call (registry/service/sketch mutation, file or
          socket I/O, ``time.sleep``) inside ``async def`` — route it
          through ``asyncio.to_thread``
ASYNC302  ``await`` while a thread lock / registry lease is held
"""

from __future__ import annotations

import ast

from repro.analysis_lint.core import Finding, Rule, attr_chain, walk_scoped

__all__ = ["AsyncSafetyRule"]

#: Receivers whose method calls run sketch / registry / service work.
_BLOCKING_RECEIVERS = frozenset({"registry", "service", "ingest", "sketch"})

#: Methods on those receivers that take locks, run sketch work, or touch
#: disk — the blocking surface of TenantRegistry / ClusteringService.
_BLOCKING_METHODS = frozenset({
    "insert", "delete", "apply_events", "query", "checkpoint", "restore",
    "restore_in_place", "stats", "overview", "evict", "close", "finalize",
    "merged_state", "update", "update_batch", "live_count",
    "pull_state", "site_stats", "state_payload",
})

#: Blocking file/socket primitives by attribute name (any receiver).
_BLOCKING_IO_ATTRS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
    "recv", "sendall", "connect", "accept",
})

#: Identifier substrings marking a sync-lock context manager.
_LOCK_NAMES = ("lock", "lease", "mutex")


def _receiver_name(chain) -> str | None:
    """``registry.insert`` → ``registry``; ``self.registry.insert`` →
    ``registry``; anything else → the base name."""
    if len(chain) >= 2:
        base = chain[-2]
        return base if base != "self" else (chain[-3] if len(chain) >= 3 else None)
    return None


def _is_blocking_call(node: ast.Call) -> str | None:
    """Return a human-readable description if ``node`` is a blocking call."""
    chain = attr_chain(node.func)
    if not chain:
        return None
    dotted = ".".join(chain)
    if chain == ("time", "sleep"):
        return "time.sleep() blocks the event loop; use asyncio.sleep()"
    if chain[-1:] == ("open",) and len(chain) == 1:
        return "open() performs blocking file I/O"
    if chain[0] == "socket" and len(chain) > 1:
        return f"'{dotted}' performs blocking socket I/O"
    if chain in (("json", "dump"), ("json", "load")):
        return f"'{dotted}' streams to/from a file handle (blocking I/O)"
    if chain[-1] in _BLOCKING_IO_ATTRS:
        return f"'{dotted}' performs blocking I/O"
    if chain[-1] in _BLOCKING_METHODS:
        recv = _receiver_name(chain)
        if recv is not None and (recv in _BLOCKING_RECEIVERS
                                 or any(r in recv for r in _BLOCKING_RECEIVERS)):
            return (f"'{dotted}' runs sketch/registry work (locks, "
                    "possibly disk) on the event loop")
    return None


def _is_sync_lock_ctx(expr) -> bool:
    """Whether a ``with`` item's context expression names a lock/lease."""
    for sub in ast.walk(expr):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None and any(t in name.lower() for t in _LOCK_NAMES):
            return True
    return False


class AsyncSafetyRule(Rule):
    family = "ASYNC"
    description = ("asyncio front end: blocking work goes through "
                   "asyncio.to_thread; never await while holding a "
                   "thread lock or lease")
    codes = {
        "ASYNC301": "blocking call on the event loop (wrap in asyncio.to_thread)",
        "ASYNC302": "await while a threading lock / lease is held",
    }
    path_patterns = ("repro/service/aserver.py",)

    def check_file(self, sf):
        findings = []
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                findings.extend(self._check_coroutine(sf, node))
        return findings

    def _check_coroutine(self, sf, fn: ast.AsyncFunctionDef):
        # Nested (sync) defs are skipped: a helper executed via to_thread
        # may block freely — only code on this coroutine's own path counts.
        for node in walk_scoped(fn):
            if isinstance(node, ast.Call):
                why = _is_blocking_call(node)
                if why is not None:
                    yield Finding(
                        path=sf.rel, line=node.lineno, col=node.col_offset,
                        code="ASYNC301",
                        message=f"{why}; inside 'async def {fn.name}' route "
                                "it through await asyncio.to_thread(...)")
            elif isinstance(node, ast.With):
                if any(_is_sync_lock_ctx(item.context_expr)
                       for item in node.items):
                    for inner in node.body:
                        for sub in ast.walk(inner):
                            if isinstance(sub, ast.Await):
                                yield Finding(
                                    path=sf.rel, line=sub.lineno,
                                    col=sub.col_offset, code="ASYNC302",
                                    message="await while holding a sync "
                                            "lock/lease: another coroutine "
                                            "on this loop can block on the "
                                            "same lock and deadlock the "
                                            "thread")
        return
