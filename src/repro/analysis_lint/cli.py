"""Command line for ``repro lint`` (also ``python -m repro.analysis_lint``).

Exit codes are automation-friendly and stable:

- ``0`` — scanned clean (no findings);
- ``1`` — findings were reported;
- ``2`` — usage error (unknown rule, missing path, bad flags).

``--format json`` emits one machine-readable report object (schema version
1; see :meth:`repro.analysis_lint.core.LintResult.to_dict`) — this is what
the CI workflow consumes to attach annotations.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis_lint.core import UsageError, run_lint
from repro.analysis_lint.registry import ALL_RULES

__all__ = ["add_lint_arguments", "main", "run_from_args"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``lint`` options to ``parser`` (shared with repro.cli)."""
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        dest="output_format",
                        help="human-readable lines, or one JSON report object")
    parser.add_argument("--rule", action="append", default=None, metavar="RULE",
                        help="restrict to a rule family (DET) or code "
                             "(DET104); repeatable")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")


def _print_rules() -> None:
    for rule in ALL_RULES:
        print(f"{rule.family}: {rule.description}")
        for code, desc in sorted(rule.codes.items()):
            print(f"  {code}  {desc}")


def run_from_args(args) -> int:
    """Execute a parsed ``lint`` invocation; returns the exit code."""
    if args.list_rules:
        _print_rules()
        return 0
    try:
        result = run_lint(args.paths, select=args.rule)
    except UsageError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.output_format == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in result.findings:
            print(finding.render())
        n = len(result.findings)
        noun = "finding" if n == 1 else "findings"
        print(f"repro lint: {n} {noun} in {result.files_scanned} files"
              if n else
              f"repro lint: clean ({result.files_scanned} files)")
    return 1 if result.findings else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Project-specific static analysis: determinism (DET), "
                    "hot-path (HOT), async-safety (ASYNC), and "
                    "wire-protocol (WIRE) invariants.")
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
