"""``repro lint`` — AST-based static analysis for the repro codebase.

The reproduction's correctness rests on invariants the paper takes for
granted: linear, mergeable sketches built from shared randomness must be
**bit-identical** regardless of sharding, batching, or checkpoint
round-trips.  Runtime tests catch a violated invariant only on the inputs
they try; this package checks the *code shape* that guarantees it:

- :mod:`~repro.analysis_lint.det` (DET) — determinism of serialization,
  checkpoint, merge, and hashing code;
- :mod:`~repro.analysis_lint.hot` (HOT) — no per-event Python in the six
  vectorized hot files without a ``# scalar-ok: <reason>`` marker;
- :mod:`~repro.analysis_lint.async_rules` (ASYNC) — blocking work stays
  off the asyncio event loop, no ``await`` under a thread lock;
- :mod:`~repro.analysis_lint.wire` (WIRE) — the wire-protocol op
  vocabulary is consistent across protocol/servers/client.

See ``docs/LINTING.md`` for the rule catalog and suppression syntax
(``# repro-lint: disable=<RULE> <reason>``).  Stdlib-only by design.
"""

from repro.analysis_lint.core import (
    Finding,
    LintResult,
    Rule,
    UsageError,
    run_lint,
)
from repro.analysis_lint.hot import HOT_FILES
from repro.analysis_lint.registry import ALL_RULES, all_codes

__all__ = [
    "ALL_RULES",
    "Finding",
    "HOT_FILES",
    "LintResult",
    "Rule",
    "UsageError",
    "all_codes",
    "run_lint",
]

def main(argv=None) -> int:
    """Entry point of ``python -m repro.analysis_lint``."""
    from repro.analysis_lint.cli import main as _main

    return _main(argv)
