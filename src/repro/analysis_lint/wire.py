"""WIRE — cross-file consistency of the JSON-lines wire protocol.

The service speaks one op vocabulary, declared once
(:data:`repro.service.protocol.OPS`) and re-implemented three times: the
asyncio multi-tenant server (``aserver.py``), the threaded ``--sync``
server (``server.py``), and the blocking client (``client.py``).  Protocol
drift between them is nasty precisely because it is *not* an error at the
wire layer — an op added to ``OPS`` but forgotten in a server passes
``decode_line`` and then falls into the servers' "unreachable" tail, and a
client sending an undeclared op gets a generic error envelope.  Either way
the symptom is a confused (or hung) client far from the actual bug.  This
rule makes drift a lint failure instead.

Mechanics: the rule groups files by directory around each ``protocol.py``
that assigns an ``OPS`` tuple; sibling role files (``aserver.py``,
``server.py``, ``client.py``) are pulled from the scanned set, or loaded
from disk when the lint invocation named only part of the group.  Handled
ops are string literals compared against the ``op`` variable (or
``req["op"]``); client ops are literal first arguments of
``request(...)``/``_send_points(...)``.

Codes
-----
WIRE401  op declared in OPS but not handled by a server (anchored at the
         OPS declaration, naming the offending file)
WIRE402  op handled or sent somewhere but missing from OPS (anchored at
         the stray literal)
WIRE403  op declared in OPS but not reachable from the client
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis_lint.core import Finding, Rule, load_source_file

__all__ = ["WireProtocolRule"]

_SERVER_ROLES = ("aserver.py", "server.py")
_CLIENT_ROLE = "client.py"


def _find_ops(sf):
    """The ``OPS = ("...", ...)`` assignment; returns (ops, lineno) or None."""
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Assign) \
                and any(isinstance(t, ast.Name) and t.id == "OPS"
                        for t in node.targets) \
                and isinstance(node.value, (ast.Tuple, ast.List)):
            ops = [e.value for e in node.value.elts
                   if isinstance(e, ast.Constant) and isinstance(e.value, str)]
            if ops:
                return ops, node.lineno
    return None


def _is_op_expr(node) -> bool:
    """``op`` or ``req["op"]`` — the dispatched operation name."""
    if isinstance(node, ast.Name) and node.id == "op":
        return True
    return (isinstance(node, ast.Subscript)
            and isinstance(node.slice, ast.Constant)
            and node.slice.value == "op")


def _string_consts(node):
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            yield sub.value, sub.lineno


def _handled_ops(sf) -> dict:
    """Op literals compared against the dispatched op: ``{"query": line}``."""
    out: dict[str, int] = {}
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Compare):
            continue
        sides = [node.left, *node.comparators]
        if not any(_is_op_expr(s) for s in sides):
            continue
        for s in sides:
            if _is_op_expr(s):
                continue
            for value, line in _string_consts(s):
                out.setdefault(value, line)
    return out


def _client_ops(sf) -> dict:
    """Op literals the client puts on the wire: first string argument of
    ``request(...)`` / ``_send_points(...)`` calls."""
    out: dict[str, int] = {}
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else \
            (func.id if isinstance(func, ast.Name) else None)
        if name not in ("request", "_send_points"):
            continue
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            out.setdefault(arg.value, arg.lineno)
    return out


class WireProtocolRule(Rule):
    family = "WIRE"
    description = ("every op in protocol.OPS is handled by both servers "
                   "and reachable from the client; no undeclared ops")
    codes = {
        "WIRE401": "op declared in OPS but unhandled by a server",
        "WIRE402": "op handled/sent but missing from protocol OPS",
        "WIRE403": "op declared in OPS but not reachable from the client",
    }
    is_project_rule = True

    def check_project(self, files):
        by_dir: dict[Path, dict] = {}
        for sf in files:
            by_dir.setdefault(sf.path.resolve().parent, {})[sf.path.name] = sf
        findings = []
        for directory, members in sorted(by_dir.items()):
            proto = members.get("protocol.py")
            if proto is None:
                continue
            declared = _find_ops(proto)
            if declared is None:
                continue
            findings.extend(self._check_group(directory, members, proto,
                                              *declared))
        return findings

    def _sibling(self, directory, members, name):
        """A role file: from the scanned set, else loaded from disk (so
        linting protocol.py alone still cross-checks the whole group)."""
        if name in members:
            return members[name]
        path = directory / name
        if path.exists():
            loaded = load_source_file(path)
            if not isinstance(loaded, Finding):
                return loaded
        return None

    def _check_group(self, directory, members, proto, ops, ops_line):
        declared = set(ops)
        for role in _SERVER_ROLES:
            sf = self._sibling(directory, members, role)
            if sf is None:
                continue
            handled = _handled_ops(sf)
            for op in ops:
                if op not in handled:
                    yield Finding(
                        path=proto.rel, line=ops_line, col=0, code="WIRE401",
                        message=f"op '{op}' is declared in OPS but never "
                                f"handled in {role}; a client sending it "
                                "gets the generic error tail instead of "
                                "the operation")
            for op, line in sorted(handled.items()):
                if op not in declared:
                    yield Finding(
                        path=sf.rel, line=line, col=0, code="WIRE402",
                        message=f"{role} handles op '{op}' which is not "
                                "declared in protocol OPS — decode_line "
                                "rejects it before dispatch ever sees it")
        client = self._sibling(directory, members, _CLIENT_ROLE)
        if client is not None:
            sent = _client_ops(client)
            for op in ops:
                if op not in sent:
                    yield Finding(
                        path=proto.rel, line=ops_line, col=0, code="WIRE403",
                        message=f"op '{op}' is declared in OPS but "
                                f"{_CLIENT_ROLE} never sends it; the "
                                "protocol surface and the client API have "
                                "drifted")
            for op, line in sorted(sent.items()):
                if op not in declared:
                    yield Finding(
                        path=client.rel, line=line, col=0, code="WIRE402",
                        message=f"{_CLIENT_ROLE} sends op '{op}' which is "
                                "not declared in protocol OPS — the server "
                                "will reject it as unknown")
        return
