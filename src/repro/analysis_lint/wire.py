"""WIRE — cross-file consistency of the JSON-lines wire protocol.

The service speaks one op vocabulary, declared once
(:data:`repro.service.protocol.OPS`) and re-implemented three times: the
asyncio multi-tenant server (``aserver.py``), the threaded ``--sync``
server (``server.py``), and the blocking client (``client.py``).  Protocol
drift between them is nasty precisely because it is *not* an error at the
wire layer — an op added to ``OPS`` but forgotten in a server passes
``decode_line`` and then falls into the servers' "unreachable" tail, and a
client sending an undeclared op gets a generic error envelope.  Either way
the symptom is a confused (or hung) client far from the actual bug.  This
rule makes drift a lint failure instead.

Mechanics: the rule groups files by directory around each ``protocol.py``
that assigns an ``OPS`` tuple; sibling role files (``aserver.py``,
``server.py``, ``client.py``) are pulled from the scanned set, or loaded
from disk when the lint invocation named only part of the group.  Handled
ops are string literals compared against the ``op`` variable (or
``req["op"]``); client ops are literal first arguments of
``request(...)``/``_send_points(...)``.

Protocol speech is not confined to the protocol's own directory: the
coordinator fleet (``distributed/fleet.py``) drives sites through
``ServiceClient`` method calls named after wire ops.  Such a file opts
into checking with a **wire-speaker marker**::

    # repro-lint: wire-speaker=<path/to/protocol.py> ops=<op,op,...>

The path resolves relative to the speaking file; the ``ops=`` list is the
file's declared wire vocabulary.  The rule cross-checks three ways: every
declared op must still exist in the target ``OPS`` (renaming or removing
a protocol op now fails lint at each remote call site instead of raising
``AttributeError`` at run time); every op the file *speaks* — a
``request(...)`` literal or an attribute named like a known op — must be
declared; and every declared op must actually be spoken, so the marker
cannot go stale.

Codes
-----
WIRE401  op declared in OPS but not handled by a server (anchored at the
         OPS declaration, naming the offending file)
WIRE402  op handled or sent somewhere but missing from OPS (anchored at
         the stray literal)
WIRE403  op declared in OPS but not reachable from the client
WIRE404  wire-speaker drift: a marked file references an op its target
         protocol no longer declares (or the marker's target is invalid)
WIRE405  wire-speaker marker out of sync with the file: an op is spoken
         but undeclared, or declared but never spoken
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis_lint.core import Finding, Rule, load_source_file

__all__ = ["WireProtocolRule"]

_SERVER_ROLES = ("aserver.py", "server.py")
_CLIENT_ROLE = "client.py"

#: ``# repro-lint: wire-speaker=<path-to-protocol.py> ops=<a,b,...>`` —
#: declares a file outside the protocol directory as a protocol speaker.
_SPEAKER = re.compile(
    r"#\s*repro-lint:\s*wire-speaker=(?P<target>\S+)\s+"
    r"ops=(?P<ops>[A-Za-z0-9_,]+)")


def _find_ops(sf):
    """The ``OPS = ("...", ...)`` assignment; returns (ops, lineno) or None."""
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Assign) \
                and any(isinstance(t, ast.Name) and t.id == "OPS"
                        for t in node.targets) \
                and isinstance(node.value, (ast.Tuple, ast.List)):
            ops = [e.value for e in node.value.elts
                   if isinstance(e, ast.Constant) and isinstance(e.value, str)]
            if ops:
                return ops, node.lineno
    return None


def _is_op_expr(node) -> bool:
    """``op`` or ``req["op"]`` — the dispatched operation name."""
    if isinstance(node, ast.Name) and node.id == "op":
        return True
    return (isinstance(node, ast.Subscript)
            and isinstance(node.slice, ast.Constant)
            and node.slice.value == "op")


def _string_consts(node):
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            yield sub.value, sub.lineno


def _handled_ops(sf) -> dict:
    """Op literals compared against the dispatched op: ``{"query": line}``."""
    out: dict[str, int] = {}
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Compare):
            continue
        sides = [node.left, *node.comparators]
        if not any(_is_op_expr(s) for s in sides):
            continue
        for s in sides:
            if _is_op_expr(s):
                continue
            for value, line in _string_consts(s):
                out.setdefault(value, line)
    return out


def _client_ops(sf) -> dict:
    """Op literals the client puts on the wire: first string argument of
    ``request(...)`` / ``_send_points(...)`` calls."""
    out: dict[str, int] = {}
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else \
            (func.id if isinstance(func, ast.Name) else None)
        if name not in ("request", "_send_points"):
            continue
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            out.setdefault(arg.value, arg.lineno)
    return out


def _speaker_marker(sf):
    """The file's wire-speaker marker: (target, declared ops, line) or None."""
    for i, line in enumerate(sf.lines, 1):
        m = _SPEAKER.search(line)
        if m:
            ops = tuple(o.strip() for o in m.group("ops").split(",")
                        if o.strip())
            return m.group("target"), ops, i
    return None


def _attr_refs(sf, vocabulary) -> dict:
    """Attribute references whose name is in ``vocabulary``: ``{op: line}``.

    Catches both ``cli.pull_state()`` calls and bare method references
    like ``fn = cli.insert`` — anything that would break if the client
    method (named after the op) disappeared."""
    out: dict[str, int] = {}
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Attribute) and node.attr in vocabulary:
            out.setdefault(node.attr, node.lineno)
    return out


class WireProtocolRule(Rule):
    family = "WIRE"
    description = ("every op in protocol.OPS is handled by both servers "
                   "and reachable from the client; no undeclared ops; "
                   "wire-speaker files stay in sync with their protocol")
    codes = {
        "WIRE401": "op declared in OPS but unhandled by a server",
        "WIRE402": "op handled/sent but missing from protocol OPS",
        "WIRE403": "op declared in OPS but not reachable from the client",
        "WIRE404": "wire-speaker references an op absent from its protocol",
        "WIRE405": "wire-speaker marker out of sync with the ops spoken",
    }
    is_project_rule = True

    def check_project(self, files):
        by_dir: dict[Path, dict] = {}
        for sf in files:
            by_dir.setdefault(sf.path.resolve().parent, {})[sf.path.name] = sf
        findings = []
        for directory, members in sorted(by_dir.items()):
            proto = members.get("protocol.py")
            if proto is None:
                continue
            declared = _find_ops(proto)
            if declared is None:
                continue
            findings.extend(self._check_group(directory, members, proto,
                                              *declared))
        for sf in files:
            marker = _speaker_marker(sf)
            if marker is not None:
                findings.extend(self._check_speaker(sf, *marker))
        return findings

    def _check_speaker(self, sf, target, declared, marker_line):
        """Cross-check one wire-speaker file against its target protocol."""
        path = (sf.path.parent / target).resolve()
        proto = None
        if path.is_file():
            loaded = load_source_file(path)
            if not isinstance(loaded, Finding):
                proto = loaded
        found = _find_ops(proto) if proto is not None else None
        if found is None:
            yield Finding(
                path=sf.rel, line=marker_line, col=0, code="WIRE404",
                message=f"wire-speaker target {target!r} is not a readable "
                        "protocol module with an OPS tuple")
            return
        ops = set(found[0])
        for op in declared:
            if op not in ops:
                yield Finding(
                    path=sf.rel, line=marker_line, col=0, code="WIRE404",
                    message=f"wire-speaker declares op '{op}' which "
                            f"{target} no longer lists in OPS — this "
                            "file's call sites have drifted from the "
                            "protocol vocabulary")
        spoken = _attr_refs(sf, ops | set(declared))
        for op, line in _client_ops(sf).items():
            spoken.setdefault(op, line)
            if op not in ops:
                yield Finding(
                    path=sf.rel, line=line, col=0, code="WIRE404",
                    message=f"wire-speaker sends op '{op}' which is not "
                            f"declared in {target} OPS — the server will "
                            "reject it as unknown")
        for op, line in sorted(spoken.items()):
            if op not in declared:
                yield Finding(
                    path=sf.rel, line=line, col=0, code="WIRE405",
                    message=f"file speaks op '{op}' but its wire-speaker "
                            "marker does not declare it; add it to the "
                            "marker's ops= list so protocol drift checks "
                            "cover this call site")
        for op in declared:
            if op in ops and op not in spoken:
                yield Finding(
                    path=sf.rel, line=marker_line, col=0, code="WIRE405",
                    message=f"wire-speaker declares op '{op}' but the file "
                            "never speaks it; drop it from the marker's "
                            "ops= list")

    def _sibling(self, directory, members, name):
        """A role file: from the scanned set, else loaded from disk (so
        linting protocol.py alone still cross-checks the whole group)."""
        if name in members:
            return members[name]
        path = directory / name
        if path.exists():
            loaded = load_source_file(path)
            if not isinstance(loaded, Finding):
                return loaded
        return None

    def _check_group(self, directory, members, proto, ops, ops_line):
        declared = set(ops)
        for role in _SERVER_ROLES:
            sf = self._sibling(directory, members, role)
            if sf is None:
                continue
            handled = _handled_ops(sf)
            for op in ops:
                if op not in handled:
                    yield Finding(
                        path=proto.rel, line=ops_line, col=0, code="WIRE401",
                        message=f"op '{op}' is declared in OPS but never "
                                f"handled in {role}; a client sending it "
                                "gets the generic error tail instead of "
                                "the operation")
            for op, line in sorted(handled.items()):
                if op not in declared:
                    yield Finding(
                        path=sf.rel, line=line, col=0, code="WIRE402",
                        message=f"{role} handles op '{op}' which is not "
                                "declared in protocol OPS — decode_line "
                                "rejects it before dispatch ever sees it")
        client = self._sibling(directory, members, _CLIENT_ROLE)
        if client is not None:
            sent = _client_ops(client)
            for op in ops:
                if op not in sent:
                    yield Finding(
                        path=proto.rel, line=ops_line, col=0, code="WIRE403",
                        message=f"op '{op}' is declared in OPS but "
                                f"{_CLIENT_ROLE} never sends it; the "
                                "protocol surface and the client API have "
                                "drifted")
            for op, line in sorted(sent.items()):
                if op not in declared:
                    yield Finding(
                        path=client.rel, line=line, col=0, code="WIRE402",
                        message=f"{_CLIENT_ROLE} sends op '{op}' which is "
                                "not declared in protocol OPS — the server "
                                "will reject it as unknown")
        return
