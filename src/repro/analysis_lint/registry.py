"""Rule registry: the installed rule families and selector resolution.

``repro lint --rule DET --rule HOT202`` selects by family or by full code;
unknown selectors are a :class:`~repro.analysis_lint.core.UsageError`
(exit code 2, distinct from "findings exist" = 1).
"""

from __future__ import annotations

from repro.analysis_lint.async_rules import AsyncSafetyRule
from repro.analysis_lint.core import UsageError
from repro.analysis_lint.det import DeterminismRule
from repro.analysis_lint.hot import HotPathRule
from repro.analysis_lint.wire import WireProtocolRule

__all__ = ["ALL_RULES", "all_codes", "resolve_rules"]

#: Every installed rule family, in report order.
ALL_RULES = (
    DeterminismRule(),
    HotPathRule(),
    AsyncSafetyRule(),
    WireProtocolRule(),
)


def all_codes() -> dict:
    """``{"DET101": "...", ...}`` across every family (for ``--list-rules``)."""
    out: dict[str, str] = {}
    for rule in ALL_RULES:
        out.update(rule.codes)
    return out


def resolve_rules(select=None):
    """Resolve selectors to ``(rules, code_filter)``.

    ``select=None`` runs everything (``code_filter=None``).  A selector is a
    family name (``DET``) enabling all its codes, or one full code
    (``DET104``).  Case-insensitive.
    """
    if not select:
        return list(ALL_RULES), None
    by_family = {r.family: r for r in ALL_RULES}
    rules = []
    codes: set[str] = set()
    for sel in select:
        token = sel.strip().upper()
        if token in by_family:
            rule = by_family[token]
            if rule not in rules:
                rules.append(rule)
            codes.update(rule.codes)
            continue
        owner = next((r for r in ALL_RULES if token in r.codes), None)
        if owner is None:
            known = ", ".join(sorted(by_family) + sorted(all_codes()))
            raise UsageError(f"unknown rule {sel!r}; known: {known}")
        if owner not in rules:
            rules.append(owner)
        codes.add(token)
    return rules, codes
