"""DET — determinism rules for serialization, checkpoint, merge, and hashing.

Why this family exists: every sketch in the reproduction is a *linear*
summary built from shared randomness (paper Section 4; same discipline as
the dynamic-stream sketches of arXiv:1706.03887).  Checkpoint bytes, merge
results, and hash values must be bit-identical functions of ``(params,
seed, event multiset)`` — regardless of sharding, batching, process
boundaries, or a checkpoint round-trip.  A single unseeded draw, wall-clock
read, identity-ordered structure, or float-truncated threshold silently
breaks that contract in ways unit tests rarely catch (the
``exact_field_threshold`` bug fixed in PR 5 survived every test until a
70-bit universe was tried).

Codes
-----
DET101  call into an unseeded / global random source (``random.*``, legacy
        ``np.random.*`` globals, ``default_rng()`` with no seed)
DET102  wall-clock read (``time.time``/``monotonic``/``perf_counter``,
        ``datetime.now``) feeding values that must be replayable
DET103  ``id()`` / builtin ``hash()`` — object identity is allocation- and
        (for str/bytes) PYTHONHASHSEED-dependent, never stable across runs
DET104  iterating a dict view / set in a scope whose output is serialized:
        order is insertion- or hash-history-dependent; wrap in ``sorted()``
        or annotate why the insertion order is canonical
DET105  ``int()`` over a float product/quotient involving a key,
        fingerprint, threshold, phi, or prime — float64 has 53 mantissa
        bits, the field elements here can have 70+ (the PR 5 bug class)
"""

from __future__ import annotations

import ast

from repro.analysis_lint.core import Finding, Rule, attr_chain

__all__ = ["DeterminismRule"]

#: Legacy numpy global-state RNG entry points (np.random.<fn> without a
#: Generator).  ``default_rng`` / ``Generator`` / ``SeedSequence`` are the
#: sanctioned, seedable API and stay allowed — except a bare
#: ``default_rng()`` with no arguments, which seeds from the OS.
_NP_RANDOM_GLOBALS = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "bytes", "get_state", "set_state",
})

_WALL_CLOCK = (
    ("time", "time"), ("time", "time_ns"), ("time", "monotonic"),
    ("time", "monotonic_ns"), ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
)

#: Identifier substrings marking exact-integer quantities (field elements,
#: encoded point keys, sampling thresholds) that must never round-trip
#: through float arithmetic.
_EXACT_NAMES = ("key", "fingerprint", "threshold", "phi", "prime")


def _names_in(node):
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


def _is_dict_view_or_set(node) -> bool:
    """An expression that iterates in insertion/hash order: a dict view call
    (``.items()``/``.keys()``/``.values()``), a ``set(...)`` call, or a set
    literal/comprehension."""
    if isinstance(node, ast.Call) and not node.args and not node.keywords \
            and isinstance(node.func, ast.Attribute) \
            and node.func.attr in ("items", "keys", "values"):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    return isinstance(node, (ast.Set, ast.SetComp))


def _unordered_iter_target(node):
    """If ``node`` (a loop/comprehension iterable) is an unordered-iteration
    hazard, return the offending node; ``sorted(...)`` wrappers clear it and
    ``enumerate``/``list``/``tuple``/``reversed`` wrappers are transparent."""
    while isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("enumerate", "list", "tuple", "reversed") \
            and node.args:
        node = node.args[0]
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("sorted", "min", "max", "sum", "len", "any",
                                 "all"):
        return None  # order-insensitive or explicitly canonicalized
    return node if _is_dict_view_or_set(node) else None


class DeterminismRule(Rule):
    family = "DET"
    description = ("bit-identical sketches: no unseeded randomness, "
                   "wall-clock, identity ordering, unordered iteration, or "
                   "float-truncated exact values in codec/merge/hash code")
    codes = {
        "DET101": "unseeded or global random source",
        "DET102": "wall-clock read in deterministic code",
        "DET103": "id()/hash() — identity is not stable across runs",
        "DET104": "dict/set iteration without sorted() in serialized scope",
        "DET105": "float-truncated arithmetic on an exact integer value",
    }
    #: Serialization, checkpoint, merge, and hashing modules (ISSUE 8);
    #: fixtures opt in with ``# repro-lint: scope=det``.
    path_patterns = (
        "repro/hashing/",
        "repro/service/state.py",
        "repro/service/protocol.py",
        "repro/streaming/merge.py",
        "repro/core/io.py",
        "repro/utils/rng.py",
    )

    def check_file(self, sf):
        findings = []

        def emit(node, code, message):
            findings.append(Finding(path=sf.rel, line=node.lineno,
                                    col=node.col_offset, code=code,
                                    message=message))

        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Call):
                self._check_call(node, emit)
            if isinstance(node, (ast.For, ast.comprehension)):
                it = node.iter
                bad = _unordered_iter_target(it)
                if bad is not None:
                    anchor = node if isinstance(node, ast.For) else bad
                    emit(anchor, "DET104",
                         "iteration order of a dict view / set is "
                         "insertion- or hash-history-dependent; wrap in "
                         "sorted() (or annotate why this order is part of "
                         "the bit-identity contract)")
        return findings

    def _check_call(self, node, emit) -> None:
        chain = attr_chain(node.func)
        if chain[:1] == ("random",) and len(chain) == 2:
            emit(node, "DET101",
                 f"'random.{chain[1]}' draws from the global, unseeded RNG; "
                 "derive a Generator via repro.utils.rng instead")
        elif chain[:2] in (("np", "random"), ("numpy", "random")) \
                and len(chain) == 3 and chain[2] in _NP_RANDOM_GLOBALS:
            emit(node, "DET101",
                 f"'{'.'.join(chain)}' uses numpy's global RNG state; "
                 "use np.random.default_rng(seed) / spawn_rng")
        elif chain and chain[-1] == "default_rng" and not node.args \
                and not node.keywords:
            emit(node, "DET101",
                 "default_rng() with no seed draws entropy from the OS; "
                 "pass an explicit seed")
        elif chain in _WALL_CLOCK or (
                len(chain) >= 2 and chain[-2:] in (("datetime", "now"),
                                                   ("datetime", "utcnow"))):
            emit(node, "DET102",
                 f"'{'.'.join(chain)}' reads the wall clock; deterministic "
                 "replay code must not depend on it")
        elif isinstance(node.func, ast.Name) and node.func.id in ("id", "hash") \
                and len(node.args) == 1:
            emit(node, "DET103",
                 f"builtin '{node.func.id}()' depends on allocation order / "
                 "PYTHONHASHSEED; use a stable key instead")
        elif isinstance(node.func, ast.Name) and node.func.id == "int" \
                and len(node.args) == 1 \
                and isinstance(node.args[0], ast.BinOp) \
                and isinstance(node.args[0].op, (ast.Mult, ast.Div)):
            names = set(_names_in(node.args[0]))
            hits = sorted(n for n in names
                          if any(tag in n.lower() for tag in _EXACT_NAMES))
            if hits:
                emit(node, "DET105",
                     f"int() over a product/quotient of {', '.join(hits)} "
                     "truncates through float64 (53-bit mantissa); compute "
                     "exactly (see hashing.kwise.exact_field_threshold)")
