"""HOT — no per-event Python in the vectorized ingest hot path.

The AST-accurate successor of the regex loop guard that used to live in
``tests/test_vectorized_identity.py``: PR 5 vectorized the whole ingest
path (numpy Horner sweeps, columnar IBLT scatters, batched storing
updates) for an ~18x serial throughput win, and a single per-event Python
loop creeping back in silently undoes it long before any benchmark fails.

Every ``for``/``while`` **statement** and every ``.tolist()`` call in the
hot files must carry a ``# scalar-ok: <reason>`` marker — the reviewable
assertion that the code is *not* per-event work (decode, construction,
per-coefficient, per-shard, snapshot views, ...).  Comprehensions and
generator expressions are exempt: the guard targets statement loops, where
per-event mutation lives.  Being AST-based, the rule sees multi-line loop
headers and is immune to strings or comments that merely look like loops.

Codes
-----
HOT201  un-annotated ``for``/``while`` statement in a hot file
HOT202  un-annotated ``.tolist()`` materialization in a hot file
"""

from __future__ import annotations

import ast

from repro.analysis_lint.core import Finding, Rule

__all__ = ["HOT_FILES", "HotPathRule", "MARKER"]

#: The marker a hot-file loop / .tolist() must carry on its header line.
MARKER = "scalar-ok"

#: The six vectorized hot files (the ingest path end to end: hashing →
#: sketches → storing → driver → shard router → worker frames).
HOT_FILES = (
    "repro/hashing/kwise.py",
    "repro/streaming/sketch.py",
    "repro/streaming/storing.py",
    "repro/streaming/streaming_coreset.py",
    "repro/service/shards.py",
    "repro/service/workers.py",
)


class HotPathRule(Rule):
    family = "HOT"
    description = ("per-event Python loops and .tolist() in the vectorized "
                   "hot files need an explicit '# scalar-ok: <reason>'")
    codes = {
        "HOT201": "un-annotated statement loop in a vectorized hot file",
        "HOT202": "un-annotated .tolist() in a vectorized hot file",
    }
    path_patterns = HOT_FILES

    def check_file(self, sf):
        findings = []
        for node in ast.walk(sf.tree):
            if isinstance(node, (ast.For, ast.While)):
                # The header spans the `for`/`while` line through the line
                # before the first body statement (multi-line conditions).
                header_end = max(node.lineno, node.body[0].lineno - 1)
                if not sf.span_has_marker(node.lineno, header_end, MARKER):
                    kind = "for" if isinstance(node, ast.For) else "while"
                    findings.append(Finding(
                        path=sf.rel, line=node.lineno, col=node.col_offset,
                        code="HOT201",
                        message=f"'{kind}' statement in a vectorized hot "
                                f"file: batch it, or mark the header with "
                                f"'# {MARKER}: <reason>' asserting it is "
                                f"not per-event work"))
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "tolist" and not node.args:
                line = node.func.end_lineno or node.lineno
                if not sf.span_has_marker(node.lineno, line, MARKER):
                    findings.append(Finding(
                        path=sf.rel, line=line, col=node.col_offset,
                        code="HOT202",
                        message=".tolist() materializes one Python object "
                                "per element; keep the hot path in numpy, "
                                f"or mark the line with '# {MARKER}: "
                                "<reason>'"))
        return findings
