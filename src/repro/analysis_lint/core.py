"""Core engine of ``repro lint``: findings, suppressions, file scanning.

The linter is a thin, stdlib-only harness around :mod:`ast`.  A *rule* (see
:mod:`repro.analysis_lint.registry`) inspects one parsed source file — or,
for cross-file rules, a group of files — and yields :class:`Finding`
records.  This module owns everything rule-independent:

- :class:`SourceFile` — one parsed file plus its comment-derived metadata
  (suppression directives, ``scope=`` opt-in markers, ``scalar-ok`` lines);
- suppression handling — ``# repro-lint: disable=<RULE> <reason>`` on the
  offending line (or on a standalone comment line directly above it)
  silences matching findings; a directive **without a reason** does not
  suppress and is itself reported (``LINT001``), so every exemption stays
  reviewable;
- :func:`run_lint` — scan paths, run rules, apply suppressions, and return
  a :class:`LintResult`.

Nothing here imports numpy/scipy: the linter must run in minimal CI
environments and lint files it cannot import.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Finding",
    "LintResult",
    "SourceFile",
    "UsageError",
    "family_of",
    "iter_python_files",
    "load_source_file",
    "run_lint",
]

#: Directories skipped while *walking* (explicitly named files always lint):
#: caches, VCS internals, and the intentionally-dirty lint test fixtures.
DEFAULT_EXCLUDED_DIRS = frozenset({
    "__pycache__", ".git", ".pytest_cache", "build", "dist",
    "lint_fixtures",
})

#: ``# repro-lint: <directive>`` comment anywhere on a line.
_DIRECTIVE = re.compile(r"#\s*repro-lint:\s*(?P<body>.+?)\s*$")
_DISABLE = re.compile(r"disable=(?P<codes>[A-Za-z0-9,]+)(?:\s+(?P<reason>.*\S))?")
_SCOPE = re.compile(r"scope=(?P<scopes>[A-Za-z0-9,]+)")


class UsageError(Exception):
    """Bad linter invocation (unknown rule, missing path); exit code 2."""


def family_of(code: str) -> str:
    """``DET104`` → ``DET`` (the rule family a code belongs to)."""
    return code.rstrip("0123456789")


@dataclass(frozen=True)
class Finding:
    """One lint violation, pointing at a source line."""

    path: str
    line: int
    col: int
    code: str
    message: str

    @property
    def family(self) -> str:
        return family_of(self.code)

    def to_dict(self) -> dict:
        """JSON-safe form (the ``--format json`` schema)."""
        return {**dataclasses.asdict(self), "rule": self.family}

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class _Suppression:
    line: int            # line the directive silences
    codes: tuple         # families or full codes, upper-cased
    reason: str
    directive_line: int  # line the comment itself sits on
    used: bool = False

    def matches(self, finding: Finding) -> bool:
        return any(c in ("ALL", finding.code, finding.family)
                   for c in self.codes)


@dataclass
class SourceFile:
    """One parsed Python file plus its lint-relevant comment metadata."""

    path: Path
    rel: str                      # posix-style path used for scope matching
    source: str
    lines: list[str]
    tree: ast.AST
    suppressions: list = field(default_factory=list)
    scopes: frozenset = frozenset()   # opt-in markers: {"det", "hot", ...}

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def span_has_marker(self, start: int, end: int, marker: str) -> bool:
        """Whether ``marker`` appears on any source line in [start, end]."""
        return any(marker in self.line_text(i) for i in range(start, end + 1))

    def in_scope(self, scope_name: str, path_patterns: tuple) -> bool:
        """A file is in a rule's scope if its path matches one of the rule's
        patterns, or it carries a ``# repro-lint: scope=<name>`` marker
        (how test fixtures opt in without living at the real paths)."""
        if scope_name in self.scopes:
            return True
        rel = "/" + self.rel
        for pat in path_patterns:
            if pat.endswith("/"):
                if "/" + pat in rel + "/":
                    return True
            elif rel.endswith("/" + pat):
                return True
        return False


@dataclass
class LintResult:
    """Outcome of one :func:`run_lint` invocation."""

    findings: list
    files_scanned: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        """The stable ``--format json`` schema (consumed by CI)."""
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.code] = counts.get(f.code, 0) + 1
        return {
            "version": 1,
            "tool": "repro-lint",
            "clean": self.clean,
            "files_scanned": self.files_scanned,
            "counts": dict(sorted(counts.items())),
            "findings": [f.to_dict() for f in self.findings],
        }


class Rule:
    """Base class for rule families.

    A subclass sets ``family`` (``"DET"``), ``codes`` (code → one-line
    description), and ``path_patterns`` (where the family applies: trailing
    ``/`` matches a directory anywhere in the path, otherwise a path
    suffix).  Per-file rules implement :meth:`check_file`; cross-file rules
    set ``is_project_rule`` and implement :meth:`check_project`.
    """

    family: str = ""
    description: str = ""
    codes: dict = {}
    path_patterns: tuple = ()
    is_project_rule: bool = False

    def applies(self, sf: "SourceFile") -> bool:
        return sf.in_scope(self.family.lower(), self.path_patterns)

    def check_file(self, sf: "SourceFile"):
        return ()

    def check_project(self, files):
        return ()


def _parse_comments(lines: list[str]):
    """Extract suppression directives and scope markers from source lines.

    A ``disable=`` directive on a code-bearing line applies to that line; on
    a standalone comment line it applies to the next non-blank, non-comment
    line (so long multi-line statements can be annotated above).
    """
    suppressions: list[_Suppression] = []
    scopes: set[str] = set()
    pending: list[_Suppression] = []
    for i, raw in enumerate(lines, 1):
        stripped = raw.strip()
        m = _DIRECTIVE.search(raw)
        if m:
            body = m.group("body")
            sm = _SCOPE.search(body)
            if sm:
                scopes.update(s.strip().lower()
                              for s in sm.group("scopes").split(",") if s.strip())
            dm = _DISABLE.search(body)
            if dm:
                codes = tuple(c.strip().upper()
                              for c in dm.group("codes").split(",") if c.strip())
                sup = _Suppression(line=i, codes=codes,
                                   reason=(dm.group("reason") or "").strip(),
                                   directive_line=i)
                if stripped.startswith("#"):
                    pending.append(sup)   # standalone: binds to the next stmt line
                else:
                    suppressions.append(sup)
                continue
        if not stripped or stripped.startswith("#"):
            continue
        for sup in pending:
            sup.line = i
            suppressions.append(sup)
        pending = []
    suppressions.extend(pending)  # trailing standalone directives: self-bound
    return suppressions, frozenset(scopes)


def load_source_file(path: Path, root: Path | None = None):
    """Parse one file; returns a :class:`SourceFile` or a parse :class:`Finding`."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return Finding(path=str(path), line=1, col=0, code="LINT000",
                       message=f"cannot read file: {exc}")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(path=str(path), line=exc.lineno or 1, col=0,
                       code="LINT000", message=f"syntax error: {exc.msg}")
    try:
        rel = path.resolve().relative_to((root or Path.cwd()).resolve())
    except ValueError:
        rel = path
    lines = source.splitlines()
    suppressions, scopes = _parse_comments(lines)
    return SourceFile(path=path, rel=rel.as_posix(), source=source,
                      lines=lines, tree=tree,
                      suppressions=suppressions, scopes=scopes)


def iter_python_files(paths) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list.

    Explicitly named files are always included (that is how the test suite
    lints its intentionally-dirty fixtures); excluded directory names only
    prune the recursive walk.  A missing path is a :class:`UsageError`.
    """
    out: list[Path] = []
    seen = set()
    for p in paths:
        p = Path(p)
        if not p.exists():
            raise UsageError(f"path does not exist: {p}")
        if p.is_file():
            candidates = [p] if p.suffix == ".py" else []
        else:
            candidates = sorted(
                f for f in p.rglob("*.py")
                if not (set(f.parts[:-1]) & DEFAULT_EXCLUDED_DIRS))
        for f in candidates:
            key = f.resolve()
            if key not in seen:
                seen.add(key)
                out.append(f)
    return out


def run_lint(paths, select=None, root: Path | None = None) -> LintResult:
    """Lint ``paths`` and return the suppression-filtered result.

    ``select`` optionally restricts to rule families or codes (e.g.
    ``["DET", "HOT202"]``); unknown selectors raise :class:`UsageError`.
    """
    from repro.analysis_lint.registry import resolve_rules

    rules, code_filter = resolve_rules(select)
    files: list[SourceFile] = []
    findings: list[Finding] = []
    scanned = 0
    for path in iter_python_files(paths):
        scanned += 1
        loaded = load_source_file(path, root=root)
        if isinstance(loaded, Finding):
            findings.append(loaded)
            continue
        files.append(loaded)
    for sf in files:
        for rule in rules:
            if not rule.is_project_rule and rule.applies(sf):
                findings.extend(rule.check_file(sf))
    for rule in rules:
        if rule.is_project_rule:
            findings.extend(rule.check_project(files))
    if code_filter is not None:
        findings = [f for f in findings
                    if f.code in code_filter or f.family == "LINT"]
    findings = _apply_suppressions(files, findings)
    findings = sorted(set(findings),
                      key=lambda f: (f.path, f.line, f.col, f.code))
    return LintResult(findings=findings, files_scanned=scanned)


def _apply_suppressions(files, findings):
    """Drop findings matched by a reasoned directive; a directive without a
    reason suppresses nothing and is itself reported (LINT001)."""
    by_rel = {sf.rel: sf for sf in files}
    by_path = {str(sf.path): sf for sf in files}
    kept: list[Finding] = []
    for f in findings:
        sf = by_rel.get(f.path) or by_path.get(f.path)
        suppressed = False
        for sup in (sf.suppressions if sf is not None else ()):
            if sup.line == f.line and sup.matches(f):
                sup.used = True
                if sup.reason:
                    suppressed = True
        if not suppressed:
            kept.append(f)
    for sf in files:
        for sup in sf.suppressions:
            if not sup.reason:
                kept.append(Finding(
                    path=sf.rel, line=sup.directive_line, col=0, code="LINT001",
                    message="suppression needs a reason: "
                            "'# repro-lint: disable=<RULE> <why this is safe>'"))
    return kept


# ---------------------------------------------------------------- AST helpers
def attr_chain(node) -> tuple:
    """``a.b.c`` → ``("a", "b", "c")``; empty tuple for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def walk_scoped(node, *, skip_nested_functions: bool = True):
    """Yield descendants of ``node``, optionally stopping at nested function
    boundaries (used by the ASYNC rules: a call inside a nested ``def`` is
    not on the event loop's critical path of *this* coroutine)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if skip_nested_functions and isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))
