"""Bit-size accounting for space/communication measurements.

Theorems 4.5 and 4.7 are statements about *bits* of memory/communication.
The simulated streaming sketches and the distributed protocol charge
themselves using these helpers so experiments E3 and E7 can report exact bit
counts rather than Python object sizes (which would measure the interpreter,
not the algorithm).
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["int_bits", "point_bits", "cells_bits", "float_bits", "counter_bits"]

#: Bits charged for one floating-point word (weights, distances).
FLOAT_BITS = 64


def int_bits(value: int) -> int:
    """Bits to represent a non-negative integer (at least 1 bit)."""
    v = abs(int(value))
    return max(1, v.bit_length())


def counter_bits(max_abs: int) -> int:
    """Bits for a signed counter with magnitude up to ``max_abs``."""
    return int_bits(max_abs) + 1


def point_bits(d: int, delta: int) -> int:
    """Bits to represent one point of [Δ]^d: d·log2(Δ).

    This is the paper's footnote-1 unit ("d log Δ is the space required to
    represent one point").
    """
    return int(d) * max(1, math.ceil(math.log2(delta)))


def cells_bits(num_cells: int, d: int, delta: int, levels: int) -> int:
    """Bits to represent ``num_cells`` grid-cell identifiers.

    A cell at any level is determined by its level index (log2 of number of
    levels) plus d coordinates each in a range at most 2Δ (the shifted grid
    can hang over the edge by one cell).
    """
    per_cell = max(1, math.ceil(math.log2(max(2, levels)))) + point_bits(d, 2 * delta)
    return int(num_cells) * per_cell


def float_bits(count: int = 1) -> int:
    """Bits charged for ``count`` floating-point words."""
    return FLOAT_BITS * int(count)


def total_bits(parts: Iterable[int]) -> int:
    """Sum a collection of bit counts."""
    return int(sum(int(p) for p in parts))
