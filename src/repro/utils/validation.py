"""Input validation helpers and the library-wide FAIL exception.

The paper's algorithms explicitly output ``FAIL`` when internal invariants
(number of heavy cells, estimated part sizes, sketch capacities) are violated
for a given guess ``o`` of the optimal clustering cost.  We mirror that with
:class:`FailedConstruction`, which drivers such as the guess-``o`` enumeration
of Theorem 3.19 catch and interpret as "try the next guess".
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "FailedConstruction",
    "check_points",
    "check_stream_points",
    "check_delta",
    "check_epsilon_eta",
    "check_k",
    "check_weights",
    "coerce_integral_rows",
]


class FailedConstruction(RuntimeError):
    """Raised when an algorithm outputs FAIL (paper semantics).

    Carries a ``reason`` string naming the violated check, so ablation
    experiments can distinguish failure modes.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def check_delta(delta: int) -> int:
    """Validate the coordinate range Δ; must be an integer power of two ≥ 2.

    The paper assumes Δ = 2^L without loss of generality (round up otherwise).
    """
    delta = int(delta)
    if delta < 2 or (delta & (delta - 1)) != 0:
        raise ValueError(f"delta must be a power of two >= 2, got {delta}")
    return delta


def check_points(points: np.ndarray, delta: int) -> np.ndarray:
    """Validate a point set Q ⊆ [Δ]^d given as an (n, d) integer array."""
    q = np.asarray(points)
    if q.ndim != 2:
        raise ValueError(f"points must be a 2-D array (n, d), got shape {q.shape}")
    if not np.issubdtype(q.dtype, np.integer):
        raise ValueError(
            "points must be integers in [1, delta]; use repro.grid.discretize "
            f"for real-valued data (got dtype {q.dtype})"
        )
    if q.size and (q.min() < 1 or q.max() > delta):
        raise ValueError(
            f"point coordinates must lie in [1, {delta}], got range "
            f"[{q.min()}, {q.max()}]"
        )
    return q.astype(np.int64, copy=False)


def check_stream_points(points: np.ndarray, delta: int) -> np.ndarray:
    """Validate an (n, d) integer array of *encodable* stream points.

    The mixed-radix point codec is injective exactly on coordinates in
    [0, Δ] (base Δ+1).  Anything outside that window would silently alias
    to a **different** valid point's key and corrupt every downstream
    sketch, so the streaming/service ingest paths must reject it before
    touching any state.  (The offline pipeline keeps the paper's stricter
    [1, Δ] domain via :func:`check_points`.)
    """
    q = np.asarray(points)
    if q.ndim != 2:
        raise ValueError(f"points must be a 2-D array (n, d), got shape {q.shape}")
    if not np.issubdtype(q.dtype, np.integer):
        raise ValueError(
            "points must be integers in [0, delta]; use repro.grid.discretize "
            f"for real-valued data (got dtype {q.dtype})"
        )
    if q.size and (q.min() < 0 or q.max() > delta):
        raise ValueError(
            f"point coordinates must lie in [0, {delta}], got range "
            f"[{q.min()}, {q.max()}]"
        )
    return q.astype(np.int64, copy=False)


def coerce_integral_rows(points) -> np.ndarray:
    """Coerce an (n, d) array-like of coordinates to int64, rejecting
    non-integral values.

    ``np.asarray(..., dtype=np.int64)`` and ``int(c)`` both *truncate*: a
    coordinate like 2.7 (or NaN/inf on some platforms) silently becomes a
    different point, which then aliases to a different key under the
    mixed-radix codec and corrupts every downstream sketch.  Every ingest
    entry point funnels float-bearing input through here instead: integral
    floats (2.0) are accepted, anything else raises ``ValueError`` before
    any state is touched.
    """
    arr = np.asarray(points)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise ValueError(f"points must be a 2-D array (n, d), got shape {arr.shape}")
    if np.issubdtype(arr.dtype, np.integer):
        return arr.astype(np.int64, copy=False)
    if arr.dtype == object:
        # Ragged rows or non-numeric entries; re-coerce elementwise so the
        # error names the offender instead of a generic cast failure.
        try:
            arr = arr.astype(np.float64)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"point coordinates must be numeric: {exc}") from exc
    if np.issubdtype(arr.dtype, np.floating):
        if arr.size and not np.isfinite(arr).all():
            raise ValueError("point coordinates must be finite (got NaN/inf)")
        floored = np.floor(arr)
        if arr.size and not (floored == arr).all():
            bad = arr[floored != arr].ravel()[0]
            raise ValueError(
                f"point coordinates must be integral, got {bad!r}; round or "
                "discretize real-valued data explicitly (repro.grid.discretize)"
            )
        if arr.size and (np.abs(floored) >= 2.0**63).any():
            # Would overflow the int64 cast (undefined value + RuntimeWarning).
            bad = floored[np.abs(floored) >= 2.0**63].ravel()[0]
            raise ValueError(f"point coordinate {bad!r} out of int64 range")
        return floored.astype(np.int64)
    raise ValueError(f"points must be integers, got dtype {arr.dtype}")


def check_epsilon_eta(eps: float, eta: float) -> tuple[float, float]:
    """Validate ε, η ∈ (0, 0.5) as required by Theorems 1.1-1.3."""
    if not (0.0 < eps < 0.5):
        raise ValueError(f"epsilon must be in (0, 0.5), got {eps}")
    if not (0.0 < eta < 0.5):
        raise ValueError(f"eta must be in (0, 0.5), got {eta}")
    return float(eps), float(eta)


def check_k(k: int) -> int:
    """Validate the number of clusters k ≥ 1."""
    k = int(k)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return k


def check_weights(weights: np.ndarray, n: int) -> np.ndarray:
    """Validate a positive weight vector aligned with n points."""
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != (n,):
        raise ValueError(f"weights must have shape ({n},), got {w.shape}")
    if w.size and w.min() <= 0:
        raise ValueError("weights must be strictly positive")
    return w
