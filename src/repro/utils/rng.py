"""Deterministic, hierarchical random-number management.

Every randomized component in the library takes either an integer seed or a
``numpy.random.Generator``.  To keep experiments reproducible while still
giving independent streams of randomness to independent components (grids,
hash functions, samplers, workload generators), seeds are *derived* from a
parent seed plus a string label using ``numpy``'s SeedSequence machinery.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["derive_seed", "spawn_rng", "as_rng"]


def derive_seed(seed: int, label: str) -> int:
    """Derive a child seed from ``seed`` and a human-readable ``label``.

    The derivation is stable across runs and platforms: the label is folded
    into the seed via CRC32 so that distinct labels yield (with overwhelming
    probability) distinct, independent-looking child seeds.
    """
    tag = zlib.crc32(label.encode("utf-8"))
    child = np.random.SeedSequence([int(seed) & 0xFFFFFFFF, tag])
    return int(child.generate_state(1, dtype=np.uint64)[0])


def spawn_rng(seed: int, label: str = "") -> np.random.Generator:
    """Create a ``numpy`` Generator from ``seed`` (optionally namespaced by ``label``)."""
    if label:
        seed = derive_seed(seed, label)
    return np.random.default_rng(seed)


def as_rng(seed_or_rng: "int | np.random.Generator | None") -> np.random.Generator:
    """Coerce an int seed, a Generator, or None into a Generator."""
    if seed_or_rng is None:
        # repro-lint: disable=DET101 passing None is the caller's explicit
        # opt-in to OS entropy (exploratory runs); every repro path seeds.
        return np.random.default_rng()
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(int(seed_or_rng))
