"""Minimal fixed-width table rendering for CLI and report output."""

from __future__ import annotations

from typing import Iterable

__all__ = ["format_table", "render_table"]


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0 or (1e-3 < abs(v) < 1e5):
            return f"{v:.3f}"
        return f"{v:.3g}"
    return str(v)


def format_table(header: Iterable, rows: Iterable[Iterable]) -> str:
    """Render a header + rows as an aligned text table."""
    header = [str(h) for h in header]
    srows = [[_fmt(v) for v in r] for r in rows]
    widths = [
        max(len(h), max((len(r[i]) for r in srows), default=0))
        for i, h in enumerate(header)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(v.ljust(w) for v, w in zip(r, widths)) for r in srows]
    return "\n".join(lines)


def render_table(title: str, header: Iterable, rows: Iterable[Iterable]) -> str:
    """Format with a title banner."""
    return f"=== {title} ===\n{format_table(header, rows)}"
