"""Shared utilities: seeded randomness, validation, and bit-size accounting."""

from repro.utils.rng import spawn_rng, derive_seed
from repro.utils.validation import (
    check_points,
    check_delta,
    check_epsilon_eta,
    check_k,
    FailedConstruction,
)
from repro.utils.bits import int_bits, point_bits, cells_bits

__all__ = [
    "spawn_rng",
    "derive_seed",
    "check_points",
    "check_delta",
    "check_epsilon_eta",
    "check_k",
    "FailedConstruction",
    "int_bits",
    "point_bits",
    "cells_bits",
]
