"""Section 3.3 — constructing an assignment for the *original* point set.

In capacitated clustering, knowing good centers is not enough: one still has
to route every input point to a center within capacity.  The paper shows the
coreset carries enough structure to do this without re-reading Q's geometry:

1. solve the capacitated assignment on the weighted coreset (min-cost flow;
   at most k−1 split points after forestification);
2. per weight class (= grid level, since all of Q'_i shares weight 1/φ_i),
   canonicalize the assignment by the switching procedure so it is induced
   by a set of assignment half-spaces H_i (Lemma 3.8 / step 1c);
3. for every retained part P ∈ PI_i, estimate the per-region masses B from
   the coreset samples and build the transferred assignment (Def. 3.11);
4. any original point of P follows its region's transferred center; points
   outside all retained parts go to their nearest center.

The result violates capacity by at most a (1+O(η)) factor and costs at most
(1+O(ε)) times the coreset assignment — the guarantee experiment E5 checks.
"""

from __future__ import annotations

import numpy as np

from repro.assignment.capacitated import capacitated_assignment
from repro.core.halfspace import (
    halfspaces_from_assignment,
    region_weights,
    transferred_assignment,
)
from repro.core.params import CoresetParams
from repro.core.partition import partition_heavy_cells
from repro.core.weighted import Coreset
from repro.grid.grids import HierarchicalGrids
from repro.metrics.distances import nearest_center

__all__ = ["extend_assignment_to_points", "coreset_assignment"]


def coreset_assignment(
    coreset: Coreset,
    centers: np.ndarray,
    t: float,
    r: float = 2.0,
    method: str = "auto",
):
    """Step 1: integral capacitated assignment of the weighted coreset."""
    return capacitated_assignment(
        coreset.points, centers, t, r=r, weights=coreset.weights,
        method=method, integral=True,
    )


def extend_assignment_to_points(
    points: np.ndarray,
    coreset: Coreset,
    params: CoresetParams,
    grids: HierarchicalGrids,
    centers: np.ndarray,
    t: float,
    r: float = 2.0,
    coreset_labels: np.ndarray | None = None,
) -> np.ndarray:
    """Assign every original point using only the coreset's assignment.

    ``grids`` must be the same grid object (same shift) the coreset was built
    with, and ``coreset.o`` records the accepted guess, so the heavy-cell
    partition is reproduced deterministically.

    Returns center labels in [0, k) for every row of ``points``.
    """
    pts = np.asarray(points)
    ctr = np.asarray(centers, dtype=np.float64)
    n = pts.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if len(coreset) == 0:
        return nearest_center(pts, ctr, r)[0]

    if coreset_labels is None:
        res = coreset_assignment(coreset, ctr, t, r=r)
        if res.labels is None:
            raise ValueError(f"capacity t={t} infeasible for the coreset")
        coreset_labels = res.labels
    labels_q = np.asarray(coreset_labels, dtype=np.int64)

    # --- step 2: per-level canonical half-spaces from the coreset. ---------
    core_levels = coreset.levels()
    halfspaces: dict[int, object] = {}
    for level in np.unique(core_levels):
        sel = core_levels == level
        halfspaces[int(level)] = halfspaces_from_assignment(
            coreset.points[sel], labels_q[sel], ctr, r=r, canonicalize=True
        )

    # --- reproduce the partition of Q and match parts to coreset parts. ----
    partition = partition_heavy_cells(pts, params, coreset.o, grids)
    retained = {
        (info.level, info.parent_cell_key): pid
        for pid, info in enumerate(coreset.parts)
    }

    out = np.full(n, -1, dtype=np.int64)
    covered = np.zeros(n, dtype=bool)
    k = ctr.shape[0]
    for part in partition.parts:
        key = (part.level, int(part.parent_cell_key))
        pid = retained.get(key)
        if pid is None or part.level not in halfspaces:
            continue
        H = halfspaces[part.level]
        # Region masses from the coreset samples of this part (step 3).
        core_sel = coreset.part_ids == pid
        if not core_sel.any():
            continue
        regions_core = H.regions(coreset.points[core_sel])
        B = region_weights(regions_core, k, coreset.weights[core_sel])
        T = 0.5 * params.small_part_cutoff(part.level, coreset.o)
        # Transferred assignment applied to the original points (step 4).
        regions_pts = H.regions(pts[part.point_idx])
        out[part.point_idx] = transferred_assignment(regions_pts, B, params.xi, T)
        covered[part.point_idx] = True

    # Points outside retained parts: nearest center (their total number is
    # O(η)·|Q|/k and their cost O(ε)·cost by Lemma 3.4's argument).
    rest = ~covered
    if rest.any():
        out[rest] = nearest_center(pts[rest], ctr, r)[0]
    return out
