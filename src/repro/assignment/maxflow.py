"""Maximum flow (Dinic's algorithm), implemented from scratch.

Used for feasibility checks where costs don't matter — notably the
bottleneck (k-center) assignment, where each binary-search step asks "can
all points be routed to centers within radius ρ under the capacities?".
Dinic runs in O(E·√V) on unit-ish bipartite networks, orders of magnitude
faster than driving the min-cost-flow solver with zero costs.
"""

from __future__ import annotations

from collections import deque

__all__ = ["MaxFlow"]


class MaxFlow:
    """Directed flow network with integer capacities (Dinic's algorithm)."""

    def __init__(self, num_nodes: int):
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.n = int(num_nodes)
        self.graph: list[list[int]] = [[] for _ in range(self.n)]
        self.to: list[int] = []
        self.cap: list[int] = []

    def add_edge(self, u: int, v: int, capacity: int) -> int:
        """Add arc u→v; returns the edge id (flow readable afterwards)."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge ({u}, {v}) out of range")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        eid = len(self.to)
        self.graph[u].append(eid)
        self.to.append(v)
        self.cap.append(int(capacity))
        self.graph[v].append(eid + 1)
        self.to.append(u)
        self.cap.append(0)
        return eid

    def edge_flow(self, edge_id: int) -> int:
        """Flow routed through forward edge ``edge_id``."""
        return self.cap[edge_id ^ 1]

    def _bfs_levels(self, s: int, t: int):
        level = [-1] * self.n
        level[s] = 0
        dq = deque([s])
        while dq:
            u = dq.popleft()
            for eid in self.graph[u]:
                v = self.to[eid]
                if self.cap[eid] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    dq.append(v)
        return level if level[t] >= 0 else None

    def _dfs_block(self, u: int, t: int, pushed: int, level, it):
        if u == t:
            return pushed
        while it[u] < len(self.graph[u]):
            eid = self.graph[u][it[u]]
            v = self.to[eid]
            if self.cap[eid] > 0 and level[v] == level[u] + 1:
                got = self._dfs_block(v, t, min(pushed, self.cap[eid]), level, it)
                if got > 0:
                    self.cap[eid] -= got
                    self.cap[eid ^ 1] += got
                    return got
            it[u] += 1
        return 0

    def max_flow(self, s: int, t: int) -> int:
        """Maximum s→t flow value."""
        if s == t:
            raise ValueError("source and sink must differ")
        flow = 0
        while True:
            level = self._bfs_levels(s, t)
            if level is None:
                return flow
            it = [0] * self.n
            while True:
                pushed = self._dfs_block(s, t, 1 << 62, level, it)
                if pushed == 0:
                    break
                flow += pushed
