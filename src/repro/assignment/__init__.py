"""Capacitated assignment machinery (Section 3.3 of the paper).

Given a *fixed* set of k centers, assigning points under capacity constraints
is a transportation problem.  This package provides:

- :mod:`repro.assignment.mincostflow` — a from-scratch successive-shortest-
  path min-cost-flow solver (reference implementation, exact on integers);
- :mod:`repro.assignment.capacitated` — fractional/integral capacitated
  assignment of (weighted) point sets to centers, including the paper's
  cycle-canceling argument that at most k−1 weighted points end up split;
- :mod:`repro.assignment.transfer` — Section 3.3's construction of an
  assignment for the *original* point set from an assignment of the coreset,
  via half-space representations and transferred assignments.
"""

from repro.assignment.mincostflow import MinCostFlow
from repro.assignment.capacitated import (
    capacitated_assignment,
    AssignmentResult,
    assignment_cost,
    cluster_sizes,
)
from repro.assignment.transfer import extend_assignment_to_points

__all__ = [
    "MinCostFlow",
    "capacitated_assignment",
    "AssignmentResult",
    "assignment_cost",
    "cluster_sizes",
    "extend_assignment_to_points",
]
