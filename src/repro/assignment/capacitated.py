"""Capacitated assignment of (weighted) points to fixed centers (Section 3.3).

Given centers Z and capacity t, the optimal *fractional* assignment is a
transportation problem.  The paper (Section 3.3) solves it by min-cost flow
and then observes that canceling cycles in the support graph leaves a forest,
so at most k−1 points have their weight split among several centers; those
are rounded to a single center, violating capacities by at most
(k−1)·max-weight ≤ η·|Q|/k for coreset weights.

This module implements that pipeline with three solution methods:

``lp``      scipy's HiGHS simplex on the transportation LP (fast, returns a
            basic — hence forest-support — optimum);
``flow``    the from-scratch min-cost-flow of :mod:`repro.assignment.
            mincostflow` on integer-scaled weights (reference);
``greedy``  regret-ordered greedy with capacity repair (no optimality
            guarantee; used inside iterative solvers where speed matters).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.assignment.mincostflow import MinCostFlow
from repro.metrics.distances import pairwise_power_distances

__all__ = [
    "AssignmentResult",
    "capacitated_assignment",
    "assignment_cost",
    "cluster_sizes",
    "forestify_support",
]


@dataclass
class AssignmentResult:
    """An assignment of n weighted points to k centers.

    Attributes
    ----------
    labels:
        Integer array (n,) giving each point's center, or ``None`` when the
        instance is infeasible.
    cost:
        Total ℓr cost Σ w(p)·dist^r(p, z_label(p)); ``inf`` when infeasible.
    fractional_cost:
        Optimal transportation (fractional) cost — a lower bound on any
        integral assignment's cost.
    sizes:
        Weighted cluster sizes under ``labels``.
    capacity:
        The per-center capacities the instance was solved with.
    num_split:
        How many points the fractional optimum split across centers (≤ k−1
        after forestification, per the paper's argument).
    """

    labels: np.ndarray | None
    cost: float
    fractional_cost: float
    sizes: np.ndarray = field(default=None)
    capacity: np.ndarray = field(default=None)
    num_split: int = 0

    @property
    def feasible(self) -> bool:
        """Whether an assignment within the capacities exists."""
        return self.labels is not None

    def max_violation(self) -> float:
        """Multiplicative capacity violation max_i sizes_i / capacity_i (≥ 1)."""
        if self.labels is None:
            return math.inf
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(self.sizes > 0, self.sizes / self.capacity, 0.0)
        return float(max(1.0, ratio.max())) if ratio.size else 1.0


def _as_capacities(t, k: int) -> np.ndarray:
    caps = np.asarray(t, dtype=np.float64)
    if caps.ndim == 0:
        caps = np.full(k, float(caps))
    if caps.shape != (k,):
        raise ValueError(f"capacity must be scalar or shape ({k},)")
    if caps.min() < 0:
        raise ValueError("capacities must be non-negative")
    return caps


def cluster_sizes(labels: np.ndarray, k: int, weights: np.ndarray | None = None) -> np.ndarray:
    """Weighted size vector s(π) of Definition 3.6."""
    if weights is None:
        weights = np.ones(len(labels))
    return np.bincount(np.asarray(labels), weights=weights, minlength=k).astype(np.float64)


def assignment_cost(
    points: np.ndarray,
    centers: np.ndarray,
    labels: np.ndarray,
    r: float = 2.0,
    weights: np.ndarray | None = None,
) -> float:
    """cost^(r)(π) = Σ w(p) · dist^r(p, π(p)) for an explicit assignment."""
    pts = np.asarray(points, dtype=np.float64)
    ctr = np.asarray(centers, dtype=np.float64)
    lab = np.asarray(labels)
    diff = pts - ctr[lab]
    dr = np.linalg.norm(diff, axis=1) ** r
    if weights is not None:
        dr = dr * np.asarray(weights, dtype=np.float64)
    return float(dr.sum())


# ---------------------------------------------------------------------------
# LP (HiGHS) transportation solve
# ---------------------------------------------------------------------------

def _solve_transportation_lp(D: np.ndarray, w: np.ndarray, caps: np.ndarray):
    """Solve min <D, X> s.t. X·1 = w, Xᵀ·1 ≤ caps, X ≥ 0 via HiGHS.

    Returns the flow matrix (n, k) or ``None`` if infeasible.
    """
    from scipy import sparse
    from scipy.optimize import linprog

    n, k = D.shape
    nv = n * k
    # Equality: each point's weight fully assigned.
    rows = np.repeat(np.arange(n), k)
    cols = np.arange(nv)
    a_eq = sparse.csr_matrix((np.ones(nv), (rows, cols)), shape=(n, nv))
    # Inequality: center loads within capacity.
    rows_ub = np.tile(np.arange(k), n)
    a_ub = sparse.csr_matrix((np.ones(nv), (rows_ub, cols)), shape=(k, nv))
    res = linprog(
        c=D.reshape(-1),
        A_eq=a_eq,
        b_eq=w,
        A_ub=a_ub,
        b_ub=caps,
        bounds=(0, None),
        method="highs",
    )
    if not res.success:
        return None
    return res.x.reshape(n, k)


# ---------------------------------------------------------------------------
# Flow (from scratch) transportation solve
# ---------------------------------------------------------------------------

def _solve_transportation_flow(D: np.ndarray, w: np.ndarray, caps: np.ndarray,
                               weight_scale: int = 1_000_000):
    """Transportation via the from-scratch min-cost flow on scaled integers.

    Weights and capacities are scaled by ``weight_scale`` and rounded, so the
    result is exact for integer weights (scale 1 is used then) and accurate
    to 1e-6 relative weight otherwise.  Returns the flow matrix or ``None``.
    """
    n, k = D.shape
    if np.allclose(w, np.round(w)) and np.allclose(caps, np.round(caps)):
        scale = 1
    else:
        scale = weight_scale
    iw = np.round(w * scale).astype(np.int64)
    icaps = np.floor(caps * scale + 1e-9).astype(np.int64)
    if iw.sum() > icaps.sum():
        return None
    net = MinCostFlow(n + k + 2)
    s, t = n + k, n + k + 1
    point_edges = np.empty((n, k), dtype=np.int64)
    for i in range(n):
        net.add_edge(s, i, int(iw[i]), 0.0)
        for j in range(k):
            point_edges[i, j] = net.add_edge(i, n + j, int(iw[i]), float(D[i, j]))
    for j in range(k):
        net.add_edge(n + j, t, int(icaps[j]), 0.0)
    result = net.min_cost_flow(s, t)
    if result.flow < iw.sum():
        return None
    X = np.empty((n, k), dtype=np.float64)
    for i in range(n):
        for j in range(k):
            X[i, j] = net.edge_flow(int(point_edges[i, j])) / scale
    return X


# ---------------------------------------------------------------------------
# Forestification / integralization (the paper's cycle-canceling procedure)
# ---------------------------------------------------------------------------

def forestify_support(X: np.ndarray, D: np.ndarray | None = None,
                      tol: float = 1e-9) -> np.ndarray:
    """Cancel cycles in the bipartite support of a transportation solution.

    Section 3.3, steps 1-4: while the support graph (points ∪ centers, an
    edge when flow > 0) contains a cycle, shift the minimum cycle flow around
    the cycle in the cost-non-increasing direction (for an optimal ``X`` both
    directions have zero cost change); one support edge drops per iteration,
    so the result's support is a forest and at most k−1 points remain
    fractionally split.  ``D`` is the (n, k) cost matrix used to pick the
    direction; if omitted the construction-order direction is used, which is
    still feasibility-preserving.
    """
    X = X.copy()
    while True:
        cycle = _find_support_cycle(X, tol)
        if cycle is None:
            return X
        # The cycle alternates arcs sharing a point / a center, so adding +a
        # to even arcs and -a to odd arcs preserves all row and column sums.
        plus, minus = cycle[0::2], cycle[1::2]
        if D is not None:
            delta_cost = sum(D[i, j] for (i, j) in plus) - sum(D[i, j] for (i, j) in minus)
            if delta_cost > 0:
                plus, minus = minus, plus
        a = min(X[i, j] for (i, j) in minus)
        for (i, j) in plus:
            X[i, j] += a
        for (i, j) in minus:
            X[i, j] -= a
            if X[i, j] < tol:
                X[i, j] = 0.0


def _find_support_cycle(X: np.ndarray, tol: float):
    """Find one simple cycle in the bipartite support graph, or ``None``.

    Returns the cycle as an alternating arc list [(i0,j0),(i1,j0),(i1,j1),…]
    where even-indexed arcs will receive +a flow and odd-indexed arcs -a.
    """
    n, k = X.shape
    # Adjacency: point -> centers with positive flow.
    pt_adj = [np.flatnonzero(X[i] > tol) for i in range(n)]
    ctr_adj: list[list[int]] = [[] for _ in range(k)]
    for i in range(n):
        for j in pt_adj[i]:
            ctr_adj[j].append(i)
    # A bipartite graph has a cycle iff #edges > #vertices(touched) - #components.
    # DFS from each unvisited point, tracking the path.
    visited_pt = [False] * n
    visited_ctr = [False] * k
    for start in range(n):
        if visited_pt[start] or len(pt_adj[start]) == 0:
            continue
        # Iterative DFS over (node, is_point, parent) with path reconstruction.
        parent_of_pt: dict[int, int] = {}
        parent_of_ctr: dict[int, int] = {}
        stack = [(start, True, -1)]
        while stack:
            node, is_pt, par = stack.pop()
            if is_pt:
                if visited_pt[node]:
                    continue
                visited_pt[node] = True
                parent_of_pt[node] = par
                for j in pt_adj[node]:
                    if j == par:
                        continue
                    if visited_ctr[j]:
                        return _reconstruct_cycle(node, int(j), parent_of_pt, parent_of_ctr)
                    stack.append((int(j), False, node))
            else:
                if visited_ctr[node]:
                    continue
                visited_ctr[node] = True
                parent_of_ctr[node] = par
                for i in ctr_adj[node]:
                    if i == par:
                        continue
                    if visited_pt[i]:
                        return _reconstruct_cycle(int(i), node, parent_of_pt, parent_of_ctr)
                    stack.append((int(i), True, node))
    return None


def _reconstruct_cycle(pt: int, ctr: int, parent_of_pt: dict, parent_of_ctr: dict):
    """Build the alternating arc cycle closing edge (pt, ctr)."""
    # Walk up from both endpoints to the root, find the meeting point.
    path_pt = _ancestors(pt, True, parent_of_pt, parent_of_ctr)
    path_ctr = _ancestors(ctr, False, parent_of_pt, parent_of_ctr)
    set_pt = {(n, b) for (n, b) in path_pt}
    lca_idx = next(i for i, nb in enumerate(path_ctr) if nb in set_pt)
    lca = path_ctr[lca_idx]
    up_pt = path_pt[: path_pt.index(lca) + 1]
    up_ctr = path_ctr[: lca_idx + 1]
    # Node cycle: pt -> ... -> lca -> ... -> ctr -> pt.
    nodes = up_pt + list(reversed(up_ctr[:-1])) + [(pt, True)]
    arcs = []
    for a, b in zip(nodes[:-1], nodes[1:]):
        (na, pa), (nb, pb) = a, b
        arcs.append((na, nb) if pa else (nb, na))
    # Rotate so arcs alternate starting with a "+": arcs[0] gets +a.  Any
    # alternating orientation works; we keep construction order.
    return arcs


def _ancestors(node: int, is_pt: bool, parent_of_pt: dict, parent_of_ctr: dict):
    out = []
    cur, flag = node, is_pt
    while cur != -1:
        out.append((cur, flag))
        cur = parent_of_pt[cur] if flag else parent_of_ctr[cur]
        flag = not flag
    return out


# ---------------------------------------------------------------------------
# Greedy method (fast, approximate; used inside iterative solvers)
# ---------------------------------------------------------------------------

def _greedy_assignment(D: np.ndarray, w: np.ndarray, caps: np.ndarray):
    """Regret-ordered greedy: points with the largest best-vs-second-best gap
    pick first; each point takes its cheapest center with remaining capacity
    (falling back to the globally least-loaded center if none fits)."""
    n, k = D.shape
    order = np.argsort(-(np.partition(D, 1, axis=1)[:, 1] - D.min(axis=1))) if k > 1 else np.arange(n)
    remaining = caps.astype(np.float64).copy()
    labels = np.empty(n, dtype=np.int64)
    pref = np.argsort(D, axis=1)
    for i in order:
        placed = False
        for j in pref[i]:
            if remaining[j] >= w[i] - 1e-12:
                labels[i] = j
                remaining[j] -= w[i]
                placed = True
                break
        if not placed:
            j = int(np.argmax(remaining))
            labels[i] = j
            remaining[j] -= w[i]
    return labels


# ---------------------------------------------------------------------------
# Public entry point
# ---------------------------------------------------------------------------

def capacitated_assignment(
    points: np.ndarray,
    centers: np.ndarray,
    t,
    r: float = 2.0,
    weights: np.ndarray | None = None,
    method: str = "auto",
    integral: bool = True,
) -> AssignmentResult:
    """Optimally assign weighted points to fixed centers under capacities.

    Parameters
    ----------
    points, centers:
        (n, d) and (k, d) arrays (any numeric dtype).
    t:
        Capacity — a scalar (uniform, the paper's setting) or a (k,) vector.
    r:
        The ℓr exponent (r=1 k-median, r=2 k-means).
    weights:
        Optional positive point weights (coresets); default all-ones.
    method:
        ``"lp"`` | ``"flow"`` | ``"greedy"`` | ``"auto"`` (lp when available,
        flow as fallback).
    integral:
        If True, round the fractional optimum to an integral assignment via
        forestification + nearest-center rounding of the ≤ k−1 split points
        (Section 3.3).  ``cost`` then reports the integral assignment's cost
        and ``fractional_cost`` the LP optimum.
    """
    pts = np.asarray(points, dtype=np.float64)
    ctr = np.asarray(centers, dtype=np.float64)
    n, k = pts.shape[0], ctr.shape[0]
    if n == 0:
        return AssignmentResult(
            labels=np.empty(0, dtype=np.int64), cost=0.0, fractional_cost=0.0,
            sizes=np.zeros(k), capacity=_as_capacities(t, k),
        )
    w = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)
    caps = _as_capacities(t, k)
    D = pairwise_power_distances(pts, ctr, r)

    if w.sum() > caps.sum() + 1e-9:
        return AssignmentResult(labels=None, cost=math.inf, fractional_cost=math.inf,
                                sizes=None, capacity=caps)

    if method == "greedy":
        labels = _greedy_assignment(D, w, caps)
        cost = float((D[np.arange(n), labels] * w).sum())
        return AssignmentResult(
            labels=labels, cost=cost, fractional_cost=cost,
            sizes=cluster_sizes(labels, k, w), capacity=caps,
        )

    if method in ("auto", "lp"):
        X = _solve_transportation_lp(D, w, caps)
        if X is None and method == "lp":
            return AssignmentResult(labels=None, cost=math.inf, fractional_cost=math.inf,
                                    sizes=None, capacity=caps)
    else:
        X = None
    if X is None:
        X = _solve_transportation_flow(D, w, caps)
    if X is None:
        return AssignmentResult(labels=None, cost=math.inf, fractional_cost=math.inf,
                                sizes=None, capacity=caps)

    frac_cost = float((D * X).sum())
    if not integral:
        labels = np.asarray(X.argmax(axis=1), dtype=np.int64)
        return AssignmentResult(
            labels=labels, cost=frac_cost, fractional_cost=frac_cost,
            sizes=X.sum(axis=0), capacity=caps,
            num_split=int((np.count_nonzero(X > 1e-9 * max(1.0, w.max()), axis=1) > 1).sum()),
        )

    X = forestify_support(X, D)
    support_counts = np.count_nonzero(X > 1e-9 * max(1.0, w.max()), axis=1)
    num_split = int((support_counts > 1).sum())
    # Split points: all weight goes to the nearest center among their support
    # (the paper sends split points to the closest center).
    labels = np.where(
        support_counts <= 1,
        X.argmax(axis=1),
        np.where(X > 1e-9 * max(1.0, w.max()), D, np.inf).argmin(axis=1),
    ).astype(np.int64)
    # Points with zero support rows (numerical edge case) go to nearest center.
    zero_rows = support_counts == 0
    if zero_rows.any():
        labels[zero_rows] = D[zero_rows].argmin(axis=1)
    cost = float((D[np.arange(n), labels] * w).sum())
    return AssignmentResult(
        labels=labels, cost=cost, fractional_cost=frac_cost,
        sizes=cluster_sizes(labels, k, w), capacity=caps, num_split=num_split,
    )
