"""Minimum-cost flow, implemented from scratch.

Successive shortest augmenting paths with Johnson potentials: Bellman–Ford
(SPFA variant) establishes initial potentials when negative-cost arcs are
present, after which every augmentation runs Dijkstra on reduced costs.
Capacities are integers (so the algorithm terminates with an *integral*
optimal flow); costs may be floats.

This is the reference solver behind :func:`repro.assignment.capacitated.
capacitated_assignment` and the flow step of Section 3.3.  For large
transportation instances the LP fast path in :mod:`repro.metrics.costs`
is preferred; the two are cross-validated in the test suite.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

__all__ = ["MinCostFlow", "FlowResult"]


@dataclass
class FlowResult:
    """Outcome of a min-cost-flow computation."""

    flow: int
    cost: float

    def __iter__(self):
        yield self.flow
        yield self.cost


class MinCostFlow:
    """A directed flow network with integer capacities and float costs.

    Arcs are stored in a flat residual-edge list: edge ``2e`` is the forward
    arc of the e-th added edge and ``2e+1`` its residual reverse arc.
    """

    def __init__(self, num_nodes: int):
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.n = int(num_nodes)
        self.graph: list[list[int]] = [[] for _ in range(self.n)]
        self.to: list[int] = []
        self.cap: list[int] = []
        self.cost: list[float] = []
        self._has_negative = False

    def add_node(self) -> int:
        """Add a node; returns its index."""
        self.graph.append([])
        self.n += 1
        return self.n - 1

    def add_edge(self, u: int, v: int, capacity: int, cost: float) -> int:
        """Add a directed arc u→v; returns the edge id (for flow lookup)."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge ({u}, {v}) out of range [0, {self.n})")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if cost < 0:
            self._has_negative = True
        eid = len(self.to)
        self.graph[u].append(eid)
        self.to.append(v)
        self.cap.append(int(capacity))
        self.cost.append(float(cost))
        self.graph[v].append(eid + 1)
        self.to.append(u)
        self.cap.append(0)
        self.cost.append(-float(cost))
        return eid

    def edge_flow(self, edge_id: int) -> int:
        """Flow currently routed through forward edge ``edge_id``."""
        return self.cap[edge_id ^ 1]

    # -- internals -------------------------------------------------------------
    def _spfa_potentials(self, s: int) -> list[float]:
        """Bellman–Ford (queue-based) shortest distances from s; inf if unreachable."""
        dist = [math.inf] * self.n
        dist[s] = 0.0
        inq = [False] * self.n
        queue = [s]
        inq[s] = True
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            inq[u] = False
            du = dist[u]
            for eid in self.graph[u]:
                if self.cap[eid] <= 0:
                    continue
                v = self.to[eid]
                nd = du + self.cost[eid]
                if nd < dist[v] - 1e-12:
                    dist[v] = nd
                    if not inq[v]:
                        queue.append(v)
                        inq[v] = True
        return dist

    def _dijkstra(self, s: int, t: int, pot: list[float]):
        """Dijkstra on reduced costs; returns (dist, parent-edge) arrays."""
        dist = [math.inf] * self.n
        parent = [-1] * self.n
        dist[s] = 0.0
        heap = [(0.0, s)]
        while heap:
            du, u = heapq.heappop(heap)
            if du > dist[u] + 1e-12:
                continue
            for eid in self.graph[u]:
                if self.cap[eid] <= 0:
                    continue
                v = self.to[eid]
                rc = self.cost[eid] + pot[u] - pot[v]
                # Reduced costs are >= 0 up to float error; clamp tiny negatives.
                if rc < 0:
                    rc = 0.0
                nd = du + rc
                if nd < dist[v] - 1e-12:
                    dist[v] = nd
                    parent[v] = eid
                    heapq.heappush(heap, (nd, v))
        return dist, parent

    # -- solve ------------------------------------------------------------------
    def min_cost_flow(self, s: int, t: int, max_flow: int | None = None) -> FlowResult:
        """Send up to ``max_flow`` units (default: as much as possible) s→t
        at minimum total cost.  Returns the realized flow value and cost."""
        if s == t:
            raise ValueError("source and sink must differ")
        target = math.inf if max_flow is None else int(max_flow)
        if self._has_negative:
            pot = self._spfa_potentials(s)
            # Unreachable nodes keep potential 0 (their arcs are never used).
            pot = [0.0 if math.isinf(p) else p for p in pot]
        else:
            pot = [0.0] * self.n

        flow = 0
        total_cost = 0.0
        while flow < target:
            dist, parent = self._dijkstra(s, t, pot)
            if math.isinf(dist[t]):
                break
            for v in range(self.n):
                if not math.isinf(dist[v]):
                    pot[v] += dist[v]
            # Bottleneck along the augmenting path.
            push = target - flow
            v = t
            while v != s:
                eid = parent[v]
                push = min(push, self.cap[eid])
                v = self.to[eid ^ 1]
            v = t
            while v != s:
                eid = parent[v]
                self.cap[eid] -= push
                self.cap[eid ^ 1] += push
                total_cost += push * self.cost[eid]
                v = self.to[eid ^ 1]
            flow += push
        return FlowResult(flow=flow, cost=total_cost)
