"""Cost functions and coreset-quality evaluation.

Implements the paper's Section 2 definitions: the capacitated ℓr clustering
cost ``cost_t^(r)(Q, Z)`` and its weighted variant ``cost_t^(r)(Q, Z, w)``
(computed exactly via the transportation problem), the uncapacitated cost
``cost^(r)``, and the strong-(η, ε)-coreset quality check used by the
experiments.
"""

from repro.metrics.distances import pairwise_distances, pairwise_power_distances
from repro.metrics.costs import (
    capacitated_cost,
    uncapacitated_cost,
    optimal_uncapacitated_cost_upper_bound,
)
from repro.metrics.balance import (
    capacity_violations,
    gini,
    imbalance_cv,
    max_load_ratio,
)
from repro.metrics.evaluation import (
    coreset_cost_ratio,
    CoresetQualityReport,
    evaluate_coreset_quality,
)

__all__ = [
    "pairwise_distances",
    "pairwise_power_distances",
    "capacitated_cost",
    "uncapacitated_cost",
    "optimal_uncapacitated_cost_upper_bound",
    "coreset_cost_ratio",
    "CoresetQualityReport",
    "evaluate_coreset_quality",
    "capacity_violations",
    "gini",
    "imbalance_cv",
    "max_load_ratio",
]
