"""Balance / load metrics for capacitated clustering solutions.

The whole point of balanced clustering is the *load profile*; these metrics
quantify it for examples, benchmarks, and user reporting:

- :func:`max_load_ratio` — max cluster load over the ideal W/k (1.0 = perfectly
  balanced; the paper's capacity guarantee bounds it by (1+η)·t·k/W);
- :func:`imbalance_cv` — coefficient of variation of the loads;
- :func:`gini` — Gini coefficient of the loads (0 = perfectly equal);
- :func:`capacity_violations` — per-cluster overshoot against a capacity.
"""

from __future__ import annotations

import numpy as np

__all__ = ["max_load_ratio", "imbalance_cv", "gini", "capacity_violations",
           "load_profile"]


def load_profile(labels: np.ndarray, k: int,
                 weights: np.ndarray | None = None) -> np.ndarray:
    """Weighted loads per cluster (the size vector s(π) of Definition 3.6).

    Implemented locally (not via ``repro.assignment``) to keep the metrics
    package import-cycle-free.
    """
    lab = np.asarray(labels)
    w = np.ones(len(lab)) if weights is None else np.asarray(weights, dtype=np.float64)
    return np.bincount(lab, weights=w, minlength=k).astype(np.float64)


def max_load_ratio(labels: np.ndarray, k: int,
                   weights: np.ndarray | None = None) -> float:
    """max_i load_i / (W/k); 1.0 means perfectly balanced."""
    loads = load_profile(labels, k, weights)
    total = loads.sum()
    if total <= 0:
        return 1.0
    return float(loads.max() * k / total)


def imbalance_cv(labels: np.ndarray, k: int,
                 weights: np.ndarray | None = None) -> float:
    """Coefficient of variation (std/mean) of cluster loads."""
    loads = load_profile(labels, k, weights)
    mean = loads.mean()
    if mean <= 0:
        return 0.0
    return float(loads.std() / mean)


def gini(labels: np.ndarray, k: int, weights: np.ndarray | None = None) -> float:
    """Gini coefficient of the load distribution (0 = equal, →1 = one cluster)."""
    loads = np.sort(load_profile(labels, k, weights))
    total = loads.sum()
    if total <= 0:
        return 0.0
    cum = np.cumsum(loads)
    # Standard formula: G = 1 - 2·Σ(cum_i - loads_i/2)/(k·total)
    return float(1.0 - 2.0 * (cum - loads / 2.0).sum() / (len(loads) * total))


def capacity_violations(labels: np.ndarray, k: int, t,
                        weights: np.ndarray | None = None) -> np.ndarray:
    """Per-cluster overshoot max(0, load_i − t_i)."""
    loads = load_profile(labels, k, weights)
    caps = np.asarray(t, dtype=np.float64)
    if caps.ndim == 0:
        caps = np.full(k, float(caps))
    return np.maximum(0.0, loads - caps)
