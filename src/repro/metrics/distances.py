"""Vectorized Euclidean distance kernels.

All clustering costs in the paper are powers of the Euclidean distance
(``dist(x, y) = ‖x − y‖₂``, cost uses ``dist^r``).  These kernels are the
hot path of every experiment, so they follow the HPC guide: a single
BLAS-backed Gram-matrix formulation instead of per-pair Python loops, with
chunking to bound peak memory on large inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pairwise_distances", "pairwise_power_distances", "nearest_center"]

#: Rows per chunk when the full (n, k) matrix would exceed ~256 MB.
_CHUNK_TARGET_ELEMS = 32_000_000


def pairwise_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix of shape (n, k).

    Uses the expansion ‖x−z‖² = ‖x‖² − 2·x·z + ‖z‖² (one GEMM) and clamps
    tiny negative values produced by cancellation before the square root.
    """
    x = np.asarray(points, dtype=np.float64)
    z = np.asarray(centers, dtype=np.float64)
    if x.ndim == 1:
        x = x[None, :]
    if z.ndim == 1:
        z = z[None, :]
    xn = np.einsum("ij,ij->i", x, x)
    zn = np.einsum("ij,ij->i", z, z)
    sq = xn[:, None] - 2.0 * (x @ z.T) + zn[None, :]
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq, out=sq)


def pairwise_power_distances(points: np.ndarray, centers: np.ndarray, r: float) -> np.ndarray:
    """dist^r matrix of shape (n, k), chunked over points for large n."""
    x = np.asarray(points, dtype=np.float64)
    z = np.asarray(centers, dtype=np.float64)
    if x.ndim == 1:
        x = x[None, :]
    if z.ndim == 1:
        z = z[None, :]
    n, k = x.shape[0], z.shape[0]
    if n * max(k, 1) <= _CHUNK_TARGET_ELEMS:
        out = pairwise_distances(x, z)
        return _apply_power(out, r)
    rows = max(1, _CHUNK_TARGET_ELEMS // max(k, 1))
    out = np.empty((n, k), dtype=np.float64)
    for lo in range(0, n, rows):
        hi = min(lo + rows, n)
        out[lo:hi] = _apply_power(pairwise_distances(x[lo:hi], z), r)
    return out


def _apply_power(dist: np.ndarray, r: float) -> np.ndarray:
    if r == 1.0:
        return dist
    if r == 2.0:
        return np.square(dist, out=dist)
    return np.power(dist, r, out=dist)


def nearest_center(points: np.ndarray, centers: np.ndarray, r: float = 2.0):
    """(labels, dist^r to nearest center) — the uncapacitated assignment."""
    D = pairwise_power_distances(points, centers, r)
    labels = D.argmin(axis=1)
    return labels.astype(np.int64), D[np.arange(D.shape[0]), labels]
