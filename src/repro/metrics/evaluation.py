"""Empirical verification of the strong (η, ε)-coreset property.

Section 1.1 defines the property as a two-sided sandwich holding for *every*
capacity ``t ≥ |Q|/k`` and *every* center set Z:

    cost_{(1+η)²t}(Q, Z) / (1+ε)  ≤  cost_{(1+η)t}(Q', Z, w')
                                  ≤  (1+ε) · cost_t(Q, Z).

Experiments can't quantify over all (Z, t), so :func:`evaluate_coreset_quality`
samples an adversarial battery of center sets (planted optima, k-means++
seeds, random, deliberately bad) and capacity grid, computing both sides
exactly via the transportation solver.  This is the measurement behind
experiments E2, E4, E6, and E7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.weighted import Coreset
from repro.metrics.costs import capacitated_cost

__all__ = ["coreset_cost_ratio", "CoresetQualityReport", "evaluate_coreset_quality"]


@dataclass
class QualityEntry:
    """Cost comparison for one (Z, t) pair."""

    t: float
    coreset_cost: float      # cost_{(1+η)t}(Q', Z, w')
    full_cost: float         # cost_t(Q, Z)
    full_cost_relaxed: float  # cost_{(1+η)²t}(Q, Z)

    @property
    def upper_ratio(self) -> float:
        """cost_{(1+η)t}(Q') / cost_t(Q); must be ≤ 1+ε."""
        if self.full_cost == 0:
            return 1.0 if self.coreset_cost == 0 else math.inf
        return self.coreset_cost / self.full_cost

    @property
    def lower_ratio(self) -> float:
        """cost_{(1+η)²t}(Q) / cost_{(1+η)t}(Q'); must be ≤ 1+ε."""
        if self.coreset_cost == 0:
            return 1.0 if self.full_cost_relaxed == 0 else math.inf
        return self.full_cost_relaxed / self.coreset_cost


@dataclass
class CoresetQualityReport:
    """Aggregate of :class:`QualityEntry` over the sampled (Z, t) battery."""

    eps: float
    eta: float
    entries: list = field(default_factory=list)

    @property
    def max_upper_ratio(self) -> float:
        """Worst upper-side ratio across all tested (Z, t) pairs."""
        return max((e.upper_ratio for e in self.entries), default=1.0)

    @property
    def max_lower_ratio(self) -> float:
        """Worst lower-side ratio across all tested (Z, t) pairs."""
        return max((e.lower_ratio for e in self.entries), default=1.0)

    @property
    def worst_ratio(self) -> float:
        """The worst of both sides; the coreset property demands ≤ 1+ε."""
        return max(self.max_upper_ratio, self.max_lower_ratio)

    def holds(self, slack: float = 1.0) -> bool:
        """Whether both sides are within (1+ε)·slack for every tested pair."""
        return self.worst_ratio <= (1.0 + self.eps) * slack


def coreset_cost_ratio(
    points: np.ndarray,
    coreset: Coreset,
    centers: np.ndarray,
    t: float,
    r: float = 2.0,
    eta: float = 0.25,
) -> QualityEntry:
    """Compute one (Z, t) entry of the sandwich, exactly."""
    c_core = capacitated_cost(
        coreset.points, centers, (1.0 + eta) * t, r=r, weights=coreset.weights
    )
    c_full = capacitated_cost(points, centers, t, r=r)
    c_full_relaxed = capacitated_cost(points, centers, (1.0 + eta) ** 2 * t, r=r)
    return QualityEntry(
        t=float(t), coreset_cost=c_core, full_cost=c_full,
        full_cost_relaxed=c_full_relaxed,
    )


def evaluate_coreset_quality(
    points: np.ndarray,
    coreset: Coreset,
    center_sets,
    capacities,
    r: float = 2.0,
    eps: float = 0.25,
    eta: float = 0.25,
) -> CoresetQualityReport:
    """Evaluate the sandwich over a battery of center sets × capacities.

    ``capacities`` entries may be ``math.inf`` (uncapacitated check) or any
    t ≥ n/k; infeasible combinations (cost ∞ on both sides) are recorded with
    ratio 1.
    """
    report = CoresetQualityReport(eps=eps, eta=eta)
    for Z in center_sets:
        for t in capacities:
            entry = coreset_cost_ratio(points, coreset, Z, t, r=r, eta=eta)
            if math.isinf(entry.full_cost) and math.isinf(entry.coreset_cost):
                continue  # both infeasible: vacuous
            report.entries.append(entry)
    return report
