"""The paper's cost functions (Section 2).

- ``cost^(r)(Q, Z[, w])`` — uncapacitated: every point pays dist^r to its
  nearest center (t = ∞ in the paper's notation).
- ``cost_t^(r)(Q, Z[, w])`` — capacitated: the minimum over partitions of Q
  into clusters of (weighted) size ≤ t of the total dist^r to each cluster's
  center; ``∞`` when no feasible partition exists.

For unit weights and integer t, the capacitated cost is computed *exactly*:
the transportation LP is integral (totally unimodular constraint matrix), so
the fractional optimum equals the paper's partition-based definition.  For
weighted point sets (coresets) the partition-based definition is a bin-
packing-hard integer program; following the paper's own Section 3.3 we use
the fractional transportation optimum as the canonical weighted cost — it
lower-bounds the integral cost and matches it up to the ≤ k−1 split points
whose individual weights the coreset construction keeps ≤ η·|Q|/k².
"""

from __future__ import annotations

import math

import numpy as np

from repro.metrics.distances import nearest_center

__all__ = [
    "uncapacitated_cost",
    "capacitated_cost",
    "optimal_uncapacitated_cost_upper_bound",
    "min_capacity",
]


def uncapacitated_cost(
    points: np.ndarray,
    centers: np.ndarray,
    r: float = 2.0,
    weights: np.ndarray | None = None,
) -> float:
    """cost^(r)(Q, Z, w) = Σ_p w(p) · dist^r(p, Z)."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.shape[0] == 0:
        return 0.0
    _, dr = nearest_center(pts, centers, r)
    if weights is not None:
        dr = dr * np.asarray(weights, dtype=np.float64)
    return float(dr.sum())


def min_capacity(total_weight: float, k: int) -> float:
    """The smallest admissible capacity t ≥ |Q|/k (weighted: W/k).

    The strong-coreset definition quantifies over all t ≥ ⌈|Q|/k⌉; below
    that no partition into k clusters of size ≤ t can cover Q.
    """
    return float(total_weight) / float(k)


def capacitated_cost(
    points: np.ndarray,
    centers: np.ndarray,
    t,
    r: float = 2.0,
    weights: np.ndarray | None = None,
    method: str = "auto",
) -> float:
    """cost_t^(r)(Q, Z[, w]): optimal capacitated clustering cost.

    ``t`` may be a scalar (the paper's uniform capacity), a (k,) vector, or
    ``math.inf`` / ``None`` for the uncapacitated cost.
    """
    # Imported here to break the metrics <-> assignment import cycle
    # (assignment.capacitated needs metrics.distances at module scope).
    from repro.assignment.capacitated import capacitated_assignment

    k = np.asarray(centers).shape[0]
    if t is None or (np.isscalar(t) and math.isinf(float(t))):
        return uncapacitated_cost(points, centers, r, weights)
    res = capacitated_assignment(
        points, centers, t, r=r, weights=weights, method=method, integral=False
    )
    return res.fractional_cost


def optimal_uncapacitated_cost_upper_bound(
    points: np.ndarray, k: int, r: float, delta: int
) -> float:
    """The trivial upper bound Δ^d-free bound n · (√d · Δ)^r on OPT^(r).

    Used as the top of the guess-``o`` enumeration range (Algorithm 1's
    predetermined interval [1, Δ^d (√d Δ)^r] is a universe-size bound; with n
    known, n·(√dΔ)^r suffices and keeps the enumeration short, exactly as in
    the proof of Theorem 3.19).
    """
    pts = np.asarray(points)
    n, d = pts.shape
    return float(n) * (math.sqrt(d) * delta) ** r


def capacitated_cost_curve(
    points: np.ndarray,
    centers: np.ndarray,
    capacities,
    r: float = 2.0,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Vector of cost_t^(r) over several capacities t (shared distance matrix)."""
    pts = np.asarray(points, dtype=np.float64)
    out = np.empty(len(capacities))
    for idx, t in enumerate(capacities):
        out[idx] = capacitated_cost(pts, centers, t, r=r, weights=weights)
    return out
