"""Serialization of coresets, parameters, and live streaming state.

A coreset is a *summary* — the whole point is to persist/ship it instead of
the data.  The format is a single ``.npz`` holding the point/weight/part
arrays plus a JSON-encoded header with the construction parameters, so a
loaded coreset can (a) be solved against, (b) extend assignments via
Section 3.3 (it retains part provenance and the accepted guess ``o``), and
(c) be validated against the parameters it was built with.

Beyond finished coresets, this module persists *live* sketch state for the
long-running service: :func:`atomic_write_json` is the crash-safe primitive
(write temp, fsync, rename — a checkpoint is either the complete old file
or the complete new one, never a torn mix), and
:func:`save_streaming_state` / :func:`load_streaming_state` round-trip a
mid-stream :class:`~repro.streaming.streaming_coreset.StreamingCoreset`
bit-identically via the codec in :mod:`repro.service.state`.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

import numpy as np

from repro.core.params import CoresetParams
from repro.core.weighted import Coreset, PartInfo

__all__ = [
    "save_coreset",
    "load_coreset",
    "params_to_dict",
    "params_from_dict",
    "atomic_write_json",
    "read_json",
    "save_streaming_state",
    "load_streaming_state",
]

_FORMAT_VERSION = 1


def params_to_dict(params: CoresetParams) -> dict:
    """JSON-safe dict of a :class:`CoresetParams`."""
    return dataclasses.asdict(params)


def params_from_dict(data: dict) -> CoresetParams:
    """Inverse of :func:`params_to_dict`."""
    return CoresetParams(**data)


def save_coreset(path, coreset: Coreset, params: CoresetParams | None = None) -> None:
    """Write a coreset (and optionally its parameters) to ``path`` (.npz)."""
    path = Path(path)
    header = {
        "format_version": _FORMAT_VERSION,
        "o": coreset.o,
        "delta": coreset.delta,
        "input_size": coreset.input_size,
        "parts": [dataclasses.asdict(p) for p in coreset.parts],
        "params": params_to_dict(params) if params is not None else None,
    }
    np.savez_compressed(
        path,
        points=coreset.points,
        weights=coreset.weights,
        part_ids=coreset.part_ids,
        header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
    )


def load_coreset(path) -> tuple[Coreset, CoresetParams | None]:
    """Read a coreset written by :func:`save_coreset`.

    Returns (coreset, params) where params is ``None`` when it was not saved.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        header = json.loads(bytes(data["header"].tobytes()).decode("utf-8"))
        if header.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported coreset format version {header.get('format_version')}"
            )
        coreset = Coreset(
            points=data["points"],
            weights=data["weights"],
            part_ids=data["part_ids"],
            parts=[PartInfo(**p) for p in header["parts"]],
            o=float(header["o"]),
            delta=int(header["delta"]),
            input_size=int(header["input_size"]),
        )
    params = params_from_dict(header["params"]) if header["params"] else None
    return coreset, params


def atomic_write_json(path, obj) -> None:
    """Write ``obj`` as JSON to ``path`` atomically (temp + fsync + rename).

    ``os.replace`` is atomic on POSIX within one filesystem, so a concurrent
    reader (or a crash mid-write) sees either the previous checkpoint or the
    new one in full.  The temp file lives next to the target to stay on the
    same filesystem.
    """
    path = Path(path)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(obj, fh, separators=(",", ":"))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        # fsync the file's data is not enough: the *rename* lives in the
        # directory, and a crash between replace and the directory entry
        # reaching disk can resurrect the old file name with the new one
        # gone.  Sync the parent directory so the swap itself is durable.
        try:
            dfd = os.open(path.parent, os.O_RDONLY)
            try:
                os.fsync(dfd)
            finally:
                os.close(dfd)
        except OSError:  # pragma: no cover - fs without directory fsync
            pass
    finally:
        if tmp.exists():
            tmp.unlink()


def read_json(path):
    """Read a JSON file written by :func:`atomic_write_json`."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def save_streaming_state(path, sc) -> None:
    """Checkpoint a live :class:`StreamingCoreset` mid-stream (atomic).

    Unlike :func:`save_coreset` this persists the *sketches themselves* —
    hash-seed provenance, per-level Storing contents, pilot sampler, update
    counter — so the restored driver can keep ingesting.
    """
    # Imported lazily: the codec lives with the service subsystem, and core
    # must stay importable without it.
    from repro.service.state import streaming_state_to_dict

    atomic_write_json(path, streaming_state_to_dict(sc))


def load_streaming_state(path):
    """Inverse of :func:`save_streaming_state`; returns a live driver."""
    from repro.service.state import streaming_state_from_dict

    return streaming_state_from_dict(read_json(path))
