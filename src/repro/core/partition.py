"""Algorithm 1 — partitioning via heavy cells (Section 3.1).

Walking the randomly shifted grid hierarchy top-down, a cell C ∈ G_i is
**heavy** when its (estimated) point count reaches the level threshold
T_i(o) = 0.01·o/(√d·g_i)^r *and* all its ancestors are heavy; a cell whose
ancestors are all heavy but which is not itself heavy is **crucial**.  Every
point lies in exactly one crucial cell (walk down its ancestor chain until
the first non-heavy cell; level-L cells terminate the recursion).  The
partition groups the crucial cells of level i by their heavy parent in
G_{i-1}: part Q_{i,j} collects the points of all crucial cells inside the
j-th heavy cell.  Its diameter is at most √d·g_{i-1} = 2√d·g_i, which is the
bound every variance argument of Section 3.2 uses.

Level −1 is the conceptual root: a single cell containing all of [Δ]^d
(Fact A.1 — it is heavy whenever o is not an overestimate of OPT).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.params import CoresetParams
from repro.grid.grids import HierarchicalGrids
from repro.utils.validation import FailedConstruction

__all__ = ["HeavyCellPartition", "Part", "partition_heavy_cells", "ROOT_CELL_KEY"]

#: Sentinel key for the level-(-1) root cell containing all of [Δ]^d.
ROOT_CELL_KEY = -1


@dataclass
class Part:
    """One part Q_{i,j}: the crucial-cell points inside one heavy parent cell."""

    level: int
    parent_cell_key: int
    point_idx: np.ndarray
    size_estimate: float

    @property
    def size(self) -> int:
        """Exact number of points in the part."""
        return int(self.point_idx.shape[0])


@dataclass
class HeavyCellPartition:
    """Output of Algorithm 1.

    Attributes
    ----------
    parts:
        All parts Q_{i,j} with at least the heavy parent recorded (parts are
        created per heavy parent that owns crucial-cell points).
    part_of_point:
        For each input point, the index into ``parts`` of its part, or −1
        when the point fell through without a crucial cell (only possible if
        the root was not heavy, i.e. the guess ``o`` was far too large).
    heavy_counts:
        s_i for i = 0…L — the number of heavy cells in G_{i-1}
        (Algorithm 1 line 13).
    heavy_keys:
        Per level i ∈ {−1 … L−1}, the integer keys of the heavy cells —
        Algorithm 1's actual output (line 15), which the streaming and
        distributed implementations ship around.
    """

    parts: list = field(default_factory=list)
    part_of_point: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    heavy_counts: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    heavy_keys: dict = field(default_factory=dict)

    @property
    def total_heavy(self) -> int:
        """Σᵢ sᵢ — the quantity Algorithm 2 line 5 FAIL-checks."""
        return int(self.heavy_counts.sum())

    def parts_at_level(self, level: int):
        """All parts Q_{level, ·}."""
        return [p for p in self.parts if p.level == level]

    def level_mass(self, level: int) -> int:
        """Σⱼ |Q_{i,j}| (exact; estimates are handled by the caller)."""
        return int(sum(p.size for p in self.parts if p.level == level))


def _group_by_key(keys: np.ndarray):
    """(unique keys, inverse index) for int64 or bigint (object) key arrays."""
    return np.unique(keys, return_inverse=True)


def partition_heavy_cells(
    points: np.ndarray,
    params: CoresetParams,
    o: float,
    grids: HierarchicalGrids,
    counts=None,
    max_heavy: float | None = None,
) -> HeavyCellPartition:
    """Run Algorithm 1 on ``points`` with guess ``o``.

    Parameters
    ----------
    counts:
        A count provider (:class:`~repro.core.estimators.ExactCounts` or
        :class:`~repro.core.estimators.SampledCounts`); defaults to exact.
    max_heavy:
        Early-abort bound on Σᵢ sᵢ: raise :class:`FailedConstruction` as soon
        as the running number of heavy cells exceeds it.  Without the abort,
        a far-too-small guess ``o`` would make every occupied cell heavy and
        waste a full pass before Algorithm 2's FAIL check fires.
    """
    from repro.core.estimators import ExactCounts

    pts = np.asarray(points)
    n = pts.shape[0]
    if counts is None:
        counts = ExactCounts(n)

    part_of_point = np.full(n, -1, dtype=np.int64)
    parts: list[Part] = []
    heavy_counts = np.zeros(params.L + 1, dtype=np.int64)
    heavy_keys: dict[int, list] = {-1: []}

    if n == 0:
        return HeavyCellPartition(parts, part_of_point, heavy_counts, heavy_keys)

    # --- level -1: the root cell (Fact A.1). -------------------------------
    mask_root = counts.mask_cells(-1)
    tau_root = float(mask_root.sum()) / counts.rate_cells(-1)
    if tau_root < params.threshold(-1, o):
        # Root not heavy: no crucial cells exist anywhere; empty partition.
        return HeavyCellPartition(parts, part_of_point, heavy_counts, heavy_keys)
    heavy_keys[-1] = [ROOT_CELL_KEY]

    # active[idx] -> key of the point's heavy ancestor cell one level up.
    active_idx = np.arange(n)
    parent_keys = np.full(n, ROOT_CELL_KEY, dtype=object)
    running_heavy = 1

    for level in range(0, params.L + 1):
        heavy_counts[level] = len(heavy_keys[level - 1])
        if active_idx.size == 0:
            heavy_keys.setdefault(level, [])
            continue

        keys = grids.cell_keys(pts[active_idx], level)
        uniq, inv = _group_by_key(keys)

        if level <= params.L - 1:
            # Estimated size per candidate cell (Algorithm 1 line 7).
            mask = counts.mask_cells(level)[active_idx]
            sampled_counts = np.bincount(inv, weights=mask.astype(np.float64),
                                         minlength=len(uniq))
            tau = sampled_counts / counts.rate_cells(level)
            is_heavy_cell = tau >= params.threshold(level, o)
        else:
            # Level L: every candidate cell is crucial (Algorithm 1 line 12).
            is_heavy_cell = np.zeros(len(uniq), dtype=bool)

        running_heavy += int(is_heavy_cell.sum())
        if max_heavy is not None and running_heavy > max_heavy:
            raise FailedConstruction(
                f"too many heavy cells at level {level} "
                f"(> {max_heavy:.0f}) for guess o={o:g}"
            )
        heavy_keys[level] = [uniq[c] for c in np.flatnonzero(is_heavy_cell)]

        # Crucial cells: candidates that are not heavy.  Group their points
        # by heavy parent cell to form parts Q_{level, j}.
        crucial_pt = ~is_heavy_cell[inv]
        if crucial_pt.any():
            cr_idx = active_idx[crucial_pt]
            cr_parents = parent_keys[cr_idx]
            p_uniq, p_inv = _group_by_key(cr_parents)
            mask_parts = counts.mask_parts(level)[cr_idx]
            rate = counts.rate_parts(level)
            for j, pkey in enumerate(p_uniq):
                members = cr_idx[p_inv == j]
                est = float(mask_parts[p_inv == j].sum()) / rate
                part_of_point[members] = len(parts)
                parts.append(Part(level=level, parent_cell_key=pkey,
                                  point_idx=members, size_estimate=est))

        # Points in heavy cells continue to the next level.
        heavy_pt = is_heavy_cell[inv]
        new_active = active_idx[heavy_pt]
        parent_keys[new_active] = keys[heavy_pt]
        active_idx = new_active

    return HeavyCellPartition(parts, part_of_point, heavy_counts, heavy_keys)
