"""Weighted point sets and the coreset result object.

A strong (η, ε)-coreset (Section 1.1) is a subset Q' ⊆ Q with positive
weights w' such that for every capacity t ≥ |Q|/k and every center set Z,

    cost_{(1+η)²t}(Q, Z) / (1+ε)  ≤  cost_{(1+η)t}(Q', Z, w')  ≤  (1+ε)·cost_t(Q, Z).

:class:`Coreset` additionally carries the per-part provenance needed by
Section 3.3 (extending a coreset assignment to the original point set) and by
the space accounting of experiments E1/E3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.bits import point_bits
from repro.utils.validation import check_weights

__all__ = ["WeightedPointSet", "Coreset", "PartInfo"]


@dataclass
class WeightedPointSet:
    """An (n, d) integer point array with positive float weights."""

    points: np.ndarray
    weights: np.ndarray

    def __post_init__(self):
        self.points = np.asarray(self.points)
        if self.points.ndim != 2:
            raise ValueError(f"points must be (n, d), got {self.points.shape}")
        self.weights = check_weights(self.weights, self.points.shape[0])

    def __len__(self) -> int:
        return self.points.shape[0]

    @property
    def total_weight(self) -> float:
        """Σ w(p) — plays the role of |Q| in weighted cost definitions."""
        return float(self.weights.sum())

    @property
    def d(self) -> int:
        """Dimension of the points."""
        return self.points.shape[1]

    @classmethod
    def unit(cls, points: np.ndarray) -> "WeightedPointSet":
        """Wrap raw points with unit weights."""
        pts = np.asarray(points)
        return cls(points=pts, weights=np.ones(pts.shape[0]))

    def subset(self, mask_or_idx) -> "WeightedPointSet":
        """Row-subset view (mask or index array)."""
        return WeightedPointSet(self.points[mask_or_idx], self.weights[mask_or_idx])


@dataclass(frozen=True)
class PartInfo:
    """Provenance of one retained part Q_{i,j} ∈ PI_i (Algorithm 2 line 9).

    Attributes
    ----------
    level:
        Grid level i of the crucial cells forming the part.
    parent_cell_key:
        Integer key of the heavy cell of G_{i-1} the part lives in.
    size_estimate:
        τ(Q_{i,j}) — the (possibly sampled) size estimate used by the check.
    phi:
        The sampling rate φ_i applied to this part's points.
    """

    level: int
    parent_cell_key: int
    size_estimate: float
    phi: float


@dataclass
class Coreset(WeightedPointSet):
    """The output (Q', w') of Algorithm 2, with provenance.

    ``part_ids[s]`` gives the index into ``parts`` of the part that coreset
    point s was sampled from; ``o`` is the guess of OPT the construction
    succeeded with.
    """

    part_ids: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    parts: list = field(default_factory=list)
    o: float = 0.0
    delta: int = 0
    input_size: int = 0

    def __post_init__(self):
        super().__post_init__()
        self.part_ids = np.asarray(self.part_ids, dtype=np.int64)
        if self.part_ids.shape[0] not in (0, len(self)):
            raise ValueError("part_ids must align with points")

    def storage_bits(self) -> int:
        """Bits to store the coreset itself: points + one float weight each.

        This is the quantity Theorem 1.1 bounds by poly(ε⁻¹η⁻¹kd·logΔ)
        (times the d·logΔ bits per point of footnote 1).
        """
        if self.delta <= 0:
            raise ValueError("coreset has no recorded delta")
        per_point = point_bits(self.d, self.delta) + 64
        return len(self) * per_point

    def levels(self) -> np.ndarray:
        """Grid level of each coreset point's part."""
        lv = np.array([p.level for p in self.parts], dtype=np.int64)
        return lv[self.part_ids] if len(self) else np.empty(0, dtype=np.int64)
