"""Size estimation via sampling (Algorithm 3).

Algorithms 1 and 2 never need exact cell/part sizes — only estimates that
are "good" in the sense of Definitions 3.1 and 3.5 (small additive error
relative to the level threshold, or small relative error).  Algorithm 3
obtains them by counting λ'-wise independently subsampled points:

    τ(C ∩ Q)      = (1/ψ_i)  · Σ_{p ∈ C∩Q}  h_i(p),    ψ_i  ∝ λ'/T_i(o)
    τ(Q_{i,j})    = (1/ψ'_i) · Σ_{p ∈ Q_ij} h'_i(p),   ψ'_i ∝ λ'/(γT_i(o))

This module provides the two interchangeable *count providers* used by the
offline construction: :class:`ExactCounts` (rate 1 — what an offline
implementation can afford, per the remark above Lemma 3.17) and
:class:`SampledCounts` (the Algorithm 3 estimators; also the ones the
streaming implementation in :mod:`repro.streaming` reproduces via sketches).

Both expose the same interface: a per-level Bernoulli *mask* over the input
points plus its sampling ``rate``; callers divide sampled counts by the rate.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import CoresetParams
from repro.grid.grids import HierarchicalGrids
from repro.hashing.kwise import BernoulliHash
from repro.utils.rng import derive_seed

__all__ = ["ExactCounts", "SampledCounts"]


class ExactCounts:
    """Count provider with exact counts (sampling rate 1 at every level)."""

    def __init__(self, num_points: int):
        self._mask = np.ones(int(num_points), dtype=bool)

    def rate_cells(self, level: int) -> float:
        """Sampling rate of the cell-count mask (1: exact counting)."""
        return 1.0

    def mask_cells(self, level: int) -> np.ndarray:
        """All-true mask (every point counted)."""
        return self._mask

    def rate_parts(self, level: int) -> float:
        """Sampling rate of the part-size mask (1: exact counting)."""
        return 1.0

    def mask_parts(self, level: int) -> np.ndarray:
        """All-true mask (every point counted)."""
        return self._mask

    @property
    def randomness_bits(self) -> int:
        """Exact counting stores no randomness."""
        return 0


class SampledCounts:
    """Algorithm 3's estimators, evaluated offline over the point array.

    Masks are λ'-wise independent in the *point identity* (via the injective
    point key), so duplicated runs over the same input reproduce the same
    sample — the property the streaming implementation relies on.
    """

    def __init__(
        self,
        points: np.ndarray,
        params: CoresetParams,
        o: float,
        grids: HierarchicalGrids,
        seed: int = 0,
    ):
        self.params = params
        self.o = float(o)
        self._keys = grids.point_keys(points)
        self._universe_bits = grids.point_codec.universe_bits
        self._seed = int(seed)
        self._cell_masks: dict[int, np.ndarray] = {}
        self._part_masks: dict[int, np.ndarray] = {}
        self._bits = 0

    def _mask_for(self, level: int, rate: float, tag: str) -> np.ndarray:
        h = BernoulliHash(
            phi=rate,
            independence=self.params.lam_est,
            universe_bits=self._universe_bits,
            seed=derive_seed(self._seed, f"alg3-{tag}-{level}"),
        )
        self._bits += h.randomness_bits
        return h.select(list(self._keys))

    def rate_cells(self, level: int) -> float:
        """ψ_i — Algorithm 3's cell-count sampling rate."""
        return self.params.psi(level, self.o)

    def mask_cells(self, level: int) -> np.ndarray:
        """λ'-wise independent Bernoulli(ψ_i) mask over the points."""
        if level not in self._cell_masks:
            self._cell_masks[level] = self._mask_for(level, self.rate_cells(level), "h")
        return self._cell_masks[level]

    def rate_parts(self, level: int) -> float:
        """ψ'_i — Algorithm 3's part-size sampling rate."""
        return self.params.psi_part(level, self.o)

    def mask_parts(self, level: int) -> np.ndarray:
        """λ'-wise independent Bernoulli(ψ'_i) mask over the points."""
        if level not in self._part_masks:
            self._part_masks[level] = self._mask_for(level, self.rate_parts(level), "hprime")
        return self._part_masks[level]

    @property
    def randomness_bits(self) -> int:
        """Bits of hash-function randomness drawn so far."""
        return self._bits
