"""The paper's primary contribution: strong coresets for capacitated k-clustering.

- :mod:`repro.core.params` — all theory constants (γ, ξ, λ, T_i, φ_i, FAIL
  bounds) in one dataclass, with the paper's exact formulas
  (`CoresetParams.from_theory`) and a calibrated practical regime
  (`CoresetParams.practical`).
- :mod:`repro.core.partition` — Algorithm 1 (heavy-cell partitioning).
- :mod:`repro.core.estimators` — Algorithm 3 (size estimation via sampling).
- :mod:`repro.core.halfspace` — curved half-spaces, regions, transferred
  assignments (Definitions 2.2, 3.7, 3.10, 3.11; Lemmas 3.8, 3.12).
- :mod:`repro.core.coreset` — Algorithm 2 and the guess-`o` driver of
  Theorem 3.19.
- :mod:`repro.core.weighted` — the weighted coreset object.
"""

from repro.core.params import CoresetParams
from repro.core.weighted import WeightedPointSet, Coreset
from repro.core.partition import HeavyCellPartition, partition_heavy_cells
from repro.core.coreset import build_coreset, build_coreset_auto
from repro.core.estimators import ExactCounts, SampledCounts

__all__ = [
    "CoresetParams",
    "WeightedPointSet",
    "Coreset",
    "HeavyCellPartition",
    "partition_heavy_cells",
    "build_coreset",
    "build_coreset_auto",
    "ExactCounts",
    "SampledCounts",
]
