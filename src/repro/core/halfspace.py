"""Curved half-spaces, regions, and transferred assignments.

The paper's central structural insight (Section 1.2, Definitions 2.2/3.7):
in an *optimal* capacitated assignment, the clusters of any two centers
``zi, zj`` are separated by the curved hyperplane

    { x : dist^r(x, zi) − dist^r(x, zj) = a }

for some threshold ``a`` (a flat hyperplane when r = 2, a hyperbola branch
for r = 1 — Figures 1 and 3).  Otherwise swapping two inverted points would
lower the cost without changing cluster sizes.  Consequently an optimal
assignment is described by (k choose 2) thresholds instead of k^n choices,
which is what makes the union bound over assignments affordable.

This module implements:

- :func:`separation_keys` — the sort key (dist^r difference, lexicographic
  tie-break) of Definition 2.2;
- :func:`canonicalize_assignment` — the switching procedure of Lemma 3.8 /
  Section 3.3 step 1c, turning any equal-weight assignment into one of equal
  cost and identical size vector that *is* induced by half-spaces;
- :class:`AssignmentHalfspaces` — a concrete set of assignment half-spaces
  with region computation (Definition 3.10), applicable to any point set;
- :func:`transferred_assignment` — Definition 3.11 (reassigning points of
  under-populated regions to the largest region's center).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.distances import pairwise_power_distances

__all__ = [
    "separation_keys",
    "lexicographic_rank",
    "canonicalize_assignment",
    "is_halfspace_consistent",
    "AssignmentHalfspaces",
    "halfspaces_from_assignment",
    "transferred_assignment",
    "region_weights",
]

#: Region index for points not covered by any center's region (R0).
UNASSIGNED = -1


def lexicographic_rank(points: np.ndarray) -> np.ndarray:
    """Rank of each point in the alphabetical (lexicographic) order of §2."""
    pts = np.asarray(points)
    order = np.lexsort(tuple(pts[:, j] for j in range(pts.shape[1] - 1, -1, -1)))
    rank = np.empty(len(pts), dtype=np.int64)
    rank[order] = np.arange(len(pts))
    return rank


def separation_keys(power_dists: np.ndarray, i: int, j: int) -> np.ndarray:
    """f_{ij}(p) = dist^r(p, z_i) − dist^r(p, z_j) for all points at once."""
    return power_dists[:, i] - power_dists[:, j]


def _pair_order(f: np.ndarray, lex: np.ndarray) -> np.ndarray:
    """Indices sorting by (f, lexicographic rank) — Definition 2.2's order."""
    return np.lexsort((lex, f))


def canonicalize_assignment(
    points: np.ndarray,
    labels: np.ndarray,
    centers: np.ndarray,
    r: float = 2.0,
    max_rounds: int | None = None,
) -> np.ndarray:
    """Switch inverted pairs until the assignment is half-space consistent.

    Precondition (Lemma 3.8): all points carry the *same weight* — callers
    with multiple weight classes (e.g. coreset levels) must canonicalize each
    class separately.  The returned assignment has exactly the same size
    vector and no larger cost, and for every pair of centers the two clusters
    are separated in the (f_{ij}, lex) order.

    Termination: each pairwise pass sorts one pair perfectly and never
    increases cost; the total lexicographic potential strictly decreases on
    every change, so the loop converges.  ``max_rounds`` (default 4·k²+4)
    bounds the number of full sweeps as a safety net.
    """
    pts = np.asarray(points, dtype=np.float64)
    lab = np.asarray(labels, dtype=np.int64).copy()
    k = np.asarray(centers).shape[0]
    if len(pts) == 0 or k == 1:
        return lab
    F = pairwise_power_distances(pts, np.asarray(centers, dtype=np.float64), r)
    lex = lexicographic_rank(points)
    rounds = max_rounds if max_rounds is not None else 4 * k * k + 4
    for _ in range(rounds):
        changed = False
        for i in range(k):
            for j in range(i + 1, k):
                sel = np.flatnonzero((lab == i) | (lab == j))
                if sel.size == 0:
                    continue
                ni = int((lab[sel] == i).sum())
                if ni == 0 or ni == sel.size:
                    continue
                f = F[sel, i] - F[sel, j]
                order = _pair_order(f, lex[sel])
                # Cluster i must own the ni smallest keys.
                new_lab = np.full(sel.size, j, dtype=np.int64)
                new_lab[order[:ni]] = i
                if not np.array_equal(new_lab, lab[sel]):
                    lab[sel] = new_lab
                    changed = True
        if not changed:
            return lab
    return lab


def is_halfspace_consistent(
    points: np.ndarray, labels: np.ndarray, centers: np.ndarray, r: float = 2.0
) -> bool:
    """Whether, for every center pair, the clusters are key-separated
    (i.e. the assignment is induced by *some* set of assignment half-spaces)."""
    pts = np.asarray(points, dtype=np.float64)
    lab = np.asarray(labels)
    k = np.asarray(centers).shape[0]
    if len(pts) == 0:
        return True
    F = pairwise_power_distances(pts, np.asarray(centers, dtype=np.float64), r)
    lex = lexicographic_rank(points)
    for i in range(k):
        for j in range(i + 1, k):
            sel_i = lab == i
            sel_j = lab == j
            if not (sel_i.any() and sel_j.any()):
                continue
            f = F[:, i] - F[:, j]
            key_i = list(zip(f[sel_i], lex[sel_i]))
            key_j = list(zip(f[sel_j], lex[sel_j]))
            if max(key_i) > min(key_j):
                return False
    return True


@dataclass
class AssignmentHalfspaces:
    """A concrete set of assignment half-spaces H = {H_{(i,j)}} for centers Z.

    ``H_{(i,j)}`` (i < j) is stored as a strict cut in the (f_{ij}, lex) key
    order: a point is on z_i's side iff its key is ≤ ``(a[i,j], tie[i,j])``.
    Cuts derived from a finite point set place the threshold at the largest
    key of cluster i, so the *same* object can classify arbitrary other
    points (the transfer of Section 3.3 applies coreset-derived half-spaces
    to the original input).
    """

    centers: np.ndarray
    r: float
    #: a[i, j]: the f-threshold for pair (i < j); +inf = everything on i's side.
    a: np.ndarray
    #: tie[i, j]: lexicographic tie-break point (row vector), or NaN row = no tie.
    tie: np.ndarray

    @property
    def k(self) -> int:
        """Number of centers."""
        return self.centers.shape[0]

    def side_matrix(self, points: np.ndarray) -> np.ndarray:
        """Boolean (n, k, k) tensor: S[p, i, j] ⇔ point p ∈ H_{(i,j)} (i≠j)."""
        pts = np.asarray(points, dtype=np.float64)
        n, k = len(pts), self.k
        F = pairwise_power_distances(pts, np.asarray(self.centers, dtype=np.float64), self.r)
        S = np.zeros((n, k, k), dtype=bool)
        for i in range(k):
            for j in range(i + 1, k):
                f = F[:, i] - F[:, j]
                below = f < self.a[i, j]
                at = f == self.a[i, j]
                if at.any() and not np.isnan(self.tie[i, j, 0]):
                    tie_ok = _lex_leq(pts[at], self.tie[i, j])
                    inside = below.copy()
                    inside[np.flatnonzero(at)[tie_ok]] = True
                else:
                    inside = below
                S[:, i, j] = inside
                S[:, j, i] = ~inside
        return S

    def regions(self, points: np.ndarray) -> np.ndarray:
        """Region labels of Definition 3.10: i ∈ [0, k) when the point is in
        every H_{(i,j)}, else ``UNASSIGNED`` (the R0 region)."""
        pts = np.asarray(points)
        n, k = len(pts), self.k
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if k == 1:
            return np.zeros(n, dtype=np.int64)
        S = self.side_matrix(pts)
        # wins[p, i] = for all j != i, S[p, i, j].
        eye = np.eye(k, dtype=bool)
        wins = (S | eye[None, :, :]).all(axis=2)
        out = np.full(n, UNASSIGNED, dtype=np.int64)
        which = wins.argmax(axis=1)
        covered = wins.any(axis=1)
        out[covered] = which[covered]
        return out


def _lex_leq(points: np.ndarray, ref: np.ndarray) -> np.ndarray:
    """points[i] ≤ ref in the lexicographic order of §2 (vectorized)."""
    pts = np.asarray(points, dtype=np.float64)
    ref = np.asarray(ref, dtype=np.float64)
    n, d = pts.shape
    result = np.zeros(n, dtype=bool)
    undecided = np.ones(n, dtype=bool)
    for j in range(d):
        lt = undecided & (pts[:, j] < ref[j])
        gt = undecided & (pts[:, j] > ref[j])
        result[lt] = True
        undecided &= ~(lt | gt)
    result[undecided] = True  # exactly equal
    return result


def halfspaces_from_assignment(
    points: np.ndarray,
    labels: np.ndarray,
    centers: np.ndarray,
    r: float = 2.0,
    canonicalize: bool = True,
) -> AssignmentHalfspaces:
    """Build assignment half-spaces H inducing ``labels`` (Lemma 3.8).

    The assignment is first canonicalized (unless the caller guarantees
    consistency).  Every pair's cut is placed at the largest key of cluster
    i, so points of the *given* set classify exactly as labelled; empty
    clusters yield ±∞ thresholds.
    """
    pts = np.asarray(points, dtype=np.float64)
    ctr = np.asarray(centers, dtype=np.float64)
    k = ctr.shape[0]
    lab = np.asarray(labels, dtype=np.int64)
    if canonicalize:
        lab = canonicalize_assignment(pts, lab, ctr, r)
    d = ctr.shape[1]
    a = np.full((k, k), np.inf)
    tie = np.full((k, k, d), np.nan)
    if len(pts):
        F = pairwise_power_distances(pts, ctr, r)
        lex = lexicographic_rank(pts)
        for i in range(k):
            for j in range(i + 1, k):
                in_i = lab == i
                if not in_i.any():
                    a[i, j] = -np.inf
                    continue
                f = F[:, i] - F[:, j]
                fi = f[in_i]
                cut_f = fi.max()
                # Tie-break at the lexicographically largest cluster-i point
                # attaining the cut value.
                at = in_i & (f == cut_f)
                idx = np.flatnonzero(at)
                best = idx[np.argmax(lex[idx])]
                a[i, j] = cut_f
                tie[i, j] = pts[best]
    return AssignmentHalfspaces(centers=ctr, r=float(r), a=a, tie=tie)


def region_weights(regions: np.ndarray, k: int, weights: np.ndarray | None = None) -> np.ndarray:
    """The vector B = (b₀, b₁, …, b_k) of Definition 3.11: total weight per
    region, with index 0 holding the R0 (unassigned) mass."""
    reg = np.asarray(regions)
    w = np.ones(len(reg)) if weights is None else np.asarray(weights, dtype=np.float64)
    out = np.zeros(k + 1)
    out[0] = w[reg == UNASSIGNED].sum()
    for i in range(k):
        out[i + 1] = w[reg == i].sum()
    return out


def transferred_assignment(
    regions: np.ndarray,
    B: np.ndarray,
    xi: float,
    T: float,
) -> np.ndarray:
    """Definition 3.11: the transferred assignment mapping.

    Points in region R_i with estimated mass ``b_i ≥ 2ξT`` stay with z_i;
    everything else (R0 and under-populated regions) is sent to the center
    of the largest-estimate region i* = argmax_{i∈[k]} b_i.

    ``regions`` uses this module's convention (−1 = R0, i ∈ [0,k) = R_{i+1}
    in paper numbering); ``B`` is the (k+1,) vector from
    :func:`region_weights`.  Returns center labels in [0, k).
    """
    reg = np.asarray(regions)
    B = np.asarray(B, dtype=np.float64)
    k = B.shape[0] - 1
    i_star = int(np.argmax(B[1:]))
    keep = B[1:] >= 2.0 * xi * T
    out = np.full(len(reg), i_star, dtype=np.int64)
    for i in range(k):
        if keep[i]:
            out[reg == i] = i
    return out
