"""All parameters of the coreset construction in one place.

Algorithm 2 (line 3) fixes, for inputs (k, d, Δ, r, ε, η):

    L  = log₂ Δ
    γ  = 2^{−2(r+10)} · min(η/(kL), ε/((k + d^{1.5r})L))
    ξ  = 2^{−2(r+10)} · min(ε, η) / (k (k + d^{1.5r}) L²)
    λ  = 10⁶ · r · k³ · d · L · ⌈log(kdL)⌉
    T_i(o) = 0.01 · o / (√d · g_i)^r                      (Algorithm 1 line 5)
    φ_i = min(1, 2^{2(r+10)} · λ / (ξ³ γ T_i(o)))          (Algorithm 2 line 8)

plus the FAIL bounds (Σsᵢ ≤ 20000(k + d^{1.5r})L, per-level mass
≤ 10⁴(kL + d^{1.5r})·T_i) and Algorithm 3's estimator parameters
(λ' = 100dL, ψ_i = min(1, 10⁶λ'/T_i), ψ'_i = min(1, 10⁶λ'/(γT_i))).

Those constants are calibrated for union bounds, not laptops: with them the
sampling probabilities are 1 for any realistic input and the "coreset" is the
whole point set.  :meth:`CoresetParams.practical` therefore keeps **every
functional form** — γ, ξ still scale as min(η/kL, ε/(k+d^{1.5r})L) etc.,
φ_i still scales as 1/(γ·T_i(o)) so deeper levels sample at lower rates —
but replaces the absolute constants with calibrated ones.  Experiment E9
ablates this choice; the formula-level behaviour (what E1–E8 measure) is
identical in both regimes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.utils.validation import check_delta, check_epsilon_eta, check_k

__all__ = ["CoresetParams"]


@dataclass(frozen=True)
class CoresetParams:
    """Derived parameters of Algorithms 1-4 for one problem instance."""

    k: int
    d: int
    delta: int
    r: float
    eps: float
    eta: float
    #: L = log₂ Δ, the number of grid levels (levels run -1 … L).
    L: int
    #: Heavy-cell threshold coefficient: T_i(o) = threshold_c · o / (√d g_i)^r.
    threshold_c: float
    #: Small-part cutoff γ (parts below γ·T_i(o) are dropped; Lemma 3.4).
    gamma: float
    #: Region-estimation precision ξ (Definition 3.11, Lemma 3.12).
    xi: float
    #: Independence λ of the coreset-sampling hash ĥ_i.
    lam: int
    #: Independence λ' of the size-estimation hashes h_i, h'_i (Algorithm 3).
    lam_est: int
    #: φ_i = min(1, phi_numerator / (γ · T_i(o))).
    phi_numerator: float
    #: FAIL when Σᵢ sᵢ > fail_s_factor · (k + d^{1.5r}) · L.
    fail_s_factor: float
    #: FAIL when τ(∪ⱼ Q_{i,j}) > fail_level_factor · (kL + d^{1.5r}) · T_i(o).
    fail_level_factor: float
    #: ψ_i = min(1, est_psi_numerator·λ'/T_i(o)) and
    #: ψ'_i = min(1, est_psi_numerator·λ'/(γ·T_i(o)))  (Algorithm 3 rates).
    est_psi_numerator: float
    #: Capacity factor for the Storing sketches' cell budget α (Algorithm 4).
    storing_alpha_factor: float = 8.0
    #: Capacity factor for the Storing sketches' per-cell point budget β̂.
    storing_beta_factor: float = 2.0
    #: "theory" (paper constants) or "practical" (calibrated constants).
    mode: str = "practical"

    # ------------------------------------------------------------------ ctor
    @staticmethod
    def _base(k: int, d: int, delta: int, r: float, eps: float, eta: float):
        k = check_k(k)
        delta = check_delta(delta)
        eps, eta = check_epsilon_eta(eps, eta)
        L = int(math.log2(delta))
        if L < 1:
            raise ValueError("delta must be >= 2")
        return k, int(d), delta, float(r), eps, eta, L

    @classmethod
    def from_theory(cls, k: int, d: int, delta: int, r: float = 2.0,
                    eps: float = 0.25, eta: float = 0.25) -> "CoresetParams":
        """The paper's exact constants (Algorithm 2 line 3, Algorithm 3)."""
        k, d, delta, r, eps, eta, L = cls._base(k, d, delta, r, eps, eta)
        dd = d ** (1.5 * r)
        scale = 2.0 ** (-2 * (r + 10))
        gamma = scale * min(eta / (k * L), eps / ((k + dd) * L))
        xi = scale * min(eps, eta) / (k * (k + dd) * L**2)
        lam = int(1e6 * r * k**3 * d * L * math.ceil(math.log(max(k * d * L, 2))))
        # Algorithm 2 line 8: φ_i = min(1, 2^{2(r+10)}·λ/(ξ³·γ·T_i(o)));
        # phi() divides by γ·T_i, so the numerator is 2^{2(r+10)}·λ/ξ³.
        phi_numerator = (2.0 ** (2 * (r + 10))) * lam / (xi**3)
        return cls(
            k=k, d=d, delta=delta, r=r, eps=eps, eta=eta, L=L,
            threshold_c=0.01, gamma=gamma, xi=xi, lam=lam,
            lam_est=100 * d * L,
            phi_numerator=phi_numerator,
            fail_s_factor=20000.0, fail_level_factor=10000.0,
            est_psi_numerator=1e6,
            storing_alpha_factor=1e6, storing_beta_factor=4e6,
            mode="theory",
        )

    @classmethod
    def practical(cls, k: int, d: int, delta: int, r: float = 2.0,
                  eps: float = 0.25, eta: float = 0.25,
                  samples_per_part: float = 32.0,
                  independence: int | None = None) -> "CoresetParams":
        """Same functional forms, calibrated absolute constants.

        ``samples_per_part`` is the expected number of samples drawn from a
        part of the minimum retained size γ·T_i(o) at ε=η=0.25 (larger parts
        get proportionally more, as in the paper: the rate φ_i is flat per
        level, so a part of size m yields m/(γT_i)·samples_per_part samples).
        Tighter ε/η raise the rate quadratically and lower the small-part
        cutoff linearly — the practical analogue of the theory's poly(1/ε)
        coreset-size growth.
        """
        k, d, delta, r, eps, eta, L = cls._base(k, d, delta, r, eps, eta)
        dd = d ** (1.5 * r)
        acc = min(eps, eta)
        # Same functional form as the theory value, but floored: a cutoff far
        # below ~20%·(ε/0.25) of T_i buys no practical accuracy and inflates
        # the per-level sampling rate 1/(γT_i) (E9 ablates this floor).
        gamma = min(0.25, max(0.8 * acc, 4.0 * min(eta / (k * L), eps / ((k + dd) * L))))
        xi = 0.25 * acc / (k * (k + dd) * L**2)
        lam = independence if independence is not None else max(
            8, int(2 * k * math.ceil(math.log2(max(k * d * L, 2))))
        )
        return cls(
            k=k, d=d, delta=delta, r=r, eps=eps, eta=eta, L=L,
            # threshold_c = 2 (paper: 0.01): a cell is heavy when collapsing
            # it would cost ≥ 2o.  A larger coefficient coarsens the crucial
            # level, which raises T_i there and is what gives the sampling
            # rate φ_i = phi_numerator/(γT_i) its compression (E9 ablates).
            threshold_c=2.0, gamma=gamma, xi=xi, lam=int(lam),
            lam_est=max(8, 2 * int(math.ceil(math.log2(max(d * L, 2))))),
            phi_numerator=float(samples_per_part) * (0.25 / acc) ** 2,
            # Calibrated FAIL bounds: the theory constants (20000 / 10000)
            # never fire at laptop scale, which would let the guess driver
            # accept an o far below OPT and destroy compression.  The forms
            # (·(k+d^{1.5r})L and ·(kL+d^{1.5r})T_i) are the paper's.
            fail_s_factor=8.0, fail_level_factor=4.0,
            est_psi_numerator=50.0, mode="practical",
        )

    def with_overrides(self, **kwargs) -> "CoresetParams":
        """Copy with selected fields replaced (for ablation experiments)."""
        return replace(self, **kwargs)

    # --------------------------------------------------------------- formulas
    @property
    def d_pow(self) -> float:
        """d^{1.5r}, the dimension term in every count bound."""
        return self.d ** (1.5 * self.r)

    def grid_side(self, level: int) -> float:
        """g_i = Δ / 2^i."""
        return float(self.delta) / (2.0**level)

    def threshold(self, level: int, o: float) -> float:
        """T_i(o) = threshold_c · o / (√d · g_i)^r (Algorithm 1 line 5)."""
        g = self.grid_side(level)
        return self.threshold_c * o / ((math.sqrt(self.d) * g) ** self.r)

    def phi(self, level: int, o: float) -> float:
        """Sampling probability φ_i (Algorithm 2 line 8)."""
        return min(1.0, self.phi_numerator / (self.gamma * self.threshold(level, o)))

    def psi(self, level: int, o: float) -> float:
        """Cell-count estimation rate ψ_i (Algorithm 3 step 2)."""
        return min(1.0, self.est_psi_numerator * self.lam_est / self.threshold(level, o))

    def psi_part(self, level: int, o: float) -> float:
        """Part-size estimation rate ψ'_i (Algorithm 3 step 4)."""
        return min(
            1.0,
            self.est_psi_numerator * self.lam_est / (self.gamma * self.threshold(level, o)),
        )

    def small_part_cutoff(self, level: int, o: float) -> float:
        """γ·T_i(o): parts below this estimated size are dropped (Alg. 2 line 9)."""
        return self.gamma * self.threshold(level, o)

    def max_heavy_cells(self) -> float:
        """FAIL bound on Σᵢ sᵢ (Algorithm 2 line 5)."""
        return self.fail_s_factor * (self.k + self.d_pow) * self.L

    def max_level_mass(self, level: int, o: float) -> float:
        """FAIL bound on τ(∪ⱼ Q_{i,j}) (Algorithm 2 line 6)."""
        return self.fail_level_factor * (self.k * self.L + self.d_pow) * self.threshold(level, o)

    # ----------------------------------------------------- sketch capacities
    def storing_alpha(self, level: int, o: float, rate: float) -> int:
        """Cell budget α of the Storing sketch for a substream sampled at
        ``rate`` (Algorithm 4 step 3: α_i = 10⁶(k + d^{1.5r}·rate·T_i)L²).

        The practical form drops the worst-case packing constants but keeps
        the structure: a term for center cells (∝ kL) plus a term for the
        sampled light-cell mass (∝ rate·T_i·d-dependence).
        """
        t = self.threshold(level, o)
        if self.mode == "theory":
            val = self.storing_alpha_factor * (self.k + self.d_pow * rate * t) * self.L**2
        else:
            val = self.storing_alpha_factor * (self.k * self.L + self.d_pow + rate * t)
        return max(8, int(math.ceil(val)))

    def storing_beta(self, level: int, o: float) -> int:
        """Per-cell point budget β̂ of the coreset-sample substream
        (Algorithm 4 step 3: β̂_i = 4·10⁶(k + d^{1.5r})L²·φ_i·T_i)."""
        t = self.threshold(level, o)
        phi = self.phi(level, o)
        if self.mode == "theory":
            val = self.storing_beta_factor * (self.k + self.d_pow) * self.L**2 * phi * t
        else:
            val = self.storing_beta_factor * max(self.k, phi * t)
        return max(8, int(math.ceil(val)))

    # ------------------------------------------------------------ guess range
    def guess_upper_bound(self, n: int) -> float:
        """n · (√d · Δ)^r — the top of the o-enumeration (Theorem 3.19)."""
        return float(n) * (math.sqrt(self.d) * self.delta) ** self.r

    def guesses(self, n: int):
        """The geometric guess schedule o ∈ {1, 2, 4, …} (Theorem 3.19)."""
        top = self.guess_upper_bound(max(int(n), 1))
        o = 1.0
        while o <= top:
            yield o
            o *= 2.0
        yield o  # one guess above the bound so OPT itself is always covered
