"""Algorithm 2 — the strong coreset construction — and its guess-o driver.

Given a guess ``o`` of the optimal *uncapacitated* ℓr k-clustering cost,
Algorithm 2:

1. partitions Q into parts Q_{i,j} via heavy cells (Algorithm 1);
2. FAILs if there are too many heavy cells or too much per-level mass
   (both only happen when ``o`` underestimates OPT — Lemma 3.18);
3. drops parts with estimated size below γ·T_i(o) (their removal changes any
   capacitated cost by at most (1+ε) with (1+η) capacity slack — Lemma 3.4);
4. samples each retained part λ-wise independently at rate φ_i and weights
   every sample by 1/φ_i.

Theorem 3.19 turns this into an algorithm without knowledge of OPT by
enumerating o ∈ {1, 2, 4, …, n(√dΔ)^r} and keeping the smallest guess that
does not FAIL; :func:`build_coreset_auto` implements exactly that (with an
optional pilot estimate to skip hopeless guesses — every skipped guess is one
that provably FAILs).
"""

from __future__ import annotations

import numpy as np

from repro.core.estimators import ExactCounts, SampledCounts
from repro.core.params import CoresetParams
from repro.core.partition import partition_heavy_cells
from repro.core.weighted import Coreset, PartInfo
from repro.grid.grids import HierarchicalGrids
from repro.hashing.kwise import BernoulliHash
from repro.utils.rng import derive_seed
from repro.utils.validation import FailedConstruction, check_points

__all__ = ["build_coreset", "build_coreset_auto", "CoresetBuildError"]


class CoresetBuildError(RuntimeError):
    """Raised when no guess in the enumeration yields a coreset."""


def build_coreset(
    points: np.ndarray,
    params: CoresetParams,
    o: float,
    grids: HierarchicalGrids | None = None,
    seed: int = 0,
    use_sampled_counts: bool = False,
) -> Coreset:
    """Run Algorithm 2 for a fixed guess ``o``.

    Raises :class:`FailedConstruction` when the algorithm outputs FAIL.

    Parameters
    ----------
    use_sampled_counts:
        When True, all sizes are estimated via Algorithm 3 sampling (the
        streaming-faithful mode); when False, exact counts are used (what an
        offline implementation can afford).
    """
    pts = check_points(points, params.delta)
    n = pts.shape[0]
    if grids is None:
        grids = HierarchicalGrids(params.delta, params.d, seed=derive_seed(seed, "grids"))
    counts = (
        SampledCounts(pts, params, o, grids, seed=derive_seed(seed, "alg3"))
        if use_sampled_counts
        else ExactCounts(n)
    )

    # --- Algorithm 1 + FAIL check on Σ s_i (Algorithm 2 lines 4-5). --------
    partition = partition_heavy_cells(
        pts, params, o, grids, counts=counts, max_heavy=params.max_heavy_cells()
    )
    if n > 0 and not partition.heavy_keys.get(-1):
        # Fact A.1: the root is heavy for any o ≤ OPT; an un-heavy root means
        # the guess overshot and the whole input would be dropped.
        raise FailedConstruction(f"root cell not heavy (guess o={o:g} too large)")
    if partition.total_heavy > params.max_heavy_cells():
        raise FailedConstruction(
            f"sum of heavy-cell counts {partition.total_heavy} exceeds "
            f"{params.max_heavy_cells():.0f} (o={o:g})"
        )

    # --- per-level mass FAIL check (Algorithm 2 line 6). -------------------
    level_parts: dict[int, list[int]] = {}
    for pid, part in enumerate(partition.parts):
        level_parts.setdefault(part.level, []).append(pid)
    for level, pids in level_parts.items():
        mask = counts.mask_parts(level)
        rate = counts.rate_parts(level)
        level_mass = sum(
            float(mask[partition.parts[pid].point_idx].sum()) for pid in pids
        ) / rate
        if level_mass > params.max_level_mass(level, o):
            raise FailedConstruction(
                f"level {level} mass estimate {level_mass:.1f} exceeds "
                f"{params.max_level_mass(level, o):.1f} (o={o:g})"
            )

    # --- part retention + sampling (Algorithm 2 lines 7-12). ---------------
    point_keys = grids.point_keys(pts)
    sel_points: list[np.ndarray] = []
    sel_weights: list[np.ndarray] = []
    sel_part_ids: list[np.ndarray] = []
    parts_info: list[PartInfo] = []

    for level in sorted(level_parts):
        phi = params.phi(level, o)
        cutoff = params.small_part_cutoff(level, o)
        # Constructing the λ-wise hash draws λ field coefficients; with the
        # paper's λ ≈ 10⁸ that's only affordable because φ = 1 there and the
        # sampler is never consulted — so build it lazily.
        sampler = None
        if phi < 1.0:
            sampler = BernoulliHash(
                phi=phi,
                independence=params.lam,
                universe_bits=grids.point_codec.universe_bits,
                seed=derive_seed(seed, f"alg2-hhat-{level}"),
            )
        for pid in level_parts[level]:
            part = partition.parts[pid]
            if part.size_estimate < cutoff:
                continue  # dropped small part (Lemma 3.4)
            info_id = len(parts_info)
            parts_info.append(
                PartInfo(
                    level=level,
                    parent_cell_key=int(part.parent_cell_key)
                    if not isinstance(part.parent_cell_key, np.ndarray)
                    else int(part.parent_cell_key),
                    size_estimate=part.size_estimate,
                    phi=phi,
                )
            )
            idx = part.point_idx
            if phi >= 1.0:
                chosen = idx
            else:
                mask = sampler.select([int(k) for k in point_keys[idx]])
                chosen = idx[mask]
            if chosen.size == 0:
                continue
            sel_points.append(pts[chosen])
            sel_weights.append(np.full(chosen.size, 1.0 / phi))
            sel_part_ids.append(np.full(chosen.size, info_id, dtype=np.int64))

    if sel_points:
        q_points = np.concatenate(sel_points, axis=0)
        q_weights = np.concatenate(sel_weights)
        q_part_ids = np.concatenate(sel_part_ids)
    else:
        q_points = np.empty((0, pts.shape[1]), dtype=np.int64)
        q_weights = np.empty(0)
        q_part_ids = np.empty(0, dtype=np.int64)

    return Coreset(
        points=q_points,
        weights=q_weights,
        part_ids=q_part_ids,
        parts=parts_info,
        o=float(o),
        delta=params.delta,
        input_size=n,
    )


def build_coreset_auto(
    points: np.ndarray,
    params: CoresetParams,
    grids: HierarchicalGrids | None = None,
    seed: int = 0,
    use_sampled_counts: bool = False,
    pilot_cost: "float | str | None" = "auto",
) -> Coreset:
    """Theorem 3.19: enumerate guesses o and return a non-FAIL coreset.

    With ``pilot_cost=None``, this is exactly the theorem's rule: enumerate
    o ∈ {1, 2, 4, …} upward and keep the *smallest* non-FAIL guess (a guess
    ≤ OPT, which is the correctness requirement of Lemma 3.17).  The default
    ``"auto"`` first computes a k-means++ pilot (an upper bound on OPT) and
    descends from it — same guarantee, far better compression, matching the
    streaming algorithm's use of a parallel OPT estimate.

    With ``pilot_cost`` — an upper bound on OPT, e.g. the uncapacitated cost
    of a k-means++ solution — the search instead descends from
    ``pilot_cost`` by halving until a guess succeeds.  This mirrors the
    streaming variant (Theorem 4.5), which uses a parallel 2-approximation
    of OPT to pick o ∈ [OPT/10, OPT]: a larger (but still ≤ OPT) accepted
    guess yields coarser parts and hence a *smaller* coreset for the same
    guarantee.
    """
    pts = check_points(points, params.delta)
    n = pts.shape[0]
    if n == 0:
        return Coreset(
            points=np.empty((0, pts.shape[1]), dtype=np.int64),
            weights=np.empty(0),
            o=1.0,
            delta=params.delta,
            input_size=0,
        )
    if grids is None:
        grids = HierarchicalGrids(params.delta, params.d, seed=derive_seed(seed, "grids"))

    if isinstance(pilot_cost, str):
        if pilot_cost != "auto":
            raise ValueError(f"pilot_cost must be a number, None, or 'auto', got {pilot_cost!r}")
        from repro.solvers.pilot import estimate_opt_cost

        pilot_cost = estimate_opt_cost(pts, params.k, r=params.r,
                                       seed=derive_seed(seed, "pilot"))

    last_reason = "no guesses attempted"
    if pilot_cost is not None and pilot_cost > 0:
        # The pilot is an upper bound on OPT (cost of some feasible solution,
        # typically within a small factor of OPT); Lemma 3.17 needs o ≤ OPT,
        # so descend from pilot/8 — the analogue of the streaming rule
        # o ∈ [OPT/10, OPT] chosen from a 2-approximation.  Guesses below 1
        # are pointless (costs are integers-ish in [Δ]^d), so clamp.
        o = max(1.0, float(pilot_cost) / 8.0)
        while o >= 0.5:
            try:
                return build_coreset(
                    pts, params, o, grids=grids, seed=seed,
                    use_sampled_counts=use_sampled_counts,
                )
            except FailedConstruction as exc:
                last_reason = exc.reason
                o /= 2.0
    else:
        for o in params.guesses(n):
            try:
                return build_coreset(
                    pts, params, o, grids=grids, seed=seed,
                    use_sampled_counts=use_sampled_counts,
                )
            except FailedConstruction as exc:
                last_reason = exc.reason
    raise CoresetBuildError(
        f"every guess o failed; last failure: {last_reason}"
    )
