"""Dimension reduction (the [MMR19] remark of Section 1.1).

When d ≫ k/ε, a Johnson-Lindenstrauss projection to poly(k/ε) dimensions
preserves k-means/k-median costs to 1±ε, after which the coreset only needs
d·poly(k log Δ) space.  We provide the projection and the glue that lands
the projected points back on an integer grid.
"""

from repro.dimred.jl import jl_transform, jl_then_discretize

__all__ = ["jl_transform", "jl_then_discretize"]
