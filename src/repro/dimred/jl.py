"""Johnson-Lindenstrauss projection for clustering (the [MMR19] hook).

[MMR19] showed a JL map to O(log(k/ε)/ε²) dimensions preserves the k-means
and k-median cost of *every partition* to 1±ε — which composes with the
capacitated coreset: project first, build the coreset in the low dimension,
and the space drops from poly(kd logΔ) to d·poly(k logΔ) + poly(k/ε logΔ).
"""

from __future__ import annotations

import math

import numpy as np

from repro.grid.discretize import Discretization, discretize
from repro.utils.rng import as_rng

__all__ = ["jl_dimension", "jl_transform", "jl_then_discretize"]


def jl_dimension(k: int, eps: float, c: float = 8.0) -> int:
    """The target dimension O(log(k/ε)/ε²) suggested by [MMR19]."""
    if not (0 < eps < 1):
        raise ValueError("eps must be in (0,1)")
    return max(2, int(math.ceil(c * math.log(max(k, 2) / eps) / eps**2)))


def jl_transform(points: np.ndarray, target_dim: int, seed=0) -> np.ndarray:
    """Project rows onto ``target_dim`` dimensions with a scaled Gaussian map.

    The projection matrix has i.i.d. N(0, 1/target_dim) entries, so expected
    squared norms are preserved.
    """
    pts = np.asarray(points, dtype=np.float64)
    d = pts.shape[1]
    rng = as_rng(seed)
    G = rng.normal(0.0, 1.0 / math.sqrt(target_dim), size=(d, int(target_dim)))
    return pts @ G


def jl_then_discretize(
    points: np.ndarray, target_dim: int, delta: int, seed=0
) -> tuple[np.ndarray, Discretization]:
    """Project and re-discretize onto [Δ]^target_dim (the paper's model).

    Returns the integer grid points and the transform for mapping centers
    found in the projected space back (approximately) to projected reals.
    """
    return discretize(jl_transform(points, target_dim, seed=seed), delta)
