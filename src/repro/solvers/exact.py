"""Exact capacitated k-clustering for tiny instances (test ground truth).

Enumerates every size-k subset of a candidate center pool (default: the
points themselves — for ℓ1/ℓ2 on tiny instances medoid optima are close
enough for *relative* comparisons, and the paper's model restricts centers
to the finite grid anyway; pass ``candidates=[Δ]^d grid`` for true optima on
very small Δ) and solves the optimal capacitated assignment for each by
min-cost flow.  Exponential — use only for n ≲ 20, k ≤ 3.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from repro.assignment.capacitated import capacitated_assignment

__all__ = ["exact_capacitated_kclustering", "ExactSolution"]


@dataclass
class ExactSolution:
    """The brute-force optimum (centers, labels, cost)."""

    centers: np.ndarray
    labels: np.ndarray
    cost: float


def exact_capacitated_kclustering(
    points: np.ndarray,
    k: int,
    t: float,
    r: float = 2.0,
    weights: np.ndarray | None = None,
    candidates: np.ndarray | None = None,
) -> ExactSolution:
    """Brute-force optimum over all k-subsets of the candidate centers."""
    pts = np.asarray(points, dtype=np.float64)
    cand = pts if candidates is None else np.asarray(candidates, dtype=np.float64)
    cand = np.unique(cand, axis=0)
    m = cand.shape[0]
    if m < k:
        raise ValueError(f"need at least k={k} distinct candidates, got {m}")
    best_cost = math.inf
    best = None
    for combo in itertools.combinations(range(m), k):
        Z = cand[list(combo)]
        res = capacitated_assignment(pts, Z, t, r=r, weights=weights, integral=False)
        if res.fractional_cost < best_cost:
            best_cost = res.fractional_cost
            best = (Z, res.labels)
    if best is None:
        raise ValueError("no feasible center set (capacity too small?)")
    return ExactSolution(centers=best[0], labels=best[1], cost=best_cost)
