"""Weighted k-means++ seeding (Arthur & Vassilvitskii 2007), from scratch.

Seeds are drawn with probability proportional to w(p)·dist^r(p, chosen);
for r = 2 this is the classical D² sampling whose expected cost is an
O(log k)-approximation of the k-means optimum — good enough both as a
solver initialization and as the pilot OPT estimate for the guess-o driver.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.distances import pairwise_power_distances
from repro.utils.rng import as_rng

__all__ = ["kmeans_plusplus"]


def kmeans_plusplus(
    points: np.ndarray,
    k: int,
    r: float = 2.0,
    weights: np.ndarray | None = None,
    seed=0,
) -> np.ndarray:
    """Pick k seed centers from ``points`` by weighted D^r sampling.

    Returns the selected rows (k, d); if fewer than k distinct points exist,
    duplicates fill the remainder.
    """
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    if n == 0:
        raise ValueError("cannot seed from an empty point set")
    rng = as_rng(seed)
    w = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)
    probs = w / w.sum()
    first = rng.choice(n, p=probs)
    chosen = [int(first)]
    best = pairwise_power_distances(pts, pts[first][None, :], r)[:, 0]
    while len(chosen) < k:
        mass = w * best
        total = mass.sum()
        if total <= 0:
            # All points coincide with chosen centers; fill by weight.
            chosen.append(int(rng.choice(n, p=probs)))
        else:
            nxt = int(rng.choice(n, p=mass / total))
            chosen.append(nxt)
            cand = pairwise_power_distances(pts, pts[nxt][None, :], r)[:, 0]
            np.minimum(best, cand, out=best)
    return pts[np.asarray(chosen)]
