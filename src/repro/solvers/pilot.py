"""Pilot estimate of the optimal uncapacitated clustering cost.

The guess-``o`` drivers want a value within a small factor of
OPT^(r)_{k-clus} (the *standard* clustering optimum — that is what
Algorithm 1's thresholds are defined against).  A k-means++ seeding followed
by a couple of Lloyd steps on a weight-proportional subsample gives an upper
bound within an O(log k) factor in expectation, which is all the descent
rule o = pilot/8, /16, … needs.

This plays the role of the [HSYZ18] streaming 2-approximation the paper runs
in parallel (see DESIGN.md substitution table).
"""

from __future__ import annotations

import numpy as np

from repro.metrics.costs import uncapacitated_cost
from repro.solvers.lloyd import lloyd
from repro.utils.rng import as_rng

__all__ = ["estimate_opt_cost"]


def estimate_opt_cost(
    points: np.ndarray,
    k: int,
    r: float = 2.0,
    weights: np.ndarray | None = None,
    seed=0,
    sample_size: int = 4096,
) -> float:
    """Upper-bound estimate of OPT^(r) for the uncapacitated problem.

    Centers are fit on a subsample (≤ ``sample_size`` points, drawn with
    probability ∝ weight) but the returned cost is evaluated on the *full*
    weighted set, so the estimate is a genuine upper bound on OPT.
    """
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    if n == 0:
        return 0.0
    rng = as_rng(seed)
    w = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)
    if n > sample_size:
        idx = rng.choice(n, size=sample_size, replace=False, p=w / w.sum())
        fit_pts, fit_w = pts[idx], None  # proportional sampling ⇒ unit weights
    else:
        fit_pts, fit_w = pts, w
    res = lloyd(fit_pts, k, r=r, weights=fit_w, seed=rng, max_iter=8)
    return uncapacitated_cost(pts, res.centers, r=r, weights=w)
