"""Weighted Lloyd-style refinement for uncapacitated k-means / k-median.

Center updates minimize Σ w·dist^r within each cluster:

- r = 2 → the weighted mean (classical Lloyd);
- r = 1 → the weighted geometric median via Weiszfeld iterations;
- other r → gradient descent on the smooth power cost (rarely needed; the
  paper's headline applications are r ∈ {1, 2}).

Centers may optionally be snapped to the integer grid [Δ]^d at the end — the
paper's model requires output centers in [Δ]^d, and snapping changes the
cost by at most an O(√d/dist) relative factor, absorbed by discretization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.distances import nearest_center
from repro.solvers.kmeanspp import kmeans_plusplus
from repro.utils.rng import as_rng

__all__ = ["lloyd", "KMeansResult", "weighted_center"]


@dataclass
class KMeansResult:
    """Uncapacitated clustering solution."""

    centers: np.ndarray
    labels: np.ndarray
    cost: float
    iterations: int


def weighted_center(points: np.ndarray, weights: np.ndarray, r: float) -> np.ndarray:
    """argmin_c Σ w·dist^r(p, c) for one cluster."""
    pts = np.asarray(points, dtype=np.float64)
    w = np.asarray(weights, dtype=np.float64)
    if pts.shape[0] == 0:
        raise ValueError("empty cluster")
    if r == 2.0:
        return (pts * w[:, None]).sum(axis=0) / w.sum()
    if r == 1.0:
        return _weiszfeld(pts, w)
    # General r: a few damped Newton-free gradient steps from the mean.
    c = (pts * w[:, None]).sum(axis=0) / w.sum()
    for _ in range(50):
        diff = pts - c
        dist = np.linalg.norm(diff, axis=1)
        dist = np.maximum(dist, 1e-12)
        grad = -(w * r * dist ** (r - 2))[:, None] * diff
        g = grad.sum(axis=0)
        step = 1.0 / (w.sum() * r * max(dist.max() ** (r - 2), 1e-12))
        new_c = c - step * g
        if np.linalg.norm(new_c - c) < 1e-9 * (1 + np.linalg.norm(c)):
            break
        c = new_c
    return c


def _weiszfeld(pts: np.ndarray, w: np.ndarray, iters: int = 64) -> np.ndarray:
    """Weighted geometric median (Weiszfeld with perturbation at vertices)."""
    c = (pts * w[:, None]).sum(axis=0) / w.sum()
    for _ in range(iters):
        dist = np.linalg.norm(pts - c, axis=1)
        at = dist < 1e-12
        if at.any():
            dist = np.maximum(dist, 1e-12)
        inv = w / dist
        new_c = (pts * inv[:, None]).sum(axis=0) / inv.sum()
        if np.linalg.norm(new_c - c) < 1e-10 * (1 + np.linalg.norm(c)):
            return new_c
        c = new_c
    return c


def lloyd(
    points: np.ndarray,
    k: int,
    r: float = 2.0,
    weights: np.ndarray | None = None,
    seed=0,
    max_iter: int = 64,
    init_centers: np.ndarray | None = None,
    snap_delta: int | None = None,
) -> KMeansResult:
    """k-means++-seeded weighted Lloyd for the uncapacitated ℓr problem."""
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    if n == 0:
        raise ValueError("empty input")
    w = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)
    rng = as_rng(seed)
    centers = (
        np.asarray(init_centers, dtype=np.float64)
        if init_centers is not None
        else kmeans_plusplus(pts, k, r=r, weights=w, seed=rng)
    )
    labels, dr = nearest_center(pts, centers, r)
    cost = float((dr * w).sum())
    it = 0
    for it in range(1, max_iter + 1):
        new_centers = centers.copy()
        for c in range(k):
            sel = labels == c
            if sel.any():
                new_centers[c] = weighted_center(pts[sel], w[sel], r)
            else:
                # Re-seed an empty cluster at the currently worst point.
                new_centers[c] = pts[int(np.argmax(dr * w))]
        new_labels, dr = nearest_center(pts, new_centers, r)
        new_cost = float((dr * w).sum())
        converged = new_cost >= cost * (1 - 1e-9)
        centers, labels, cost = new_centers, new_labels, new_cost
        if converged:
            break
    if snap_delta is not None:
        centers = np.clip(np.rint(centers), 1, snap_delta).astype(np.int64)
        labels, dr = nearest_center(pts, centers, r)
        cost = float((dr * w).sum())
    return KMeansResult(centers=centers, labels=labels, cost=cost, iterations=it)
