"""Clustering solvers — the (α, β)-approximation black boxes.

The coreset theorems are black-box in the solver: *any* (α, β)-approximation
for weighted capacitated k-clustering run on the coreset yields a
((1+ε)α, (1+η)β)-approximation on the input (Fact 2.3).  The paper cites
[DL16] (capacitated k-median LP rounding) and [XHX+19] (FPT capacitated
k-means), neither of which has usable open code; the practical stand-in
implemented here is:

- :func:`kmeans_plusplus` seeding (weighted) and weighted Lloyd refinement
  for the *uncapacitated* problem (also the pilot OPT estimator);
- :class:`CapacitatedKClustering`: k-means++ seeding + alternating
  (min-cost-flow assignment ↔ center update) descent under capacities;
- :func:`local_search_swap`: swap-based local search over medoid candidates
  (a classical O(1)-approximation scheme for k-median/k-means);
- :mod:`repro.solvers.exact`: brute force for tiny instances, the ground
  truth for the test suite.
"""

from repro.solvers.kmeanspp import kmeans_plusplus
from repro.solvers.lloyd import lloyd, KMeansResult
from repro.solvers.capacitated_lloyd import CapacitatedKClustering, CapacitatedSolution
from repro.solvers.local_search import local_search_swap
from repro.solvers.pilot import estimate_opt_cost
from repro.solvers.exact import exact_capacitated_kclustering
from repro.solvers.kcenter import (
    capacitated_kcenter,
    capacitated_kcenter_assignment,
    gonzalez_seeding,
)
from repro.solvers.lp_rounding import lp_rounding_capacitated

__all__ = [
    "kmeans_plusplus",
    "lloyd",
    "KMeansResult",
    "CapacitatedKClustering",
    "CapacitatedSolution",
    "local_search_swap",
    "estimate_opt_cost",
    "exact_capacitated_kclustering",
    "capacitated_kcenter",
    "capacitated_kcenter_assignment",
    "gonzalez_seeding",
    "lp_rounding_capacitated",
]
