"""Capacitated k-clustering by alternating flow assignment and center updates.

The (α, β)-approximation black box the coreset theorems assume.  The descent
alternates:

1. **assignment step** — optimal capacitated assignment of (weighted) points
   to the current centers (transportation problem; ``greedy`` method inside
   the loop for speed, exact LP/flow at the final step);
2. **center step** — each cluster's center moves to its cost-minimizing
   point (mean / geometric median), optionally snapped to [Δ]^d.

Cost is monotone under the exact assignment method; with the greedy inner
assignment we keep the best iterate seen.  Multiple k-means++ restarts guard
against bad seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.assignment.capacitated import AssignmentResult, capacitated_assignment
from repro.solvers.kmeanspp import kmeans_plusplus
from repro.solvers.lloyd import weighted_center
from repro.utils.rng import as_rng, derive_seed

__all__ = ["CapacitatedKClustering", "CapacitatedSolution"]


@dataclass
class CapacitatedSolution:
    """A capacitated clustering solution."""

    centers: np.ndarray
    labels: np.ndarray
    cost: float
    sizes: np.ndarray
    capacity: float
    iterations: int

    def max_violation(self) -> float:
        """Multiplicative capacity violation max load / t (≥ 1)."""
        if self.sizes.size == 0:
            return 1.0
        return float(max(1.0, (self.sizes / self.capacity).max()))


class CapacitatedKClustering:
    """Alternating capacitated ℓr k-clustering solver.

    Parameters
    ----------
    k, capacity:
        Number of clusters and the uniform capacity t (must satisfy
        k·t ≥ total weight).
    r:
        ℓr exponent (1 = k-median, 2 = k-means).
    restarts, max_iter:
        k-means++ restarts and inner alternation iterations.
    snap_delta:
        When set, centers are snapped to the integer grid [Δ]^d (the paper's
        output model).
    assignment_method:
        Inner-loop assignment ("greedy" default); the returned solution is
        always re-assigned with the exact method.
    """

    def __init__(
        self,
        k: int,
        capacity: float,
        r: float = 2.0,
        restarts: int = 3,
        max_iter: int = 25,
        snap_delta: int | None = None,
        assignment_method: str = "greedy",
        seed: int = 0,
    ):
        self.k = int(k)
        self.capacity = float(capacity)
        self.r = float(r)
        self.restarts = int(restarts)
        self.max_iter = int(max_iter)
        self.snap_delta = snap_delta
        self.assignment_method = assignment_method
        self.seed = int(seed)

    def fit(self, points: np.ndarray, weights: np.ndarray | None = None) -> CapacitatedSolution:
        """Solve on a (weighted) point set; returns the best restart."""
        pts = np.asarray(points, dtype=np.float64)
        n = pts.shape[0]
        if n == 0:
            raise ValueError("empty input")
        w = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)
        if w.sum() > self.k * self.capacity * (1 + 1e-9):
            raise ValueError(
                f"infeasible: total weight {w.sum():.1f} exceeds k*t = "
                f"{self.k * self.capacity:.1f}"
            )
        best: CapacitatedSolution | None = None
        for rep in range(self.restarts):
            sol = self._fit_once(pts, w, derive_seed(self.seed, f"restart-{rep}"))
            if best is None or sol.cost < best.cost:
                best = sol
        assert best is not None
        return best

    # ------------------------------------------------------------------ inner
    def _fit_once(self, pts: np.ndarray, w: np.ndarray, seed: int) -> CapacitatedSolution:
        rng = as_rng(seed)
        centers = kmeans_plusplus(pts, self.k, r=self.r, weights=w, seed=rng)
        best_cost = math.inf
        best_centers = centers
        it = 0
        for it in range(1, self.max_iter + 1):
            res = capacitated_assignment(
                pts, centers, self.capacity, r=self.r, weights=w,
                method=self.assignment_method,
            )
            if res.labels is None:
                break
            if res.cost < best_cost * (1 - 1e-9):
                best_cost = res.cost
                best_centers = centers
            else:
                break
            centers = self._update_centers(pts, w, res, centers)
        # Final exact assignment against the best centers found.
        final = capacitated_assignment(
            pts, best_centers, self.capacity, r=self.r, weights=w, method="auto",
        )
        if final.labels is None:
            raise RuntimeError("final assignment infeasible (should not happen)")
        return CapacitatedSolution(
            centers=best_centers,
            labels=final.labels,
            cost=final.cost,
            sizes=final.sizes,
            capacity=self.capacity,
            iterations=it,
        )

    def _update_centers(
        self,
        pts: np.ndarray,
        w: np.ndarray,
        res: AssignmentResult,
        centers: np.ndarray,
    ) -> np.ndarray:
        new_centers = centers.copy()
        for c in range(self.k):
            sel = res.labels == c
            if sel.any():
                new_centers[c] = weighted_center(pts[sel], w[sel], self.r)
        if self.snap_delta is not None:
            new_centers = np.clip(np.rint(new_centers), 1, self.snap_delta)
        return new_centers
