"""Capacitated k-center (the r = ∞ member of the paper's problem class).

Section 1: "capacitated k-clustering in ℓr … extends capacitated k-median
(r=1), capacitated k-means (r=2) and capacitated k-center (r=∞)."  The
coreset theorems are stated for constant r, but the assignment machinery
extends verbatim to the bottleneck objective, and a balanced-clustering
library is expected to ship it:

- :func:`capacitated_kcenter_assignment` — given centers and capacity t,
  minimize the *maximum* point-center distance: binary search over the
  O(n·k) candidate radii, checking feasibility with the from-scratch Dinic
  max-flow of :class:`~repro.assignment.maxflow.MaxFlow`;
- :func:`gonzalez_seeding` — the classical farthest-point 2-approximation
  for uncapacitated k-center, used as the center black box;
- :func:`capacitated_kcenter` — seeding + assignment, the end-to-end solver.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.assignment.maxflow import MaxFlow
from repro.metrics.distances import pairwise_distances
from repro.utils.rng import as_rng

__all__ = [
    "gonzalez_seeding",
    "capacitated_kcenter_assignment",
    "capacitated_kcenter",
    "KCenterSolution",
]


@dataclass
class KCenterSolution:
    """A capacitated k-center solution (bottleneck objective)."""

    centers: np.ndarray
    labels: np.ndarray
    radius: float
    sizes: np.ndarray


def gonzalez_seeding(points: np.ndarray, k: int, seed=0) -> np.ndarray:
    """Farthest-point traversal: a 2-approximation for uncapacitated k-center."""
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    if n == 0:
        raise ValueError("empty input")
    rng = as_rng(seed)
    first = int(rng.integers(n))
    chosen = [first]
    dist = pairwise_distances(pts, pts[first][None, :])[:, 0]
    while len(chosen) < k:
        nxt = int(dist.argmax())
        chosen.append(nxt)
        np.minimum(dist, pairwise_distances(pts, pts[nxt][None, :])[:, 0],
                   out=dist)
    return pts[chosen]


def _feasible_at_radius(D: np.ndarray, radius: float, supplies: np.ndarray,
                        caps: np.ndarray) -> np.ndarray | None:
    """Integral assignment with dist ≤ radius and loads ≤ caps, or None.

    Feasibility is a bipartite max-flow (Dinic): point i connects to center
    j iff D[i, j] ≤ radius.
    """
    n, k = D.shape
    net = MaxFlow(n + k + 2)
    s, t = n + k, n + k + 1
    edge_ids = {}
    for i in range(n):
        net.add_edge(s, i, int(supplies[i]))
    for j in range(k):
        net.add_edge(n + j, t, int(caps[j]))
    for i in range(n):
        row = D[i]
        for j in range(k):
            if row[j] <= radius + 1e-12:
                edge_ids[(i, j)] = net.add_edge(i, n + j, int(supplies[i]))
    if net.max_flow(s, t) < supplies.sum():
        return None
    labels = np.full(n, -1, dtype=np.int64)
    for (i, j), eid in edge_ids.items():
        if net.edge_flow(eid) > 0:
            labels[i] = j
    return labels


def capacitated_kcenter_assignment(
    points: np.ndarray,
    centers: np.ndarray,
    t,
    weights: np.ndarray | None = None,
) -> KCenterSolution:
    """Minimize the bottleneck radius subject to loads ≤ t.

    Integer (or unit) weights only — the bottleneck objective with divisible
    weights reduces to the same flow after scaling.  Binary-searches the
    sorted set of point-center distances; O(log(nk)) flow feasibility checks.
    """
    pts = np.asarray(points, dtype=np.float64)
    ctr = np.asarray(centers, dtype=np.float64)
    n, k = pts.shape[0], ctr.shape[0]
    w = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)
    if not np.allclose(w, np.round(w)):
        raise ValueError("capacitated k-center requires integer weights")
    supplies = np.round(w).astype(np.int64)
    caps = np.asarray(t, dtype=np.float64)
    if caps.ndim == 0:
        caps = np.full(k, float(caps))
    icaps = np.floor(caps + 1e-9).astype(np.int64)
    if supplies.sum() > icaps.sum():
        return KCenterSolution(centers=ctr, labels=None, radius=math.inf,
                               sizes=None)

    D = pairwise_distances(pts, ctr)
    radii = np.unique(D)
    lo, hi = 0, len(radii) - 1
    best_labels = _feasible_at_radius(D, radii[hi], supplies, icaps)
    if best_labels is None:
        return KCenterSolution(centers=ctr, labels=None, radius=math.inf,
                               sizes=None)
    best_radius = float(radii[hi])
    while lo <= hi:
        mid = (lo + hi) // 2
        labels = _feasible_at_radius(D, radii[mid], supplies, icaps)
        if labels is not None:
            best_labels, best_radius = labels, float(radii[mid])
            hi = mid - 1
        else:
            lo = mid + 1
    sizes = np.bincount(best_labels, weights=w, minlength=k)
    return KCenterSolution(centers=ctr, labels=best_labels,
                           radius=best_radius, sizes=sizes)


def capacitated_kcenter(points: np.ndarray, k: int, t, seed=0,
                        weights: np.ndarray | None = None) -> KCenterSolution:
    """Gonzalez seeding + optimal capacitated bottleneck assignment."""
    centers = gonzalez_seeding(points, k, seed=seed)
    return capacitated_kcenter_assignment(points, centers, t, weights=weights)
