"""Swap-based local search for uncapacitated k-median / k-means.

The classical single-swap local search (Arya et al. 2004) over a medoid
candidate pool: repeatedly replace one center by one candidate point when it
improves the cost by more than a (1 − δ) factor.  Gives a constant-factor
approximation for r ∈ {1, 2}; we use it as a slower-but-stronger black box
in the E5/E6 experiments and to cross-check the alternating solver.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.distances import pairwise_power_distances
from repro.solvers.kmeanspp import kmeans_plusplus
from repro.utils.rng import as_rng

__all__ = ["local_search_swap"]


def local_search_swap(
    points: np.ndarray,
    k: int,
    r: float = 2.0,
    weights: np.ndarray | None = None,
    seed=0,
    candidate_pool: int = 64,
    max_swaps: int = 128,
    improvement: float = 1e-4,
) -> np.ndarray:
    """Return k centers (rows of ``points``) after single-swap local search.

    ``candidate_pool`` bounds the number of swap-in candidates considered
    (sampled ∝ weight); the full point set is used when small enough.
    """
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    if n == 0:
        raise ValueError("empty input")
    rng = as_rng(seed)
    w = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)

    centers = kmeans_plusplus(pts, k, r=r, weights=w, seed=rng)
    if n <= candidate_pool:
        cand_idx = np.arange(n)
    else:
        cand_idx = rng.choice(n, size=candidate_pool, replace=False, p=w / w.sum())
    candidates = pts[cand_idx]

    # D[i, j] = w_i * dist^r(p_i, center_j); C[i, c] likewise for candidates.
    D = pairwise_power_distances(pts, centers, r) * w[:, None]
    C = pairwise_power_distances(pts, candidates, r) * w[:, None]

    def total_cost(cols: np.ndarray) -> float:
        """Weighted cost of assigning every point to its best column."""
        return float(cols.min(axis=1).sum())

    cost = total_cost(D)
    for _ in range(max_swaps):
        best_gain, best_swap = 0.0, None
        # Cost without center j, as the min over the remaining columns.
        for j in range(k):
            others = np.delete(D, j, axis=1)
            base = others.min(axis=1) if others.shape[1] else np.full(n, np.inf)
            # Adding candidate c: min(base, C[:, c]).
            for c in range(C.shape[1]):
                new_cost = float(np.minimum(base, C[:, c]).sum())
                gain = cost - new_cost
                if gain > best_gain + improvement * max(cost, 1e-12):
                    best_gain, best_swap = gain, (j, c)
        if best_swap is None:
            break
        j, c = best_swap
        centers[j] = candidates[c]
        D[:, j] = C[:, c]
        cost -= best_gain
    return centers
