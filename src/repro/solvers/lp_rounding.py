"""LP-rounding capacitated k-clustering (the [DL16] role).

[DL16] gives an (O(1/ε), 1+ε)-approximation for capacitated k-median by
rounding a strengthened LP.  Its full rounding machinery is a research
artifact; the practically faithful shape implemented here is:

1. restrict centers to a candidate pool F (weighted k-means++ medoids — a
   standard coreset-of-centers step);
2. solve the natural capacitated k-median/k-means LP over F exactly
   (variables: openings y_j ∈ [0,1] with Σy ≤ k, assignments x_ij ≤ y_j with
   capacity Σᵢ w_i x_ij ≤ t·y_j) via HiGHS;
3. round: open the k candidates with the largest fractional opening mass
   (weighted by assigned load), then re-solve the optimal capacitated
   transportation on the opened set.

The LP value lower-bounds the medoid-restricted optimum, so the printed
``lp_gap`` certifies the rounding quality instance-by-instance — which is
how E5/E6-style experiments can use it as a second, independent (α, β)
black box next to the alternating solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.assignment.capacitated import capacitated_assignment
from repro.metrics.distances import pairwise_power_distances
from repro.solvers.kmeanspp import kmeans_plusplus

__all__ = ["lp_rounding_capacitated", "LPRoundingSolution"]


@dataclass
class LPRoundingSolution:
    """Output of the LP-rounding solver."""

    centers: np.ndarray
    labels: np.ndarray
    cost: float
    sizes: np.ndarray
    lp_value: float

    @property
    def lp_gap(self) -> float:
        """cost / LP lower bound (≥ 1; the instance-specific α certificate)."""
        if self.lp_value <= 0:
            return 1.0
        return self.cost / self.lp_value


def _solve_opening_lp(D: np.ndarray, w: np.ndarray, k: int, t: float):
    """The capacitated k-facility LP; returns (y, lp_value) or None."""
    from scipy import sparse
    from scipy.optimize import linprog

    n, m = D.shape
    nx = n * m
    # Variables: x (n·m) then y (m).
    c = np.concatenate([(D * w[:, None]).reshape(-1), np.zeros(m)])

    rows, cols, vals = [], [], []
    row = 0
    b_ub = []
    # x_ij - y_j <= 0.
    for i in range(n):
        for j in range(m):
            rows += [row, row]
            cols += [i * m + j, nx + j]
            vals += [1.0, -1.0]
            b_ub.append(0.0)
            row += 1
    # capacity: sum_i w_i x_ij - t y_j <= 0.
    for j in range(m):
        for i in range(n):
            rows.append(row)
            cols.append(i * m + j)
            vals.append(float(w[i]))
        rows.append(row)
        cols.append(nx + j)
        vals.append(-float(t))
        b_ub.append(0.0)
        row += 1
    # sum_j y_j <= k.
    for j in range(m):
        rows.append(row)
        cols.append(nx + j)
        vals.append(1.0)
    b_ub.append(float(k))
    row += 1
    A_ub = sparse.csr_matrix((vals, (rows, cols)), shape=(row, nx + m))

    # Equality: each point fully assigned.
    e_rows = np.repeat(np.arange(n), m)
    e_cols = np.arange(nx)
    A_eq = sparse.csr_matrix((np.ones(nx), (e_rows, e_cols)), shape=(n, nx + m))

    res = linprog(c, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq, b_eq=np.ones(n),
                  bounds=(0, 1), method="highs")
    if not res.success:
        return None
    y = res.x[nx:]
    x = res.x[:nx].reshape(n, m)
    return x, y, float(res.fun)


def lp_rounding_capacitated(
    points: np.ndarray,
    k: int,
    t: float,
    r: float = 2.0,
    weights: np.ndarray | None = None,
    candidate_pool: int = 24,
    seed: int = 0,
) -> LPRoundingSolution:
    """Capacitated ℓr k-clustering via the opening LP over medoid candidates."""
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    if n == 0:
        raise ValueError("empty input")
    w = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)
    if w.sum() > k * t * (1 + 1e-9):
        raise ValueError("infeasible: total weight exceeds k*t")

    m = min(candidate_pool, n)
    F = np.unique(kmeans_plusplus(pts, m, r=r, weights=w, seed=seed), axis=0)
    D = pairwise_power_distances(pts, F, r)

    lp = _solve_opening_lp(D, w, k, t)
    if lp is None:
        raise RuntimeError("opening LP infeasible (should not happen)")
    x, y, lp_value = lp

    # Round: rank candidates by fractional load y_j weighted by assigned mass.
    load = (x * w[:, None]).sum(axis=0)
    score = y * (1.0 + load)
    opened = np.argsort(-score)[:k]
    res = capacitated_assignment(pts, F[opened], t, r=r, weights=w,
                                 method="auto", integral=True)
    if res.labels is None:
        raise RuntimeError("rounded opening infeasible despite k*t >= W")
    return LPRoundingSolution(
        centers=F[opened],
        labels=res.labels,
        cost=res.cost,
        sizes=res.sizes,
        lp_value=lp_value,
    )
