"""Sensitivity-sampling coreset for *uncapacitated* k-clustering.

The classical importance-sampling construction (Feldman-Langberg 2011 /
Chen 2009 lineage): fit a bicriteria solution B, set each point's
sensitivity bound

    s(p) = w(p)·dist^r(p, B) / cost(B)  +  w(p) / (weight of p's B-cluster),

sample m points with probability ∝ s(p) and weight them by w(p)/(m·prob).
This preserves cost^(r)(Q, Z) for every Z — the *uncapacitated* guarantee —
but nothing about per-assignment costs, so it carries no capacitated
guarantee: experiment E6 shows where it breaks while the paper's
construction holds.
"""

from __future__ import annotations

import numpy as np

from repro.core.weighted import WeightedPointSet
from repro.metrics.distances import nearest_center
from repro.solvers.kmeanspp import kmeans_plusplus
from repro.utils.rng import as_rng, derive_seed

__all__ = ["sensitivity_coreset"]


def sensitivity_coreset(
    points: np.ndarray,
    k: int,
    size: int,
    r: float = 2.0,
    weights: np.ndarray | None = None,
    seed=0,
    bicriteria_factor: int = 2,
) -> WeightedPointSet:
    """Importance-sampled coreset of ``size`` points for uncapacitated ℓr."""
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    if n == 0:
        raise ValueError("empty input")
    rng = as_rng(seed)
    w = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)
    m = int(min(size, n))

    # Bicriteria solution: k·factor k-means++ seeds.
    B = kmeans_plusplus(pts, min(n, k * bicriteria_factor), r=r, weights=w,
                        seed=derive_seed(int(rng.integers(2**31)), "bicriteria"))
    labels, dr = nearest_center(pts, B, r)
    total = float((dr * w).sum())
    cluster_w = np.bincount(labels, weights=w, minlength=B.shape[0])
    cluster_w = np.maximum(cluster_w, 1e-12)
    sens = np.zeros(n)
    if total > 0:
        sens += w * dr / total
    sens += w / cluster_w[labels]
    probs = sens / sens.sum()

    idx = rng.choice(n, size=m, replace=True, p=probs)
    out_w = w[idx] / (m * probs[idx])
    # Merge duplicate draws (with replacement) into single weighted rows.
    uniq, inv = np.unique(idx, return_inverse=True)
    merged_w = np.bincount(inv, weights=out_w)
    return WeightedPointSet(points=np.asarray(points)[uniq], weights=merged_w)
