"""Uniform-sampling baseline.

Sample m points uniformly without replacement, weight each by n/m.  The
expected weighted cost of any fixed assignment is unbiased, but the variance
scales with the full cost spread, so clusters that are small in count yet
large in cost are routinely missed — the failure mode experiment E6
demonstrates against the paper's construction at equal size.
"""

from __future__ import annotations

import numpy as np

from repro.core.weighted import WeightedPointSet
from repro.utils.rng import as_rng

__all__ = ["uniform_coreset"]


def uniform_coreset(points: np.ndarray, size: int, seed=0) -> WeightedPointSet:
    """m uniform samples with weight n/m each."""
    pts = np.asarray(points)
    n = pts.shape[0]
    m = int(min(size, n))
    if m <= 0:
        raise ValueError("size must be positive")
    rng = as_rng(seed)
    idx = rng.choice(n, size=m, replace=False)
    return WeightedPointSet(points=pts[idx], weights=np.full(m, n / m))
