"""Baselines the introduction positions the paper against.

- :mod:`repro.baselines.uniform_coreset` — uniform sampling with inverse-
  probability weights: the naive sketch, which misses small-but-expensive
  clusters and breaks the capacitated guarantee;
- :mod:`repro.baselines.sensitivity_coreset` — a standard *uncapacitated*
  k-means/k-median coreset (sensitivity sampling à la Feldman-Langberg /
  Chen): excellent for cost^(r)(Q, Z) but with no per-assignment guarantee,
  hence no capacitated guarantee;
- :mod:`repro.baselines.bblm14` — a three-pass, insertion-only mapping-
  coreset pipeline in the spirit of [BBLM14], "the only previously known
  streaming approximation algorithm" for capacitated clustering.
"""

from repro.baselines.uniform_coreset import uniform_coreset
from repro.baselines.sensitivity_coreset import sensitivity_coreset
from repro.baselines.bblm14 import ThreePassMappingCoreset

__all__ = ["uniform_coreset", "sensitivity_coreset", "ThreePassMappingCoreset"]
