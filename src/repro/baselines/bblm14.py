"""Three-pass insertion-only baseline in the spirit of [BBLM14].

"The only previously known streaming approximation algorithm for capacitated
clustering requires three passes and only handles insertions" (§1).  The
[BBLM14] approach is a *mapping coreset*: map every point to a nearby
representative, remember only representatives with multiplicities, and solve
the capacitated problem on the weighted representatives (capacities
transfer because the mapping moves each point a bounded distance).

Our rendition keeps the three-pass, insertion-only shape:

- **pass 1** — reservoir-sample ``pool`` points (uniform over the stream);
  seed ``m`` representatives with k-means++ on the reservoir;
- **pass 2** — map each streamed point to its nearest representative,
  accumulating multiplicities (the mapping coreset);
- **pass 3** — recompute the exact mapping cost (the certificate the
  analysis of [BBLM14] needs) and finalize weights.

``update`` raises on deletions — that is the point of the comparison:
experiment E6/E4 contrasts this against the paper's one-pass dynamic
algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.core.weighted import WeightedPointSet
from repro.metrics.distances import nearest_center
from repro.solvers.kmeanspp import kmeans_plusplus
from repro.streaming.stream import DELETE, INSERT, StreamEvent
from repro.utils.rng import as_rng, derive_seed

__all__ = ["ThreePassMappingCoreset"]


class ThreePassMappingCoreset:
    """Insertion-only, three-pass mapping coreset for capacitated clustering."""

    def __init__(self, k: int, num_representatives: int, pool: int = 2048,
                 r: float = 2.0, seed: int = 0):
        self.k = int(k)
        self.m = int(num_representatives)
        self.pool = int(pool)
        self.r = float(r)
        self.seed = int(seed)
        self._pass = 0
        self._reservoir: list[tuple] = []
        self._seen = 0
        self._rng = as_rng(derive_seed(self.seed, "reservoir"))
        self.representatives: np.ndarray | None = None
        self._weights: np.ndarray | None = None
        self.mapping_cost = 0.0

    # -- pass control -----------------------------------------------------------
    def start_pass(self, number: int) -> None:
        """Begin pass 1, 2, or 3 (must be called in order)."""
        if number != self._pass + 1:
            raise ValueError(f"passes must run in order; expected {self._pass + 1}")
        self._pass = number
        if number == 2:
            if not self._reservoir:
                raise RuntimeError("pass 1 saw no points")
            sample = np.asarray(self._reservoir, dtype=np.float64)
            m = min(self.m, len(sample))
            self.representatives = kmeans_plusplus(
                sample, m, r=self.r, seed=derive_seed(self.seed, "seeding"))
            self._weights = np.zeros(self.representatives.shape[0])
        if number == 3:
            self.mapping_cost = 0.0

    def update(self, event: StreamEvent) -> None:
        """Feed one stream event to the current pass."""
        if event.sign == DELETE:
            raise NotImplementedError(
                "BBLM14-style mapping coresets are insertion-only; deletions "
                "are exactly what the paper's one-pass algorithm adds"
            )
        assert event.sign == INSERT
        row = np.asarray(event.point, dtype=np.float64)[None, :]
        if self._pass == 1:
            self._seen += 1
            if len(self._reservoir) < self.pool:
                self._reservoir.append(event.point)
            else:
                j = int(self._rng.integers(self._seen))
                if j < self.pool:
                    self._reservoir[j] = event.point
        elif self._pass == 2:
            lab, _ = nearest_center(row, self.representatives, self.r)
            self._weights[int(lab[0])] += 1.0
        elif self._pass == 3:
            _, dr = nearest_center(row, self.representatives, self.r)
            self.mapping_cost += float(dr[0])
        else:
            raise RuntimeError("call start_pass(1) first")

    def run(self, stream) -> WeightedPointSet:
        """Convenience: replay an (insertion-only) stream three times."""
        for p in (1, 2, 3):
            self.start_pass(p)
            for ev in stream:
                self.update(ev)
        return self.result()

    def result(self) -> WeightedPointSet:
        """The weighted representative set (pass ≥ 2 must have run)."""
        if self.representatives is None:
            raise RuntimeError("run passes 1-2 first")
        keep = self._weights > 0
        return WeightedPointSet(
            points=np.rint(self.representatives[keep]).astype(np.int64),
            weights=self._weights[keep],
        )

    @property
    def passes_used(self) -> int:
        """How many passes over the stream have run (the claim is 3)."""
        return self._pass
