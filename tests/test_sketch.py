"""Tests for the 1-sparse buckets and IBLT peeling sketches."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming.sketch import DecodeFailure, IBLTSketch, SketchHashFamily


class TestIBLTBasics:
    def test_single_key(self):
        sk = IBLTSketch(4, 32, seed=1)
        sk.update(42, 3)
        assert sk.decode() == {42: 3}

    def test_insert_delete_cancels(self):
        sk = IBLTSketch(4, 32, seed=1)
        sk.update(42, 1)
        sk.update(42, -1)
        assert sk.decode() == {}

    def test_linearity_order_independent(self):
        a = IBLTSketch(8, 32, seed=3)
        b = IBLTSketch(8, 32, seed=3)
        updates = [(5, 1), (7, 2), (5, -1), (9, 1), (7, -1)]
        for k, dlt in updates:
            a.update(k, dlt)
        for k, dlt in reversed(updates):
            b.update(k, dlt)
        assert a.decode() == b.decode() == {7: 1, 9: 1}

    def test_many_keys_within_capacity(self):
        sk = IBLTSketch(64, 48, seed=5)
        truth = {int(k): 1 for k in np.random.default_rng(0).choice(1 << 40, 50, replace=False)}
        for k in truth:
            sk.update(k, 1)
        assert sk.decode() == truth

    def test_over_capacity_raises(self):
        sk = IBLTSketch(4, 32, seed=2)
        for k in range(200):
            sk.update(k, 1)
        with pytest.raises(DecodeFailure):
            sk.decode()

    def test_transient_overflow_recovers(self):
        """Deletions shrink the live set below capacity before decoding —
        the linearity property Theorem 4.5 rests on."""
        sk = IBLTSketch(8, 32, seed=4)
        for k in range(500):
            sk.update(k, 1)
        for k in range(495):
            sk.update(k, -1)
        assert sk.decode() == {k: 1 for k in range(495, 500)}

    def test_bigint_keys(self):
        sk = IBLTSketch(8, 150, seed=6)
        keys = [(1 << 149) + 7, (1 << 100) + 3, 12]
        for k in keys:
            sk.update(k, 2)
        assert sk.decode() == {k: 2 for k in keys}

    def test_total_count(self):
        sk = IBLTSketch(8, 32, seed=7)
        sk.update(1, 5)
        sk.update(2, 3)
        sk.update(1, -2)
        assert sk.total_count() == 6

    def test_decode_does_not_mutate(self):
        sk = IBLTSketch(8, 32, seed=8)
        sk.update(10, 1)
        first = sk.decode()
        second = sk.decode()
        assert first == second == {10: 1}

    @given(st.lists(st.tuples(st.integers(0, 1 << 30), st.integers(1, 3)),
                    min_size=0, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_property_decode_matches_counter(self, updates):
        from collections import Counter

        sk = IBLTSketch(32, 32, seed=9)
        truth = Counter()
        for key, cnt in updates:
            sk.update(key, cnt)
            truth[key] += cnt
        expected = {k: v for k, v in truth.items() if v != 0}
        assert sk.decode() == expected


class TestSharedFamily:
    def test_shared_family_sketches_independent_content(self):
        fam = SketchHashFamily(16, 32, seed=1)
        a = IBLTSketch(8, 32, family=fam)
        b = IBLTSketch(8, 32, family=fam)
        a.update(5, 1)
        b.update(6, 2)
        assert a.decode() == {5: 1}
        assert b.decode() == {6: 2}

    def test_family_bucket_mismatch_rejected(self):
        fam = SketchHashFamily(16, 32, seed=1)
        with pytest.raises(ValueError):
            IBLTSketch(100, 32, family=fam)  # would need 200 buckets


class TestSpaceAccounting:
    def test_space_bits_independent_of_content(self):
        sk = IBLTSketch(16, 32, seed=1)
        before = sk.space_bits()
        for k in range(10):
            sk.update(k, 1)
        assert sk.space_bits() == before

    def test_resident_grows_with_content(self):
        sk = IBLTSketch(16, 32, seed=1)
        base = sk.resident_bits()
        sk.update(1, 1)
        assert sk.resident_bits() > base

    def test_space_scales_with_capacity(self):
        small = IBLTSketch(8, 32, seed=1).space_bits()
        large = IBLTSketch(800, 32, seed=1).space_bits()
        assert large > 50 * small
