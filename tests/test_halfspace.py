"""Tests for the curved half-space machinery (the paper's core device)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assignment.capacitated import assignment_cost, capacitated_assignment, cluster_sizes
from repro.core.halfspace import (
    canonicalize_assignment,
    halfspaces_from_assignment,
    is_halfspace_consistent,
    lexicographic_rank,
    region_weights,
    transferred_assignment,
)


class TestLexicographicRank:
    def test_matches_paper_order(self):
        pts = np.array([[1, 5], [1, 2], [2, 0]])
        rank = lexicographic_rank(pts)
        # (1,2) < (1,5) < (2,0) alphabetically.
        assert rank.tolist() == [1, 0, 2]

    def test_permutation(self):
        rng = np.random.default_rng(0)
        pts = rng.integers(0, 10, size=(50, 3))
        rank = lexicographic_rank(pts)
        assert sorted(rank.tolist()) == list(range(50))


class TestCanonicalize:
    @pytest.mark.parametrize("r", [1.0, 2.0])
    def test_preserves_sizes_never_increases_cost(self, r):
        rng = np.random.default_rng(3)
        pts = rng.integers(0, 100, size=(40, 2)).astype(float)
        ctr = rng.integers(0, 100, size=(3, 2)).astype(float)
        lab = rng.integers(0, 3, size=40)
        out = canonicalize_assignment(pts, lab, ctr, r)
        assert np.array_equal(
            np.bincount(out, minlength=3), np.bincount(lab, minlength=3)
        )
        assert assignment_cost(pts, ctr, out, r) <= assignment_cost(pts, ctr, lab, r) + 1e-9

    @pytest.mark.parametrize("r", [1.0, 2.0])
    @pytest.mark.parametrize("seed", range(5))
    def test_result_is_halfspace_consistent(self, r, seed):
        rng = np.random.default_rng(seed)
        pts = rng.integers(0, 60, size=(25, 2)).astype(float)
        ctr = rng.integers(0, 60, size=(3, 2)).astype(float)
        lab = rng.integers(0, 3, size=25)
        out = canonicalize_assignment(pts, lab, ctr, r)
        assert is_halfspace_consistent(pts, out, ctr, r)

    def test_optimal_capacitated_assignment_already_consistent_after_switch(self):
        """Lemma 3.8: an optimal capacitated assignment canonicalizes with
        NO cost change (only tie/shuffle switches)."""
        rng = np.random.default_rng(7)
        pts = rng.integers(0, 100, size=(20, 2)).astype(float)
        ctr = rng.integers(0, 100, size=(3, 2)).astype(float)
        res = capacitated_assignment(pts, ctr, 7, r=2.0)
        out = canonicalize_assignment(pts, res.labels, ctr, 2.0)
        assert assignment_cost(pts, ctr, out, 2.0) == pytest.approx(res.cost, rel=1e-9)

    def test_single_center_noop(self):
        pts = np.arange(10, dtype=float).reshape(5, 2)
        lab = np.zeros(5, dtype=np.int64)
        out = canonicalize_assignment(pts, lab, np.array([[0.0, 0.0]]), 2.0)
        assert np.array_equal(out, lab)


class TestHalfspacesFromAssignment:
    @pytest.mark.parametrize("r", [1.0, 2.0])
    @pytest.mark.parametrize("seed", range(4))
    def test_regions_reproduce_labels(self, r, seed):
        """Definition 3.7: the half-spaces induce exactly the canonical
        assignment on the points they were built from."""
        rng = np.random.default_rng(seed)
        pts = np.unique(rng.integers(0, 80, size=(30, 2)), axis=0).astype(float)
        ctr = rng.integers(0, 80, size=(3, 2)).astype(float)
        res = capacitated_assignment(pts, ctr, int(np.ceil(len(pts) / 3 * 1.2)), r=r)
        H = halfspaces_from_assignment(pts, res.labels, ctr, r=r)
        lab = canonicalize_assignment(pts, res.labels, ctr, r)
        regions = H.regions(pts)
        # Every point is in the region of its assigned center.
        assert np.array_equal(regions, lab)

    def test_applies_to_new_points(self):
        # Half-spaces derived from a sample classify nearby new points too.
        rng = np.random.default_rng(2)
        a = rng.normal((10, 10), 1.0, size=(30, 2))
        b = rng.normal((40, 40), 1.0, size=(30, 2))
        pts = np.vstack([a, b])
        ctr = np.array([[10.0, 10.0], [40.0, 40.0]])
        lab = np.array([0] * 30 + [1] * 30)
        H = halfspaces_from_assignment(pts, lab, ctr, r=2.0)
        fresh = np.vstack([
            rng.normal((10, 10), 1.0, size=(10, 2)),
            rng.normal((40, 40), 1.0, size=(10, 2)),
        ])
        regions = H.regions(fresh)
        assert (regions[:10] == 0).all()
        assert (regions[10:] == 1).all()

    def test_empty_cluster_infinite_threshold(self):
        pts = np.array([[1.0, 1.0], [2.0, 2.0]])
        ctr = np.array([[0.0, 0.0], [100.0, 100.0]])
        lab = np.array([0, 0])
        H = halfspaces_from_assignment(pts, lab, ctr, r=2.0)
        assert np.array_equal(H.regions(pts), lab)

    def test_region_count_k_equals_one(self):
        H = halfspaces_from_assignment(
            np.array([[1.0, 2.0]]), np.array([0]), np.array([[0.0, 0.0]]), 2.0
        )
        assert H.regions(np.array([[5.0, 5.0]])).tolist() == [0]


class TestTransferredAssignment:
    def test_small_regions_rerouted_to_largest(self):
        regions = np.array([0, 0, 0, 1, 2, -1])
        B = np.array([1.0, 100.0, 0.5, 0.5])  # b0=1 (R0), b1=100, b2=b3=0.5
        out = transferred_assignment(regions, B, xi=0.1, T=10.0)
        # 2ξT = 2: regions 1 and 2 (paper: R2,R3) are below, R0 too → all to i*=0.
        assert (out == 0).all()

    def test_large_regions_kept(self):
        regions = np.array([0, 1, 1, 2])
        B = np.array([0.0, 50.0, 40.0, 30.0])
        out = transferred_assignment(regions, B, xi=0.1, T=10.0)
        assert out.tolist() == [0, 1, 1, 2]

    def test_region_weights_includes_r0(self):
        regions = np.array([-1, 0, 1, 1])
        w = np.array([2.0, 3.0, 1.0, 1.0])
        B = region_weights(regions, k=2, weights=w)
        assert B.tolist() == [2.0, 3.0, 2.0]

    def test_lemma_312_cost_and_size_bounds(self):
        """Lemma 3.12: transfer changes cost by ≤ (1+2^{r+4}k²ξ)·cost +
        ξ·2^{r+1}kT(√d g)^r and sizes by ≤ 16kξ·W."""
        rng = np.random.default_rng(11)
        # A tight cluster of points (all within one cell of diameter √d·g).
        pts = rng.uniform(0, 4, size=(60, 2)) + np.array([50, 50])
        ctr = np.array([[50.0, 50.0], [60.0, 50.0], [50.0, 65.0]])
        res = capacitated_assignment(pts, ctr, 25, r=2.0)
        lab = canonicalize_assignment(pts, res.labels, ctr, 2.0)
        H = halfspaces_from_assignment(pts, lab, ctr, 2.0, canonicalize=False)
        regions = H.regions(pts)
        k, xi, T = 3, 0.01, 50.0
        B = region_weights(regions, k)
        out = transferred_assignment(regions, B, xi, T)
        g = 4 * np.sqrt(2)  # diameter bound of the square
        r = 2.0
        cost_pi = assignment_cost(pts, ctr, lab, r)
        cost_out = assignment_cost(pts, ctr, out, r)
        bound = (1 + 2 ** (r + 4) * k**2 * xi) * cost_pi + xi * 2 ** (r + 1) * k * T * g**r
        assert cost_out <= bound + 1e-6
        s_diff = np.abs(
            cluster_sizes(out, k) - cluster_sizes(lab, k)
        ).sum()
        assert s_diff <= 16 * k * xi * len(pts) + 1e-9


class TestSideMatrix:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_sides_are_complementary(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.integers(0, 40, size=(15, 2)).astype(float)
        ctr = rng.integers(0, 40, size=(3, 2)).astype(float)
        lab = rng.integers(0, 3, size=15)
        H = halfspaces_from_assignment(pts, lab, ctr, 2.0)
        S = H.side_matrix(pts)
        for i in range(3):
            for j in range(3):
                if i != j:
                    assert np.array_equal(S[:, i, j], ~S[:, j, i])
