"""Tests for the from-scratch min-cost-flow solver (vs networkx reference)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assignment.mincostflow import MinCostFlow


class TestBasics:
    def test_single_edge(self):
        net = MinCostFlow(2)
        net.add_edge(0, 1, 5, 2.0)
        res = net.min_cost_flow(0, 1)
        assert res.flow == 5
        assert res.cost == pytest.approx(10.0)

    def test_respects_max_flow(self):
        net = MinCostFlow(2)
        net.add_edge(0, 1, 5, 2.0)
        res = net.min_cost_flow(0, 1, max_flow=3)
        assert res.flow == 3
        assert res.cost == pytest.approx(6.0)

    def test_prefers_cheap_path(self):
        net = MinCostFlow(4)
        net.add_edge(0, 1, 1, 1.0)
        net.add_edge(1, 3, 1, 1.0)
        net.add_edge(0, 2, 1, 10.0)
        net.add_edge(2, 3, 1, 10.0)
        res = net.min_cost_flow(0, 3, max_flow=1)
        assert res.cost == pytest.approx(2.0)

    def test_splits_when_capacity_binds(self):
        net = MinCostFlow(4)
        net.add_edge(0, 1, 1, 1.0)
        net.add_edge(1, 3, 1, 1.0)
        net.add_edge(0, 2, 1, 10.0)
        net.add_edge(2, 3, 1, 10.0)
        res = net.min_cost_flow(0, 3)
        assert res.flow == 2
        assert res.cost == pytest.approx(22.0)

    def test_disconnected(self):
        net = MinCostFlow(3)
        net.add_edge(0, 1, 4, 1.0)
        res = net.min_cost_flow(0, 2)
        assert res.flow == 0

    def test_edge_flow_readback(self):
        net = MinCostFlow(3)
        e1 = net.add_edge(0, 1, 7, 1.0)
        e2 = net.add_edge(1, 2, 4, 1.0)
        net.min_cost_flow(0, 2)
        assert net.edge_flow(e1) == 4
        assert net.edge_flow(e2) == 4

    def test_negative_cost_edges(self):
        # Cheapest route uses the negative arc.
        net = MinCostFlow(3)
        net.add_edge(0, 1, 1, 5.0)
        net.add_edge(0, 2, 1, 1.0)
        net.add_edge(2, 1, 1, -3.0)
        res = net.min_cost_flow(0, 1, max_flow=1)
        assert res.cost == pytest.approx(-2.0)

    def test_rejects_bad_edges(self):
        net = MinCostFlow(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 5, 1, 1.0)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1, 1.0)
        with pytest.raises(ValueError):
            net.min_cost_flow(0, 0)


def _random_instance(rng, n_nodes, n_edges):
    net = MinCostFlow(n_nodes)
    nxg = None
    try:
        import networkx as nx

        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(n_nodes))
    except ImportError:  # pragma: no cover
        pass
    edges = []
    for _ in range(n_edges):
        u, v = rng.integers(0, n_nodes, size=2)
        if u == v:
            continue
        cap = int(rng.integers(1, 10))
        cost = int(rng.integers(0, 20))
        net.add_edge(int(u), int(v), cap, float(cost))
        edges.append((int(u), int(v), cap, cost))
        if nxg is not None:
            # networkx simple graphs overwrite parallel edges; accumulate.
            if nxg.has_edge(int(u), int(v)):
                nxg[int(u)][int(v)]["capacity"] += cap
                # keep min cost for comparability -- instead skip parallels
                nxg[int(u)][int(v)]["capacity"] -= cap
            else:
                nxg.add_edge(int(u), int(v), capacity=cap, weight=cost)
    return net, nxg, edges


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_transportation_matches_networkx(self, seed):
        nx = pytest.importorskip("networkx")
        rng = np.random.default_rng(seed)
        n_src, n_dst = 5, 3
        supply = rng.integers(1, 6, size=n_src)
        caps = rng.integers(2, 12, size=n_dst)
        if supply.sum() > caps.sum():
            caps[0] += supply.sum() - caps.sum()
        cost = rng.integers(0, 25, size=(n_src, n_dst))

        # Ours.
        net = MinCostFlow(n_src + n_dst + 2)
        s, t = n_src + n_dst, n_src + n_dst + 1
        for i in range(n_src):
            net.add_edge(s, i, int(supply[i]), 0.0)
            for j in range(n_dst):
                net.add_edge(i, n_src + j, int(supply[i]), float(cost[i, j]))
        for j in range(n_dst):
            net.add_edge(n_src + j, t, int(caps[j]), 0.0)
        ours = net.min_cost_flow(s, t)

        # networkx network simplex on the same graph.
        g = nx.DiGraph()
        g.add_node("s", demand=-int(supply.sum()))
        g.add_node("t", demand=int(supply.sum()))
        for i in range(n_src):
            g.add_edge("s", f"p{i}", capacity=int(supply[i]), weight=0)
            for j in range(n_dst):
                g.add_edge(f"p{i}", f"c{j}", capacity=int(supply[i]),
                           weight=int(cost[i, j]))
        for j in range(n_dst):
            g.add_edge(f"c{j}", "t", capacity=int(caps[j]), weight=0)
        ref_cost, _ = nx.network_simplex(g)

        assert ours.flow == supply.sum()
        assert ours.cost == pytest.approx(ref_cost)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_cost_nonnegative_with_nonneg_weights(self, seed):
        rng = np.random.default_rng(seed)
        net, _, _ = _random_instance(rng, 8, 20)
        res = net.min_cost_flow(0, 7)
        assert res.cost >= -1e-9
