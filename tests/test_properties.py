"""Cross-cutting property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.assignment.capacitated import capacitated_assignment, cluster_sizes
from repro.core.halfspace import (
    canonicalize_assignment,
    halfspaces_from_assignment,
    is_halfspace_consistent,
)
from repro.metrics.costs import capacitated_cost, uncapacitated_cost
from repro.streaming.sketch import IBLTSketch
from repro.streaming.storing import ExactStoring, SketchStoring
from repro.utils.validation import FailedConstruction


points_strategy = st.integers(min_value=0, max_value=30)


@st.composite
def small_instance(draw, max_n=12, max_k=3):
    n = draw(st.integers(min_value=2, max_value=max_n))
    k = draw(st.integers(min_value=1, max_value=max_k))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    pts = rng.integers(0, 32, size=(n, 2)).astype(float)
    ctr = rng.integers(0, 32, size=(k, 2)).astype(float)
    return pts, ctr, k


class TestAssignmentInvariants:
    @given(small_instance())
    @settings(max_examples=30, deadline=None)
    def test_capacitated_cost_at_least_uncapacitated(self, inst):
        pts, ctr, k = inst
        t = int(np.ceil(len(pts) / k)) + 1
        cap = capacitated_cost(pts, ctr, t)
        free = uncapacitated_cost(pts, ctr)
        assert cap >= free - 1e-6

    @given(small_instance())
    @settings(max_examples=30, deadline=None)
    def test_assignment_covers_all_weight(self, inst):
        pts, ctr, k = inst
        t = int(np.ceil(len(pts) / k)) + 1
        res = capacitated_assignment(pts, ctr, t)
        assert res.feasible
        assert cluster_sizes(res.labels, k).sum() == pytest.approx(len(pts))

    @given(small_instance(), st.floats(min_value=1.0, max_value=3.0))
    @settings(max_examples=20, deadline=None)
    def test_monotone_in_capacity(self, inst, slack):
        pts, ctr, k = inst
        t0 = int(np.ceil(len(pts) / k))
        c_tight = capacitated_cost(pts, ctr, t0 + 1)
        c_loose = capacitated_cost(pts, ctr, (t0 + 1) * slack)
        assert c_loose <= c_tight + 1e-6


class TestHalfspaceInvariants:
    @given(small_instance(max_k=3))
    @settings(max_examples=25, deadline=None)
    def test_canonicalization_idempotent(self, inst):
        pts, ctr, k = inst
        rng = np.random.default_rng(0)
        lab = rng.integers(0, k, size=len(pts))
        once = canonicalize_assignment(pts, lab, ctr)
        twice = canonicalize_assignment(pts, once, ctr)
        assert np.array_equal(once, twice)

    @given(small_instance(max_k=3))
    @settings(max_examples=25, deadline=None)
    def test_halfspaces_induce_consistent_assignment(self, inst):
        pts, ctr, k = inst
        # Distinct points required for exact region reproduction.
        pts = np.unique(pts, axis=0)
        assume(len(pts) >= 2)
        rng = np.random.default_rng(1)
        lab = rng.integers(0, k, size=len(pts))
        H = halfspaces_from_assignment(pts, lab, ctr)
        regions = H.regions(pts)
        assert is_halfspace_consistent(pts, regions, ctr)


class TestSketchLinearity:
    @given(st.lists(st.tuples(points_strategy, st.sampled_from([1, -1])),
                    min_size=0, max_size=30),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_iblt_is_a_linear_map(self, updates, seed):
        """sketch(A) + sketch(B) decodes like sketch(A ++ B)."""
        a = IBLTSketch(64, 16, seed=seed)
        b = IBLTSketch(64, 16, seed=seed)
        combined = IBLTSketch(64, 16, seed=seed)
        for i, (key, sign) in enumerate(updates):
            target = a if i % 2 == 0 else b
            target.update(key, sign)
            combined.update(key, sign)
        # Merge a and b bucket-wise (linearity).
        merged = IBLTSketch(64, 16, seed=seed)
        merged.merge_from(a)
        merged.merge_from(b)
        try:
            want = combined.decode()
        except Exception:
            return  # decode failure is allowed; linearity is about content
        assert merged.decode() == want

    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 12)),
                    min_size=0, max_size=24),
           st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_storing_backends_agree_under_random_churn(self, ops, seed):
        ex = ExactStoring(64, 3)
        sk = SketchStoring(64, 3, cell_universe_bits=8, point_universe_bits=8,
                           seed=seed)
        live = set()
        for cell, pt in ops:
            sign = -1 if (cell, pt) in live else 1
            (live.add if sign == 1 else live.discard)((cell, pt))
            ex.update(cell, pt, sign)
            sk.update(cell, pt, sign)
        try:
            rs = sk.result()
        except FailedConstruction:
            return  # probabilistic decode failure is allowed (cf. linearity
            # test above); agreement is only claimed for successful decodes
        re_ = ex.result()
        assert re_.cells == rs.cells
        assert re_.small_points == rs.small_points


class TestCoresetInvariants:
    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=8, deadline=None)
    def test_coreset_points_subset_weights_positive(self, seed):
        from repro.core import CoresetParams, build_coreset_auto
        from repro.data.synthetic import gaussian_mixture

        pts = np.unique(gaussian_mixture(600, 2, 128, k=2, seed=seed), axis=0)
        params = CoresetParams.practical(k=2, d=2, delta=128)
        cs = build_coreset_auto(pts, params, seed=seed)
        assert (cs.weights > 0).all()
        input_set = set(map(tuple, pts.tolist()))
        assert all(tuple(p) in input_set for p in cs.points.tolist())
        # No duplicate coreset points (Q' is a subset, not a multiset).
        assert len(set(map(tuple, cs.points.tolist()))) == len(cs)
