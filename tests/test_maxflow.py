"""Tests for the from-scratch Dinic max-flow solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assignment.maxflow import MaxFlow


class TestMaxFlow:
    def test_single_edge(self):
        net = MaxFlow(2)
        net.add_edge(0, 1, 7)
        assert net.max_flow(0, 1) == 7

    def test_series_bottleneck(self):
        net = MaxFlow(3)
        net.add_edge(0, 1, 10)
        net.add_edge(1, 2, 4)
        assert net.max_flow(0, 2) == 4

    def test_parallel_paths(self):
        net = MaxFlow(4)
        net.add_edge(0, 1, 3)
        net.add_edge(1, 3, 3)
        net.add_edge(0, 2, 5)
        net.add_edge(2, 3, 5)
        assert net.max_flow(0, 3) == 8

    def test_classic_diamond_with_cross_edge(self):
        net = MaxFlow(4)
        net.add_edge(0, 1, 10)
        net.add_edge(0, 2, 10)
        net.add_edge(1, 2, 1)
        net.add_edge(1, 3, 10)
        net.add_edge(2, 3, 10)
        assert net.max_flow(0, 3) == 20

    def test_disconnected(self):
        net = MaxFlow(3)
        net.add_edge(0, 1, 5)
        assert net.max_flow(0, 2) == 0

    def test_edge_flow_readback(self):
        net = MaxFlow(3)
        e = net.add_edge(0, 1, 5)
        net.add_edge(1, 2, 3)
        net.max_flow(0, 2)
        assert net.edge_flow(e) == 3

    def test_validation(self):
        net = MaxFlow(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 5, 1)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1)
        with pytest.raises(ValueError):
            net.max_flow(0, 0)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_mincostflow_value(self, seed):
        """Max-flow value equals what the SSP min-cost solver routes."""
        from repro.assignment.mincostflow import MinCostFlow

        rng = np.random.default_rng(seed)
        n = 8
        edges = []
        for _ in range(20):
            u, v = rng.integers(0, n, size=2)
            if u != v:
                edges.append((int(u), int(v), int(rng.integers(1, 9))))
        a = MaxFlow(n)
        b = MinCostFlow(n)
        for u, v, c in edges:
            a.add_edge(u, v, c)
            b.add_edge(u, v, c, 0.0)
        assert a.max_flow(0, n - 1) == b.min_cost_flow(0, n - 1).flow

    def test_bipartite_saturation(self):
        # 6 sources, 2 sinks cap 3 each: perfect saturation.
        net = MaxFlow(10)
        s, t = 8, 9
        for i in range(6):
            net.add_edge(s, i, 1)
            net.add_edge(i, 6 + (i % 2), 1)
        net.add_edge(6, t, 3)
        net.add_edge(7, t, 3)
        assert net.max_flow(s, t) == 6
