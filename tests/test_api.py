"""Tests for the high-level BalancedKMeans facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import BalancedKMeans


def city(n=3000, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal((0, 0), 0.4, size=(int(n * 0.6), 2))
    b = rng.normal((6, 1), 0.5, size=(int(n * 0.25), 2))
    c = rng.normal((2, 7), 0.5, size=(n - len(a) - len(b), 2))
    return np.vstack([a, b, c])


class TestBalancedKMeans:
    @pytest.fixture(scope="class")
    def fitted(self):
        model = BalancedKMeans(k=3, capacity_slack=1.1, delta=512, seed=5)
        return model.fit(city()), city()

    def test_labels_and_centers_shapes(self, fitted):
        model, X = fitted
        assert model.labels_.shape == (len(X),)
        assert model.centers_.shape == (3, 2)
        assert model.coreset_ is not None

    def test_loads_balanced(self, fitted):
        model, X = fitted
        # The raw data is 60/25/15 unbalanced; the fit must be ≤ ~slack·(1+O(η)).
        assert model.max_load_ratio() <= 1.1 * (1 + 4 * 0.25)
        # And far more balanced than the data distribution itself.
        assert model.max_load_ratio() < 0.6 * 3

    def test_centers_near_data_scale(self, fitted):
        model, X = fitted
        # Centers live in the original coordinate frame.
        assert model.centers_[:, 0].min() > X[:, 0].min() - 1
        assert model.centers_[:, 0].max() < X[:, 0].max() + 1

    def test_predict_nearest(self, fitted):
        model, _ = fitted
        fresh = city(seed=9)[:200]
        labels = model.predict(fresh)
        assert labels.shape == (200,)
        assert set(labels.tolist()) <= {0, 1, 2}

    def test_predict_with_capacity(self, fitted):
        model, _ = fitted
        fresh = city(seed=10)[:300]
        labels = model.predict(fresh, respect_capacity=True)
        assert np.bincount(labels, minlength=3).max() <= 300 / 3 * 1.1 + 3

    def test_fit_predict(self):
        X = city(800, seed=3)
        labels = BalancedKMeans(k=2, delta=256, seed=1).fit_predict(X)
        assert labels.shape == (800,)

    def test_kmedian_mode(self):
        X = city(800, seed=4)
        model = BalancedKMeans(k=3, r=1.0, delta=256, seed=2).fit(X)
        assert model.centers_.shape == (3, 2)

    def test_errors(self):
        model = BalancedKMeans(k=3)
        with pytest.raises(RuntimeError):
            model.predict(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            model.fit(np.zeros((2, 2)))  # n < k

    def test_duplicate_rows_counted_in_loads(self):
        X = np.vstack([np.tile([[0.0, 0.0]], (50, 1)),
                       np.tile([[10.0, 10.0]], (50, 1))])
        rng = np.random.default_rng(5)
        X = X + rng.normal(0, 0.01, X.shape)
        model = BalancedKMeans(k=2, capacity_slack=1.2, delta=64, seed=3).fit(X)
        assert model.sizes_.sum() == 100
