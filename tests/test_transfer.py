"""Tests for Section 3.3: assignment construction via the coreset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assignment.capacitated import assignment_cost, capacitated_assignment, cluster_sizes
from repro.assignment.transfer import coreset_assignment, extend_assignment_to_points
from repro.core import CoresetParams, build_coreset_auto
from repro.data.synthetic import gaussian_mixture, unbalanced_mixture
from repro.grid.grids import HierarchicalGrids
from repro.solvers.kmeanspp import kmeans_plusplus
from repro.utils.rng import derive_seed


@pytest.fixture(scope="module")
def built():
    pts = np.unique(gaussian_mixture(2500, 2, 256, k=3, spread=0.03, seed=23), axis=0)
    params = CoresetParams.practical(k=3, d=2, delta=256, eps=0.25, eta=0.25)
    seed = 3
    grids = HierarchicalGrids(256, 2, seed=derive_seed(seed, "grids"))
    cs = build_coreset_auto(pts, params, grids=grids, seed=seed)
    centers = kmeans_plusplus(pts.astype(float), 3, seed=7)
    return pts, params, grids, cs, centers


class TestCoresetAssignment:
    def test_respects_relaxed_capacity(self, built):
        pts, params, grids, cs, centers = built
        t = cs.total_weight / 3 * 1.1
        res = coreset_assignment(cs, centers, t, r=2.0)
        assert res.feasible
        assert res.max_violation() <= 1.0 + params.eta + 0.05

    def test_infeasible_capacity(self, built):
        _, _, _, cs, centers = built
        res = coreset_assignment(cs, centers, cs.total_weight / 10, r=2.0)
        assert not res.feasible


class TestExtension:
    def test_every_point_assigned(self, built):
        pts, params, grids, cs, centers = built
        t = len(pts) / 3 * 1.2
        labels = extend_assignment_to_points(pts, cs, params, grids, centers, t)
        assert labels.shape == (len(pts),)
        assert labels.min() >= 0 and labels.max() < 3

    def test_cost_and_violation_guarantee(self, built):
        """§3.3: the extended assignment costs (1+O(ε))× the optimal
        capacitated cost and violates capacity by (1+O(η))."""
        pts, params, grids, cs, centers = built
        n = len(pts)
        t = n / 3 * 1.15
        labels = extend_assignment_to_points(pts, cs, params, grids, centers, t)
        ext_cost = assignment_cost(pts, centers, labels, 2.0)
        opt = capacitated_assignment(pts, centers, t, r=2.0, integral=False)
        # Generous constants: O(ε)/O(η) hide moderate factors.
        assert ext_cost <= (1 + 4 * params.eps) * opt.fractional_cost
        sizes = cluster_sizes(labels, 3)
        assert sizes.max() <= (1 + 4 * params.eta) * t

    def test_capacity_binding_case(self):
        """Unbalanced mixture with tight capacity: the extension must split
        the big cluster rather than assign everything to its center."""
        pts, means, _ = unbalanced_mixture(2000, 2, 256, k=3, imbalance=8.0,
                                           spread=0.02, seed=31, return_truth=True)
        pts = np.unique(pts, axis=0)
        params = CoresetParams.practical(k=3, d=2, delta=256, eps=0.25, eta=0.25)
        seed = 11
        grids = HierarchicalGrids(256, 2, seed=derive_seed(seed, "grids"))
        cs = build_coreset_auto(pts, params, grids=grids, seed=seed)
        n = len(pts)
        t = n / 3 * 1.1
        Z = means.astype(float)
        labels = extend_assignment_to_points(pts, cs, params, grids, Z, t)
        sizes = cluster_sizes(labels, 3)
        # The dominant cluster holds ~8/10 of points; capacity is ~0.37n.
        assert sizes.max() <= (1 + 4 * params.eta) * t
        # And cost should be comparable to the true capacitated optimum.
        opt = capacitated_assignment(pts, Z, t, r=2.0, integral=False)
        assert assignment_cost(pts, Z, labels, 2.0) <= (1 + 6 * params.eps) * opt.fractional_cost

    def test_empty_coreset_falls_back_to_nearest(self, built):
        pts, params, grids, _, centers = built
        from repro.core.weighted import Coreset

        empty = Coreset(points=np.empty((0, 2), dtype=np.int64), weights=np.empty(0),
                        o=1.0, delta=256, input_size=0)
        labels = extend_assignment_to_points(pts[:50], empty, params, grids,
                                             centers, 1e9)
        from repro.metrics.distances import nearest_center

        ref, _ = nearest_center(pts[:50], centers, 2.0)
        assert np.array_equal(labels, ref)

    def test_infeasible_capacity_raises(self, built):
        pts, params, grids, cs, centers = built
        with pytest.raises(ValueError):
            extend_assignment_to_points(pts, cs, params, grids, centers,
                                        cs.total_weight / 100)
