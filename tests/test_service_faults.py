"""Fault injection, supervised recovery, and client resilience.

The robustness story rests on the same linearity the paper's theory does: a
shard's state is a deterministic function of ``(params, seed)`` plus the
events routed to it, so any component that dies can be rebuilt from its
last checkpoint and replayed *bit-identically* — which these tests assert
at the serialized-state level (the same oracle style as
``test_vectorized_identity.py``), not just "it didn't crash".

Covered here: the seeded :class:`FaultPlan` engine itself, crash-safe
checkpoint writes, worker SIGKILL / soft-crash recovery in
:class:`SupervisedWorkerPool`, ``close()`` escalation on wedged workers,
the resilient client (typed :class:`ServiceUnavailable`, reconnects,
sequence-numbered idempotent retries on both servers), abrupt-disconnect
handling on both servers, and the per-tenant circuit breaker with its
``degraded`` wire envelope.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import time

import numpy as np
import pytest

from repro.core import CoresetParams
from repro.data.synthetic import gaussian_mixture
from repro.data.workloads import churn_stream
from repro.service import (
    ClusteringService,
    ServiceClient,
    ServiceConfig,
    ServiceDegraded,
    ServiceError,
    ServiceUnavailable,
    ShardedIngest,
    SupervisedWorkerPool,
    TenantRegistry,
    WorkerDied,
    WorkerPoolIngest,
    faults,
    start_async_server,
    start_server,
)
from repro.service.faults import FaultPlan, FaultRule, InjectedFault, fault_point
from repro.service.protocol import IdempotencyCache, ProtocolError, parse_idempotency
from repro.service.supervisor import CircuitBreaker


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with no process-wide plan installed."""
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture(scope="module")
def world():
    pts = np.unique(gaussian_mixture(700, 2, 64, k=3, seed=11), axis=0)
    stream = list(churn_stream(pts, delete_fraction=0.3, seed=5))
    params = CoresetParams.practical(k=3, d=2, delta=64)
    return stream, params


def _canonical(state_dict: dict) -> str:
    return json.dumps(state_dict, sort_keys=True)


def _chunks(seq, size):
    return [seq[i: i + size] for i in range(0, len(seq), size)]


# =========================================================== the plan engine
class TestFaultPlan:
    def test_no_plan_is_a_noop(self):
        assert fault_point("worker.kill", shard=0) is None

    def test_rules_fire_deterministically(self):
        spec = {"seed": 42, "rules": [
            {"point": "server.reset", "after": 1, "times": 3, "prob": 0.5},
        ]}
        schedules = []
        for _ in range(2):
            plan = faults.plan_from_spec(spec)
            fired = [plan.decide("server.reset", {"op": "insert"}) is not None
                     for _ in range(40)]
            schedules.append(fired)
        assert schedules[0] == schedules[1]
        assert sum(schedules[0]) == 3  # times bound respected
        assert schedules[0][0] is False  # 'after' skips the first hit

    def test_match_filters_and_counts(self):
        plan = FaultPlan([FaultRule(point="worker.kill", mode="hard",
                                    match={"shard": 1})], seed=0)
        assert plan.decide("worker.kill", {"shard": 0}) is None
        act = plan.decide("worker.kill", {"shard": 1})
        assert act is not None and act.mode == "hard"
        assert plan.decide("worker.kill", {"shard": 1}) is None  # times=1
        assert plan.fire_counts() == {"worker.kill": 1}
        assert plan.fired[0]["ctx"] == {"shard": 1}

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown keys"):
            faults.plan_from_spec({"rules": [{"point": "x", "bogus": 1}]})
        with pytest.raises(ValueError, match="non-empty 'rules'"):
            faults.plan_from_spec({"rules": []})
        with pytest.raises(ValueError, match="'prob'"):
            FaultRule(point="x", prob=1.5)
        with pytest.raises(ValueError, match="'after'"):
            FaultRule(point="x", after=-1)

    def test_load_plan_inline_and_file(self, tmp_path):
        spec = '{"seed": 3, "rules": [{"point": "server.slow", "delay_s": 0.01}]}'
        inline = faults.load_plan(spec)
        path = tmp_path / "plan.json"
        path.write_text(spec, encoding="utf-8")
        from_file = faults.load_plan(str(path))
        assert inline.seed == from_file.seed == 3
        assert inline.rules[0].delay_s == from_file.rules[0].delay_s == 0.01

    def test_install_from_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULT_PLAN,
                           '{"rules": [{"point": "checkpoint.write"}]}')
        plan = faults.install_from_env()
        assert plan is faults.active_plan()
        assert fault_point("checkpoint.write", path="x") is not None

    def test_injected_fault_carries_point(self):
        exc = InjectedFault("worker.kill", "soft")
        assert exc.point == "worker.kill"
        assert "worker.kill" in str(exc)


# ===================================================== crash-safe checkpoints
class TestCheckpointFaults:
    def test_injected_write_failure_preserves_previous_checkpoint(
            self, world, tmp_path):
        stream, _ = world
        path = tmp_path / "svc.ckpt.json"
        with ClusteringService(ServiceConfig(k=3, d=2, delta=64,
                                             num_shards=2, seed=7)) as svc:
            svc.apply_events(stream[:100])
            svc.checkpoint(path)
            before = path.read_bytes()
            svc.apply_events(stream[100:200])
            faults.install(FaultPlan([FaultRule(point="checkpoint.write")]))
            with pytest.raises(OSError, match="injected checkpoint write"):
                svc.checkpoint(path)
            # The old checkpoint survives byte-for-byte, and no temp file
            # litters the directory.
            assert path.read_bytes() == before
            assert list(tmp_path.iterdir()) == [path]
            # The rule is exhausted (times=1): the retry lands.
            info = svc.checkpoint(path)
            assert path.read_bytes() != before
        twin = ClusteringService.restore(path)
        assert twin.ingest.version == info["version"]
        twin.close()


# ====================================================== supervised recovery
class TestSupervisedRecovery:
    def test_sigkilled_worker_recovers_bit_identically(self, world):
        """SIGKILL a shard worker mid-stream; the respawned shard replays
        its journal and the final serialized state equals an unfaulted
        in-process reference, byte for byte."""
        stream, params = world
        batches = _chunks(stream, 60)
        reference = ShardedIngest(params, num_shards=2, seed=9)
        with SupervisedWorkerPool(params, num_workers=2, seed=9,
                                  checkpoint_every_batches=3) as pool:
            for i, batch in enumerate(batches):
                pool.apply_batch(batch)
                reference.apply_batch(batch)
                if i == len(batches) // 2:
                    victim = pool._procs[0]
                    os.kill(victim.pid, signal.SIGKILL)
                    victim.join(10.0)
            got = pool.to_state_dict()
            assert sum(pool.restart_counts) >= 1
            assert pool.recovery_events
            event = pool.recovery_events[0]
            assert event["shard"] == 0
            assert event["exitcode"] == -signal.SIGKILL
        assert _canonical(got) == _canonical(reference.to_state_dict())

    def test_soft_crash_via_fault_plan_recovers(self, world):
        """A worker that errors out and exits (the poisoned-shard shape)
        recovers exactly like a SIGKILL'd one."""
        stream, params = world
        faults.install(FaultPlan([FaultRule(point="worker.kill", mode="soft",
                                            after=4)]))
        reference = ShardedIngest(params, num_shards=2, seed=9)
        with SupervisedWorkerPool(params, num_workers=2, seed=9) as pool:
            for batch in _chunks(stream, 50):
                pool.apply_batch(batch)
                reference.apply_batch(batch)
            got = pool.to_state_dict()
            assert sum(pool.restart_counts) == 1
        assert faults.active_plan().fire_counts() == {"worker.kill": 1}
        assert _canonical(got) == _canonical(reference.to_state_dict())

    def test_unsupervised_pool_raises_worker_died(self, world):
        _, params = world
        pool = WorkerPoolIngest(params, num_workers=2, seed=9)
        try:
            os.kill(pool._procs[1].pid, signal.SIGKILL)
            pool._procs[1].join(10.0)
            with pytest.raises(WorkerDied) as info:
                for batch in _chunks(np.array([[1, 1], [2, 3], [5, 8],
                                               [13, 21]]), 1):
                    pool.insert_points(batch)
                    pool.to_state_dict()  # force a round trip
            assert info.value.shard == 1
        finally:
            pool.close()

    def test_restart_budget_gives_up(self, world):
        """A shard that keeps dying must surface WorkerDied, not loop."""
        _, params = world
        faults.install(FaultPlan([FaultRule(point="worker.kill", mode="hard",
                                            times=None)]))
        with SupervisedWorkerPool(params, num_workers=1, seed=9,
                                  max_restarts=2) as pool:
            with pytest.raises(WorkerDied, match="exceeded 2 restarts"):
                for _ in range(8):
                    pool.insert_points(np.array([[1, 2]]))
                    pool.to_state_dict()

    def test_supervised_config_roundtrips_through_engine(self, world, tmp_path):
        """ServiceConfig.supervise=True (the default) builds the supervised
        pool, survives checkpoint/restore, and surfaces in stats."""
        stream, _ = world
        path = tmp_path / "sup.ckpt.json"
        with ClusteringService(ServiceConfig(k=3, d=2, delta=64, workers=2,
                                             seed=17)) as svc:
            assert isinstance(svc.ingest, SupervisedWorkerPool)
            svc.apply_events(stream[:80])
            stats = svc.stats()
            assert stats["supervised"] is True
            assert stats["restarts"] == 0
            assert "recovery_events" in stats
            svc.checkpoint(path)
        twin = ClusteringService.restore(path)
        try:
            assert isinstance(twin.ingest, SupervisedWorkerPool)
        finally:
            twin.close()
        plain = ClusteringService(ServiceConfig(k=3, d=2, delta=64, workers=2,
                                                seed=17, supervise=False))
        try:
            assert type(plain.ingest) is WorkerPoolIngest
        finally:
            plain.close()


# ========================================================= close escalation
class TestCloseEscalation:
    def test_wedged_worker_is_force_killed(self, world):
        """SIGSTOP a worker (SIGTERM won't be delivered); close() must
        escalate to SIGKILL and report it rather than leak the child."""
        _, params = world
        pool = WorkerPoolIngest(params, num_workers=1, seed=3)
        proc = pool._procs[0]
        os.kill(proc.pid, signal.SIGSTOP)
        report = pool.close(timeout=1.0)
        assert report["killed"] == 1
        assert pool.forced_kills == 1
        assert not proc.is_alive()
        assert pool.last_close_report == report

    def test_clean_close_reports_stopped(self, world):
        _, params = world
        pool = WorkerPoolIngest(params, num_workers=2, seed=3)
        report = pool.close()
        assert report == {"stopped": 2, "terminated": 0, "killed": 0}


# ============================================================ wire plumbing
class TestIdempotencyPlumbing:
    def test_parse_idempotency(self):
        assert parse_idempotency({}) is None
        assert parse_idempotency({"client_id": "c", "seq": 0}) == ("c", 0)
        for bad in ({"client_id": "c"}, {"seq": 1},
                    {"client_id": "", "seq": 1},
                    {"client_id": "c", "seq": -1},
                    {"client_id": "c", "seq": True},
                    {"client_id": "a\x00b", "seq": 1},
                    {"client_id": "x" * 65, "seq": 1}):
            with pytest.raises(ProtocolError):
                parse_idempotency(bad)

    def test_cache_replay_and_stale_seq(self):
        cache = IdempotencyCache()
        assert cache.check("c", 0) is None
        cache.record("c", 0, {"ok": True, "applied": 4})
        replay = cache.check("c", 0)
        assert replay == {"ok": True, "applied": 4, "replayed": True}
        assert cache.check("c", 1) is None  # next seq proceeds
        cache.record("c", 1, {"ok": True, "applied": 2})
        with pytest.raises(ProtocolError, match="stale seq"):
            cache.check("c", 0)

    def test_cache_lru_eviction(self):
        cache = IdempotencyCache(max_clients=2)
        cache.record("a", 0, {"ok": True})
        cache.record("b", 0, {"ok": True})
        cache.record("c", 0, {"ok": True})
        assert cache.check("a", 0) is None  # evicted
        assert cache.check("c", 0) is not None


# ===================================================== resilient client I/O
def _sync_server(config):
    service = ClusteringService(config)
    server, _ = start_server(service)
    host, port = server.server_address[:2]
    return service, server, host, port


class TestResilientClient:
    CONFIG = ServiceConfig(k=2, d=2, delta=32, num_shards=2, seed=13)

    def test_unreachable_raises_typed_error(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        cli = ServiceClient("127.0.0.1", dead_port, retries=1,
                            backoff_s=0.01, timeout=2.0)
        with pytest.raises(ServiceUnavailable) as info:
            cli.ping()
        assert info.value.op == "ping"
        cli.close()  # close() never raises, connected or not

    def test_server_death_mid_session_raises_typed_error(self):
        service, server, host, port = _sync_server(self.CONFIG)
        cli = ServiceClient(host, port, retries=1, backoff_s=0.01, timeout=5.0)
        try:
            assert cli.ping()
            # Kill the server under the live connection: the shutdown op
            # closes this connection, and closing the listener makes the
            # reconnect attempt fail outright.
            cli.shutdown()
            server.server_close()
            service.close()
            with pytest.raises(ServiceUnavailable):
                cli.stats()
        finally:
            cli.close()

    def test_context_manager_always_closes(self):
        service, server, host, port = _sync_server(self.CONFIG)
        try:
            with pytest.raises(RuntimeError, match="boom"):
                with ServiceClient(host, port) as cli:
                    assert cli.ping()
                    raise RuntimeError("boom")
            assert cli._sock is None
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    @pytest.mark.parametrize("flavor", ["sync", "async"])
    def test_abrupt_disconnects_do_not_wedge_servers(self, flavor):
        """Half a request frame, then a slammed connection mid-reply — the
        server must keep serving other clients through both."""
        if flavor == "sync":
            service, server, host, port = _sync_server(self.CONFIG)
        else:
            registry = TenantRegistry(self.CONFIG)
            server, _ = start_async_server(registry)
            host, port = server.address
        try:
            # Mid-request: partial JSON, no newline, then close.
            with socket.create_connection((host, port), timeout=5.0) as raw:
                raw.sendall(b'{"op": "ins')
            # Mid-reply: send a query, close without reading the answer.
            with socket.create_connection((host, port), timeout=5.0) as raw:
                raw.sendall(b'{"op": "stats"}\n')
            time.sleep(0.1)
            with ServiceClient(host, port, timeout=10.0) as cli:
                assert cli.ping()
                assert cli.insert(np.array([[1, 2], [3, 4]])) == 2
                assert cli.stats()["events"] == 2
        finally:
            if flavor == "sync":
                server.shutdown()
                server.server_close()
                service.close()
            else:
                server.shutdown()
                registry.close()

    @pytest.mark.parametrize("flavor", ["sync", "async"])
    def test_idempotent_retry_does_not_double_count(self, flavor):
        """Drop the reply of one insert *after* it was applied (the worst
        case for retries); the client's seq-numbered retry must be answered
        from the replay cache, leaving the event count exact."""
        faults.install(FaultPlan([FaultRule(point="server.reset", after=1,
                                            match={"op": "insert"})]))
        if flavor == "sync":
            service, server, host, port = _sync_server(self.CONFIG)
        else:
            registry = TenantRegistry(self.CONFIG)
            server, _ = start_async_server(registry)
            host, port = server.address
        try:
            with ServiceClient(host, port, retries=3, backoff_s=0.01,
                               timeout=10.0) as cli:
                assert cli.insert(np.array([[1, 1], [2, 2]])) == 2
                assert cli.insert(np.array([[3, 3], [4, 4]])) == 2  # reply dropped
                assert cli.insert(np.array([[5, 5]])) == 1
                assert cli.reconnects >= 1
                stats = cli.stats()
                assert stats["events"] == 5
                assert stats["insertions"] == 5
                assert stats["fault_plan"]["fire_counts"] == {"server.reset": 1}
        finally:
            if flavor == "sync":
                server.shutdown()
                server.server_close()
                service.close()
            else:
                server.shutdown()
                registry.close()

    def test_pre_reset_drops_request_before_execution(self):
        """'pre' mode models a cut before the server reads the request:
        nothing is applied, and the retry (same seq) applies it once."""
        faults.install(FaultPlan([FaultRule(point="server.reset", mode="pre",
                                            match={"op": "insert"})]))
        service, server, host, port = _sync_server(self.CONFIG)
        try:
            with ServiceClient(host, port, retries=3, backoff_s=0.01,
                               timeout=10.0) as cli:
                assert cli.insert(np.array([[7, 7]])) == 1
                assert cli.stats()["events"] == 1
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_short_and_slow_replies(self):
        """A truncated reply is a poisoned connection (typed retry); a slow
        reply is just slow."""
        faults.install(FaultPlan([
            FaultRule(point="server.short", match={"op": "stats"}),
            FaultRule(point="server.slow", delay_s=0.05, match={"op": "ping"}),
        ]))
        service, server, host, port = _sync_server(self.CONFIG)
        try:
            with ServiceClient(host, port, retries=3, backoff_s=0.01,
                               timeout=10.0) as cli:
                assert cli.stats()["events"] == 0  # retried past the short read
                t0 = time.monotonic()
                assert cli.ping()
                assert time.monotonic() - t0 >= 0.05
        finally:
            server.shutdown()
            server.server_close()
            service.close()


# ========================================================== circuit breaker
class TestCircuitBreaker:
    def test_state_machine_with_fake_clock(self):
        now = [0.0]
        br = CircuitBreaker(failure_threshold=2, cooldown_s=10.0,
                            clock=lambda: now[0])
        assert br.allow() and br.state == "closed"
        br.record_failure()
        assert br.allow()  # one failure is below threshold
        br.record_failure()
        assert br.state == "open" and br.times_opened == 1
        assert not br.allow()
        assert br.retry_after_s() == pytest.approx(10.0)
        now[0] = 10.5
        assert br.allow()  # the half-open probe
        assert br.state == "half-open"
        assert not br.allow()  # single probe at a time
        br.record_failure()  # probe failed: re-open immediately
        assert br.state == "open" and br.times_opened == 2
        now[0] = 21.0
        assert br.allow()
        br.record_success()
        assert br.state == "closed"
        assert br.snapshot()["consecutive_failures"] == 0

    def test_degraded_envelope_over_the_wire(self, tmp_path):
        """Trip a tenant's breaker (failing restores), then watch the
        structured degraded envelope, the tenants-row flag, and recovery
        after cooldown."""
        registry = TenantRegistry(
            ServiceConfig(k=2, d=2, delta=32, num_shards=2, seed=13),
            breaker_threshold=2, breaker_cooldown_s=0.5)
        server, _ = start_async_server(registry)
        host, port = server.address
        try:
            with ServiceClient(host, port, stream_id="shaky",
                               timeout=10.0) as cli:
                cli.insert(np.array([[1, 1]]))
                missing = str(tmp_path / "nope.ckpt.json")
                for _ in range(2):
                    with pytest.raises(ServiceError):
                        cli.restore(missing)
                with pytest.raises(ServiceDegraded) as info:
                    cli.insert(np.array([[2, 2]]))
                assert info.value.stream_id == "shaky"
                assert info.value.retry_after_s > 0
                rows = {r["stream_id"]: r for r in cli.tenants()}
                assert rows["shaky"]["degraded"] is True
                assert rows["shaky"]["breaker"]["state"] == "open"
                # Other tenants are unaffected — failure isolation.
                cli.request("insert", stream_id="steady",
                            points=[[3, 3]])
                time.sleep(0.6)  # past cooldown: the probe closes it
                assert cli.insert(np.array([[4, 4]])) == 1
                assert cli.stats()["breaker"]["state"] == "closed"
                # Only the two successful inserts landed on "shaky": the
                # degraded one was rejected before touching the sketch.
                assert cli.stats()["events"] == 2
        finally:
            server.shutdown()
            registry.close()

    def test_quota_rejections_do_not_trip_breaker(self):
        from repro.service import TenantQuota

        registry = TenantRegistry(
            ServiceConfig(k=2, d=2, delta=32, num_shards=2, seed=13),
            quota=TenantQuota(max_events=1), breaker_threshold=1)
        try:
            registry.insert("t", np.array([[1, 1]]))
            from repro.service import QuotaExceeded
            for _ in range(3):
                with pytest.raises(QuotaExceeded):
                    registry.insert("t", np.array([[2, 2]]))
            # Still closed: quota enforcement is the service working.
            assert registry.insert("u", np.array([[3, 3]]))["applied"] == 1
            rows = {r["stream_id"]: r for r in registry.overview()}
            assert rows["t"]["degraded"] is False
        finally:
            registry.close()


# ===================================================== eviction under faults
class TestEvictionFaults:
    def test_failed_eviction_checkpoint_keeps_tenant_live(self, tmp_path):
        """A full disk at eviction time must not lose the victim's events:
        it stays in memory (budget overshoots) and the failure is surfaced."""
        registry = TenantRegistry(
            ServiceConfig(k=2, d=2, delta=32, num_shards=2, seed=13),
            tenants_dir=tmp_path / "tenants", max_live_tenants=1)
        try:
            registry.insert("a", np.array([[1, 1], [2, 2]]))
            faults.install(FaultPlan([FaultRule(point="checkpoint.write")]))
            # Leasing "b" wants to evict "a"; the write fails, "a" survives.
            registry.insert("b", np.array([[3, 3]]))
            assert registry.live_count() == 2
            assert registry.eviction_failures
            assert registry.eviction_failures[0]["stream_id"] == "a"
            # "a" never hit disk and still answers with nothing lost.
            assert registry.stats("a")["events"] == 2
            # The next eviction (rule exhausted) succeeds and heals the
            # budget.
            registry.insert("c", np.array([[4, 4]]))
            assert registry.live_count() <= 2
        finally:
            registry.close()
