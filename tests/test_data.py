"""Tests for the synthetic data generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import (
    clustered_with_outliers,
    gaussian_mixture,
    unbalanced_mixture,
    uniform_points,
)


class TestGenerators:
    def test_ranges_valid(self):
        for gen in (
            lambda: uniform_points(500, 3, 128, seed=1),
            lambda: gaussian_mixture(500, 3, 128, k=4, seed=1),
            lambda: unbalanced_mixture(500, 3, 128, k=4, seed=1),
            lambda: clustered_with_outliers(500, 3, 128, k=4, seed=1),
        ):
            pts = gen()
            assert pts.shape == (500, 3)
            assert pts.dtype == np.int64
            assert pts.min() >= 1 and pts.max() <= 128

    def test_deterministic(self):
        a = gaussian_mixture(100, 2, 64, k=2, seed=9)
        b = gaussian_mixture(100, 2, 64, k=2, seed=9)
        assert np.array_equal(a, b)
        c = gaussian_mixture(100, 2, 64, k=2, seed=10)
        assert not np.array_equal(a, c)

    def test_return_truth_consistent(self):
        pts, means, labels = gaussian_mixture(400, 2, 256, k=3, spread=0.01,
                                              seed=2, return_truth=True)
        assert means.shape == (3, 2)
        assert labels.shape == (400,)
        # Points sit near their component's mean.
        d = np.linalg.norm(pts - means[labels], axis=1)
        assert np.median(d) < 5 * 0.01 * 256

    def test_unbalanced_imbalance_realized(self):
        _, _, labels = unbalanced_mixture(4000, 2, 256, k=4, imbalance=8.0,
                                          seed=3, return_truth=True)
        counts = np.bincount(labels, minlength=4)
        assert counts[0] > 4 * counts[1:].max()

    def test_outliers_present(self):
        pts = clustered_with_outliers(2000, 2, 1024, k=3, outlier_fraction=0.05,
                                      spread=0.005, seed=4)
        # Clusters are tight; at least ~2% of points must be far from all
        # dense regions (the uniform outliers).
        from repro.solvers.kmeanspp import kmeans_plusplus
        from repro.metrics.distances import nearest_center

        Z = kmeans_plusplus(pts.astype(float), 3, seed=5)
        _, dr = nearest_center(pts, Z, 2.0)
        far = (np.sqrt(dr) > 0.05 * 1024).mean()
        assert far > 0.01

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            uniform_points(10, 2, 100, seed=0)
