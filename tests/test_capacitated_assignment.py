"""Tests for capacitated assignment (LP vs flow vs brute force)."""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assignment.capacitated import (
    capacitated_assignment,
    cluster_sizes,
    forestify_support,
)


def brute_force_cost(points, centers, t, r=2.0):
    """Optimal capacitated cost by enumerating all assignments (tiny n)."""
    pts = np.asarray(points, dtype=float)
    ctr = np.asarray(centers, dtype=float)
    n, k = len(pts), len(ctr)
    D = np.linalg.norm(pts[:, None, :] - ctr[None, :, :], axis=2) ** r
    best = math.inf
    for lab in itertools.product(range(k), repeat=n):
        sizes = np.bincount(lab, minlength=k)
        if (sizes <= t).all():
            best = min(best, D[np.arange(n), list(lab)].sum())
    return best


class TestSmallExact:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("r", [1.0, 2.0])
    def test_matches_brute_force_unit_weights(self, seed, r):
        rng = np.random.default_rng(seed)
        pts = rng.integers(0, 20, size=(6, 2)).astype(float)
        ctr = rng.integers(0, 20, size=(2, 2)).astype(float)
        t = 3  # tight: forces balanced split
        res = capacitated_assignment(pts, ctr, t, r=r)
        ref = brute_force_cost(pts, ctr, t, r=r)
        assert res.cost == pytest.approx(ref, rel=1e-6)
        assert (res.sizes <= t + 1e-9).all()

    def test_capacity_binds_vs_unconstrained(self):
        # 5 points near center A, 1 near center B, capacity 3 each.
        pts = np.array([[0, 0], [1, 0], [0, 1], [1, 1], [0.5, 0.5], [10, 10.0]])
        ctr = np.array([[0.5, 0.5], [10, 10.0]])
        res = capacitated_assignment(pts, ctr, 3, r=2.0)
        assert res.sizes.tolist() == [3.0, 3.0]
        # Unconstrained would put 5 points on A.
        res_inf = capacitated_assignment(pts, ctr, 6, r=2.0)
        assert res_inf.cost < res.cost

    def test_infeasible_returns_inf(self):
        pts = np.zeros((4, 2))
        ctr = np.array([[1.0, 1.0]])
        res = capacitated_assignment(pts, ctr, 3, r=2.0)
        assert not res.feasible
        assert math.isinf(res.cost)

    def test_methods_agree(self):
        rng = np.random.default_rng(7)
        pts = rng.integers(0, 50, size=(12, 3)).astype(float)
        ctr = rng.integers(0, 50, size=(3, 3)).astype(float)
        lp = capacitated_assignment(pts, ctr, 5, method="lp", integral=False)
        fl = capacitated_assignment(pts, ctr, 5, method="flow", integral=False)
        assert lp.fractional_cost == pytest.approx(fl.fractional_cost, rel=1e-6)

    def test_empty_input(self):
        res = capacitated_assignment(np.empty((0, 2)), np.zeros((2, 2)), 1)
        assert res.cost == 0.0
        assert len(res.labels) == 0


class TestWeighted:
    def test_weighted_splits_at_most_k_minus_1(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 100, size=(30, 2))
        w = rng.uniform(0.5, 3.0, size=30)
        ctr = rng.uniform(0, 100, size=(4, 2))
        t = w.sum() / 4 * 1.2
        res = capacitated_assignment(pts, ctr, t, weights=w, integral=True)
        assert res.feasible
        assert res.num_split <= 3  # k - 1

    def test_integral_violation_bounded_by_split_weights(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 100, size=(25, 2))
        w = rng.uniform(0.5, 2.0, size=25)
        ctr = rng.uniform(0, 100, size=(3, 2))
        t = w.sum() / 3 * 1.1
        res = capacitated_assignment(pts, ctr, t, weights=w, integral=True)
        # Rounding ≤ k−1 split points can exceed t by at most (k−1)·max w.
        assert res.sizes.max() <= t + (3 - 1) * w.max() + 1e-9

    def test_integral_rounding_never_increases_cost(self):
        # Split points are rounded to their nearest support center, trading
        # capacity slack for cost — so the integral cost is ≤ the fractional
        # optimum (the violation tests bound the slack side).
        rng = np.random.default_rng(8)
        pts = rng.uniform(0, 50, size=(20, 2))
        w = rng.uniform(0.5, 2.0, size=20)
        ctr = rng.uniform(0, 50, size=(3, 2))
        t = w.sum() / 3 * 1.3
        res = capacitated_assignment(pts, ctr, t, weights=w, integral=True)
        assert res.cost <= res.fractional_cost + 1e-6

    def test_sizes_match_labels(self):
        rng = np.random.default_rng(9)
        pts = rng.uniform(0, 50, size=(15, 2))
        w = rng.uniform(0.5, 2.0, size=15)
        ctr = rng.uniform(0, 50, size=(3, 2))
        res = capacitated_assignment(pts, ctr, w.sum(), weights=w)
        assert np.allclose(res.sizes, cluster_sizes(res.labels, 3, w))


class TestGreedy:
    def test_greedy_feasible_when_loose(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 100, size=(40, 2))
        ctr = rng.uniform(0, 100, size=(4, 2))
        res = capacitated_assignment(pts, ctr, 15, method="greedy")
        assert res.feasible
        assert (res.sizes <= 15 + 1e-9).all()

    def test_greedy_within_factor_of_optimal(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 100, size=(30, 2))
        ctr = rng.uniform(0, 100, size=(3, 2))
        greedy = capacitated_assignment(pts, ctr, 12, method="greedy")
        opt = capacitated_assignment(pts, ctr, 12, method="lp", integral=False)
        assert greedy.cost >= opt.fractional_cost - 1e-9
        assert greedy.cost <= 5 * opt.fractional_cost + 1e-9


class TestForestify:
    def test_cycle_removed_preserving_marginals(self):
        # A 2x2 doubly-fractional solution (one cycle).
        X = np.array([[0.5, 0.5], [0.5, 0.5]])
        D = np.array([[1.0, 2.0], [2.0, 1.0]])
        out = forestify_support(X, D)
        assert np.allclose(out.sum(axis=1), X.sum(axis=1))
        assert np.allclose(out.sum(axis=0), X.sum(axis=0))
        # Forest support: at most n + k - 1 = 3 edges.
        assert (out > 1e-9).sum() <= 3
        # Cost must not increase.
        assert (out * D).sum() <= (X * D).sum() + 1e-9

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_random_fractional_matrices(self, seed):
        rng = np.random.default_rng(seed)
        n, k = 6, 3
        X = rng.uniform(0, 1, size=(n, k))
        D = rng.uniform(0, 10, size=(n, k))
        out = forestify_support(X, D)
        assert np.allclose(out.sum(axis=1), X.sum(axis=1), atol=1e-8)
        assert np.allclose(out.sum(axis=0), X.sum(axis=0), atol=1e-8)
        assert (out >= -1e-12).all()
        # Acyclic support: edges <= touched nodes - components  =>  <= n+k-1.
        assert (out > 1e-9).sum() <= n + k - 1
        assert (out * D).sum() <= (X * D).sum() + 1e-6
