"""Tests for cost functions and distance kernels (Section 2 definitions)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.costs import capacitated_cost, min_capacity, uncapacitated_cost
from repro.metrics.distances import (
    nearest_center,
    pairwise_distances,
    pairwise_power_distances,
)
from repro.metrics.evaluation import coreset_cost_ratio


class TestDistances:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-5, 5, size=(40, 3))
        z = rng.uniform(-5, 5, size=(7, 3))
        ref = np.linalg.norm(x[:, None, :] - z[None, :, :], axis=2)
        assert np.allclose(pairwise_distances(x, z), ref, atol=1e-9)

    @pytest.mark.parametrize("r", [1.0, 2.0, 3.0])
    def test_power_distances(self, r):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 10, size=(20, 2))
        z = rng.uniform(0, 10, size=(3, 2))
        ref = np.linalg.norm(x[:, None, :] - z[None, :, :], axis=2) ** r
        assert np.allclose(pairwise_power_distances(x, z, r), ref, atol=1e-8)

    def test_identical_points_zero(self):
        x = np.array([[1.0, 2.0]])
        assert pairwise_distances(x, x)[0, 0] == 0.0

    def test_nearest_center(self):
        x = np.array([[0.0, 0.0], [10.0, 0.0]])
        z = np.array([[1.0, 0.0], [9.0, 0.0]])
        labels, dr = nearest_center(x, z, 2.0)
        assert labels.tolist() == [0, 1]
        assert dr == pytest.approx([1.0, 1.0])

    def test_chunked_path_matches(self):
        import repro.metrics.distances as dmod

        rng = np.random.default_rng(2)
        x = rng.uniform(0, 1, size=(500, 2))
        z = rng.uniform(0, 1, size=(4, 2))
        full = pairwise_power_distances(x, z, 2.0)
        old = dmod._CHUNK_TARGET_ELEMS
        try:
            dmod._CHUNK_TARGET_ELEMS = 64
            chunked = pairwise_power_distances(x, z, 2.0)
        finally:
            dmod._CHUNK_TARGET_ELEMS = old
        assert np.allclose(full, chunked)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_triangle_like_bound_fact21(self, seed):
        """Fact 2.1: dist^r(x,z) ≤ 2^{r-1}(dist^r(x,y) + dist^r(y,z))."""
        rng = np.random.default_rng(seed)
        x, y, z = rng.uniform(-10, 10, size=(3, 4))
        for r in (1.0, 2.0, 3.0):
            dxz = np.linalg.norm(x - z) ** r
            dxy = np.linalg.norm(x - y) ** r
            dyz = np.linalg.norm(y - z) ** r
            assert dxz <= 2 ** (r - 1) * (dxy + dyz) + 1e-9


class TestCosts:
    def test_uncapacitated_equals_capacitated_with_inf(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 50, size=(30, 2))
        Z = rng.uniform(0, 50, size=(3, 2))
        assert capacitated_cost(pts, Z, math.inf) == pytest.approx(
            uncapacitated_cost(pts, Z)
        )

    def test_capacitated_monotone_in_t(self):
        """cost_t is non-increasing in t (more capacity can't hurt)."""
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 50, size=(24, 2))
        Z = rng.uniform(0, 50, size=(3, 2))
        ts = [8, 10, 16, 24]
        costs = [capacitated_cost(pts, Z, t) for t in ts]
        assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))

    def test_loose_capacity_equals_uncapacitated(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 50, size=(20, 2))
        Z = rng.uniform(0, 50, size=(2, 2))
        assert capacitated_cost(pts, Z, 20) == pytest.approx(
            uncapacitated_cost(pts, Z), rel=1e-9
        )

    def test_infeasible_is_inf(self):
        pts = np.zeros((10, 2))
        Z = np.ones((2, 2))
        assert math.isinf(capacitated_cost(pts, Z, 4))

    def test_weighted_cost_scales(self):
        rng = np.random.default_rng(6)
        pts = rng.uniform(0, 50, size=(15, 2))
        Z = rng.uniform(0, 50, size=(2, 2))
        w = np.full(15, 2.0)
        c1 = capacitated_cost(pts, Z, 10, weights=None)
        c2 = capacitated_cost(pts, Z, 20, weights=w)
        assert c2 == pytest.approx(2 * c1, rel=1e-9)

    def test_min_capacity(self):
        assert min_capacity(100, 4) == 25.0

    def test_zero_cost_when_points_on_centers(self):
        Z = np.array([[1.0, 1.0], [5.0, 5.0]])
        pts = np.repeat(Z, 3, axis=0)
        assert capacitated_cost(pts, Z, 3) == pytest.approx(0.0, abs=1e-9)


class TestQualityEntry:
    def test_ratios_on_identity_coreset(self):
        """A 'coreset' equal to the full set with unit weights has perfect
        sandwich ratios at eta=0 capacities."""
        from repro.core.weighted import Coreset

        rng = np.random.default_rng(7)
        pts = rng.integers(1, 65, size=(40, 2))
        cs = Coreset(points=pts, weights=np.ones(40), o=1.0, delta=64,
                     input_size=40)
        Z = rng.integers(1, 65, size=(2, 2)).astype(float)
        entry = coreset_cost_ratio(pts, cs, Z, t=25, r=2.0, eta=0.0)
        assert entry.upper_ratio == pytest.approx(1.0, rel=1e-9)
        assert entry.lower_ratio == pytest.approx(1.0, rel=1e-9)
