"""Tests for utils (bits, rng, validation) and the JL dimension reduction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dimred import jl_then_discretize, jl_transform
from repro.dimred.jl import jl_dimension
from repro.utils.bits import cells_bits, counter_bits, float_bits, int_bits, point_bits
from repro.utils.rng import as_rng, derive_seed, spawn_rng
from repro.utils.validation import (
    FailedConstruction,
    check_delta,
    check_epsilon_eta,
    check_points,
    check_weights,
)


class TestBits:
    def test_int_bits(self):
        assert int_bits(0) == 1
        assert int_bits(1) == 1
        assert int_bits(255) == 8
        assert int_bits(256) == 9

    def test_point_bits_is_footnote_one(self):
        # d·log2(Δ): "the space required to represent one point".
        assert point_bits(4, 1024) == 40

    def test_counter_bits_signed(self):
        assert counter_bits(7) == 4

    def test_cells_bits_scales(self):
        assert cells_bits(10, 2, 256, 10) == 10 * cells_bits(1, 2, 256, 10)

    def test_float_bits(self):
        assert float_bits(3) == 192


class TestRng:
    def test_derive_seed_stable(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")
        assert derive_seed(42, "x") != derive_seed(42, "y")
        assert derive_seed(42, "x") != derive_seed(43, "x")

    def test_spawn_rng_reproducible(self):
        a = spawn_rng(7, "lbl").random(5)
        b = spawn_rng(7, "lbl").random(5)
        assert np.array_equal(a, b)

    def test_as_rng_passthrough(self):
        g = np.random.default_rng(1)
        assert as_rng(g) is g
        assert isinstance(as_rng(5), np.random.Generator)
        assert isinstance(as_rng(None), np.random.Generator)


class TestValidation:
    def test_check_delta(self):
        assert check_delta(256) == 256
        for bad in (0, 3, 100):
            with pytest.raises(ValueError):
                check_delta(bad)

    def test_check_points_range(self):
        with pytest.raises(ValueError):
            check_points(np.array([[0, 1]]), 16)
        with pytest.raises(ValueError):
            check_points(np.array([[1.5, 2.0]]), 16)
        out = check_points(np.array([[1, 16]]), 16)
        assert out.dtype == np.int64

    def test_check_eps_eta(self):
        with pytest.raises(ValueError):
            check_epsilon_eta(0.6, 0.1)
        with pytest.raises(ValueError):
            check_epsilon_eta(0.1, 0.0)

    def test_check_weights(self):
        with pytest.raises(ValueError):
            check_weights(np.array([1.0, -1.0]), 2)
        with pytest.raises(ValueError):
            check_weights(np.array([1.0]), 2)

    def test_failed_construction_reason(self):
        exc = FailedConstruction("too many cells")
        assert exc.reason == "too many cells"


class TestJL:
    def test_dimension_formula(self):
        assert jl_dimension(4, 0.5) >= 2
        assert jl_dimension(4, 0.1) > jl_dimension(4, 0.5)

    def test_projection_shape(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(100, 50))
        out = jl_transform(pts, 8, seed=1)
        assert out.shape == (100, 8)

    def test_distance_preservation(self):
        rng = np.random.default_rng(1)
        pts = rng.normal(size=(60, 300))
        out = jl_transform(pts, 64, seed=2)
        d_in = np.linalg.norm(pts[:30] - pts[30:], axis=1)
        d_out = np.linalg.norm(out[:30] - out[30:], axis=1)
        ratio = d_out / d_in
        assert 0.6 < ratio.min() and ratio.max() < 1.4

    def test_jl_then_discretize_valid_grid(self):
        rng = np.random.default_rng(2)
        pts = rng.normal(size=(200, 40))
        grid, t = jl_then_discretize(pts, 6, 1024, seed=3)
        assert grid.shape == (200, 6)
        assert grid.min() >= 1 and grid.max() <= 1024

    def test_clustering_cost_preserved_through_jl(self):
        """[MMR19] behaviour: k-means cost of a fixed partition survives the
        projection to within a moderate factor."""
        from repro.data.synthetic import gaussian_mixture
        from repro.metrics.costs import uncapacitated_cost
        from repro.solvers.lloyd import lloyd

        pts, _, labels = gaussian_mixture(800, 16, 1024, k=4, spread=0.02,
                                          seed=4, return_truth=True)
        proj = jl_transform(pts.astype(float), 8, seed=5)
        res_hi = lloyd(pts.astype(float), 4, seed=6)
        res_lo = lloyd(proj, 4, seed=6)
        # Relative cluster structure is preserved: low-dim solution labels,
        # lifted back to high dim, give near-optimal high-dim cost.
        lift_centers = np.stack([
            pts[res_lo.labels == c].mean(axis=0) if (res_lo.labels == c).any()
            else pts[0]
            for c in range(4)
        ])
        lifted_cost = uncapacitated_cost(pts.astype(float), lift_centers)
        assert lifted_cost <= 2.0 * res_hi.cost + 1e-9
