"""Tests for the clustering solvers (the (α, β) black boxes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import gaussian_mixture, unbalanced_mixture
from repro.metrics.costs import uncapacitated_cost
from repro.solvers import (
    CapacitatedKClustering,
    estimate_opt_cost,
    exact_capacitated_kclustering,
    kmeans_plusplus,
    lloyd,
    local_search_swap,
)
from repro.solvers.lloyd import weighted_center


class TestKMeansPP:
    def test_returns_k_rows_from_input(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 100, size=(200, 3))
        Z = kmeans_plusplus(pts, 5, seed=1)
        assert Z.shape == (5, 3)
        pt_set = set(map(tuple, pts.tolist()))
        assert all(tuple(z) in pt_set for z in Z.tolist())

    def test_separated_clusters_get_one_seed_each(self):
        pts, means, _ = gaussian_mixture(900, 2, 1024, k=3, spread=0.01,
                                         seed=3, return_truth=True)
        Z = kmeans_plusplus(pts.astype(float), 3, seed=5)
        # Every planted mean has a seed within 5 sigma.
        d = np.linalg.norm(means[:, None, :].astype(float) - Z[None, :, :], axis=2)
        assert (d.min(axis=1) < 5 * 0.01 * 1024).all()

    def test_weighted_seeding_prefers_heavy_points(self):
        pts = np.array([[0.0, 0.0], [100.0, 100.0]])
        w = np.array([1e-9, 1.0])
        Z = kmeans_plusplus(pts, 1, weights=w, seed=2)
        assert tuple(Z[0]) == (100.0, 100.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            kmeans_plusplus(np.empty((0, 2)), 2)

    def test_k_larger_than_distinct_points(self):
        pts = np.array([[1.0, 1.0], [2.0, 2.0]])
        Z = kmeans_plusplus(pts, 4, seed=0)
        assert Z.shape == (4, 2)


class TestWeightedCenter:
    def test_r2_is_weighted_mean(self):
        pts = np.array([[0.0, 0.0], [4.0, 0.0]])
        w = np.array([1.0, 3.0])
        c = weighted_center(pts, w, 2.0)
        assert c == pytest.approx([3.0, 0.0])

    def test_r1_is_geometric_median(self):
        # Geometric median of 3 collinear unit-weight points = middle point.
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]])
        c = weighted_center(pts, np.ones(3), 1.0)
        assert c[0] == pytest.approx(1.0, abs=1e-6)

    def test_r1_weiszfeld_beats_mean(self):
        rng = np.random.default_rng(1)
        pts = np.vstack([rng.normal(0, 1, (50, 2)), [[100.0, 100.0]]])
        med = weighted_center(pts, np.ones(51), 1.0)
        mean = pts.mean(axis=0)
        cost = lambda c: np.linalg.norm(pts - c, axis=1).sum()
        assert cost(med) < cost(mean)


class TestLloyd:
    def test_recovers_planted_clusters(self):
        pts, means, _ = gaussian_mixture(1200, 2, 1024, k=3, spread=0.01,
                                         seed=7, return_truth=True)
        res = lloyd(pts, 3, seed=4)
        d = np.linalg.norm(means[:, None, :].astype(float) - res.centers[None], axis=2)
        assert (d.min(axis=1) < 3 * 0.01 * 1024).all()

    def test_cost_monotone_vs_seeding(self):
        pts = gaussian_mixture(600, 2, 256, k=3, seed=8).astype(float)
        seeds = kmeans_plusplus(pts, 3, seed=9)
        seed_cost = uncapacitated_cost(pts, seeds, 2.0)
        res = lloyd(pts, 3, seed=9, init_centers=seeds)
        assert res.cost <= seed_cost + 1e-9

    def test_snap_delta_outputs_grid_centers(self):
        pts = gaussian_mixture(300, 2, 64, k=2, seed=3)
        res = lloyd(pts, 2, seed=1, snap_delta=64)
        assert res.centers.dtype == np.int64
        assert res.centers.min() >= 1 and res.centers.max() <= 64

    def test_weighted_equivalent_to_duplication(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 20, size=(40, 2))
        w = rng.integers(1, 4, size=40).astype(float)
        dup = np.repeat(pts, w.astype(int), axis=0)
        a = lloyd(pts, 2, weights=w, seed=6)
        b = lloyd(dup, 2, seed=6)
        assert a.cost == pytest.approx(b.cost, rel=0.25)


class TestCapacitatedSolver:
    def test_respects_capacity(self):
        pts = unbalanced_mixture(500, 2, 256, k=3, imbalance=6.0, seed=2).astype(float)
        t = len(pts) / 3 * 1.05
        solver = CapacitatedKClustering(k=3, capacity=t, seed=1, restarts=2)
        sol = solver.fit(pts)
        assert sol.max_violation() <= 1.0 + 1e-6

    def test_unbalanced_capacitated_costs_more_than_free(self):
        pts = unbalanced_mixture(500, 2, 256, k=3, imbalance=8.0, seed=4).astype(float)
        tight = CapacitatedKClustering(k=3, capacity=len(pts) / 3 * 1.02, seed=1).fit(pts)
        free = lloyd(pts, 3, seed=1)
        assert tight.cost > free.cost

    def test_weighted_fit(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 100, size=(80, 2))
        w = rng.uniform(0.5, 2.0, size=80)
        solver = CapacitatedKClustering(k=2, capacity=w.sum() / 2 * 1.2, seed=2)
        sol = solver.fit(pts, weights=w)
        assert sol.sizes.sum() == pytest.approx(w.sum())

    def test_infeasible_rejected(self):
        pts = np.zeros((10, 2))
        with pytest.raises(ValueError):
            CapacitatedKClustering(k=2, capacity=3).fit(pts)

    def test_matches_exact_on_tiny_instance(self):
        rng = np.random.default_rng(6)
        pts = rng.integers(0, 30, size=(9, 2)).astype(float)
        t = 5
        exact = exact_capacitated_kclustering(pts, 2, t, r=2.0)
        sol = CapacitatedKClustering(k=2, capacity=t, restarts=5, seed=3).fit(pts)
        assert sol.cost <= 2.0 * exact.cost + 1e-9


class TestLocalSearch:
    def test_improves_on_kmeanspp(self):
        pts = gaussian_mixture(400, 2, 256, k=4, seed=12).astype(float)
        seeds = kmeans_plusplus(pts, 4, seed=13)
        Z = local_search_swap(pts, 4, seed=13, candidate_pool=48, max_swaps=32)
        assert uncapacitated_cost(pts, Z, 2.0) <= uncapacitated_cost(pts, seeds, 2.0) + 1e-9


class TestPilot:
    def test_upper_bounds_planted_cost(self):
        pts, means, _ = gaussian_mixture(2000, 2, 512, k=3, spread=0.02,
                                         seed=15, return_truth=True)
        pilot = estimate_opt_cost(pts, 3, r=2.0, seed=1)
        planted = uncapacitated_cost(pts, means.astype(float), 2.0)
        # Pilot >= OPT (it is a feasible solution's cost) and within a small
        # factor of the planted cost on a well-separated mixture.
        assert pilot >= 0.8 * planted  # OPT can be slightly below planted
        assert pilot <= 3.0 * planted

    def test_empty_input_zero(self):
        assert estimate_opt_cost(np.empty((0, 2)), 3) == 0.0


class TestExactSolver:
    def test_exact_beats_any_medoid_choice(self):
        # The brute force optimizes over medoid centers; any other medoid
        # pair with its optimal capacitated assignment costs at least as much.
        import itertools

        from repro.assignment.capacitated import capacitated_assignment

        rng = np.random.default_rng(1)
        pts = np.unique(rng.integers(0, 10, size=(7, 2)), axis=0).astype(float)
        t = 4
        sol = exact_capacitated_kclustering(pts, 2, t, r=2.0)
        for combo in itertools.combinations(range(len(pts)), 2):
            res = capacitated_assignment(pts, pts[list(combo)], t, r=2.0,
                                         integral=False)
            assert sol.cost <= res.fractional_cost + 1e-9

    def test_exact_respects_capacity(self):
        rng = np.random.default_rng(2)
        pts = np.unique(rng.integers(0, 12, size=(8, 2)), axis=0).astype(float)
        t = int(np.ceil(len(pts) / 2))
        sol = exact_capacitated_kclustering(pts, 2, t, r=2.0)
        assert np.bincount(sol.labels, minlength=2).max() <= t
