"""Tests for the process-parallel ingest backend (repro.service.workers).

The load-bearing claim: a :class:`WorkerPoolIngest` is *bit-identical* to
the in-process :class:`ShardedIngest` — every worker builds its shard from
the shared ``(params, seed)``, sees exactly the events the in-process
backend would route to the same shard in the same order, and the fan-in
reuses the same serialized-state codec and exact linear-sketch merge.  So
the two backends must agree not just on coreset contents but on the full
serialized state, byte for byte.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import CoresetParams
from repro.core.io import read_json
from repro.data.synthetic import gaussian_mixture
from repro.data.workloads import churn_stream
from repro.service import (
    ClusteringService,
    ServiceConfig,
    ShardedIngest,
    WorkerPoolIngest,
    streaming_state_to_dict,
)
from repro.streaming import StreamingCoreset, materialize


@pytest.fixture(scope="module")
def world():
    """Small dynamic-stream instance: (stream, survivors, params)."""
    pts = np.unique(gaussian_mixture(900, 2, 64, k=3, seed=21), axis=0)
    stream = churn_stream(pts, delete_fraction=0.35, seed=4)
    survivors = materialize(stream, d=2)
    params = CoresetParams.practical(k=3, d=2, delta=64)
    return stream, survivors, params


def _canonical(state_dict: dict) -> str:
    return json.dumps(state_dict, sort_keys=True)


def _coreset_points(cs):
    return sorted(map(tuple, cs.points.tolist()))


class TestParallelDeterminism:
    def test_four_workers_bit_identical_to_inprocess(self, world):
        """4 worker processes == 4 in-process shards, down to the serialized
        state bytes (same routing, same per-shard event order, same merge)."""
        stream, _, params = world
        inproc = ShardedIngest(params, num_shards=4, seed=9)
        inproc.apply_batch(stream)
        with WorkerPoolIngest(params, num_workers=4, seed=9) as pool:
            assert pool.apply_batch(stream) == len(stream)
            assert pool.events_per_shard == inproc.events_per_shard
            pool_state = pool.to_state_dict()
            pool_merged = pool.merged_state()
        assert _canonical(pool_state) == _canonical(inproc.to_state_dict())
        want = inproc.merged_state()
        assert (_canonical(streaming_state_to_dict(pool_merged))
                == _canonical(streaming_state_to_dict(want)))

    def test_workers_match_single_shard_exactly(self, world):
        """The merged pool equals one unsharded driver that saw everything
        (the Section 4.3 streaming↔distributed bridge, across processes)."""
        stream, _, params = world
        single = StreamingCoreset(params, seed=9)
        single.process(stream)
        want = single.finalize()
        with WorkerPoolIngest(params, num_workers=3, seed=9) as pool:
            pool.apply_batch(stream)
            got = pool.merged_state().finalize()
        assert got.o == want.o
        assert _coreset_points(got) == _coreset_points(want)
        assert np.allclose(np.sort(got.weights), np.sort(want.weights))

    def test_query_results_identical_across_backends(self, world):
        """The full service answer (centers, cost, chosen o) is bit-identical
        between workers=N and the serial num_shards=N configuration."""
        stream, _, _ = world
        with ClusteringService(
                ServiceConfig(k=3, d=2, delta=64, workers=4, seed=17)) as par, \
            ClusteringService(
                ServiceConfig(k=3, d=2, delta=64, num_shards=4, workers=0,
                              seed=17)) as ser:
            par.apply_events(stream)
            ser.apply_events(stream)
            got, _ = par.query()
            want, _ = ser.query()
        assert np.array_equal(got.centers, want.centers)
        assert got.cost == want.cost
        assert got.o == want.o
        assert got.capacity == want.capacity
        assert got.coreset_size == want.coreset_size

    def test_single_event_apply_and_version(self, world):
        stream, _, params = world
        events = list(stream)[:5]
        with WorkerPoolIngest(params, num_workers=2, seed=3) as pool:
            idx = pool.apply(events[0].point, events[0].sign)
            assert idx == pool.shard_of(events[0].point)
            assert pool.version == 1 and pool.num_events == 1
            pool.apply_batch(events[1:])
            assert pool.version == 2 and pool.num_events == 5


class TestWorkerCheckpointRestore:
    def test_pool_checkpoint_restore_roundtrip(self, world, tmp_path):
        """Checkpoint a live pool mid-stream, restore into a fresh pool,
        keep ingesting both — indistinguishable from never having stopped."""
        stream, _, _ = world
        events = list(stream)
        half = len(events) // 2
        ckpt = tmp_path / "pool.ckpt.json"
        with ClusteringService(
                ServiceConfig(k=3, d=2, delta=64, workers=2, seed=17)) as svc:
            svc.apply_events(events[:half])
            info = svc.checkpoint(ckpt)
            assert info["events"] == half

            twin = ClusteringService.restore(ckpt)
            try:
                assert isinstance(twin.ingest, WorkerPoolIngest)
                assert twin.ingest.num_events == half
                svc.apply_events(events[half:])
                twin.apply_events(events[half:])
                want, _ = svc.query()
                got, _ = twin.query()
            finally:
                twin.close()
        assert np.array_equal(got.centers, want.centers)
        assert got.cost == want.cost and got.o == want.o

    def test_checkpoints_interchangeable_across_backends(self, world, tmp_path):
        """A pool checkpoint restores into the in-process backend (and gives
        the same answers) when its config asks for workers=0."""
        stream, _, _ = world
        ckpt = tmp_path / "pool.ckpt.json"
        with ClusteringService(
                ServiceConfig(k=3, d=2, delta=64, workers=2, seed=17)) as svc:
            svc.apply_events(stream)
            want, _ = svc.query()
            svc.checkpoint(ckpt)
        payload = read_json(ckpt)
        payload["config"]["workers"] = 0
        payload["config"]["num_shards"] = 2
        (tmp_path / "inproc.ckpt.json").write_text(json.dumps(payload))
        twin = ClusteringService.restore(tmp_path / "inproc.ckpt.json")
        assert isinstance(twin.ingest, ShardedIngest)
        got, _ = twin.query()
        assert np.array_equal(got.centers, want.centers)
        assert got.cost == want.cost and got.o == want.o

    def test_restore_rejects_worker_count_mismatch(self, world, tmp_path):
        stream, _, _ = world
        ckpt = tmp_path / "pool.ckpt.json"
        with ClusteringService(
                ServiceConfig(k=3, d=2, delta=64, workers=2, seed=17)) as svc:
            svc.apply_events(list(stream)[:10])
            svc.checkpoint(ckpt)
        payload = read_json(ckpt)
        payload["config"]["workers"] = 3
        bad = tmp_path / "bad.ckpt.json"
        bad.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="workers"):
            ClusteringService.restore(bad)


class TestPoolRobustness:
    def test_malformed_batch_rejected_before_any_send(self, world):
        """One bad event rejects the whole batch — no worker sees anything,
        no version bump, so nothing can partially corrupt the sketches."""
        stream, _, params = world
        good = [(ev.point, ev.sign) for ev in list(stream)[:4]]
        with WorkerPoolIngest(params, num_workers=2, seed=3) as pool:
            with pytest.raises(ValueError, match=r"\[0, 64\]"):
                pool.apply_batch(good + [((1, -1), 1)])
            assert pool.version == 0 and pool.num_events == 0
            assert pool.merged_state().num_updates == 0
            # The pool is still healthy afterwards.
            assert pool.apply_batch(good) == 4
            assert pool.merged_state().num_updates == 4

    def test_close_is_idempotent_and_blocks_further_use(self, world):
        _, _, params = world
        pool = WorkerPoolIngest(params, num_workers=2, seed=3)
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.apply((3, 3), 1)

    def test_stats_extra_shape(self, world):
        stream, _, params = world
        with WorkerPoolIngest(params, num_workers=2, seed=3) as pool:
            pool.apply_batch(list(stream)[:20])
            extra = pool.stats_extra()
        assert extra["mode"] == "parallel"
        assert len(extra["workers"]) == 2
        assert sum(w["events"] for w in extra["workers"]) == 20
        assert all(w["batch_latency_s"] >= 0.0 for w in extra["workers"])
        assert extra["space_bits"] > 0
