"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import CoresetParams
from repro.data.synthetic import gaussian_mixture


@pytest.fixture
def small_mixture():
    """A small, fast mixture instance: (points, params, planted means)."""
    pts, means, labels = gaussian_mixture(
        1200, 2, 256, k=3, spread=0.02, seed=11, return_truth=True
    )
    pts = np.unique(pts, axis=0)
    params = CoresetParams.practical(k=3, d=2, delta=256, eps=0.25, eta=0.25)
    return pts, params, means.astype(np.float64)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
