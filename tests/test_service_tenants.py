"""Tests for the multi-tenant subsystem (repro.service.tenants + aserver).

Covers the load-bearing claims of the tentpole:

1. tenant *isolation* — every named stream answers exactly as a
   single-tenant service built from ``tenant_config(stream_id)`` and fed
   the same events, including through LRU evict → restore cycles;
2. *eviction is invisible* — checkpoint → evict → restore-on-touch is
   bit-identical, for in-process shards and for ``workers > 0``;
3. the asyncio wire front end — ``stream_id`` routing, pre-tenant
   back-compat (no ``stream_id`` → the ``"default"`` tenant), quota
   errors as clean envelopes, the ``tenants`` op, and frame caps;
4. the acceptance bar: one async server hosting 100+ named streams,
   queried while ingest continues, with at least one tenant bounced
   through disk mid-run, every answer matching its reference.
"""

from __future__ import annotations

import json
import socket
import threading
import zlib

import numpy as np
import pytest

from repro.service import (
    ClusteringService,
    QuotaExceeded,
    ServiceClient,
    ServiceConfig,
    TenantQuota,
    TenantRegistry,
    start_async_server,
    start_server,
)
from repro.service.client import ServiceError
from repro.service.protocol import DEFAULT_STREAM_ID
from repro.service.state import (
    tenant_checkpoint_filename,
    tenant_id_from_filename,
)

# Small-but-real problem shape: 4 guess instances instead of 22, so a
# tenant costs ~50 ms to create and ~10 ms to query — cheap enough to host
# a hundred of them in one test.
CHEAP = dict(k=2, d=2, delta=32, num_shards=1, seed=11,
             o_range=(1.0, 8.0), restarts=1)


def cheap_config(**overrides) -> ServiceConfig:
    return ServiceConfig(**{**CHEAP, **overrides})


def stream_points(stream_id: str, n: int = 24, delta: int = 32,
                  d: int = 2) -> np.ndarray:
    """Deterministic per-stream workload (distinct across stream ids)."""
    rng = np.random.default_rng(zlib.crc32(stream_id.encode()))
    return rng.integers(0, delta + 1, size=(n, d))


def wire_dict(obj) -> dict:
    """Normalize through JSON so in-process and wire results compare ==."""
    return json.loads(json.dumps(obj))


# --------------------------------------------------------------------------
class TestTenantRegistry:
    def test_lazy_creation_and_derived_seeds(self):
        cfg = cheap_config()
        with TenantRegistry(cfg) as reg:
            assert reg.live_count() == 0
            assert reg.tenant_config(DEFAULT_STREAM_ID) == cfg
            ca, cb = reg.tenant_config("a"), reg.tenant_config("b")
            assert ca.seed != cfg.seed and cb.seed != cfg.seed
            assert ca.seed != cb.seed
            assert ca == reg.tenant_config("a")  # deterministic derivation
            reg.insert("a", stream_points("a"))
            assert reg.live_count() == 1  # "b" was configured, never built

    def test_tenants_are_isolated_from_each_other(self):
        cfg = cheap_config()
        with TenantRegistry(cfg) as reg:
            streams = ["alpha", "beta", DEFAULT_STREAM_ID]
            # Interleave ingest across tenants to catch cross-talk.
            for _ in range(2):
                for sid in streams:
                    reg.insert(sid, stream_points(sid))
            for sid in streams:
                reg.delete(sid, stream_points(sid)[:5])
            for sid in streams:
                ref = ClusteringService(reg.tenant_config(sid))
                ref.insert(stream_points(sid))
                ref.insert(stream_points(sid))
                ref.delete(stream_points(sid)[:5])
                want, _ = ref.query()
                got, _ = reg.query(sid)
                assert got.to_dict() == want.to_dict()
                ref.close()

    def test_event_quota_rejected_atomically(self):
        with TenantRegistry(cheap_config(),
                            quota=TenantQuota(max_events=30)) as reg:
            reg.insert("q", stream_points("q", n=24))
            with pytest.raises(QuotaExceeded) as exc:
                reg.insert("q", stream_points("q", n=10))
            assert exc.value.stream_id == "q"
            stats = reg.stats("q")
            assert stats["events"] == 24  # nothing from the rejected batch
            assert stats["version"] == 1
            reg.insert("q", stream_points("q", n=6))  # exactly at quota: fine

    def test_byte_quota_counts_nominal_volume(self):
        cfg = cheap_config()
        per_event = 8 * cfg.d
        with TenantRegistry(cfg,
                            quota=TenantQuota(max_bytes=20 * per_event)) as reg:
            reg.insert("q", stream_points("q", n=20))
            assert reg.stats("q")["bytes_ingested"] == 20 * per_event
            with pytest.raises(QuotaExceeded, match="byte"):
                reg.insert("q", stream_points("q", n=1))


# --------------------------------------------------------------------------
class TestEvictionAndRestore:
    def test_lru_victim_order(self, tmp_path):
        with TenantRegistry(cheap_config(), tenants_dir=tmp_path,
                            max_live_tenants=2) as reg:
            for sid in ("a", "b", "c"):
                reg.insert(sid, stream_points(sid))
            live = {t["stream_id"] for t in reg.overview() if t["live"]}
            assert live == {"b", "c"}  # "a" was least recently used
            reg.insert("a", stream_points("a"))  # restores a, evicts b
            live = {t["stream_id"] for t in reg.overview() if t["live"]}
            assert live == {"a", "c"}
            assert (tmp_path / tenant_checkpoint_filename("b")).exists()

    def test_evict_restore_answers_bit_identically(self, tmp_path):
        with TenantRegistry(cheap_config(), tenants_dir=tmp_path) as reg:
            reg.insert("t", stream_points("t"))
            reg.delete("t", stream_points("t")[:4])
            before, _ = reg.query("t")
            assert reg.evict("t") is True
            assert reg.live_count() == 0
            assert (tmp_path / tenant_checkpoint_filename("t")).exists()
            after, _ = reg.query("t")  # transparent restore-on-touch
            assert after.to_dict() == before.to_dict()
            stats = reg.stats("t")
            assert stats["evictions"] == 1 and stats["restores"] == 1
            # Restored tenants keep ingesting in lockstep with a reference.
            reg.insert("t", stream_points("t", n=8))
            ref = ClusteringService(reg.tenant_config("t"))
            ref.insert(stream_points("t"))
            ref.delete(stream_points("t")[:4])
            ref.insert(stream_points("t", n=8))
            want, _ = ref.query()
            got, _ = reg.query("t")
            assert got.to_dict() == want.to_dict()
            ref.close()

    @pytest.mark.slow
    def test_evict_restore_with_worker_processes(self, tmp_path):
        cfg = cheap_config(workers=1)
        with TenantRegistry(cfg, tenants_dir=tmp_path) as reg:
            reg.insert("w", stream_points("w"))
            before, _ = reg.query("w")
            assert reg.evict("w") is True
            after, _ = reg.query("w")
            assert after.to_dict() == before.to_dict()
            assert reg.stats("w")["restores"] == 1

    def test_pinned_tenant_is_not_evictable(self, tmp_path):
        with TenantRegistry(cheap_config(), tenants_dir=tmp_path) as reg:
            reg.insert("p", stream_points("p"))
            lease = reg._lease("p")
            lease.__enter__()
            try:
                assert reg.evict("p") is False  # pinned: in-flight op
            finally:
                lease.__exit__(None, None, None)
            assert reg.evict("p") is True  # unpinned: evictable again

    def test_close_persists_and_new_registry_restores(self, tmp_path):
        cfg = cheap_config()
        reg = TenantRegistry(cfg, tenants_dir=tmp_path)
        reg.insert("s", stream_points("s"))
        want, _ = reg.query("s")
        bytes_before = reg.stats("s")["bytes_ingested"]
        reg.close()  # persists every live tenant
        with TenantRegistry(cfg, tenants_dir=tmp_path) as reg2:
            rows = reg2.overview()  # sees the on-disk tenant without loading
            assert [t["stream_id"] for t in rows] == ["s"]
            assert reg2.live_count() == 0
            got, _ = reg2.query("s")
            assert got.to_dict() == want.to_dict()
            # Quota counters survive the disk round-trip too.
            assert reg2.stats("s")["bytes_ingested"] == bytes_before

    def test_mislabeled_checkpoint_rejected(self, tmp_path):
        with TenantRegistry(cheap_config(), tenants_dir=tmp_path) as reg:
            reg.insert("real", stream_points("real"))
            assert reg.evict("real")
            src = tmp_path / tenant_checkpoint_filename("real")
            dst = tmp_path / tenant_checkpoint_filename("impostor")
            dst.write_bytes(src.read_bytes())
            with pytest.raises(ValueError, match="stamped for stream"):
                reg.query("impostor")

    def test_filename_codec_roundtrips_weird_ids(self):
        for sid in ("plain", "with space", "slash/../../evil", "utf-δ",
                    "dots..", "%2e%2e"):
            name = tenant_checkpoint_filename(sid)
            assert "/" not in name  # no traversal, whatever the id says
            assert tenant_id_from_filename(name) == sid
        assert tenant_id_from_filename("unrelated.json") is None


# --------------------------------------------------------------------------
class TestAsyncWire:
    def test_stream_routing_and_default_compat(self, tmp_path):
        reg = TenantRegistry(cheap_config())
        server, thread = start_async_server(reg)
        host, port = server.address
        try:
            with ServiceClient(host, port, stream_id="named") as cli:
                resp = cli.request("insert",
                                   points=stream_points("named").tolist())
                assert resp["stream_id"] == "named"
                assert resp["applied"] == len(stream_points("named"))
                # No stream_id on the wire → the "default" tenant.
                cli.stream_id = None
                assert cli.stats()["events"] == 0
                cli.stream_id = "named"
                assert cli.stats()["events"] == len(stream_points("named"))
                tenants = {t["stream_id"] for t in cli.tenants()}
                assert tenants == {"named", DEFAULT_STREAM_ID}
                cli.shutdown()
            thread.join(10)
            assert not thread.is_alive()
        finally:
            reg.close()

    def test_concurrent_clients_stay_isolated(self):
        reg = TenantRegistry(cheap_config())
        server, thread = start_async_server(reg)
        host, port = server.address
        errors: list[BaseException] = []

        def drive(sid: str) -> None:
            try:
                with ServiceClient(host, port, stream_id=sid) as cli:
                    for _ in range(3):
                        cli.insert(stream_points(sid))
                    assert cli.stats()["events"] == 3 * len(stream_points(sid))
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        try:
            threads = [threading.Thread(target=drive, args=(f"c{i}",))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
            assert not errors
            for i in range(8):
                ref = ClusteringService(reg.tenant_config(f"c{i}"))
                for _ in range(3):
                    ref.insert(stream_points(f"c{i}"))
                want, _ = ref.query()
                got, _ = reg.query(f"c{i}")
                assert got.to_dict() == want.to_dict()
                ref.close()
        finally:
            server.shutdown()
            thread.join(10)
            reg.close()

    def test_quota_violation_is_clean_error_envelope(self):
        reg = TenantRegistry(cheap_config(), quota=TenantQuota(max_events=5))
        server, thread = start_async_server(reg)
        host, port = server.address
        try:
            with ServiceClient(host, port, stream_id="q") as cli:
                with pytest.raises(ServiceError, match="quota exceeded"):
                    cli.request("insert",
                                points=stream_points("q", n=6).tolist())
                # The connection survives the rejected batch.
                assert cli.ping()
                assert cli.stats()["events"] == 0
        finally:
            server.shutdown()
            thread.join(10)
            reg.close()

    def test_oversized_frame_answered_then_closed(self):
        reg = TenantRegistry(cheap_config())
        server, thread = start_async_server(reg, max_request_bytes=2048)
        host, port = server.address
        try:
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(b'{"op": "insert", "points": [' +
                             b"[1, 1], " * 1024 + b"[1, 1]]}\n")
                f = sock.makefile("rb")
                resp = json.loads(f.readline())
                assert resp["ok"] is False
                assert "exceeds" in resp["error"]
                assert f.readline() == b""  # server closed the connection
        finally:
            server.shutdown()
            thread.join(10)
            reg.close()

    def test_bad_stream_ids_rejected(self):
        reg = TenantRegistry(cheap_config())
        server, thread = start_async_server(reg)
        host, port = server.address
        try:
            with ServiceClient(host, port) as cli:
                for bad in ["", "x" * 200, "new\nline", 7]:
                    with pytest.raises(ServiceError, match="stream_id"):
                        cli.request("stats", stream_id=bad)
                assert cli.ping()  # connection intact throughout
        finally:
            server.shutdown()
            thread.join(10)
            reg.close()

    def test_sync_server_is_single_tenant(self):
        service = ClusteringService(cheap_config())
        server, thread = start_server(service)
        host, port = server.server_address
        try:
            with ServiceClient(host, port) as cli:
                cli.insert(stream_points(DEFAULT_STREAM_ID, n=6))
                # Explicitly addressing "default" is accepted...
                cli.stream_id = DEFAULT_STREAM_ID
                assert cli.stats()["events"] == 6
                rows = cli.tenants()
                assert [t["stream_id"] for t in rows] == [DEFAULT_STREAM_ID]
                # ...any other stream gets pointed at the async server.
                cli.stream_id = "other"
                with pytest.raises(ServiceError, match="single-tenant"):
                    cli.stats()
                cli.stream_id = None
                cli.shutdown()
            thread.join(10)
        finally:
            server.server_close()
            service.close()


# --------------------------------------------------------------------------
class TestThousandKnownTenants:
    """O(live) scans: 1000 known-but-cold tenants must cost nothing."""

    def test_overview_and_eviction_scan_are_o_live(self, tmp_path):
        reg = TenantRegistry(cheap_config(), tenants_dir=tmp_path,
                             max_live_tenants=4)
        # 1000 cold tenants known only from their on-disk checkpoints.  The
        # payloads are deliberately invalid JSON, so if any code path loads
        # (or even reads) a cold tenant, the test fails loudly.
        for i in range(1000):
            path = tmp_path / tenant_checkpoint_filename(f"cold-{i:04d}")
            path.write_text("!not json!")

        # Spy on the eviction policy: the candidate list handed to it must
        # be the *live* population (<= budget + 1 pinned), never the 1000
        # known tenants.
        scans: list[int] = []
        orig_victims = reg._policy.victims

        def spying_victims(evictable, excess):
            scans.append(len(evictable))
            return orig_victims(evictable, excess)

        reg._policy.victims = spying_victims
        try:
            for i in range(6):  # 6 tenants through a budget of 4: evicts
                reg.insert(f"hot-{i}", stream_points(f"hot-{i}", n=4))
        finally:
            reg._policy.victims = orig_victims

        assert reg.live_count() == 4
        assert scans, "eviction never consulted the policy"
        assert max(scans) <= 5, \
            f"victim scan saw {max(scans)} candidates; should be O(live)"

        # live_only overview: exactly the resident tenants, no disk scan.
        live = reg.overview(live_only=True)
        assert len(live) == 4
        assert all(row["live"] for row in live)
        assert not any(row["stream_id"].startswith("cold-") for row in live)

        # Full overview still enumerates all 1006 known tenants (6 touched
        # + 1000 disk stubs) without loading any of them.
        full = reg.overview()
        assert len(full) == 1006
        assert sum(row["live"] for row in full) == 4
        reg.close(persist=False)


# --------------------------------------------------------------------------
class TestHundredStreams:
    """The acceptance bar for the multi-tenant subsystem."""

    N_STREAMS = 100
    MAX_LIVE = 16

    @pytest.mark.slow
    def test_hundred_streams_with_mid_run_eviction(self, tmp_path):
        cfg = cheap_config()
        reg = TenantRegistry(cfg, tenants_dir=tmp_path,
                             max_live_tenants=self.MAX_LIVE)
        server, thread = start_async_server(reg)
        host, port = server.address
        streams = [f"s{i:03d}" for i in range(self.N_STREAMS)]
        stop = threading.Event()
        bg_applied = [0]
        bg_errors: list[BaseException] = []

        def background_ingest() -> None:
            """Keep one tenant ingesting while the main thread queries."""
            try:
                with ServiceClient(host, port, stream_id="background") as cli:
                    while not stop.is_set():
                        bg_applied[0] += cli.insert(
                            stream_points("background", n=8))
            except BaseException as exc:
                bg_errors.append(exc)

        try:
            # Phase 1: ingest all streams over the wire.  With 100 streams
            # against a budget of 16, LRU eviction must run mid-ingest.
            with ServiceClient(host, port) as cli:
                for sid in streams:
                    cli.stream_id = sid
                    cli.insert(stream_points(sid))
                    cli.delete(stream_points(sid)[:4])
            assert reg.live_count() <= self.MAX_LIVE

            # Phase 2: query every stream while another keeps ingesting.
            bg = threading.Thread(target=background_ingest)
            bg.start()
            answers = {}
            with ServiceClient(host, port) as cli:
                for sid in streams:
                    cli.stream_id = sid
                    answers[sid] = cli.query()
            stop.set()
            bg.join(60)
            assert not bg.is_alive() and not bg_errors
            assert bg_applied[0] > 0  # ingest really ran during the queries

            # Mid-run eviction and restore actually happened (not just
            # possible): most streams were bounced through disk and back.
            rows = {t["stream_id"]: t for t in reg.overview()}
            assert sum(t.get("evictions", 0) for t in rows.values()) \
                >= self.N_STREAMS - self.MAX_LIVE
            assert sum(t.get("restores", 0) for t in rows.values()) >= 1
            assert sum(t["live"] for t in rows.values()) <= self.MAX_LIVE

            # Isolation: every stream's wire answer is bit-identical to a
            # single-tenant service fed the same events, eviction and all.
            for sid in streams:
                ref = ClusteringService(reg.tenant_config(sid))
                ref.insert(stream_points(sid))
                ref.delete(stream_points(sid)[:4])
                want, _ = ref.query()
                got = dict(answers[sid])
                got.pop("cache_hit")
                assert got == wire_dict(want.to_dict()), sid
                ref.close()
        finally:
            stop.set()
            server.shutdown()
            thread.join(10)
            reg.close()
