"""Tests for CoresetParams — the theory formulas and practical calibration."""

from __future__ import annotations

import math

import pytest

from repro.core.params import CoresetParams


class TestTheoryFormulas:
    def test_exact_paper_values(self):
        p = CoresetParams.from_theory(k=2, d=3, delta=1024, r=2.0, eps=0.2, eta=0.2)
        L = 10
        dd = 3 ** 3.0
        scale = 2.0 ** (-24)
        assert p.L == L
        assert p.gamma == pytest.approx(scale * min(0.2 / (2 * L), 0.2 / ((2 + dd) * L)))
        assert p.xi == pytest.approx(scale * 0.2 / (2 * (2 + dd) * L**2))
        assert p.lam == int(1e6 * 2 * 8 * 3 * L * math.ceil(math.log(2 * 3 * L)))
        assert p.lam_est == 100 * 3 * L
        assert p.threshold_c == 0.01
        assert p.mode == "theory"

    def test_threshold_formula(self):
        p = CoresetParams.from_theory(k=2, d=2, delta=64, r=2.0)
        o = 1000.0
        # T_i = 0.01 o / (√d g_i)^r with g_3 = 64/8 = 8.
        assert p.threshold(3, o) == pytest.approx(0.01 * o / (2 * 64.0))

    def test_threshold_monotone_in_level(self):
        p = CoresetParams.practical(k=3, d=2, delta=256)
        o = 5e4
        ts = [p.threshold(i, o) for i in range(0, p.L)]
        assert all(a < b for a, b in zip(ts, ts[1:]))

    def test_phi_formula_theory(self):
        p = CoresetParams.from_theory(k=2, d=2, delta=64, r=2.0)
        o = 10.0
        expected = min(1.0, (2.0**24) * p.lam / (p.xi**3 * p.gamma * p.threshold(5, o)))
        assert p.phi(5, o) == pytest.approx(expected)

    def test_theory_phi_is_one_at_laptop_scale(self):
        # Documents WHY the practical regime exists.
        p = CoresetParams.from_theory(k=4, d=3, delta=1024)
        assert p.phi(8, 1e7) == 1.0


class TestPracticalRegime:
    def test_functional_forms_preserved(self):
        a = CoresetParams.practical(k=2, d=2, delta=256)
        b = CoresetParams.practical(k=8, d=2, delta=256)
        # γ decreases (or stays floored) as k grows; ξ strictly decreases.
        assert b.gamma <= a.gamma
        assert b.xi < a.xi

    def test_phi_decreases_with_level(self):
        p = CoresetParams.practical(k=3, d=2, delta=256)
        o = 1e5
        phis = [p.phi(i, o) for i in range(0, p.L)]
        assert all(x >= y for x, y in zip(phis, phis[1:]))

    def test_phi_times_cutoff_is_samples_per_part(self):
        p = CoresetParams.practical(k=3, d=2, delta=256, samples_per_part=32)
        o = 1e7
        level = p.L - 1
        if p.phi(level, o) < 1.0:
            assert p.phi(level, o) * p.small_part_cutoff(level, o) == pytest.approx(32.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CoresetParams.practical(k=0, d=2, delta=256)
        with pytest.raises(ValueError):
            CoresetParams.practical(k=2, d=2, delta=100)  # not a power of 2
        with pytest.raises(ValueError):
            CoresetParams.practical(k=2, d=2, delta=256, eps=0.7)

    def test_with_overrides(self):
        p = CoresetParams.practical(k=2, d=2, delta=256)
        q = p.with_overrides(gamma=0.5)
        assert q.gamma == 0.5 and p.gamma != 0.5
        assert q.k == p.k

    def test_guesses_cover_range(self):
        p = CoresetParams.practical(k=2, d=2, delta=256)
        gs = list(p.guesses(1000))
        assert gs[0] == 1.0
        assert gs[-1] >= p.guess_upper_bound(1000)
        # Geometric schedule.
        assert all(b == 2 * a for a, b in zip(gs, gs[1:]))


class TestSketchCapacities:
    def test_storing_alpha_positive_integer(self):
        p = CoresetParams.practical(k=3, d=2, delta=256)
        a = p.storing_alpha(4, 1e5, p.psi(4, 1e5))
        assert isinstance(a, int) and a >= 8

    def test_storing_beta_covers_expected_samples(self):
        # β̂ must exceed the expected samples of a threshold-sized cell.
        p = CoresetParams.practical(k=3, d=2, delta=256)
        o = 1e6
        for level in range(0, p.L):
            assert p.storing_beta(level, o) >= p.phi(level, o) * p.threshold(level, o)

    def test_theory_mode_uses_paper_forms(self):
        p = CoresetParams.from_theory(k=2, d=2, delta=64)
        o = 100.0
        val = p.storing_alpha(2, o, 1.0)
        expected = 1e6 * (2 + 2**3.0 * 1.0 * p.threshold(2, o)) * p.L**2
        assert val == max(8, int(math.ceil(expected)))
