"""Tests for ``repro lint`` — the AST-based invariant linter.

Each rule family (DET / HOT / ASYNC / WIRE) is exercised against a
positive and a negative fixture under ``tests/lint_fixtures/``; the
fixtures opt into a family with ``# repro-lint: scope=<family>`` markers
(WIRE groups are detected structurally, by a ``protocol.py`` declaring
``OPS``).  The fixtures directory is excluded from directory walks, so
linting ``tests`` stays clean while these tests lint the fixture files
explicitly.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis_lint import (
    ALL_RULES,
    HOT_FILES,
    UsageError,
    all_codes,
    run_lint,
)

ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def lint(*names, select=None):
    return run_lint([FIXTURES / n for n in names], select=select, root=ROOT)


def codes(result) -> set:
    return {f.code for f in result.findings}


# ---------------------------------------------------------------------- DET
class TestDeterminismRule:
    def test_bad_fixture_fires_every_code(self):
        got = codes(lint("det_bad.py"))
        assert {"DET101", "DET102", "DET103", "DET104", "DET105"} <= got

    def test_det101_covers_all_three_rng_forms(self):
        hits = [f for f in lint("det_bad.py").findings if f.code == "DET101"]
        assert len(hits) == 3  # random.*, np.random global, bare default_rng()

    def test_good_fixture_is_clean(self):
        assert lint("det_good.py").clean

    def test_scope_marker_gates_the_family(self):
        # hot_bad.py has no det scope marker: DET must not fire there.
        assert not any(f.family == "DET"
                       for f in lint("hot_bad.py").findings)


# ---------------------------------------------------------------------- HOT
class TestHotPathRule:
    def test_bad_fixture_fires_both_codes(self):
        result = lint("hot_bad.py")
        by_code = [f.code for f in result.findings]
        assert by_code.count("HOT201") == 2  # one for, one while
        assert by_code.count("HOT202") == 1

    def test_good_fixture_is_clean(self):
        assert lint("hot_good.py").clean

    def test_real_hot_files_exist_and_are_clean(self):
        paths = [ROOT / "src" / rel for rel in HOT_FILES]
        assert len(paths) == 6 and all(p.is_file() for p in paths)
        result = run_lint(paths, select=["HOT"], root=ROOT)
        assert result.clean, "\n".join(f.render() for f in result.findings)


# -------------------------------------------------------------------- ASYNC
class TestAsyncSafetyRule:
    def test_bad_fixture_fires_both_codes(self):
        result = lint("async_bad.py")
        by_code = [f.code for f in result.findings]
        assert by_code.count("ASYNC301") == 3  # registry call, json.dump, open
        assert by_code.count("ASYNC302") == 1

    def test_good_fixture_is_clean(self):
        # to_thread wrapping, nested sync defs, and async-with locks are
        # all sanctioned patterns.
        assert lint("async_good.py").clean


# --------------------------------------------------------------------- WIRE
class TestWireProtocolRule:
    def test_bad_group_reports_every_drift_kind(self):
        result = lint("wire_bad/protocol.py", "wire_bad/aserver.py",
                      "wire_bad/server.py", "wire_bad/client.py")
        assert {"WIRE401", "WIRE402", "WIRE403"} <= codes(result)
        messages = "\n".join(f.message for f in result.findings)
        assert "'query'" in messages        # unhandled by server.py
        assert "'extra'" in messages        # handled but undeclared
        assert "'mystery'" in messages      # unreachable from client
        assert "'undeclared'" in messages   # sent but undeclared

    def test_siblings_load_from_disk(self):
        # Naming only protocol.py still cross-checks the whole group.
        result = lint("wire_bad/protocol.py")
        assert {"WIRE401", "WIRE402", "WIRE403"} <= codes(result)

    def test_good_group_is_clean(self):
        assert lint("wire_good/protocol.py", "wire_good/aserver.py",
                    "wire_good/server.py", "wire_good/client.py").clean

    def test_real_service_group_is_clean(self):
        result = run_lint([ROOT / "src/repro/service/protocol.py"],
                          select=["WIRE"], root=ROOT)
        assert result.clean, "\n".join(f.render() for f in result.findings)

    def test_speaker_good_is_clean(self):
        assert lint("wire_speaker_good.py").clean

    def test_speaker_bad_reports_every_drift_kind(self):
        result = lint("wire_speaker_bad.py")
        assert {"WIRE404", "WIRE405"} <= codes(result)
        messages = "\n".join(f.message for f in result.findings)
        assert "'flush'" in messages      # declared, absent from protocol OPS
        assert "'teleport'" in messages   # sent literal unknown to the server
        assert "'query'" in messages      # spoken but not declared
        assert "'ping'" in messages       # declared but never spoken

    def test_speaker_bad_target_is_a_finding(self, tmp_path):
        speaker = tmp_path / "speaker.py"
        speaker.write_text(  # split so this literal is not itself a marker
            "# repro-lint: " + "wire-speaker" + "=nowhere/protocol.py"
            + " ops=ping\n")
        result = run_lint([speaker], select=["WIRE"], root=ROOT)
        assert codes(result) == {"WIRE404"}
        assert "not a readable protocol" in result.findings[0].message

    def test_real_fleet_speaker_is_clean(self):
        result = run_lint([ROOT / "src/repro/distributed/fleet.py"],
                          select=["WIRE"], root=ROOT)
        assert result.clean, "\n".join(f.render() for f in result.findings)


# ------------------------------------------------------------- suppressions
class TestSuppressions:
    def test_reasoned_directives_silence_inline_standalone_and_family(self):
        assert lint("suppressed.py").clean

    def test_reasonless_directive_reports_and_does_not_suppress(self):
        result = lint("suppressed_noreason.py")
        assert codes(result) == {"DET104", "LINT001"}

    def test_parse_error_is_a_finding_not_a_crash(self):
        result = lint("broken_syntax.py")
        assert codes(result) == {"LINT000"}
        assert result.files_scanned == 1


# ----------------------------------------------------------------- registry
class TestRegistry:
    def test_codes_are_unique_and_families_complete(self):
        per_rule = [set(r.codes) for r in ALL_RULES]
        assert len(set().union(*per_rule)) == sum(len(s) for s in per_rule)
        assert set(all_codes()) == set().union(*per_rule)
        assert {r.family for r in ALL_RULES} == {"DET", "HOT", "ASYNC", "WIRE"}

    def test_unknown_selector_is_a_usage_error(self):
        with pytest.raises(UsageError):
            run_lint([FIXTURES / "det_bad.py"], select=["NOPE999"])

    def test_select_filters_to_one_family(self):
        result = lint("det_bad.py", "hot_bad.py", select=["HOT"])
        assert codes(result) == {"HOT201", "HOT202"}


# ------------------------------------------------------------ repo is clean
class TestRepoSelfClean:
    def test_src_lints_clean(self):
        result = run_lint([ROOT / "src"], root=ROOT)
        assert result.clean, "\n".join(f.render() for f in result.findings)

    def test_tests_dir_walk_skips_fixtures_and_lints_clean(self):
        result = run_lint([ROOT / "tests"], root=ROOT)
        assert result.clean, "\n".join(f.render() for f in result.findings)


# ------------------------------------------------------------------ the CLI
def run_cli(*argv, module="repro"):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    cmd = [sys.executable, "-m", module]
    if module == "repro":
        cmd.append("lint")  # the standalone module IS the lint command
    return subprocess.run([*cmd, *argv],
                          capture_output=True, text=True, cwd=ROOT, env=env)


class TestCli:
    def test_exit_0_on_clean(self):
        proc = run_cli("tests/lint_fixtures/det_good.py")
        assert proc.returncode == 0, proc.stderr
        assert "clean" in proc.stdout

    def test_exit_1_on_findings_with_renderable_lines(self):
        proc = run_cli("tests/lint_fixtures/det_bad.py")
        assert proc.returncode == 1
        assert "DET101" in proc.stdout and "det_bad.py:" in proc.stdout

    def test_exit_2_on_missing_path_and_unknown_rule(self):
        assert run_cli("no/such/path.py").returncode == 2
        assert run_cli("src", "--rule", "NOPE999").returncode == 2

    def test_json_schema(self):
        proc = run_cli("tests/lint_fixtures/det_bad.py", "--format", "json")
        assert proc.returncode == 1
        report = json.loads(proc.stdout)
        assert report["version"] == 1
        assert report["tool"] == "repro-lint"
        assert report["clean"] is False
        assert report["files_scanned"] == 1
        assert report["counts"]["DET101"] == 3
        for f in report["findings"]:
            assert set(f) == {"path", "line", "col", "code", "message", "rule"}
            assert f["rule"] == f["code"].rstrip("0123456789")

    def test_rule_filter_flag(self):
        proc = run_cli("tests/lint_fixtures/det_bad.py", "--rule", "DET102",
                       "--format", "json")
        report = json.loads(proc.stdout)
        assert set(report["counts"]) == {"DET102"}

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for code in ("DET104", "HOT201", "ASYNC301", "WIRE401"):
            assert code in proc.stdout

    def test_module_entry_points_agree(self):
        via_repro = run_cli("tests/lint_fixtures/det_bad.py")
        standalone = run_cli("tests/lint_fixtures/det_bad.py",
                             module="repro.analysis_lint")
        assert via_repro.returncode == standalone.returncode == 1
        assert via_repro.stdout == standalone.stdout
