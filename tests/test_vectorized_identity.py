"""Bit-identity of the vectorized hot path against the scalar reference.

The vectorized ingest path (numpy Horner sweeps, columnar IBLT state,
batched storing updates) is an *optimization*, never a semantic change:
every test here pins some observable — hash values, bucket state, decode
output, checkpoint bytes — to the scalar reference implementation that the
batched code replaced.  A lint guard at the bottom keeps per-event Python
loops from creeping back into the hot files.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import CoresetParams
from repro.hashing.kwise import (
    BernoulliHash,
    KWiseHash,
    StackedHashes,
    UniformBucketHash,
    exact_field_threshold,
)
from repro.service.protocol import ProtocolError, parse_points
from repro.service.shards import ShardedIngest
from repro.service.state import streaming_state_to_dict
from repro.streaming.sketch import DecodeFailure, IBLTSketch
from repro.streaming.storing import ExactStoring
from repro.streaming.streaming_coreset import StreamingCoreset
from repro.utils.validation import FailedConstruction


# --------------------------------------------------------------------------
# Satellite 1 — exact integer thresholds for primes beyond float precision.
# --------------------------------------------------------------------------
class TestExactThreshold:
    def test_matches_float_for_small_primes(self):
        p = KWiseHash(2, 16, seed=0).prime
        for phi in (0.1, 0.25, 0.5, 0.9):
            assert exact_field_threshold(phi, p) == int(phi * p)

    def test_float_product_is_wrong_above_2_53(self):
        """Regression: ``int(phi * p)`` loses low bits for primes > 2^53;
        the exact rational product must differ from it for some φ."""
        p = KWiseHash(2, 70, seed=0).prime  # ~2^70 — universe beyond 64 bits
        assert p.bit_length() > 64
        exact = {phi: exact_field_threshold(phi, p)
                 for phi in (0.1, 0.3, 0.7)}
        # The exact threshold equals floor(Fraction(phi) * p) ...
        for phi, t in exact.items():
            frac = Fraction(phi)
            assert t == (frac.numerator * p) // frac.denominator
            # ... and realizes Pr[v < t] within 1/p of phi.
            assert abs(t / p - phi) < 1.0 / (1 << 52)
        # ... while the float64 product is off by more than one field
        # element for at least one of them (the bug this PR fixes).
        assert any(int(phi * p) != t for phi, t in exact.items())

    def test_bernoulli_uses_exact_threshold_on_huge_universe(self):
        b = BernoulliHash(0.3, independence=2, universe_bits=70, seed=5)
        assert b._threshold == exact_field_threshold(0.3, b._h.prime)
        keys = [3, 1 << 64, (1 << 69) + 17]
        want = [b.indicator(k) for k in keys]
        assert b.select(keys).tolist() == want

    def test_boundary_phis(self):
        p = 101
        assert exact_field_threshold(0.0, p) == 0
        assert exact_field_threshold(1.0, p) == p


# --------------------------------------------------------------------------
# Tentpole — vectorized Horner sweeps are bit-identical to the scalar oracle.
# --------------------------------------------------------------------------
class TestHornerIdentity:
    @pytest.mark.parametrize("ub", [16, 20, 31, 40, 55, 70])
    def test_values_np_matches_value(self, ub):
        h = KWiseHash(independence=5, universe_bits=ub, seed=ub)
        rng = np.random.default_rng(ub)
        keys = [int(x) for x in rng.integers(0, 1 << min(ub, 62), size=64)]
        keys += [0, 1, (1 << ub) - 1]
        got = [int(v) for v in h.values_np(keys)]
        assert got == [h.value(k) for k in keys]  # scalar oracle

    @pytest.mark.parametrize("ub", [16, 40, 70])
    def test_stacked_matches_per_hash(self, ub):
        hashes = [KWiseHash(independence=lam, universe_bits=ub, seed=100 + i)
                  for i, lam in enumerate([2, 3, 7, 7, 2])]
        stacked = StackedHashes(hashes)
        rng = np.random.default_rng(ub + 1)
        keys = [int(x) for x in rng.integers(0, 1 << min(ub, 62), size=40)]
        mat = stacked.values_np(keys)
        assert mat.shape == (len(hashes), len(keys))
        for row, h in enumerate(hashes):
            assert [int(v) for v in mat[row]] == [h.value(k) for k in keys]

    def test_stacked_rejects_mixed_primes(self):
        with pytest.raises(ValueError, match="prime"):
            StackedHashes([KWiseHash(2, 16, seed=0), KWiseHash(2, 40, seed=0)])

    def test_bucket_batch_matches_scalar(self):
        h = UniformBucketHash(97, independence=6, universe_bits=40, seed=2)
        keys = list(range(0, 2000, 37))
        assert h.buckets(keys).tolist() == [h.bucket(k) for k in keys]


# --------------------------------------------------------------------------
# Tentpole — columnar IBLT: batched updates == scalar updates, bucket-exact.
# --------------------------------------------------------------------------
class TestIBLTBatchedIdentity:
    @given(st.lists(st.tuples(st.integers(0, 40), st.sampled_from([1, -1])),
                    min_size=0, max_size=60),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_update_many_matches_scalar_buckets_and_decode(self, ups, seed):
        scalar = IBLTSketch(32, 16, seed=seed)
        batched = IBLTSketch(32, 16, seed=seed)
        for k, s in ups:
            scalar.update(k, s)
        if ups:
            keys = np.asarray([k for k, _ in ups], dtype=np.int64)
            signs = np.asarray([s for _, s in ups], dtype=np.int64)
            batched.update_many(keys, signs)
        # Bucket state — including first-touch ordering — must be identical.
        assert scalar.buckets == batched.buckets
        try:
            want = scalar.decode()
        except DecodeFailure:
            with pytest.raises(DecodeFailure):
                batched.decode()
            return
        assert batched.decode() == want


# --------------------------------------------------------------------------
# Tentpole — log-structured ExactStoring: event order and batching invisible.
# --------------------------------------------------------------------------
class TestExactStoringCanonical:
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 9),
                              st.sampled_from([1, -1])),
                    min_size=0, max_size=80),
           st.integers(min_value=1, max_value=16))
    @settings(max_examples=40, deadline=None)
    def test_batched_equals_scalar_equals_shuffled(self, ops, chunk):
        scalar = ExactStoring(64, 8)
        batched = ExactStoring(64, 8)
        for c, p, s in ops:
            scalar.update(c, p, s)
        for lo in range(0, len(ops), chunk):
            part = ops[lo: lo + chunk]
            batched.update_many(
                np.asarray([c for c, _, _ in part], dtype=np.int64),
                np.asarray([p for _, p, _ in part], dtype=np.int64),
                np.asarray([s for _, _, s in part], dtype=np.int64))
        # The serialized views are canonical (sorted) snapshots: identical
        # regardless of arrival order or batching.
        assert scalar._cells == batched._cells
        assert scalar._points == batched._points
        assert scalar.live_cells() == batched.live_cells()
        try:
            want = scalar.result()
        except FailedConstruction:
            with pytest.raises(FailedConstruction):
                batched.result()
            return
        got = batched.result()
        assert got.cells == want.cells
        assert got.small_points == want.small_points

    def test_upper_bound_dominates_exact_live_count(self):
        st_ = ExactStoring(64, 8)
        rng = np.random.default_rng(0)
        for _ in range(10):
            cells = rng.integers(0, 6, size=50)
            pts = rng.integers(0, 9, size=50)
            signs = rng.choice([1, -1], size=50)
            st_.update_many(cells, pts, signs)
            # The cheap bound used by the early-kill pre-check must never
            # undercount, or a driver could survive that should have died.
            assert st_.live_cells_upper() >= st_.live_cells()

    def test_merge_equals_concatenated_stream(self):
        a, b, whole = (ExactStoring(64, 8) for _ in range(3))
        rng = np.random.default_rng(1)
        for target in (a, b):
            cells = rng.integers(0, 6, size=40)
            pts = rng.integers(0, 9, size=40)
            signs = rng.choice([1, -1], size=40)
            target.update_many(cells, pts, signs)
            whole.update_many(cells, pts, signs)
        a.merge_from(b)
        assert a._cells == whole._cells
        assert a._points == whole._points


# --------------------------------------------------------------------------
# Satellite 4 — full-driver property: batched churn == scalar churn, byte
# for byte through the checkpoint codec, on both storing backends.
# --------------------------------------------------------------------------
def _churn_events(n, seed, delta):
    rng = np.random.default_rng(seed)
    live = []
    out = []
    for _ in range(n):
        p = (int(rng.integers(1, delta + 1)), int(rng.integers(1, delta + 1)))
        out.append((p, 1))
        live.append(p)
        if len(live) > 4 and rng.random() < 0.35:
            out.append((live.pop(int(rng.integers(0, len(live)))), -1))
    return out


class TestDriverBitIdentity:
    @pytest.fixture(scope="class")
    def params(self):
        return CoresetParams.practical(k=2, d=2, delta=64, eps=0.45, eta=0.45)

    @given(seed=st.integers(min_value=0, max_value=200),
           chunk=st.integers(min_value=1, max_value=48),
           backend=st.sampled_from(["exact", "sketch"]))
    @settings(max_examples=12, deadline=None)
    def test_checkpoint_bytes_equal(self, params, seed, chunk, backend):
        events = _churn_events(60, seed, 64)
        kw = dict(seed=7, backend=backend, o_range=(8.0, 64.0))
        scalar = StreamingCoreset(params, **kw)
        batched = StreamingCoreset(params, **kw)
        for p, s in events:
            scalar.update(p, s)
        for lo in range(0, len(events), chunk):
            batched.update_batch(events[lo: lo + chunk])
        da = json.dumps(streaming_state_to_dict(scalar), sort_keys=True)
        db = json.dumps(streaming_state_to_dict(batched), sort_keys=True)
        assert da == db

    def test_exact_backend_coreset_equal(self, params):
        events = _churn_events(120, 5, 64)
        kw = dict(seed=7, backend="exact", o_range=(8.0, 64.0))
        scalar = StreamingCoreset(params, **kw)
        batched = StreamingCoreset(params, **kw)
        for p, s in events:
            scalar.update(p, s)
        batched.update_batch(events)

        def outcome(drv):
            try:
                c = drv.finalize()
                return ("ok", c.o, c.points.tobytes(), c.weights.tobytes())
            except FailedConstruction as exc:
                return ("fail", exc.reason)

        assert outcome(scalar) == outcome(batched)


class TestWorkerPoolBitIdentity:
    """The ndarray ``abatch`` worker frames must reproduce the in-process
    shard state byte for byte, on both storing backends.  (The exact
    backend is also covered end-to-end in test_service_parallel.py.)"""

    @pytest.mark.parametrize("backend", ["exact", "sketch"])
    def test_two_workers_match_inprocess(self, backend):
        from repro.service.workers import WorkerPoolIngest

        params = CoresetParams.practical(k=2, d=2, delta=64,
                                         eps=0.45, eta=0.45)
        events = _churn_events(80, 11, 64)
        kw = dict(seed=5, backend=backend, o_range=(8.0, 64.0))
        serial = ShardedIngest(params, num_shards=2, **kw)
        pool = WorkerPoolIngest(params, num_workers=2, **kw)
        try:
            for lo in range(0, len(events), 32):
                serial.apply_batch(events[lo: lo + 32])
                pool.apply_batch(events[lo: lo + 32])
            pool.worker_stats()  # drain barrier
            assert (json.dumps(pool.to_state_dict(), sort_keys=True)
                    == json.dumps(serial.to_state_dict(), sort_keys=True))
        finally:
            pool.close()


# --------------------------------------------------------------------------
# Satellite 2 — non-integral coordinates are rejected, never truncated.
# --------------------------------------------------------------------------
class TestNonIntegralRejection:
    @pytest.fixture(scope="class")
    def params(self):
        return CoresetParams.practical(k=2, d=2, delta=64, eps=0.45, eta=0.45)

    def test_update_rejects(self, params):
        sc = StreamingCoreset(params, seed=0, o_range=(8.0, 64.0))
        with pytest.raises(ValueError, match="integral"):
            sc.update((2.5, 3), 1)
        sc.update((2.0, 3.0), 1)  # integral floats are fine

    def test_update_batch_rejects_atomically(self, params):
        sc = StreamingCoreset(params, seed=0, o_range=(8.0, 64.0))
        before = json.dumps(streaming_state_to_dict(sc), sort_keys=True)
        with pytest.raises(ValueError, match="integral"):
            sc.update_batch([((1, 1), 1), ((2.7, 3), 1)])
        after = json.dumps(streaming_state_to_dict(sc), sort_keys=True)
        assert before == after  # nothing ingested from the bad batch

    def test_sharded_insert_rejects(self, params):
        ing = ShardedIngest(params, num_shards=2, seed=0, o_range=(8.0, 64.0))
        with pytest.raises(ValueError, match="integral"):
            ing.insert_points([[1.5, 2.0]])
        assert ing.num_events == 0 and ing.version == 0

    def test_wire_parse_points_rejects(self):
        with pytest.raises(ProtocolError, match="integ"):
            parse_points({"points": [[1, 2], [3, 4.2]]}, d=2, delta=64)
        arr = parse_points({"points": [[1, 2.0]]}, d=2, delta=64)
        assert arr.dtype == np.int64 and arr.tolist() == [[1, 2]]

    def test_nan_and_overflow_rejected(self, params):
        sc = StreamingCoreset(params, seed=0, o_range=(8.0, 64.0))
        with pytest.raises(ValueError, match="finite"):
            sc.update((float("nan"), 1), 1)
        with pytest.raises(ValueError):
            sc.update((1e30, 1), 1)


# --------------------------------------------------------------------------
# Lint guard: no per-event Python in the hot files (delegates to the HOT
# rule of ``repro lint``, the AST-accurate successor of the old regex scan —
# it also sees `.tolist()` calls and multi-line loop headers, and covers all
# six vectorized files instead of three).
# --------------------------------------------------------------------------
class TestNoScalarLoopsInHotPath:
    def test_hot_rule_clean_on_hot_files(self):
        """Every statement loop / ``.tolist()`` in the vectorized hot files
        must carry a ``# scalar-ok: <reason>`` marker — the reviewable
        assertion that it is NOT per-event work (decode, construction,
        per-coefficient, ...).  A new un-annotated loop fails here before it
        fails the benchmark."""
        from repro.analysis_lint import HOT_FILES, run_lint

        root = Path(__file__).resolve().parents[1]
        paths = [root / "src" / rel for rel in HOT_FILES]
        assert all(p.is_file() for p in paths), paths
        result = run_lint(paths, select=["HOT"], root=root)
        assert result.clean, "\n".join(f.render() for f in result.findings)
