"""Edge cases: degenerate dimensions, minimal grids, pathological inputs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CoresetParams, build_coreset_auto
from repro.grid.grids import HierarchicalGrids
from repro.metrics.costs import capacitated_cost
from repro.solvers import CapacitatedKClustering


class TestOneDimensional:
    def test_coreset_d1(self):
        rng = np.random.default_rng(0)
        pts = np.unique(
            np.concatenate([rng.integers(1, 60, 400), rng.integers(200, 256, 400)])
        )[:, None]
        params = CoresetParams.practical(k=2, d=1, delta=256)
        cs = build_coreset_auto(pts, params, seed=1)
        assert len(cs) > 0
        assert cs.points.shape[1] == 1
        assert cs.total_weight == pytest.approx(len(pts), rel=0.3)

    def test_capacitated_d1(self):
        pts = np.arange(1, 21, dtype=float)[:, None]
        Z = np.array([[5.0], [15.0]])
        c = capacitated_cost(pts, Z, 10, r=2.0)
        assert np.isfinite(c)


class TestMinimalGrid:
    def test_delta_two(self):
        # Δ=2 => L=1, coordinates in {1, 2}.
        pts = np.array([[1, 1], [1, 2], [2, 1], [2, 2]], dtype=np.int64)
        params = CoresetParams.practical(k=2, d=2, delta=2)
        cs = build_coreset_auto(pts, params, seed=2)
        assert 0 < len(cs) <= 4

    def test_grids_delta_two(self):
        g = HierarchicalGrids(2, 2, seed=0)
        assert g.L == 1
        keys = g.cell_keys(np.array([[1, 1], [2, 2]]), 1)
        for k in keys:
            ck = g.decode_cell_key(int(k))
            assert ck.level == 1


class TestDegenerateInputs:
    def test_single_point(self):
        pts = np.array([[7, 7]], dtype=np.int64)
        params = CoresetParams.practical(k=1, d=2, delta=16)
        cs = build_coreset_auto(pts, params, seed=3)
        assert len(cs) == 1
        assert cs.weights[0] == pytest.approx(1.0)

    def test_all_points_identical_rejected_by_model(self):
        """The stream model treats Q as a set; the offline builder accepts a
        multiset array but the coreset weight still covers the multiplicity."""
        pts = np.tile(np.array([[5, 5]], dtype=np.int64), (10, 1))
        params = CoresetParams.practical(k=1, d=2, delta=16)
        cs = build_coreset_auto(pts, params, seed=4)
        assert cs.total_weight == pytest.approx(10.0, rel=0.5)

    def test_two_far_points_k2(self):
        pts = np.array([[1, 1], [256, 256]], dtype=np.int64)
        params = CoresetParams.practical(k=2, d=2, delta=256)
        cs = build_coreset_auto(pts, params, seed=5)
        assert len(cs) == 2  # nothing to compress

    def test_k_equals_n(self):
        rng = np.random.default_rng(6)
        pts = np.unique(rng.integers(1, 64, size=(6, 2)), axis=0).astype(float)
        solver = CapacitatedKClustering(k=len(pts), capacity=1, restarts=1, seed=1)
        sol = solver.fit(pts)
        assert sol.cost == pytest.approx(0.0, abs=1e-9)

    def test_capacity_exactly_n_over_k(self):
        rng = np.random.default_rng(7)
        pts = np.unique(rng.integers(1, 256, size=(30, 2)), axis=0).astype(float)
        n = len(pts)
        k = 3
        t = int(np.ceil(n / k))
        Z = pts[:k]
        c = capacitated_cost(pts, Z, t, r=2.0)
        assert np.isfinite(c)


class TestCollinearAndTies:
    def test_collinear_points_halfspaces(self):
        from repro.core.halfspace import (
            halfspaces_from_assignment,
            canonicalize_assignment,
        )

        pts = np.array([[i, 0] for i in range(1, 11)], dtype=float)
        ctr = np.array([[1.0, 0.0], [10.0, 0.0]])
        lab = np.array([0] * 5 + [1] * 5)
        H = halfspaces_from_assignment(pts, lab, ctr, r=2.0)
        assert np.array_equal(H.regions(pts), lab)

    def test_equidistant_tie_broken_lexicographically(self):
        from repro.core.halfspace import canonicalize_assignment

        # Two points equidistant from both centers: the canonical form must
        # be deterministic (alphabetical order decides).
        pts = np.array([[5.0, 1.0], [5.0, 2.0]])
        ctr = np.array([[0.0, 0.0], [10.0, 0.0]])
        for init in ([0, 1], [1, 0]):
            out = canonicalize_assignment(pts, np.array(init), ctr, 2.0)
            # Sizes preserved; the smaller lexicographic point goes to z0.
            assert sorted(out.tolist()) == [0, 1]
            assert out[0] == 0
