"""End-to-end integration tests across subsystems.

These are the "does the whole product work" paths a user exercises:
generate → coreset → solve → extend → validate, in all three models
(offline / streaming / distributed), cross-checked against each other.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import CoresetParams, build_coreset_auto
from repro.assignment.capacitated import assignment_cost, capacitated_assignment, cluster_sizes
from repro.assignment.transfer import extend_assignment_to_points
from repro.data.synthetic import unbalanced_mixture
from repro.data.workloads import churn_stream
from repro.distributed import Network, distributed_coreset
from repro.grid.grids import HierarchicalGrids
from repro.metrics import max_load_ratio
from repro.metrics.costs import capacitated_cost
from repro.solvers import CapacitatedKClustering
from repro.streaming import StreamingCoreset, materialize
from repro.utils.rng import derive_seed


@pytest.fixture(scope="module")
def world():
    pts, means, _ = unbalanced_mixture(3000, 2, 256, k=3, imbalance=5.0,
                                       spread=0.03, seed=91, return_truth=True)
    pts = np.unique(pts, axis=0)
    params = CoresetParams.practical(k=3, d=2, delta=256, eps=0.25, eta=0.25)
    return pts, params, means.astype(float)


class TestOfflinePipeline:
    def test_full_pipeline_guarantees(self, world):
        pts, params, _ = world
        n, k = len(pts), 3
        seed = 5
        grids = HierarchicalGrids(256, 2, seed=derive_seed(seed, "grids"))
        cs = build_coreset_auto(pts, params, grids=grids, seed=seed)

        t = n / k * 1.15
        solver = CapacitatedKClustering(k=k, capacity=cs.total_weight / k * 1.15,
                                        r=2.0, restarts=2, seed=seed)
        sol = solver.fit(cs.points.astype(float), weights=cs.weights)
        labels = extend_assignment_to_points(pts, cs, params, grids,
                                             sol.centers, t, r=2.0)

        # (a) every point assigned; (b) capacity within 1+O(eta);
        # (c) cost within 1+O(eps) of the capacitated optimum for Z.
        assert labels.shape == (n,)
        sizes = cluster_sizes(labels, k)
        assert sizes.sum() == n
        assert sizes.max() <= (1 + 4 * params.eta) * t
        opt = capacitated_assignment(pts, sol.centers, t, r=2.0, integral=False)
        assert assignment_cost(pts, sol.centers, labels, 2.0) <= \
            (1 + 4 * params.eps) * opt.fractional_cost
        # (d) load profile is genuinely balanced.
        assert max_load_ratio(labels, k) <= 1.6


class TestThreeModelsAgree:
    def test_offline_streaming_distributed_quality(self, world):
        """All three construction models yield coresets satisfying the same
        sandwich on the same battery."""
        from repro.metrics.evaluation import evaluate_coreset_quality
        from repro.solvers.kmeanspp import kmeans_plusplus
        from repro.solvers.pilot import estimate_opt_cost

        pts, params, means = world
        n, k = len(pts), 3
        battery = [means[:k], kmeans_plusplus(pts.astype(float), k, seed=2)]
        caps = [n / k, math.inf]

        offline = build_coreset_auto(pts, params, seed=7)

        pilot = estimate_opt_cost(pts, k, r=2.0, seed=1)
        sc = StreamingCoreset(params, seed=7, backend="exact",
                              o_range=(pilot / 64, pilot / 4))
        from repro.data.workloads import insertion_stream

        sc.process(insertion_stream(pts, seed=3))
        streamed = sc.finalize()

        net = Network.partition(pts, 4, seed=2)
        dist = distributed_coreset(net, params, seed=7)

        for tag, cs in (("offline", offline), ("streaming", streamed),
                        ("distributed", dist)):
            rep = evaluate_coreset_quality(pts, cs, battery, caps,
                                           r=2.0, eps=0.25, eta=0.25)
            assert rep.entries, tag
            assert rep.worst_ratio <= 1.25 * 1.1, (
                f"{tag}: worst ratio {rep.worst_ratio:.3f}"
            )


class TestStreamingEndToEnd:
    def test_churn_then_solve(self, world):
        pts, params, _ = world
        k = 3
        stream = churn_stream(pts, delete_fraction=0.5, seed=6)
        survivors = materialize(stream, d=2)
        sc = StreamingCoreset(params, seed=13, backend="exact")  # auto-pilot
        sc.process(stream)
        cs = sc.finalize()
        t = len(survivors) / k * 1.2
        solver = CapacitatedKClustering(k=k, capacity=cs.total_weight / k * 1.2,
                                        r=2.0, restarts=2, seed=4)
        sol = solver.fit(cs.points.astype(float), weights=cs.weights)
        true_cost = capacitated_cost(survivors, sol.centers, t, r=2.0)
        est = capacitated_cost(cs.points, sol.centers, 1.25 * t, r=2.0,
                               weights=cs.weights)
        assert est <= 1.25 * 1.15 * true_cost
        assert true_cost < math.inf
