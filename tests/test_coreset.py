"""Tests for Algorithm 2 (offline coreset construction) and Theorem 3.19."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import CoresetParams, build_coreset, build_coreset_auto
from repro.data.synthetic import gaussian_mixture, unbalanced_mixture
from repro.grid.grids import HierarchicalGrids
from repro.metrics.costs import capacitated_cost, uncapacitated_cost
from repro.metrics.evaluation import evaluate_coreset_quality
from repro.solvers.kmeanspp import kmeans_plusplus
from repro.utils.validation import FailedConstruction


@pytest.fixture(scope="module")
def mixture():
    pts, means, labels = gaussian_mixture(
        3000, 2, 256, k=3, spread=0.03, seed=21, return_truth=True
    )
    pts = np.unique(pts, axis=0)
    params = CoresetParams.practical(k=3, d=2, delta=256, eps=0.25, eta=0.25)
    return pts, params, means.astype(float)


@pytest.fixture(scope="module")
def coreset(mixture):
    pts, params, _ = mixture
    return build_coreset_auto(pts, params, seed=5)


class TestConstruction:
    def test_coreset_is_subset_of_input(self, mixture, coreset):
        pts, _, _ = mixture
        input_set = set(map(tuple, pts.tolist()))
        assert all(tuple(p) in input_set for p in coreset.points.tolist())

    def test_total_weight_close_to_n(self, mixture, coreset):
        pts, _, _ = mixture
        # Weights are inverse sampling probabilities; dropped small parts may
        # remove a little mass (Lemma 3.4 bounds it by η·n/k-ish).
        assert coreset.total_weight <= len(pts) * 1.05
        assert coreset.total_weight >= len(pts) * 0.85

    def test_weights_are_inverse_phi(self, coreset):
        for pid, info in enumerate(coreset.parts):
            sel = coreset.part_ids == pid
            if sel.any():
                assert np.allclose(coreset.weights[sel], 1.0 / info.phi)

    def test_part_provenance_levels_valid(self, mixture, coreset):
        _, params, _ = mixture
        for info in coreset.parts:
            assert 0 <= info.level <= params.L
            assert info.phi > 0
            assert info.size_estimate >= 0

    def test_deterministic_given_seed(self, mixture):
        pts, params, _ = mixture
        a = build_coreset_auto(pts, params, seed=9)
        b = build_coreset_auto(pts, params, seed=9)
        assert a.o == b.o
        assert np.array_equal(a.points, b.points)
        assert np.allclose(a.weights, b.weights)

    def test_storage_bits_positive(self, coreset):
        assert coreset.storage_bits() > 0

    def test_fail_for_tiny_o_on_uniform(self):
        from repro.data.synthetic import uniform_points

        pts = np.unique(uniform_points(5000, 2, 256, seed=2), axis=0)
        params = CoresetParams.practical(k=3, d=2, delta=256)
        grids = HierarchicalGrids(256, 2, seed=1)
        with pytest.raises(FailedConstruction):
            build_coreset(pts, params, o=1.0, grids=grids, seed=0)

    def test_fail_for_huge_o(self, mixture):
        pts, params, _ = mixture
        grids = HierarchicalGrids(256, 2, seed=1)
        with pytest.raises(FailedConstruction):
            build_coreset(pts, params, o=1e18, grids=grids, seed=0)

    def test_empty_input(self):
        params = CoresetParams.practical(k=2, d=2, delta=64)
        cs = build_coreset_auto(np.empty((0, 2), dtype=np.int64), params)
        assert len(cs) == 0

    def test_sampled_counts_mode_runs(self, mixture):
        pts, params, _ = mixture
        cs = build_coreset_auto(pts, params, seed=4, use_sampled_counts=True)
        assert len(cs) > 0
        assert cs.total_weight == pytest.approx(len(pts), rel=0.25)


class TestStrongCoresetProperty:
    """Empirical check of the Section 1.1 sandwich on small instances."""

    @pytest.mark.parametrize("r", [1.0, 2.0])
    def test_sandwich_for_planted_and_random_centers(self, r):
        pts, means, _ = gaussian_mixture(
            2500, 2, 256, k=3, spread=0.03, seed=31, return_truth=True
        )
        pts = np.unique(pts, axis=0)
        n = len(pts)
        eps, eta = 0.25, 0.25
        params = CoresetParams.practical(k=3, d=2, delta=256, eps=eps, eta=eta, r=r)
        cs = build_coreset_auto(pts, params, seed=13)
        rng = np.random.default_rng(7)
        Zs = [
            means.astype(float),
            kmeans_plusplus(pts.astype(float), 3, r=r, seed=1),
            rng.integers(1, 257, size=(3, 2)).astype(float),
        ]
        caps = [n / 3, 1.5 * n / 3, math.inf]
        rep = evaluate_coreset_quality(pts, cs, Zs, caps, r=r, eps=eps, eta=eta)
        assert rep.entries, "no feasible evaluation entries"
        assert rep.worst_ratio <= 1 + eps, (
            f"sandwich violated: worst ratio {rep.worst_ratio:.4f}"
        )

    def test_unbalanced_mixture_capacity_binding(self):
        """The regime the paper motivates: capacity forces splitting the
        big cluster; the coreset must still track the capacitated cost."""
        pts, means, _ = unbalanced_mixture(
            2500, 2, 256, k=3, imbalance=6.0, spread=0.02, seed=41, return_truth=True
        )
        pts = np.unique(pts, axis=0)
        n = len(pts)
        params = CoresetParams.practical(k=3, d=2, delta=256, eps=0.25, eta=0.25)
        cs = build_coreset_auto(pts, params, seed=17)
        Z = means.astype(float)
        t = n / 3  # tight capacity: unconstrained optimum infeasible
        full = capacitated_cost(pts, Z, t, r=2.0)
        core = capacitated_cost(cs.points, Z, (1 + 0.25) * t, r=2.0, weights=cs.weights)
        unconstrained = uncapacitated_cost(pts, Z, r=2.0)
        # Capacity must actually bind for this to be a meaningful test.
        assert full > 1.5 * unconstrained
        assert core <= (1 + 0.25) * full
        relaxed = capacitated_cost(pts, Z, (1 + 0.25) ** 2 * t, r=2.0)
        assert core >= relaxed / (1 + 0.25)


class TestGuessDriver:
    def test_auto_matches_manual_guess(self, mixture):
        pts, params, _ = mixture
        grids = HierarchicalGrids(256, 2, seed=HierarchicalGrids(256, 2).L)
        cs = build_coreset_auto(pts, params, seed=5)
        manual = build_coreset(pts, params, cs.o, seed=5)
        assert np.array_equal(np.sort(cs.points, axis=0), np.sort(manual.points, axis=0))

    def test_smallest_nonfail_mode(self, mixture):
        pts, params, _ = mixture
        cs = build_coreset_auto(pts, params, seed=5, pilot_cost=None)
        assert len(cs) > 0

    def test_bad_pilot_string_rejected(self, mixture):
        pts, params, _ = mixture
        with pytest.raises(ValueError):
            build_coreset_auto(pts, params, pilot_cost="bogus")


class TestTheoryMode:
    def test_theory_constants_keep_everything(self):
        """With the paper's constants, every sampling rate is 1 at this
        scale, so the coreset is the whole retained input with unit weights
        — and the sandwich is trivially exact.  This is the documented
        reason the practical regime exists (DESIGN.md)."""
        pts = np.unique(gaussian_mixture(800, 2, 64, k=2, spread=0.05,
                                         seed=51), axis=0)
        params = CoresetParams.from_theory(k=2, d=2, delta=64,
                                           eps=0.25, eta=0.25)
        cs = build_coreset_auto(pts, params, seed=3)
        assert len(cs) == len(pts)
        assert np.allclose(cs.weights, 1.0)

    def test_theory_phi_formula_saturates(self):
        params = CoresetParams.from_theory(k=2, d=2, delta=64)
        assert all(params.phi(i, 1e6) == 1.0 for i in range(params.L + 1))
