"""Tests for hierarchical grids, codecs, and discretization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import HierarchicalGrids, PointCodec, discretize, dediscretize
from repro.grid.grids import CellKey


class TestPointCodec:
    @pytest.mark.parametrize("delta,d", [(16, 2), (1024, 3), (1 << 12, 8)])
    def test_roundtrip(self, delta, d):
        codec = PointCodec(delta, d)
        rng = np.random.default_rng(0)
        pts = rng.integers(1, delta + 1, size=(50, d))
        keys = codec.encode(pts)
        back = codec.decode_many(list(keys))
        assert np.array_equal(back, pts)

    def test_injective(self):
        codec = PointCodec(64, 3)
        rng = np.random.default_rng(1)
        pts = np.unique(rng.integers(1, 65, size=(500, 3)), axis=0)
        keys = set(int(k) for k in codec.encode(pts))
        assert len(keys) == len(pts)

    def test_big_universe_uses_objects(self):
        codec = PointCodec(1 << 12, 8)
        assert codec.universe_bits > 62
        pts = np.full((2, 8), 1 << 12, dtype=np.int64)
        keys = codec.encode(pts)
        assert codec.decode(keys[0]).tolist() == pts[0].tolist()

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=10)
    def test_encode_one_matches_encode(self, d):
        codec = PointCodec(256, d)
        pt = np.arange(1, d + 1)
        assert codec.encode_one(pt) == int(codec.encode(pt[None, :])[0])

    def test_out_of_range_rejected_not_aliased(self):
        """Regression: the mixed-radix encoding (base Δ+1) is injective only
        on coordinates in [0, Δ].  ``(1, -1)`` used to encode to
        ``1·65 + (-1) = 64`` — the *same key as the valid point (0, 64)* —
        silently crediting sketch updates to the wrong point.  Both encode
        paths must reject instead of aliasing."""
        codec = PointCodec(64, 2)
        assert codec.encode_one((0, 64)) == 64  # the victim key
        with pytest.raises(ValueError, match="outside"):
            codec.encode_one((1, -1))
        with pytest.raises(ValueError, match="outside"):
            codec.encode(np.array([[1, -1]]))
        with pytest.raises(ValueError, match="outside"):
            codec.encode_one((0, 65))  # > Δ aliases forward the same way
        with pytest.raises(ValueError, match="outside"):
            codec.encode(np.array([[3, 3], [0, 65]]))

    def test_boundary_coordinates_encodable(self):
        """0 and Δ are inside the injective window and must roundtrip."""
        codec = PointCodec(64, 2)
        pts = np.array([[0, 0], [0, 64], [64, 0], [64, 64]])
        keys = codec.encode(pts)
        assert len(set(map(int, keys))) == len(pts)
        assert np.array_equal(codec.decode_many(list(keys)), pts)


class TestHierarchicalGrids:
    def test_levels_and_sides(self):
        g = HierarchicalGrids(1024, 3, seed=0)
        assert g.L == 10
        assert g.side(0) == 1024.0
        assert g.side(10) == 1.0
        assert g.side(-1) == 2048.0

    def test_same_seed_same_shift(self):
        a = HierarchicalGrids(256, 2, seed=42)
        b = HierarchicalGrids(256, 2, seed=42)
        assert np.array_equal(a.shift, b.shift)

    def test_cell_coords_nested(self):
        """Parent coordinates are the floor-halved child coordinates."""
        g = HierarchicalGrids(256, 3, seed=7)
        rng = np.random.default_rng(3)
        pts = rng.integers(1, 257, size=(200, 3))
        for level in range(1, g.L + 1):
            child = g.cell_coords(pts, level)
            parent = g.cell_coords(pts, level - 1)
            assert np.array_equal(np.floor_divide(child, 2), parent)

    def test_cell_key_roundtrip(self):
        g = HierarchicalGrids(256, 2, seed=5)
        pts = np.array([[1, 1], [256, 256], [100, 200]])
        for level in (0, 3, 8):
            keys = g.cell_keys(pts, level)
            coords = g.cell_coords(pts, level)
            for k, c in zip(keys, coords):
                decoded = g.decode_cell_key(int(k))
                assert decoded == CellKey(level=level, coords=tuple(int(x) for x in c))

    def test_points_same_cell_within_diameter(self):
        g = HierarchicalGrids(256, 2, seed=9)
        rng = np.random.default_rng(4)
        pts = rng.integers(1, 257, size=(500, 2))
        level = 4
        keys = g.cell_keys(pts, level)
        uniq, inv = np.unique(keys, return_inverse=True)
        diam = g.cell_diameter(level)
        for j in range(len(uniq)):
            cell_pts = pts[inv == j].astype(float)
            if len(cell_pts) > 1:
                spread = np.linalg.norm(
                    cell_pts[:, None, :] - cell_pts[None, :, :], axis=2
                ).max()
                assert spread <= diam + 1e-9

    def test_keys_distinct_across_levels(self):
        g = HierarchicalGrids(64, 2, seed=1)
        pt = np.array([[10, 10]])
        keys = {int(g.cell_keys(pt, lv)[0]) for lv in range(0, g.L + 1)}
        assert len(keys) == g.L + 1

    def test_invalid_level_rejected(self):
        g = HierarchicalGrids(64, 2, seed=1)
        with pytest.raises(ValueError):
            g.side(g.L + 1)
        with pytest.raises(ValueError):
            g.side(-2)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            HierarchicalGrids(1000, 2)


class TestDiscretize:
    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(0, 10, size=(300, 3))
        grid, t = discretize(pts, 1024)
        assert grid.min() >= 1 and grid.max() <= 1024
        back = dediscretize(grid, t)
        span = pts.max(0) - pts.min(0)
        # Max rounding error is half a grid cell in original units.
        assert np.abs(back - pts).max() <= 0.51 * span.max() / 1023

    def test_preserves_relative_distances(self):
        rng = np.random.default_rng(1)
        pts = rng.normal(0, 5, size=(100, 2))
        grid, t = discretize(pts, 4096)
        d_orig = np.linalg.norm(pts[0] - pts[1])
        d_grid = np.linalg.norm((grid[0] - grid[1]).astype(float)) / t.scale
        assert abs(d_grid - d_orig) < 0.01 * max(d_orig, 1.0)

    def test_degenerate_single_point(self):
        grid, t = discretize(np.array([[3.0, 4.0]]), 16)
        assert grid.shape == (1, 2)
        assert (1 <= grid).all() and (grid <= 16).all()

    def test_empty_input(self):
        grid, _ = discretize(np.empty((0, 4)), 64)
        assert grid.shape == (0, 4)
