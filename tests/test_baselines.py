"""Tests for the baseline coresets (uniform / sensitivity / BBLM14)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ThreePassMappingCoreset, sensitivity_coreset, uniform_coreset
from repro.data.synthetic import gaussian_mixture
from repro.data.workloads import churn_stream, insertion_stream
from repro.metrics.costs import uncapacitated_cost
from repro.solvers.kmeanspp import kmeans_plusplus


@pytest.fixture(scope="module")
def pts():
    return np.unique(gaussian_mixture(3000, 2, 256, k=3, seed=9), axis=0)


class TestUniform:
    def test_shape_and_weights(self, pts):
        ws = uniform_coreset(pts, 200, seed=1)
        assert len(ws) == 200
        assert ws.total_weight == pytest.approx(len(pts))

    def test_unbiased_uncapacitated_cost(self, pts):
        Z = kmeans_plusplus(pts.astype(float), 3, seed=2)
        full = uncapacitated_cost(pts, Z)
        ests = [
            uncapacitated_cost(u.points, Z, weights=u.weights)
            for u in (uniform_coreset(pts, 400, seed=s) for s in range(12))
        ]
        assert np.mean(ests) == pytest.approx(full, rel=0.15)

    def test_size_capped_at_n(self, pts):
        assert len(uniform_coreset(pts[:50], 500, seed=0)) == 50

    def test_invalid_size(self, pts):
        with pytest.raises(ValueError):
            uniform_coreset(pts, 0)

    def test_misses_small_expensive_cluster(self):
        """The failure mode the paper's construction fixes: a 1% far-away
        cluster is usually missed entirely by a small uniform sample."""
        rng = np.random.default_rng(3)
        big = rng.normal((50, 50), 2, size=(4950, 2))
        small = rng.normal((200, 200), 1, size=(50, 2))
        pts = np.clip(np.rint(np.vstack([big, small])), 1, 256).astype(np.int64)
        misses = 0
        for s in range(10):
            u = uniform_coreset(pts, 40, seed=s)
            if not (u.points[:, 0] > 150).any():
                misses += 1
        assert misses >= 5


class TestSensitivity:
    def test_covers_small_expensive_cluster(self):
        """Sensitivity sampling does cover cost-heavy outlier clusters —
        its failure is capacitated, not uncapacitated (see E6)."""
        rng = np.random.default_rng(3)
        big = rng.normal((50, 50), 2, size=(4950, 2))
        small = rng.normal((200, 200), 1, size=(50, 2))
        pts = np.clip(np.rint(np.vstack([big, small])), 1, 256).astype(np.int64)
        hits = 0
        for s in range(10):
            sc = sensitivity_coreset(pts, k=2, size=40, seed=s)
            if (sc.points[:, 0] > 150).any():
                hits += 1
        assert hits >= 8

    def test_weight_mass_approximates_n(self, pts):
        sc = sensitivity_coreset(pts, k=3, size=500, seed=1)
        assert sc.total_weight == pytest.approx(len(pts), rel=0.35)

    def test_uncapacitated_cost_preserved(self, pts):
        Z = kmeans_plusplus(pts.astype(float), 3, seed=4)
        full = uncapacitated_cost(pts, Z)
        sc = sensitivity_coreset(pts, k=3, size=600, seed=2)
        est = uncapacitated_cost(sc.points, Z, weights=sc.weights)
        assert est == pytest.approx(full, rel=0.3)


class TestBBLM14:
    def test_three_pass_pipeline(self, pts):
        stream = insertion_stream(pts, seed=5)
        bl = ThreePassMappingCoreset(k=3, num_representatives=64, seed=1)
        ws = bl.run(stream)
        assert bl.passes_used == 3
        assert ws.total_weight == pytest.approx(len(pts))
        assert len(ws) <= 64
        assert bl.mapping_cost > 0

    def test_rejects_deletions(self, pts):
        stream = churn_stream(pts, delete_fraction=0.3, seed=2)
        bl = ThreePassMappingCoreset(k=3, num_representatives=64, seed=1)
        bl.start_pass(1)
        with pytest.raises(NotImplementedError):
            for ev in stream:
                bl.update(ev)

    def test_passes_must_run_in_order(self, pts):
        bl = ThreePassMappingCoreset(k=3, num_representatives=16, seed=1)
        with pytest.raises(ValueError):
            bl.start_pass(2)

    def test_result_before_passes_raises(self):
        bl = ThreePassMappingCoreset(k=2, num_representatives=8)
        with pytest.raises(RuntimeError):
            bl.result()

    def test_mapping_cost_reasonable(self, pts):
        """The mapping coreset's representatives track cluster structure:
        mapping cost is within a small factor of a k-means solution with the
        same budget of centers."""
        stream = insertion_stream(pts, seed=5)
        bl = ThreePassMappingCoreset(k=3, num_representatives=48, seed=1)
        bl.run(stream)
        ref = uncapacitated_cost(
            pts, kmeans_plusplus(pts.astype(float), 48, seed=3))
        assert bl.mapping_cost <= 10 * ref + 1e-9
