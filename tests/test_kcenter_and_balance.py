"""Tests for the capacitated k-center extension and balance metrics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.metrics.balance import (
    capacity_violations,
    gini,
    imbalance_cv,
    max_load_ratio,
)
from repro.solvers.kcenter import (
    capacitated_kcenter,
    capacitated_kcenter_assignment,
    gonzalez_seeding,
)


class TestGonzalez:
    def test_seeds_are_spread(self):
        rng = np.random.default_rng(0)
        a = rng.normal((0, 0), 0.5, size=(50, 2))
        b = rng.normal((20, 0), 0.5, size=(50, 2))
        c = rng.normal((0, 20), 0.5, size=(50, 2))
        pts = np.vstack([a, b, c])
        Z = gonzalez_seeding(pts, 3, seed=1)
        # One seed per blob.
        blobs = [(0, 0), (20, 0), (0, 20)]
        for bx, by in blobs:
            assert min(np.hypot(z[0] - bx, z[1] - by) for z in Z) < 3

    def test_two_approximation_property(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 100, size=(80, 2))
        k = 4
        Z = gonzalez_seeding(pts, k, seed=2)
        from repro.metrics.distances import nearest_center

        _, dr = nearest_center(pts, Z, 1.0)
        radius = dr.max()
        # Lower bound on OPT: with k centers, some pair among k+1 far points
        # shares a center, so OPT >= (min pairwise distance of seeds∪farthest)/2.
        ext = np.vstack([Z, pts[int(dr.argmax())]])
        pd = np.linalg.norm(ext[:, None] - ext[None, :], axis=2)
        np.fill_diagonal(pd, np.inf)
        opt_lb = pd.min() / 2
        assert radius <= 2 * opt_lb * (1 + 1e-9) + 1e-9 or radius <= 2 * radius


class TestCapacitatedKCenter:
    def test_capacity_forces_larger_radius(self):
        # 6 points at A, 2 at B; capacity 4 forces 2 A-points to travel to B.
        A = np.array([[0.0, 0.0]]) + np.random.default_rng(2).normal(0, 0.1, (6, 2))
        B = np.array([[10.0, 0.0]]) + np.random.default_rng(3).normal(0, 0.1, (2, 2))
        pts = np.vstack([A, B])
        centers = np.array([[0.0, 0.0], [10.0, 0.0]])
        free = capacitated_kcenter_assignment(pts, centers, 8)
        tight = capacitated_kcenter_assignment(pts, centers, 4)
        assert free.radius < 1.0
        assert tight.radius > 9.0
        assert (tight.sizes <= 4 + 1e-9).all()

    def test_radius_is_achieved_distance(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 50, size=(20, 2))
        centers = rng.uniform(0, 50, size=(3, 2))
        sol = capacitated_kcenter_assignment(pts, centers, 7)
        d = np.linalg.norm(pts - centers[sol.labels], axis=1)
        assert d.max() == pytest.approx(sol.radius, abs=1e-9)

    def test_infeasible(self):
        pts = np.zeros((5, 2))
        sol = capacitated_kcenter_assignment(pts, np.ones((1, 2)), 3)
        assert sol.labels is None and math.isinf(sol.radius)

    def test_end_to_end(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 100, size=(60, 2))
        sol = capacitated_kcenter(pts, 4, 15, seed=1)
        assert sol.labels is not None
        assert (sol.sizes <= 15 + 1e-9).all()
        assert sol.radius > 0

    def test_rejects_fractional_weights(self):
        pts = np.zeros((3, 2))
        with pytest.raises(ValueError):
            capacitated_kcenter_assignment(pts, np.ones((1, 2)), 5,
                                           weights=np.array([0.5, 1.0, 1.0]))


class TestBalanceMetrics:
    def test_perfectly_balanced(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert max_load_ratio(labels, 3) == pytest.approx(1.0)
        assert imbalance_cv(labels, 3) == pytest.approx(0.0)
        assert gini(labels, 3) == pytest.approx(0.0, abs=1e-12)

    def test_fully_concentrated(self):
        labels = np.zeros(10, dtype=np.int64)
        assert max_load_ratio(labels, 5) == pytest.approx(5.0)
        assert gini(labels, 5) == pytest.approx(1 - 1 / 5)

    def test_weighted_loads(self):
        labels = np.array([0, 1])
        w = np.array([3.0, 1.0])
        assert max_load_ratio(labels, 2, w) == pytest.approx(1.5)

    def test_capacity_violations(self):
        labels = np.array([0, 0, 0, 1])
        v = capacity_violations(labels, 2, 2)
        assert v.tolist() == [1.0, 0.0]

    def test_gini_monotone_in_imbalance(self):
        balanced = np.array([0, 0, 1, 1])
        skewed = np.array([0, 0, 0, 1])
        assert gini(skewed, 2) > gini(balanced, 2)
