"""Tests for streaming-state merging and the LP-rounding solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CoresetParams
from repro.data.synthetic import gaussian_mixture, unbalanced_mixture
from repro.data.workloads import insertion_stream
from repro.solvers.lp_rounding import lp_rounding_capacitated
from repro.solvers.pilot import estimate_opt_cost
from repro.streaming import StreamingCoreset
from repro.streaming.merge import merge_streaming_states, merge_storing
from repro.streaming.storing import ExactStoring, SketchStoring


class TestMergeStoring:
    @pytest.mark.parametrize("backend", ["exact", "sketch"])
    def test_merge_equals_sequential(self, backend):
        def make():
            if backend == "exact":
                return ExactStoring(32, 4)
            return SketchStoring(32, 4, cell_universe_bits=16,
                                 point_universe_bits=16, seed=3)

        a, b, ref = make(), make(), make()
        ops_a = [(1, 10, 1), (1, 11, 1), (2, 20, 1)]
        ops_b = [(1, 10, -1), (3, 30, 1)]
        for cell, pt, sign in ops_a:
            a.update(cell, pt, sign)
            ref.update(cell, pt, sign)
        for cell, pt, sign in ops_b:
            b.update(cell, pt, sign)
            ref.update(cell, pt, sign)
        merged = merge_storing(a, b)
        assert merged.result().cells == ref.result().cells
        assert merged.result().small_points == ref.result().small_points

    def test_mismatched_budgets_rejected(self):
        with pytest.raises(ValueError):
            merge_storing(ExactStoring(8, 2), ExactStoring(16, 2))

    def test_mixed_backends_rejected(self):
        with pytest.raises(ValueError):
            merge_storing(ExactStoring(8, 2),
                          SketchStoring(8, 2, 16, 16, seed=0))


class TestMergeStreaming:
    @pytest.mark.parametrize("backend", ["exact", "sketch"])
    def test_sharded_equals_single_stream(self, backend):
        pts = np.unique(gaussian_mixture(1200, 2, 256, k=3, seed=61), axis=0)
        params = CoresetParams.practical(k=3, d=2, delta=256)
        pilot = estimate_opt_cost(pts, 3, r=2.0, seed=1)
        orange = (pilot / 16, pilot / 4)
        half = len(pts) // 2

        whole = StreamingCoreset(params, seed=41, backend=backend, o_range=orange)
        whole.process(insertion_stream(pts, seed=9))
        want = whole.finalize()

        s1 = StreamingCoreset(params, seed=41, backend=backend, o_range=orange)
        s2 = StreamingCoreset(params, seed=41, backend=backend, o_range=orange)
        # Shard by the same global order so the union matches exactly.
        events = list(insertion_stream(pts, seed=9))
        s1.process(events[:half])
        s2.process(events[half:])
        merged = merge_streaming_states(s1, s2)
        got = merged.finalize()
        assert got.o == want.o
        assert sorted(map(tuple, got.points.tolist())) == sorted(
            map(tuple, want.points.tolist())
        )

    def test_merge_different_seeds_rejected(self):
        params = CoresetParams.practical(k=2, d=2, delta=64)
        a = StreamingCoreset(params, seed=1, backend="exact", o_range=(8, 8))
        b = StreamingCoreset(params, seed=2, backend="exact", o_range=(8, 8))
        with pytest.raises(ValueError):
            merge_streaming_states(a, b)

    def test_merge_different_params_rejected(self):
        a = StreamingCoreset(CoresetParams.practical(k=2, d=2, delta=64),
                             seed=1, backend="exact", o_range=(8, 8))
        b = StreamingCoreset(CoresetParams.practical(k=3, d=2, delta=64),
                             seed=1, backend="exact", o_range=(8, 8))
        with pytest.raises(ValueError):
            merge_streaming_states(a, b)


class TestLPRounding:
    def test_respects_capacity_and_beats_lp_modestly(self):
        pts = unbalanced_mixture(600, 2, 256, k=3, imbalance=5.0,
                                 seed=71).astype(float)
        t = len(pts) / 3 * 1.15
        sol = lp_rounding_capacitated(pts, 3, t, seed=2)
        assert sol.sizes.max() <= t * (1 + 1e-6) + 2  # k-1 split points
        assert sol.lp_gap >= 1.0 - 1e-9
        assert sol.lp_gap < 4.0  # rounding within a small constant of the LP

    def test_comparable_to_alternating_solver(self):
        from repro.solvers import CapacitatedKClustering

        pts = gaussian_mixture(600, 2, 256, k=3, seed=72).astype(float)
        t = len(pts) / 3 * 1.2
        lp = lp_rounding_capacitated(pts, 3, t, seed=3)
        alt = CapacitatedKClustering(k=3, capacity=t, restarts=2, seed=3).fit(pts)
        assert lp.cost <= 3.0 * alt.cost
        assert alt.cost <= 3.0 * lp.cost

    def test_weighted_instance(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 100, size=(80, 2))
        w = rng.uniform(0.5, 2.0, size=80)
        t = w.sum() / 2 * 1.2
        sol = lp_rounding_capacitated(pts, 2, t, weights=w, seed=5)
        assert sol.labels.shape == (80,)
        assert sol.sizes.sum() == pytest.approx(w.sum())

    def test_infeasible_rejected(self):
        with pytest.raises(ValueError):
            lp_rounding_capacitated(np.zeros((10, 2)), 2, 3.0)
