"""Integration tests for Algorithm 4 / Theorem 4.5 (streaming coreset)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import CoresetParams
from repro.data.synthetic import gaussian_mixture
from repro.data.workloads import churn_stream, deletion_heavy_stream, insertion_stream
from repro.metrics.evaluation import evaluate_coreset_quality
from repro.solvers.kmeanspp import kmeans_plusplus
from repro.solvers.pilot import estimate_opt_cost
from repro.streaming import StreamingCoreset, materialize
from repro.utils.validation import FailedConstruction


@pytest.fixture(scope="module")
def setup():
    pts = np.unique(gaussian_mixture(2000, 2, 256, k=3, spread=0.03, seed=8), axis=0)
    params = CoresetParams.practical(k=3, d=2, delta=256, eps=0.25, eta=0.25)
    pilot = estimate_opt_cost(pts, 3, r=2.0, seed=4)
    return pts, params, pilot


class TestStreamingMatchesOffline:
    def test_insertion_stream_equals_offline_sampled_mode(self, setup):
        """Same hash randomness ⇒ streaming over an insert-only stream gives
        exactly the offline Algorithm 2 in sampled-counts mode."""
        pts, params, pilot = setup
        sc = StreamingCoreset(params, seed=21, backend="exact",
                              o_range=(pilot / 64, pilot / 4))
        sc.process(insertion_stream(pts, seed=5))
        cs = sc.finalize()
        assert len(cs) > 0
        # The streaming coreset must be a subset of the input with sane weights.
        input_set = set(map(tuple, pts.tolist()))
        assert all(tuple(p) in input_set for p in cs.points.tolist())
        assert cs.total_weight == pytest.approx(len(pts), rel=0.3)

    def test_order_invariance(self, setup):
        """Linear sketches: any insertion order yields the same coreset."""
        pts, params, pilot = setup
        results = []
        for order_seed in (1, 2):
            sc = StreamingCoreset(params, seed=33, backend="exact",
                                  o_range=(pilot / 64, pilot / 4))
            sc.process(insertion_stream(pts, seed=order_seed))
            cs = sc.finalize()
            results.append(sorted(map(tuple, cs.points.tolist())))
        assert results[0] == results[1]

    def test_deletions_equal_never_inserted(self, setup):
        """Insert A∪B then delete B  ≡  insert only A (linearity)."""
        pts, params, _ = setup
        keep = pts[: len(pts) // 2]
        churn = churn_stream(pts, delete_fraction=0.0, seed=1)  # base order
        # Build: insert all, delete the second half.
        from repro.streaming.stream import DELETE, INSERT, Stream, StreamEvent

        events = [StreamEvent(tuple(map(int, p)), INSERT) for p in pts]
        events += [StreamEvent(tuple(map(int, p)), DELETE) for p in pts[len(pts) // 2:]]
        pilot = estimate_opt_cost(keep, 3, r=2.0, seed=4)
        a = StreamingCoreset(params, seed=44, backend="exact",
                             o_range=(pilot / 64, pilot / 4))
        a.process(Stream(events))
        b = StreamingCoreset(params, seed=44, backend="exact",
                             o_range=(pilot / 64, pilot / 4))
        b.process(Stream([StreamEvent(tuple(map(int, p)), INSERT) for p in keep]))
        ca, cb = a.finalize(), b.finalize()
        assert sorted(map(tuple, ca.points.tolist())) == sorted(map(tuple, cb.points.tolist()))
        assert ca.o == cb.o


class TestStreamingQuality:
    def test_coreset_property_after_churn(self, setup):
        pts, params, _ = setup
        stream = churn_stream(pts, delete_fraction=0.5, seed=6)
        survivors = materialize(stream, d=2)
        pilot = estimate_opt_cost(survivors, 3, r=2.0, seed=4)
        sc = StreamingCoreset(params, seed=13, backend="exact",
                              o_range=(pilot / 64, pilot / 4))
        sc.process(stream)
        cs = sc.finalize()
        n = len(survivors)
        Zs = [kmeans_plusplus(survivors.astype(float), 3, seed=s) for s in (1, 2)]
        rep = evaluate_coreset_quality(
            survivors, cs, Zs, [n / 3, math.inf], r=2.0, eps=0.25, eta=0.25
        )
        assert rep.entries
        # Allow modest slack: streaming mode estimates all counts by sampling.
        assert rep.worst_ratio <= 1.25 * 1.1

    def test_whole_cluster_deletion(self):
        """E4's hard case: delete an entire cluster; the coreset must track
        the survivors' structure, not the full history's."""
        pts, means, labels = gaussian_mixture(1500, 2, 256, k=3, spread=0.02,
                                              seed=9, return_truth=True)
        params = CoresetParams.practical(k=2, d=2, delta=256, eps=0.25, eta=0.25)
        stream = deletion_heavy_stream(pts, labels, delete_clusters=[0], seed=2)
        survivors = materialize(stream, d=2)
        pilot = estimate_opt_cost(survivors, 2, r=2.0, seed=4)
        sc = StreamingCoreset(params, seed=31, backend="exact",
                              o_range=(pilot / 64, pilot / 4))
        sc.process(stream)
        cs = sc.finalize()
        surv_set = set(map(tuple, survivors.tolist()))
        assert all(tuple(p) in surv_set for p in cs.points.tolist())
        assert cs.total_weight == pytest.approx(len(survivors), rel=0.3)


class TestSnapshots:
    def test_midstream_snapshot_matches_prefix(self, setup):
        """finalize() is non-destructive: querying mid-stream equals running
        a fresh instance on the prefix, and streaming continues correctly."""
        pts, params, _ = setup
        sub = pts[:800]
        prefix, rest = sub[:500], sub[500:]
        pilot = estimate_opt_cost(sub, 3, r=2.0, seed=4)
        orange = (pilot / 64, pilot / 4)

        sc = StreamingCoreset(params, seed=77, backend="exact", o_range=orange)
        from repro.streaming.stream import Stream

        sc.process(insertion_stream(prefix, seed=1))
        snap = sc.snapshot()

        fresh = StreamingCoreset(params, seed=77, backend="exact", o_range=orange)
        fresh.process(insertion_stream(prefix, seed=1))
        ref = fresh.finalize()
        assert sorted(map(tuple, snap.points.tolist())) == sorted(
            map(tuple, ref.points.tolist())
        )

        # Continue streaming after the snapshot; the final result equals a
        # single uninterrupted run.
        sc.process(insertion_stream(rest, seed=2))
        full = sc.finalize()
        uninterrupted = StreamingCoreset(params, seed=77, backend="exact",
                                         o_range=orange)
        uninterrupted.process(insertion_stream(prefix, seed=1))
        uninterrupted.process(insertion_stream(rest, seed=2))
        want = uninterrupted.finalize()
        assert sorted(map(tuple, full.points.tolist())) == sorted(
            map(tuple, want.points.tolist())
        )


class TestSketchBackend:
    def test_sketch_matches_exact(self, setup):
        pts, params, pilot = setup
        sub = pts[:400]
        sub_pilot = estimate_opt_cost(sub, 3, r=2.0, seed=4)
        exact = StreamingCoreset(params, seed=55, backend="exact",
                                 o_range=(sub_pilot / 16, sub_pilot / 4))
        exact.process(insertion_stream(sub, seed=3))
        cs_e, inst = exact.finalize_with_instance()
        sketch = StreamingCoreset(params, seed=55, backend="sketch",
                                  o_range=(cs_e.o, cs_e.o))
        sketch.process(insertion_stream(sub, seed=3))
        cs_s = sketch.finalize()
        assert sorted(map(tuple, cs_e.points.tolist())) == sorted(
            map(tuple, cs_s.points.tolist())
        )

    def test_space_accounting_positive(self, setup):
        pts, params, pilot = setup
        sc = StreamingCoreset(params, seed=5, backend="sketch",
                              o_range=(pilot / 8, pilot / 8))
        sc.update(tuple(map(int, pts[0])), +1)
        assert sc.space_bits() > 0


class TestUpdateBatchAndValidation:
    def test_process_accepts_ndarray_event_points(self, setup):
        """Regression: ``process()`` crashed with ``TypeError: unhashable
        type`` when a StreamEvent carried an ndarray point (the value-cache
        key was the raw point).  Array and tuple events must now be
        bit-identical."""
        from repro.streaming.stream import INSERT, Stream, StreamEvent

        pts, params, pilot = setup
        sub = pts[:80]
        orange = (pilot / 64, pilot / 4)
        arr = StreamingCoreset(params, seed=7, backend="exact", o_range=orange)
        arr.process(Stream([StreamEvent(np.asarray(p), INSERT) for p in sub]))
        tup = StreamingCoreset(params, seed=7, backend="exact", o_range=orange)
        tup.process(Stream([StreamEvent(tuple(map(int, p)), INSERT)
                            for p in sub]))
        from repro.service.state import streaming_state_to_dict

        assert streaming_state_to_dict(arr) == streaming_state_to_dict(tup)

    def test_update_batch_equals_event_loop(self, setup):
        """The vectorized batched path is bit-identical to one update() per
        event (same cache entries, same sampler feed order)."""
        pts, params, pilot = setup
        sub = pts[:60]
        orange = (pilot / 64, pilot / 4)
        batched = StreamingCoreset(params, seed=19, backend="exact",
                                   o_range=orange)
        assert batched.update_batch(
            [(tuple(map(int, p)), 1) for p in sub]) == len(sub)
        looped = StreamingCoreset(params, seed=19, backend="exact",
                                  o_range=orange)
        for p in sub:
            looped.update(tuple(map(int, p)), 1)
        from repro.service.state import streaming_state_to_dict

        assert streaming_state_to_dict(batched) == streaming_state_to_dict(looped)

    def test_out_of_range_update_rejected_before_state_change(self, setup):
        """Regression: out-of-range coordinates alias under the mixed-radix
        codec; both update paths must reject them atomically — a failed
        batch leaves *zero* events applied, not a prefix."""
        _, params, _ = setup
        sc = StreamingCoreset(params, seed=3, backend="exact")
        for bad in ((1, -1), (1, 257), (-5, 0)):
            with pytest.raises(ValueError, match=r"\[0, 256\]"):
                sc.update(bad, +1)
        with pytest.raises(ValueError, match=r"\[0, 256\]"):
            sc.update_batch([((3, 3), 1), ((5, 5), 1), ((1, -1), 1)])
        assert sc.num_updates == 0
        # Still healthy: the same batch minus the bad event applies cleanly.
        assert sc.update_batch([((3, 3), 1), ((5, 5), 1)]) == 2
        assert sc.num_updates == 2

    def test_coordinate_zero_accepted(self, setup):
        """0 is inside the codec's injective window [0, Δ] and must not be
        rejected by streaming ingest (the offline [1, Δ] check is stricter)."""
        _, params, _ = setup
        sc = StreamingCoreset(params, seed=3, backend="exact")
        sc.update((0, 0), +1)
        sc.update_batch([((0, 256), 1), ((256, 0), 1)])
        assert sc.num_updates == 3


class TestFailurePaths:
    def test_all_guesses_fail_raises(self, setup):
        pts, params, _ = setup
        sc = StreamingCoreset(params, seed=5, backend="exact",
                              o_range=(1e17, 1e18))  # absurd: root never heavy
        sc.process(insertion_stream(pts[:100], seed=1))
        with pytest.raises(FailedConstruction):
            sc.finalize()

    def test_prefer_validation(self, setup):
        _, params, _ = setup
        with pytest.raises(ValueError):
            StreamingCoreset(params, prefer="median")
