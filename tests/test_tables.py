"""Tests for the table rendering utility."""

from __future__ import annotations

from repro.utils.tables import format_table, render_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        # All lines equal width.
        assert len({len(l) for l in lines}) == 1

    def test_float_formatting(self):
        out = format_table(["x"], [[0.123456], [1e9], [0.0]])
        assert "0.123" in out
        assert "1e+09" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_render_has_title(self):
        out = render_table("My Title", ["c"], [[1]])
        assert out.startswith("=== My Title ===")
