"""Fixture: unparseable on purpose (LINT000)."""


def broken(:
    pass
