"""Fixture async server: handles ping/query/mystery plus an undeclared op."""


def dispatch(req):
    op = req["op"]
    if op == "ping":
        return {"pong": True}
    if op == "query":
        return {"result": None}
    if op == "mystery":
        return {"spooky": True}
    if op == "extra":            # WIRE402: not in OPS
        return {"oops": True}
    raise ValueError(op)
