"""Fixture client: never sends 'mystery' (WIRE403); sends an undeclared
'undeclared' (WIRE402)."""


class Client:
    def ping(self):
        return self.request("ping")

    def query(self):
        return self.request("query")

    def rogue(self):
        return self.request("undeclared")
