"""Fixture sync server: forgot 'query' and 'mystery' (WIRE401)."""


def dispatch(req):
    op = req["op"]
    if op == "ping":
        return {"pong": True}
    raise ValueError(op)
