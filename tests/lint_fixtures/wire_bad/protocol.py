"""Fixture protocol: three declared ops; 'mystery' has drifted."""

OPS = ("ping", "query", "mystery")
