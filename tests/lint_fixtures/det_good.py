# repro-lint: scope=det
"""Fixture: determinism-respecting counterparts of det_bad.py — clean."""


def seeded_draws(seed):
    return np.random.default_rng(seed)


def serialize(d, s):
    out = []
    for k, v in sorted(d.items()):     # canonical order
        out.append((k, v))
    out.extend(sorted(s))
    total = sum(d.values())            # order-insensitive reduction
    return out, total


def exact_threshold(phi_num, phi_den, prime):
    return (phi_num * prime) // phi_den  # exact integer arithmetic
