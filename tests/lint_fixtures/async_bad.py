# repro-lint: scope=async
"""Fixture: event-loop hazards inside ``async def``."""


async def handle_insert(registry, arr):
    return registry.insert("default", arr)   # ASYNC301: sketch work on loop


async def handle_dump(payload, fh):
    json.dump(payload, fh)                   # ASYNC301: blocking file I/O
    open("state.bin")                        # ASYNC301: blocking open


async def handle_locked(self, req):
    with self._lock:
        return await self.dispatch(req)      # ASYNC302: await under lock
