# repro-lint: scope=det
"""Fixture: a reasonless directive suppresses nothing and is itself
reported (LINT001)."""


def no_reason_given(d):
    out = []
    for k, v in d.items():  # repro-lint: disable=DET104
        out.append((k, v))
    return out
