"""Fixture: a wire-speaker file in sync with its target protocol."""
# repro-lint: wire-speaker=wire_good/protocol.py ops=ping,query


class Driver:
    def poll(self, cli):
        cli.ping()
        return cli.query()
