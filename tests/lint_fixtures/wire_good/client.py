"""Fixture client: reaches every declared op."""


class Client:
    def ping(self):
        return self.request("ping")

    def query(self):
        return self.request("query")
