"""Fixture async server: handles exactly the declared ops."""


def dispatch(req):
    op = req["op"]
    if op == "ping":
        return {"pong": True}
    if op == "query":
        return {"result": None}
    raise ValueError(op)
