"""Fixture protocol: two ops, consistently implemented everywhere."""

OPS = ("ping", "query")
