# repro-lint: scope=hot
"""Fixture: un-annotated scalar constructs in a (pretend) hot file."""


def per_event_loop(events, sketch):
    for ev in events:                  # HOT201: un-annotated for
        sketch.update(ev)


def spin(queue):
    while queue:                       # HOT201: un-annotated while
        queue.pop()


def materialize(arr):
    return set(arr.tolist())           # HOT202: un-annotated .tolist()
