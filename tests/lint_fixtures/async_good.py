# repro-lint: scope=async
"""Fixture: the sanctioned patterns — clean."""


async def handle_insert(registry, arr):
    return await asyncio.to_thread(registry.insert, "default", arr)


async def handle_combined(registry):
    def _payload():                          # nested sync def: off-loop
        return registry.overview(), registry.live_count()

    rows, live = await asyncio.to_thread(_payload)
    return rows, live


async def handle_locked(self, req):
    async with self._gate:                   # async lock: awaiting is fine
        return await self.dispatch(req)


def sync_helpers_block_freely(registry):
    return registry.stats("default")
