"""Fixture: a wire-speaker whose marker has drifted every way at once.

Expected findings:
- WIRE404 at the marker: ``flush`` is declared but not in the protocol OPS.
- WIRE404 at the ``request("teleport")`` literal: op unknown to the server.
- WIRE405 at ``cli.query()``: spoken but missing from the marker's ops list.
- WIRE405 at the teleport literal: spoken but undeclared.
- WIRE405 at the marker: ``ping`` is declared but never spoken.
"""
# repro-lint: wire-speaker=wire_good/protocol.py ops=ping,flush


class Driver:
    def poll(self, cli):
        cli.query()
        return cli.request("teleport")
