# repro-lint: scope=det
"""Fixture: every DET code fires at least once.  Never imported — the
linter only parses; undefined names are deliberate."""


def unseeded_draws():
    a = random.random()                # DET101: global stdlib RNG
    b = np.random.randint(0, 10)       # DET101: numpy global state
    rng = np.random.default_rng()      # DET101: no-arg default_rng
    return a, b, rng


def wall_clock_stamp(record):
    record["stamp"] = time.time()      # DET102: wall clock
    return record


def identity_key(obj):
    return hash(obj)                   # DET103: PYTHONHASHSEED-dependent


def serialize(d, s):
    out = []
    for k, v in d.items():             # DET104: unsorted dict view
        out.append((k, v))
    out.extend(x for x in s)
    bad_set = {u for u in {1, 2, 3}}   # DET104: set literal iteration
    return out, bad_set


def truncated_threshold(phi, prime):
    return int(phi * prime)            # DET105: float-truncated field value
