# repro-lint: scope=det
"""Fixture: reasoned suppressions silence findings — lints clean."""


def inline_form(d):
    out = []
    for k, v in d.items():  # repro-lint: disable=DET104 insertion order is the codec contract here
        out.append((k, v))
    return out


def standalone_form(record):
    # repro-lint: disable=DET102 benchmark-only timing, never serialized
    record["stamp"] = time.time()
    return record


def family_form(phi, prime):
    return int(phi * prime)  # repro-lint: disable=DET fixture demonstrating family-level suppression
