# repro-lint: scope=hot
"""Fixture: annotated / vectorized counterparts of hot_bad.py — clean."""


def per_level_loop(levels, sketch):
    for lvl in levels:  # scalar-ok: per level, not per event
        sketch.scatter(lvl)


def drain(queue):
    while queue:  # scalar-ok: shutdown drain
        queue.pop()


def materialize(arr):
    return set(arr.tolist())  # scalar-ok: decode-time snapshot


def comprehensions_are_fine(rows):
    return [r * 2 for r in rows]
