"""Tests for the dynamic stream model and workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import gaussian_mixture
from repro.data.workloads import (
    churn_stream,
    dedupe,
    deletion_heavy_stream,
    insertion_stream,
)
from repro.streaming.stream import DELETE, INSERT, Stream, StreamEvent, materialize


class TestStreamModel:
    def test_event_sign_validation(self):
        with pytest.raises(ValueError):
            StreamEvent((1, 2), 0)

    def test_materialize_insert_only(self):
        s = Stream.from_points(np.array([[1, 2], [3, 4]]))
        out = materialize(s)
        assert sorted(map(tuple, out.tolist())) == [(1, 2), (3, 4)]

    def test_materialize_rejects_double_insert(self):
        s = Stream([StreamEvent((1, 1), INSERT), StreamEvent((1, 1), INSERT)])
        with pytest.raises(ValueError):
            materialize(s)

    def test_materialize_rejects_phantom_delete(self):
        s = Stream([StreamEvent((1, 1), DELETE)])
        with pytest.raises(ValueError):
            materialize(s)

    def test_insert_then_delete_empty(self):
        s = Stream([StreamEvent((1, 1), INSERT), StreamEvent((1, 1), DELETE)])
        assert materialize(s, d=2).shape == (0, 2)

    def test_stream_concat_and_counts(self):
        a = Stream.from_points(np.array([[1, 1]]))
        b = Stream([StreamEvent((1, 1), DELETE)])
        s = a + b
        assert len(s) == 2
        assert s.num_insertions() == 1
        assert s.num_deletions() == 1


class TestWorkloads:
    @pytest.fixture
    def pts(self):
        return dedupe(gaussian_mixture(800, 2, 128, k=3, seed=1))

    def test_insertion_stream_valid(self, pts):
        s = insertion_stream(pts, seed=2)
        out = materialize(s)
        assert len(out) == len(pts)

    def test_churn_stream_valid_and_deletes(self, pts):
        s = churn_stream(pts, delete_fraction=0.5, seed=3)
        out = materialize(s)  # raises on any model violation
        assert 0 < len(out) < len(pts)
        assert s.num_deletions() == len(pts) - len(out)

    def test_churn_interleaves_deletions(self, pts):
        s = churn_stream(pts, delete_fraction=0.5, seed=3)
        first_delete = next(i for i, e in enumerate(s) if e.sign == DELETE)
        last_insert = max(i for i, e in enumerate(s) if e.sign == INSERT)
        assert first_delete < last_insert  # not all deletions at the end

    def test_deletion_heavy_removes_whole_cluster(self):
        pts, _, labels = gaussian_mixture(600, 2, 128, k=3, seed=5,
                                          return_truth=True)
        s = deletion_heavy_stream(pts, labels, delete_clusters=[0], seed=1)
        out = materialize(s)
        uniq, first = np.unique(pts, axis=0, return_index=True)
        survivors_expected = uniq[labels[first] != 0]
        assert sorted(map(tuple, out.tolist())) == sorted(
            map(tuple, survivors_expected.tolist())
        )

    def test_deletion_heavy_label_mismatch(self, pts):
        with pytest.raises(ValueError):
            deletion_heavy_stream(pts, np.zeros(3), [0])

    def test_workloads_deterministic(self, pts):
        a = churn_stream(pts, 0.4, seed=9)
        b = churn_stream(pts, 0.4, seed=9)
        assert [e.point for e in a] == [e.point for e in b]
