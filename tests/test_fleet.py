"""Fleet subsystem tests: merge laws, wire ops, and real multi-process runs.

Three layers, cheapest first:

- **Merge properties** (hypothesis): the coordinator fan-in is addition of
  linear sketches, so merging ``s`` site states must be associative,
  site-permutation-independent, and bit-identical to a single process that
  ingested the concatenated stream — for random and adversarially skewed
  partitions, with and without deletions.
- **Wire ops**: ``pull_state`` / ``site_stats`` round-trip on both servers,
  and the pulled envelope is byte-identical to a local ``state_payload``.
- **Real fleet**: `run_fleet` spawns actual ``repro serve`` subprocesses;
  the merged state, the query answer, and the metered wire bits must all
  match the in-process reference/simulation — including after an injected
  ``site.kill`` with checkpoint + journal-replay recovery.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.fleet import (
    REQUEST_BITS,
    SITE_STATS_FIELDS,
    merge_sharded,
    plan_site_ops,
    pull_state_bits,
    run_fleet,
    simulate_fleet,
)
from repro.distributed.fleet import _merged_state_json, _reference_service
from repro.service import (
    ClusteringService,
    ServiceClient,
    ServiceConfig,
    TenantRegistry,
    start_async_server,
    start_server,
)
from repro.service import faults
from repro.service.faults import FaultPlan, FaultRule
from repro.service.state import (
    sharded_state_from_dict,
    streaming_state_to_dict,
)
from repro.streaming.merge import merge_many
from repro.utils.bits import float_bits

# Cheap in-process shape: 4 guess instances, sub-100ms per service.
CHEAP = dict(k=2, d=2, delta=32, num_shards=2, seed=11,
             o_range=(1.0, 8.0), restarts=1)

# Real-fleet shape: no o_range (the serve CLI cannot express it, so
# spawned sites always run the auto-pilot guess schedule).
FLEET = dict(k=2, d=2, delta=32, num_shards=2, seed=7, restarts=1)


def _site_states(config: ServiceConfig, site_ops) -> list[dict]:
    """Per-site ingest state dicts (the pull_state payloads, in-process)."""
    states = []
    for ops in site_ops:
        svc = ClusteringService(dataclasses.replace(config, workers=0))
        for op, rows in ops:
            (svc.insert if op == "insert" else svc.delete)(rows)
        states.append(svc.ingest.to_state_dict())
        svc.close()
    return states


def _canon(ingest) -> str:
    return json.dumps(ingest.to_state_dict(), sort_keys=True,
                      separators=(",", ":"))


def _fold(states, order) -> str:
    """Left fold of the site states in ``order``; canonical JSON result."""
    return _canon(merge_sharded(
        [sharded_state_from_dict(states[i]) for i in order]))


@st.composite
def fleet_plan(draw):
    """A small fleet workload: points, a partition, per-site batches."""
    n = draw(st.integers(min_value=16, max_value=48))
    s = draw(st.integers(min_value=2, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    mode = draw(st.sampled_from(["random", "skewed"]))
    delete_fraction = draw(st.sampled_from([0.0, 0.25]))
    rng = np.random.default_rng(seed)
    pts = rng.integers(0, CHEAP["delta"] + 1, size=(n, 2))
    ops = plan_site_ops(pts, s, seed=seed, mode=mode, batch_size=7,
                        delete_fraction=delete_fraction)
    perm = draw(st.permutations(range(s)))
    return ops, list(perm)


class TestMergeProperties:
    """Satellite: streaming/merge.py under fleet conditions."""

    @given(fleet_plan())
    @settings(max_examples=12, deadline=None)
    def test_merge_is_order_free_and_matches_unsharded(self, plan):
        ops, perm = plan
        cfg = ServiceConfig(**CHEAP)
        states = _site_states(cfg, ops)
        identity = list(range(len(states)))

        # Site-permutation independence (commutativity of sketch addition).
        merged = _fold(states, identity)
        assert _fold(states, perm) == merged

        # Associativity: right fold equals the left fold.
        acc = sharded_state_from_dict(states[-1])
        for i in reversed(identity[:-1]):
            acc = merge_sharded([sharded_state_from_dict(states[i]), acc])
        assert _canon(acc) == merged

        # Bit-identical to one process fed the concatenated stream.
        reference = _reference_service(cfg, ops)
        assert merged == _merged_state_json(reference)
        reference.close()

    @given(fleet_plan())
    @settings(max_examples=8, deadline=None)
    def test_merge_many_drivers_match_reference_shard(self, plan):
        """merge_many at the StreamingCoreset layer: summing shard 0's
        drivers across sites equals shard 0 of the unsharded reference."""
        ops, perm = plan
        cfg = ServiceConfig(**CHEAP)
        states = _site_states(cfg, ops)
        drivers = [sharded_state_from_dict(states[i]).shards[0] for i in perm]
        merged = merge_many(drivers)
        reference = _reference_service(cfg, ops)
        ref_shard = reference.ingest.shards[0]
        assert json.dumps(streaming_state_to_dict(merged), sort_keys=True) == \
            json.dumps(streaming_state_to_dict(ref_shard), sort_keys=True)
        assert merged.num_updates == ref_shard.num_updates
        reference.close()


class TestWireOps:
    """pull_state / site_stats round-trip on both server front ends."""

    def _workload(self, n=40):
        rng = np.random.default_rng(5)
        return rng.integers(0, CHEAP["delta"] + 1, size=(n, 2))

    def test_async_pull_state_is_the_checkpoint_envelope(self):
        cfg = ServiceConfig(**CHEAP)
        reg = TenantRegistry(cfg)
        server, _ = start_async_server(reg)
        host, port = server.address
        pts = self._workload()
        try:
            with ServiceClient(host, port) as cli:
                cli.insert(pts, batch_size=16)
                state = cli.pull_state()
                site = cli.site_stats()
        finally:
            server.shutdown()
            reg.close(persist=False)
        reference = ClusteringService(cfg)
        reference.insert(pts[:16]); reference.insert(pts[16:32])
        reference.insert(pts[32:])
        expected = reference.state_payload()
        got = dict(state)
        got.pop("tenant", None)  # registry stamps tenant metadata
        assert json.dumps(got, sort_keys=True) == \
            json.dumps(expected, sort_keys=True)
        assert tuple(sorted(site)) == tuple(sorted(
            SITE_STATS_FIELDS + ("stream_id",)))
        assert site["events"] == len(pts)
        reference.close()

    def test_sync_server_speaks_the_fleet_ops(self):
        cfg = ServiceConfig(**CHEAP)
        server, _ = start_server(ClusteringService(cfg))
        host, port = server.server_address
        pts = self._workload(24)
        try:
            with ServiceClient(host, port) as cli:
                cli.insert(pts, batch_size=24)
                state = cli.pull_state()
                site = cli.site_stats()
        finally:
            server.shutdown()
        restored = ClusteringService.from_payload(state)
        assert restored.ingest.num_events == len(pts) == site["events"]
        assert site["num_shards"] == cfg.num_shards
        restored.close()

    def test_pull_state_bits_policy_is_structural(self):
        """The charge depends on sketch structure, not JSON encoding."""
        cfg = ServiceConfig(**CHEAP)
        svc = ClusteringService(cfg)
        svc.insert(self._workload(16))
        ingest = svc.ingest
        assert pull_state_bits(ingest) == \
            ingest.space_bits() + float_bits(3 + ingest.num_shards)
        assert REQUEST_BITS == 16
        svc.close()


@pytest.mark.slow
class TestRealFleet:
    """End-to-end over real subprocesses (the acceptance criterion)."""

    def _points(self, n=140):
        rng = np.random.default_rng(2)
        return rng.integers(0, FLEET["delta"] + 1, size=(n, 2))

    def test_fleet_bit_identity_and_accounting(self, tmp_path):
        report = run_fleet(ServiceConfig(**FLEET), self._points(),
                           num_sites=2, batch_size=24,
                           delete_fraction=0.2, checkpoint_every=2,
                           workdir=tmp_path)
        assert report["state_identical"]
        assert report["answer_identical"]
        assert report["bits_match_simulation"]
        assert report["passed"]
        assert report["recoveries"] == 0
        assert report["uplink_bits"] == report["sim_uplink_bits"] > 0

    def test_fleet_survives_site_kill(self, tmp_path):
        faults.install(FaultPlan([FaultRule(point="site.kill",
                                            match={"site": 1},
                                            after=1, times=1)], seed=3))
        try:
            report = run_fleet(ServiceConfig(**FLEET), self._points(),
                               num_sites=2, batch_size=24,
                               delete_fraction=0.2, checkpoint_every=2,
                               workdir=tmp_path)
        finally:
            faults.uninstall()
        assert report["recoveries"] == 1
        assert report["restarts"] == 1
        assert report["state_identical"]
        assert report["answer_identical"]
        assert report["bits_match_simulation"]
        assert report["passed"]
