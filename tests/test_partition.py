"""Tests for Algorithm 1 (heavy-cell partitioning)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimators import ExactCounts, SampledCounts
from repro.core.params import CoresetParams
from repro.core.partition import ROOT_CELL_KEY, partition_heavy_cells
from repro.data.synthetic import gaussian_mixture
from repro.grid.grids import HierarchicalGrids
from repro.utils.validation import FailedConstruction


@pytest.fixture
def setup():
    pts = np.unique(gaussian_mixture(2000, 2, 256, k=3, seed=5), axis=0)
    params = CoresetParams.practical(k=3, d=2, delta=256)
    grids = HierarchicalGrids(256, 2, seed=3)
    return pts, params, grids


def reasonable_o(pts, params):
    """An o in the OPT ballpark for the fixture (spread 0.02·Δ ≈ 5)."""
    return len(pts) * params.d * (0.02 * params.delta) ** 2


class TestPartitionStructure:
    def test_every_point_in_exactly_one_part(self, setup):
        pts, params, grids = setup
        o = reasonable_o(pts, params)
        part = partition_heavy_cells(pts, params, o, grids)
        assert (part.part_of_point >= 0).all()
        covered = np.zeros(len(pts), dtype=int)
        for p in part.parts:
            covered[p.point_idx] += 1
        assert (covered == 1).all()

    def test_part_membership_consistent(self, setup):
        pts, params, grids = setup
        o = reasonable_o(pts, params)
        part = partition_heavy_cells(pts, params, o, grids)
        for pid, p in enumerate(part.parts):
            assert (part.part_of_point[p.point_idx] == pid).all()

    def test_part_diameter_bounded(self, setup):
        """Points of one part lie in one heavy cell of G_{i-1}:
        diameter ≤ √d·g_{i-1} = 2√d·g_i."""
        pts, params, grids = setup
        o = reasonable_o(pts, params)
        part = partition_heavy_cells(pts, params, o, grids)
        for p in part.parts:
            if p.size < 2:
                continue
            sub = pts[p.point_idx].astype(float)
            diam = np.linalg.norm(sub[:, None] - sub[None, :], axis=2).max()
            assert diam <= grids.cell_diameter(p.level - 1) + 1e-9

    def test_parts_grouped_by_heavy_parent(self, setup):
        pts, params, grids = setup
        o = reasonable_o(pts, params)
        part = partition_heavy_cells(pts, params, o, grids)
        for p in part.parts:
            if p.level == 0:
                assert p.parent_cell_key == ROOT_CELL_KEY
            else:
                assert p.parent_cell_key in set(
                    int(k) for k in part.heavy_keys[p.level - 1]
                )

    def test_heavy_counts_match_keys(self, setup):
        pts, params, grids = setup
        o = reasonable_o(pts, params)
        part = partition_heavy_cells(pts, params, o, grids)
        for level in range(0, params.L + 1):
            assert part.heavy_counts[level] == len(part.heavy_keys[level - 1])

    def test_heavy_cells_meet_threshold(self, setup):
        pts, params, grids = setup
        o = reasonable_o(pts, params)
        part = partition_heavy_cells(pts, params, o, grids)
        for level, keys in part.heavy_keys.items():
            if level < 0:
                continue
            key_set = set(int(k) for k in keys)
            if not key_set:
                continue
            cells = grids.cell_keys(pts, level)
            for k in key_set:
                count = int(sum(1 for c in cells if int(c) == k))
                assert count >= params.threshold(level, o)


class TestGuessBehaviour:
    def test_huge_o_root_not_heavy(self, setup):
        pts, params, grids = setup
        huge = 1e18
        part = partition_heavy_cells(pts, params, huge, grids)
        assert part.heavy_keys[-1] == []
        assert (part.part_of_point == -1).all()

    def test_tiny_o_early_abort(self):
        # Uniform data occupies many cells; with o = 1 every occupied cell is
        # heavy and the running count must blow through the FAIL bound.
        from repro.data.synthetic import uniform_points

        pts = np.unique(uniform_points(4000, 2, 256, seed=1), axis=0)
        params = CoresetParams.practical(k=3, d=2, delta=256)
        grids = HierarchicalGrids(256, 2, seed=3)
        with pytest.raises(FailedConstruction):
            partition_heavy_cells(pts, params, 1.0, grids,
                                  max_heavy=params.max_heavy_cells())

    def test_empty_input(self, setup):
        _, params, grids = setup
        part = partition_heavy_cells(np.empty((0, 2), dtype=np.int64),
                                     params, 100.0, grids)
        assert len(part.parts) == 0


class TestSampledCounts:
    def test_sampled_partition_close_to_exact(self, setup):
        pts, params, grids = setup
        o = reasonable_o(pts, params)
        exact = partition_heavy_cells(pts, params, o, grids)
        sampled = partition_heavy_cells(
            pts, params, o, grids,
            counts=SampledCounts(pts, params, o, grids, seed=3),
        )
        # Same level structure up to borderline cells: compare total mass of
        # parts per level within a tolerance.
        def level_mass(p):
            out = {}
            for part in p.parts:
                out[part.level] = out.get(part.level, 0) + part.size
            return out

        em, sm = level_mass(exact), level_mass(sampled)
        total = len(pts)
        diff = sum(abs(em.get(lv, 0) - sm.get(lv, 0))
                   for lv in set(em) | set(sm))
        assert diff <= 0.35 * total

    def test_exact_counts_interface(self):
        c = ExactCounts(10)
        assert c.rate_cells(3) == 1.0
        assert c.mask_cells(0).all()
        assert c.randomness_bits == 0

    def test_sampled_estimates_unbiasedish(self, setup):
        pts, params, grids = setup
        o = reasonable_o(pts, params)
        sc = SampledCounts(pts, params, o, grids, seed=1)
        level = 4
        rate = sc.rate_cells(level)
        est = sc.mask_cells(level).sum() / rate
        assert est == pytest.approx(len(pts), rel=0.2)
