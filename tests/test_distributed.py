"""Tests for the distributed coordinator protocol (Lemma 4.6, Theorem 4.7)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import CoresetParams
from repro.data.synthetic import gaussian_mixture
from repro.distributed import Network, distributed_coreset, distributed_storing
from repro.metrics.evaluation import evaluate_coreset_quality
from repro.solvers.kmeanspp import kmeans_plusplus
from repro.utils.validation import FailedConstruction


@pytest.fixture(scope="module")
def data():
    pts = np.unique(gaussian_mixture(2000, 2, 256, k=3, spread=0.03, seed=18), axis=0)
    params = CoresetParams.practical(k=3, d=2, delta=256, eps=0.25, eta=0.25)
    return pts, params


class TestNetwork:
    def test_partition_modes_cover_all_points(self, data):
        pts, _ = data
        for mode in ("random", "skewed"):
            net = Network.partition(pts, 4, seed=1, mode=mode)
            assert net.s == 4
            total = np.concatenate([m.points for m in net.machines])
            assert sorted(map(tuple, total.tolist())) == sorted(map(tuple, pts.tolist()))

    def test_bit_metering(self, data):
        pts, _ = data
        net = Network.partition(pts, 2, seed=1)
        net.send_up(0, "x", bits=100, label="t")
        net.broadcast("y", bits=10, label="b")
        assert net.uplink_bits == 100
        assert net.downlink_bits == 20  # 10 bits x 2 machines
        assert net.total_bits == 120
        assert net.messages == 3

    def test_unknown_mode_rejected(self, data):
        pts, _ = data
        with pytest.raises(ValueError):
            Network.partition(pts, 2, mode="zigzag")


class TestDistributedStoring:
    def test_merges_cells_and_small_points(self, data):
        _, params = data
        net = Network.partition(np.zeros((4, 2), dtype=np.int64) + 1, 2, seed=0)
        local = [
            [(1, 100), (1, 101), (2, 200)],   # machine 0
            [(1, 102), (3, 300)],             # machine 1
        ]
        res = distributed_storing(net, local, alpha=10, beta=2, params=params)
        assert res.cells == {1: 3, 2: 1, 3: 1}
        # Cell 1 has 3 > beta points: excluded from small_points.
        assert set(res.small_points) == {2, 3}
        assert res.small_points[2] == {200: 1}
        assert net.uplink_bits > 0

    def test_machine_over_alpha_fails(self, data):
        _, params = data
        net = Network.partition(np.zeros((2, 2), dtype=np.int64) + 1, 1, seed=0)
        local = [[(c, c) for c in range(20)]]
        with pytest.raises(FailedConstruction):
            distributed_storing(net, local, alpha=4, beta=1, params=params)


class TestDistributedCoreset:
    @pytest.mark.parametrize("mode", ["random", "skewed"])
    def test_matches_offline_quality(self, data, mode):
        pts, params = data
        net = Network.partition(pts, 4, seed=3, mode=mode)
        cs = distributed_coreset(net, params, seed=9)
        assert len(cs) > 0
        assert cs.total_weight == pytest.approx(len(pts), rel=0.3)
        n = len(pts)
        Zs = [kmeans_plusplus(pts.astype(float), 3, seed=s) for s in (1, 2)]
        rep = evaluate_coreset_quality(pts, cs, Zs, [n / 3, math.inf],
                                       r=2.0, eps=0.25, eta=0.25)
        assert rep.entries
        assert rep.worst_ratio <= 1.25 * 1.1

    def test_communication_additive_in_machines(self, data):
        """With a fixed guess o (no retry noise) the communication decomposes
        as  global-content + s·overhead:  doubling s must not double bits."""
        pts, params = data
        o = 50000.0
        bits = {}
        for s in (2, 8):
            net = Network.partition(pts, s, seed=3)
            distributed_coreset(net, params, seed=9, o=o)
            bits[s] = net.total_bits
        assert bits[8] > bits[2]          # per-machine overhead exists
        assert bits[8] < 3 * bits[2]      # but is not multiplicative

    def test_single_machine_equals_centralized_semantics(self, data):
        pts, params = data
        net = Network.partition(pts, 1, seed=3)
        cs = distributed_coreset(net, params, seed=9)
        surv = set(map(tuple, pts.tolist()))
        assert all(tuple(p) in surv for p in cs.points.tolist())

    def test_deterministic(self, data):
        pts, params = data
        a = distributed_coreset(Network.partition(pts, 3, seed=3), params, seed=9)
        b = distributed_coreset(Network.partition(pts, 3, seed=3), params, seed=9)
        assert a.o == b.o
        assert np.array_equal(
            np.sort(a.points, axis=0), np.sort(b.points, axis=0)
        )

    def test_partitioning_invariance(self, data):
        """The merged sketches are linear, so the coreset must not depend on
        HOW points are split across machines."""
        pts, params = data
        a = distributed_coreset(Network.partition(pts, 2, seed=1, mode="random"),
                                params, seed=9, o=50000.0)
        b = distributed_coreset(Network.partition(pts, 8, seed=2, mode="skewed"),
                                params, seed=9, o=50000.0)
        assert sorted(map(tuple, a.points.tolist())) == sorted(map(tuple, b.points.tolist()))
