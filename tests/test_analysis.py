"""Tests for the executable theory-bound formulas."""

from __future__ import annotations


import numpy as np
import pytest

from repro.analysis import (
    coreset_size_bound,
    heavy_cells_bound,
    num_guesses,
    small_part_removal_error,
    storing_space_bound_bits,
)
from repro.core import CoresetParams, build_coreset_auto
from repro.data.synthetic import gaussian_mixture


@pytest.fixture(scope="module")
def params():
    return CoresetParams.practical(k=3, d=2, delta=256)


class TestBounds:
    def test_coreset_size_bound_dominates_measured(self, params):
        pts = np.unique(gaussian_mixture(3000, 2, 256, k=3, seed=2), axis=0)
        cs = build_coreset_auto(pts, params, seed=3)
        assert len(cs) < coreset_size_bound(params)

    def test_coreset_size_bound_monotone(self):
        a = CoresetParams.practical(k=2, d=2, delta=256)
        b = CoresetParams.practical(k=8, d=2, delta=256)
        assert coreset_size_bound(b) > coreset_size_bound(a)
        c = CoresetParams.practical(k=2, d=2, delta=256, eps=0.1, eta=0.1)
        assert coreset_size_bound(c) > coreset_size_bound(a)

    def test_heavy_cells_bound_scales_with_guess_gap(self, params):
        assert heavy_cells_bound(params, 10.0) == 10 * heavy_cells_bound(params, 1.0)

    def test_heavy_cells_bound_dominates_measured(self, params):
        from repro.core.partition import partition_heavy_cells
        from repro.grid.grids import HierarchicalGrids

        pts = np.unique(gaussian_mixture(3000, 2, 256, k=3, seed=4), axis=0)
        grids = HierarchicalGrids(256, 2, seed=1)
        o = len(pts) * 2 * (0.02 * 256) ** 2  # ~OPT ballpark
        part = partition_heavy_cells(pts, params, o, grids)
        assert part.total_heavy <= heavy_cells_bound(params, 10.0)

    def test_num_guesses(self, params):
        offline = num_guesses(params, n=10_000)
        streaming = num_guesses(params)
        # Streaming enumerates over the universe range -> strictly longer.
        assert streaming > offline > 10

    def test_small_part_removal_premise(self, params):
        eps_c, eta_c = small_part_removal_error(params)
        # Practical gamma certifies only loose constants (documented).
        assert eps_c > params.eps
        assert eta_c > 0
        # The theory gamma certifies the advertised (eps, eta).
        theory = CoresetParams.from_theory(k=3, d=2, delta=256,
                                           eps=0.25, eta=0.25)
        eps_t, eta_t = small_part_removal_error(theory)
        assert eps_t <= theory.eps + 1e-12
        assert eta_t <= theory.eta + 1e-12

    def test_storing_space_bound_positive_and_flat_in_o(self, params):
        a = storing_space_bound_bits(params, 1e5)
        b = storing_space_bound_bits(params, 1e7)
        assert a > 0 and b > 0
        # The rate·T products are capped by constants, so the bound moves
        # slowly with o.
        assert 0.05 < a / b < 20
