"""Unit and property tests for the λ-wise independent hash families."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import BernoulliHash, KWiseHash, UniformBucketHash, is_prime, next_prime


class TestPrimes:
    @pytest.mark.parametrize("n,expected", [
        (0, False), (1, False), (2, True), (3, True), (4, False),
        (97, True), (561, False),  # Carmichael number
        ((1 << 61) - 1, True),     # Mersenne prime
        ((1 << 61) + 1, False),
    ])
    def test_is_prime_known_values(self, n, expected):
        assert is_prime(n) is expected

    def test_next_prime_is_prime_and_larger(self):
        for n in (1, 10, 100, 1 << 31, 1 << 64, 1 << 90):
            p = next_prime(n)
            assert p > n
            assert is_prime(p)

    @given(st.integers(min_value=2, max_value=100_000))
    @settings(max_examples=50)
    def test_is_prime_matches_trial_division(self, n):
        ref = n >= 2 and all(n % i for i in range(2, int(n**0.5) + 1))
        assert is_prime(n) is ref


class TestKWiseHash:
    def test_deterministic_given_seed(self):
        h1 = KWiseHash(8, 64, seed=5)
        h2 = KWiseHash(8, 64, seed=5)
        keys = list(range(100))
        assert h1.values(keys) == h2.values(keys)

    def test_different_seeds_differ(self):
        h1 = KWiseHash(8, 64, seed=5)
        h2 = KWiseHash(8, 64, seed=6)
        keys = list(range(100))
        assert h1.values(keys) != h2.values(keys)

    def test_values_in_field(self):
        h = KWiseHash(4, 32, seed=1)
        for v in h.values(range(1000)):
            assert 0 <= v < h.prime

    def test_large_universe_keys(self):
        h = KWiseHash(4, 200, seed=2)
        big = (1 << 199) + 12345
        v = h.value(big)
        assert 0 <= v < h.prime
        assert h.prime > (1 << 200)

    def test_uniform_mean_is_half(self):
        h = KWiseHash(8, 48, seed=3)
        u = h.uniform(list(range(4000)))
        assert abs(u.mean() - 0.5) < 0.03

    def test_pairwise_independence_correlation(self):
        # For a 2-wise independent family the empirical correlation between
        # h(x) and h(y) over random functions is near zero; we check over
        # keys for one function that consecutive values look uncorrelated.
        h = KWiseHash(4, 40, seed=9)
        u = h.uniform(list(range(5000)))
        corr = np.corrcoef(u[:-1], u[1:])[0, 1]
        assert abs(corr) < 0.06

    def test_randomness_bits_formula(self):
        h = KWiseHash(8, 64, seed=0)
        assert h.randomness_bits == 8 * h.prime.bit_length()

    def test_rejects_zero_independence(self):
        with pytest.raises(ValueError):
            KWiseHash(0, 32)


class TestBernoulliHash:
    @pytest.mark.parametrize("phi", [0.1, 0.5, 0.9])
    def test_empirical_rate(self, phi):
        h = BernoulliHash(phi, independence=8, universe_bits=48, seed=7)
        mask = h.select(list(range(8000)))
        assert abs(mask.mean() - phi) < 0.03

    def test_phi_one_selects_everything(self):
        h = BernoulliHash(1.0, independence=4, universe_bits=32, seed=0)
        assert h.select(list(range(50))).all()

    def test_phi_zero_selects_nothing(self):
        h = BernoulliHash(0.0, independence=4, universe_bits=32, seed=0)
        assert not h.select(list(range(50))).any()

    def test_indicator_matches_select(self):
        h = BernoulliHash(0.3, independence=6, universe_bits=40, seed=4)
        keys = list(range(200))
        mask = h.select(keys)
        assert all(h.indicator(k) == bool(m) for k, m in zip(keys, mask))

    def test_invalid_phi_rejected(self):
        with pytest.raises(ValueError):
            BernoulliHash(1.5, independence=4, universe_bits=32)

    def test_consistent_across_instances_same_seed(self):
        a = BernoulliHash(0.4, 8, 48, seed=12)
        b = BernoulliHash(0.4, 8, 48, seed=12)
        keys = [3, 1 << 40, 17, 999999]
        assert list(a.select(keys)) == list(b.select(keys))


class TestUniformBucketHash:
    def test_buckets_in_range(self):
        h = UniformBucketHash(17, independence=6, universe_bits=48, seed=3)
        b = h.buckets(list(range(1000)))
        assert b.min() >= 0 and b.max() < 17

    def test_roughly_uniform_load(self):
        m = 16
        h = UniformBucketHash(m, independence=6, universe_bits=48, seed=5)
        counts = np.bincount(h.buckets(list(range(16000))), minlength=m)
        assert counts.min() > 16000 / m * 0.8
        assert counts.max() < 16000 / m * 1.2

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    @settings(max_examples=50)
    def test_bucket_deterministic(self, key):
        h = UniformBucketHash(13, independence=4, universe_bits=48, seed=8)
        assert h.bucket(key) == h.bucket(key)
