"""Tests for the Storing(G_i, α, β, δ) structures (Lemma 4.2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming.storing import ExactStoring, SketchStoring
from repro.utils.validation import FailedConstruction


def both_storings(alpha=32, beta=8, recover=True, seed=0):
    return [
        ExactStoring(alpha, beta, recover_points=recover),
        SketchStoring(alpha, beta, cell_universe_bits=32,
                      point_universe_bits=48, seed=seed,
                      recover_points=recover),
    ]


class TestContract:
    @pytest.mark.parametrize("impl", range(2))
    def test_cells_and_counts(self, impl):
        s = both_storings()[impl]
        # Cell 1: 3 points; cell 2: 1 point.
        s.update(1, 100, +1)
        s.update(1, 101, +1)
        s.update(1, 102, +1)
        s.update(2, 200, +1)
        res = s.result()
        assert res.cells == {1: 3, 2: 1}

    @pytest.mark.parametrize("impl", range(2))
    def test_small_cell_points_recovered(self, impl):
        s = both_storings(beta=2)[impl]
        s.update(1, 100, +1)
        s.update(1, 101, +1)
        s.update(2, 200, +1)
        s.update(2, 201, +1)
        s.update(2, 202, +1)  # cell 2 has 3 > beta=2 points
        res = s.result()
        assert res.small_points[1] == {100: 1, 101: 1}
        assert 2 not in res.small_points

    @pytest.mark.parametrize("impl", range(2))
    def test_deletions(self, impl):
        s = both_storings()[impl]
        s.update(1, 100, +1)
        s.update(1, 101, +1)
        s.update(1, 100, -1)
        res = s.result()
        assert res.cells == {1: 1}
        assert res.small_points[1] == {101: 1}

    @pytest.mark.parametrize("impl", range(2))
    def test_full_deletion_empties(self, impl):
        s = both_storings()[impl]
        for pk in range(20):
            s.update(5, pk, +1)
        for pk in range(20):
            s.update(5, pk, -1)
        res = s.result()
        assert res.cells == {}

    @pytest.mark.parametrize("impl", range(2))
    def test_too_many_cells_fail(self, impl):
        s = both_storings(alpha=4)[impl]
        for ck in range(50):
            s.update(ck, ck * 1000, +1)
        with pytest.raises(FailedConstruction):
            s.result()

    @pytest.mark.parametrize("impl", range(2))
    def test_no_point_recovery_mode(self, impl):
        s = both_storings(recover=False)[impl]
        s.update(1, 100, +1)
        res = s.result()
        assert res.cells == {1: 1}
        assert res.small_points == {}

    @given(st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 30)),
        min_size=0, max_size=40,
    ))
    @settings(max_examples=30, deadline=None)
    def test_property_sketch_matches_exact(self, inserts):
        """Random insert/delete sequences: sketch ≡ dictionary."""
        ex = ExactStoring(64, 4, recover_points=True)
        sk = SketchStoring(64, 4, cell_universe_bits=16,
                           point_universe_bits=16, seed=7, recover_points=True)
        live = set()
        for cell, pt in inserts:
            key = (cell, pt)
            sign = -1 if key in live else +1
            if sign == 1:
                live.add(key)
            else:
                live.discard(key)
            ex.update(cell, pt, sign)
            sk.update(cell, pt, sign)
        assert ex.result().cells == sk.result().cells
        assert ex.result().small_points == sk.result().small_points


class TestSketchSpecifics:
    def test_heavy_cell_does_not_block_small_cells(self):
        """A cell with ≫ β points pollutes only its own buckets; other
        (isolated) small cells still decode."""
        sk = SketchStoring(64, 4, cell_universe_bits=32,
                           point_universe_bits=48, seed=3)
        for pk in range(500):
            sk.update(999, pk, +1)  # the monster cell
        for ck in range(10):
            sk.update(ck, ck * 7, +1)
        res = sk.result()
        assert res.cells[999] == 500
        assert 999 not in res.small_points
        for ck in range(10):
            assert res.small_points[ck] == {ck * 7: 1}

    def test_space_accounting_methods(self):
        sk = SketchStoring(16, 4, cell_universe_bits=32,
                           point_universe_bits=48, seed=1)
        charged = sk.space_bits()
        resident0 = sk.resident_bits()
        sk.update(1, 2, +1)
        assert sk.space_bits() == charged  # worst-case layout is static
        assert sk.resident_bits() > resident0

    def test_exact_space_grows_with_live_set(self):
        ex = ExactStoring(1000, 4)
        base = ex.space_bits()
        for ck in range(100):
            ex.update(ck, ck, +1)
        assert ex.space_bits() > base
