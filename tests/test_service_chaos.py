"""Chaos acceptance test: the full service stack under a seeded fault plan.

One seeded :class:`FaultPlan` drives the whole failure menagerie against a
live async server — ≥2 worker kills (one SIGKILL, one soft error-exit),
≥5 connection resets (replies dropped after execution, plus one request
dropped before execution), and ≥1 checkpoint write failure — while a
resilient client ingests a churn workload.  The acceptance bar is the
paper's linearity promise, end to end: the faulted service's final answers
and its *entire serialized sketch state* must be bit-identical to a
fault-free in-process reference fed the same logical stream, with no event
lost or double-counted anywhere along the way.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data.synthetic import gaussian_mixture
from repro.data.workloads import churn_stream
from repro.service import (
    ClusteringService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    TenantRegistry,
    faults,
    start_async_server,
)
from repro.service.faults import FaultPlan, FaultRule


def _canonical(d: dict) -> str:
    return json.dumps(d, sort_keys=True)


CHAOS_PLAN = FaultPlan([
    # ≥2 worker deaths, both shapes: one SIGKILL, one error-and-exit.
    FaultRule(point="worker.kill", mode="hard", after=2, times=1),
    FaultRule(point="worker.kill", mode="soft", after=9, times=1),
    # ≥5 connection resets: three replies dropped after the insert applied
    # (the double-count trap), one after a delete, one request dropped
    # before execution (the lost-event trap).
    FaultRule(point="server.reset", after=2, times=3, match={"op": "insert"}),
    FaultRule(point="server.reset", after=1, times=1, match={"op": "delete"}),
    FaultRule(point="server.reset", mode="pre", times=1, match={"op": "insert"}),
    # ≥1 checkpoint write failure mid-run.
    FaultRule(point="checkpoint.write", times=1),
], seed=2024)


@pytest.mark.slow
def test_chaos_run_is_bit_identical_to_fault_free_reference(tmp_path):
    pts = np.unique(gaussian_mixture(3000, 2, 256, k=3, seed=31), axis=0)
    stream = list(churn_stream(pts, delete_fraction=0.3, seed=8))
    ins_pts = np.asarray([e.point for e in stream if e.sign > 0])
    del_pts = np.asarray([e.point for e in stream if e.sign < 0])
    inserts = np.array_split(ins_pts, 14)
    deletes = np.array_split(del_pts, 4)
    assert all(len(c) >= 10 for c in inserts)
    assert all(len(c) >= 10 for c in deletes)

    config = ServiceConfig(k=3, d=2, delta=256, workers=2, seed=17)
    # Fault-free single-tenant reference: the in-process backend is
    # bit-identical to the worker pool (test_service_parallel), so it is
    # the oracle for "no event lost, none double-counted".
    reference = ClusteringService(
        ServiceConfig(k=3, d=2, delta=256, num_shards=2, workers=0, seed=17))

    faults.install(CHAOS_PLAN)
    registry = TenantRegistry(config)
    server, _ = start_async_server(registry)
    host, port = server.address
    ckpt = tmp_path / "mid-run.ckpt.json"
    final_ckpt = tmp_path / "final.ckpt.json"
    try:
        with ServiceClient(host, port, retries=5, backoff_s=0.01,
                           timeout=60.0) as cli:
            # Interleave: inserts, a mid-run checkpoint (whose first write
            # fails), deletes, more inserts.
            for chunk in inserts[:8]:
                assert cli.insert(chunk) == len(chunk)
                reference.insert(chunk)
            with pytest.raises(ServiceError, match="injected checkpoint"):
                cli.checkpoint(ckpt)
            assert not ckpt.exists()
            cli.checkpoint(ckpt)  # rule exhausted: the retry lands
            assert ckpt.exists()
            for chunk in deletes:
                assert cli.delete(chunk) == len(chunk)
                reference.delete(chunk)
            for chunk in inserts[8:]:
                assert cli.insert(chunk) == len(chunk)
                reference.insert(chunk)

            # The plan fired everything the acceptance bar demands.
            fires = CHAOS_PLAN.fire_counts()
            assert fires["worker.kill"] >= 2
            assert fires["server.reset"] >= 5
            assert fires["checkpoint.write"] >= 1

            # Perfect ledger: counters agree event for event.
            stats = cli.stats()
            ref_stats = reference.stats()
            for key in ("events", "insertions", "deletions", "live_points",
                        "version", "events_per_shard", "bytes_ingested"):
                assert stats[key] == ref_stats[key], key
            assert stats["restarts"] >= 2
            assert len(stats["recovery_events"]) >= 2
            assert stats["fault_plan"]["fire_counts"] == fires

            # Bit-identical sketches: the faulted service's checkpoint
            # carries exactly the reference's serialized shard state.
            cli.checkpoint(final_ckpt)
            payload = json.loads(final_ckpt.read_text(encoding="utf-8"))
            assert (_canonical(payload["ingest"])
                    == _canonical(reference.ingest.to_state_dict()))

            # And identical answers: the solved clustering matches field
            # for field (same merged sketch, same seeded solver).
            got = cli.query()
            want, _ = reference.query()
            want = want.to_dict()
            for key in ("centers", "cost", "capacity", "coreset_size",
                        "o", "version"):
                assert got[key] == want[key], key
    finally:
        server.shutdown()
        registry.close()
        reference.close()
        faults.uninstall()
