"""Tests for the ℓ₀ distinct sampler and the auto-pilot streaming driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CoresetParams
from repro.data.synthetic import gaussian_mixture
from repro.data.workloads import churn_stream, insertion_stream
from repro.streaming import StreamingCoreset, materialize
from repro.streaming.l0sampler import DistinctSampler


class TestDistinctSampler:
    def test_small_live_set_fully_recovered(self):
        s = DistinctSampler(64, 32, seed=1)
        for key in range(30):
            s.update(key, +1)
        keys, est = s.sample()
        assert sorted(keys) == list(range(30))
        assert est == pytest.approx(30.0)

    def test_deletions_respected(self):
        s = DistinctSampler(64, 32, seed=2)
        for key in range(40):
            s.update(key, +1)
        for key in range(35):
            s.update(key, -1)
        keys, est = s.sample()
        assert sorted(keys) == list(range(35, 40))

    def test_empty_stream(self):
        s = DistinctSampler(16, 32, seed=3)
        keys, est = s.sample()
        assert keys == [] and est == 0.0

    def test_large_live_set_sampled(self):
        s = DistinctSampler(32, 40, seed=4)
        n = 5000
        for key in range(n):
            s.update(key, +1)
        keys, est = s.sample()
        assert 0 < len(keys) <= 4 * 32 * 2
        assert est == pytest.approx(n, rel=0.6)  # coarse (one level granularity)
        assert all(0 <= k < n for k in keys)

    def test_sample_roughly_uniform(self):
        """Keys below/above the median are sampled in similar proportions."""
        s = DistinctSampler(128, 40, seed=5)
        n = 20000
        for key in range(n):
            s.update(key, +1)
        keys, _ = s.sample()
        low = sum(1 for k in keys if k < n // 2)
        assert 0.25 < low / len(keys) < 0.75

    def test_insert_delete_churn_equivalence(self):
        a = DistinctSampler(32, 32, seed=6)
        b = DistinctSampler(32, 32, seed=6)
        # a: insert 0..99, delete evens;  b: insert odds only.
        for key in range(100):
            a.update(key, +1)
        for key in range(0, 100, 2):
            a.update(key, -1)
        for key in range(1, 100, 2):
            b.update(key, +1)
        assert sorted(a.sample()[0]) == sorted(b.sample()[0])

    def test_space_bits_positive(self):
        s = DistinctSampler(16, 32, seed=7)
        assert s.space_bits() > 0


class TestAutoPilotStreaming:
    def test_auto_pilot_without_o_range(self):
        """End-to-end: no o_range, no external pilot — still compresses and
        stays correct under deletions."""
        pts = np.unique(gaussian_mixture(4000, 2, 256, k=3, spread=0.03, seed=9),
                        axis=0)
        params = CoresetParams.practical(k=3, d=2, delta=256)
        stream = churn_stream(pts, delete_fraction=0.4, seed=4)
        survivors = materialize(stream, d=2)
        sc = StreamingCoreset(params, seed=19, backend="exact")
        sc.process(stream)
        cs = sc.finalize()
        surv_set = set(map(tuple, survivors.tolist()))
        assert all(tuple(p) in surv_set for p in cs.points.tolist())
        assert cs.total_weight == pytest.approx(len(survivors), rel=0.3)
        # The pilot must have anchored a reasonably large o (compression or
        # at least not the degenerate smallest guess).
        assert cs.o >= 64

    def test_auto_pilot_matches_manual_window(self):
        pts = np.unique(gaussian_mixture(3000, 2, 256, k=3, spread=0.03, seed=10),
                        axis=0)
        params = CoresetParams.practical(k=3, d=2, delta=256)
        stream = insertion_stream(pts, seed=2)
        auto = StreamingCoreset(params, seed=23, backend="exact")
        auto.process(stream)
        cs_auto = auto.finalize()
        from repro.solvers.pilot import estimate_opt_cost

        pilot = estimate_opt_cost(pts, 3, r=2.0, seed=1)
        manual = StreamingCoreset(params, seed=23, backend="exact",
                                  o_range=(pilot / 64, pilot / 4))
        manual.process(stream)
        cs_manual = manual.finalize()
        # Same ballpark guess (within a factor of 8) and similar size.
        assert 0.125 <= cs_auto.o / cs_manual.o <= 8.0
