"""Tests for the long-lived clustering service (repro.service).

Covers the three load-bearing claims of the subsystem:

1. sharding is *exact* — N shards built with shared randomness merge to the
   state of one driver that saw the whole stream, even when deletions land
   on a different shard than their insertions;
2. checkpoint/restore is *bit-identical* — a restored driver finalizes to
   the same coreset and can keep ingesting in lockstep with the original;
3. the wire service end-to-end: ingest over TCP, query quality vs the
   offline pipeline, checkpoint → kill → restore → identical answers, and
   the version-keyed query cache observable through ``stats``.
"""

from __future__ import annotations

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.core import CoresetParams, build_coreset_auto
from repro.core.io import (
    atomic_write_json,
    load_streaming_state,
    read_json,
    save_streaming_state,
)
from repro.data.synthetic import gaussian_mixture
from repro.data.workloads import churn_stream
from repro.metrics.costs import capacitated_cost
from repro.service import (
    ClusteringService,
    ServiceClient,
    ServiceConfig,
    ShardedIngest,
    start_server,
)
from repro.service.state import (
    sharded_state_from_dict,
    sharded_state_to_dict,
    streaming_state_from_dict,
    streaming_state_to_dict,
)
from repro.solvers.capacitated_lloyd import CapacitatedKClustering
from repro.streaming import StreamingCoreset, materialize
from repro.streaming.merge import merge_streaming_states


@pytest.fixture(scope="module")
def world():
    """Small dynamic-stream instance: (stream, survivors, params)."""
    pts = np.unique(gaussian_mixture(900, 2, 64, k=3, seed=21), axis=0)
    stream = churn_stream(pts, delete_fraction=0.35, seed=4)
    survivors = materialize(stream, d=2)
    params = CoresetParams.practical(k=3, d=2, delta=64)
    return stream, survivors, params


def _coreset_points(cs):
    return sorted(map(tuple, cs.points.tolist()))


class TestShardRouting:
    def test_deterministic_and_spread(self, world):
        stream, _, params = world
        ing = ShardedIngest(params, num_shards=4, seed=3)
        points = [ev.point for ev in stream]
        routes = [ing.shard_of(p) for p in points]
        assert routes == [ing.shard_of(p) for p in points]  # stable
        assert len(set(routes)) == 4  # every shard sees traffic

    def test_insert_and_delete_meet_in_same_shard(self, world):
        stream, _, params = world
        ing = ShardedIngest(params, num_shards=5, seed=3)
        for ev in stream:
            assert ing.shard_of(ev.point) == ing.shard_of(ev.point)
        ing.apply_batch(stream)
        # Routing by point key ⇒ per-shard signed counts are non-negative.
        for shard in ing.shards:
            inst = shard.instances[0]
            assert all(c >= 0 for c in inst.store_h[0]._cells.values())

    def test_version_bumps_per_batch_not_per_event(self, world):
        stream, _, params = world
        ing = ShardedIngest(params, num_shards=2, seed=3)
        ing.apply_batch(list(stream)[:10])
        assert ing.version == 1
        ing.apply_batch(list(stream)[10:20])
        assert ing.version == 2
        ing.apply(list(stream)[20].point, list(stream)[20].sign)
        assert ing.version == 3


class TestShardedMergeExact:
    @pytest.mark.parametrize("backend", ["exact", "sketch"])
    def test_three_shards_equal_unsharded(self, world, backend):
        """≥3 shards of one logical stream merge to the unsharded answer."""
        stream, _, params = world
        ref = StreamingCoreset(params, seed=9, backend=backend)
        ref.process(stream)
        want = ref.finalize()

        ing = ShardedIngest(params, num_shards=3, seed=9, backend=backend)
        assert ing.apply_batch(stream) == len(stream)
        got = ing.merged_state().finalize()
        assert got.o == want.o
        assert _coreset_points(got) == _coreset_points(want)

    def test_deletions_crossing_shard_boundaries(self, world):
        """Round-robin routing sends deletions to different shards than the
        matching insertions; linearity makes the merged state exact anyway."""
        stream, _, params = world
        events = list(stream)
        shards = [StreamingCoreset(params, seed=9, backend="exact")
                  for _ in range(3)]
        for i, ev in enumerate(events):
            shards[i % 3].update(ev.point, ev.sign)
        # The round-robin shards really do hold negative entries (a deletion
        # whose insertion went to a different shard) — the case under test.
        assert any(
            cnt < 0
            for sh in shards
            for store in sh.instances[0].store_hhat
            for cell_points in store._points.values()
            for cnt in cell_points.values()
        )

        ref = StreamingCoreset(params, seed=9, backend="exact")
        ref.process(events)
        want = ref.finalize()
        merged = shards[0]
        for other in shards[1:]:
            merge_streaming_states(merged, other)
        got = merged.finalize()
        assert got.o == want.o
        assert _coreset_points(got) == _coreset_points(want)

    def test_merged_state_does_not_disturb_ingest(self, world):
        stream, _, params = world
        ing = ShardedIngest(params, num_shards=2, seed=9)
        events = list(stream)
        ing.apply_batch(events[: len(events) // 2])
        first = ing.merged_state().finalize()
        # Querying must not consume the shards: keep ingesting and the
        # final answer matches a fresh unsharded run of the whole stream.
        ing.apply_batch(events[len(events) // 2:])
        got = ing.merged_state().finalize()
        ref = StreamingCoreset(params, seed=9)
        ref.process(events)
        assert _coreset_points(got) == _coreset_points(ref.finalize())
        assert first is not None


class TestCheckpointRestore:
    @pytest.mark.parametrize("backend", ["exact", "sketch"])
    def test_roundtrip_bit_identical(self, world, backend):
        stream, _, params = world
        sc = StreamingCoreset(params, seed=11, backend=backend)
        sc.process(stream)
        blob = json.dumps(streaming_state_to_dict(sc))  # JSON-safe end to end
        restored = streaming_state_from_dict(json.loads(blob))
        want, got = sc.finalize(), restored.finalize()
        assert got.o == want.o
        assert _coreset_points(got) == _coreset_points(want)
        assert np.allclose(np.sort(got.weights), np.sort(want.weights))
        assert restored.num_updates == sc.num_updates

    def test_restore_then_continue_ingesting(self, world):
        """The invariant the service needs: checkpoint mid-stream, restore,
        keep ingesting — indistinguishable from never having stopped."""
        stream, _, params = world
        events = list(stream)
        half = len(events) // 2

        sc = StreamingCoreset(params, seed=11)
        sc.process(events[:half])
        restored = streaming_state_from_dict(streaming_state_to_dict(sc))
        restored.process(events[half:])

        ref = StreamingCoreset(params, seed=11)
        ref.process(events)
        want, got = ref.finalize(), restored.finalize()
        assert got.o == want.o
        assert _coreset_points(got) == _coreset_points(want)

    def test_file_roundtrip_is_atomic(self, world, tmp_path):
        stream, _, params = world
        sc = StreamingCoreset(params, seed=11)
        sc.process(stream)
        path = tmp_path / "state.json"
        save_streaming_state(path, sc)
        assert path.exists()
        assert not list(tmp_path.glob("*.tmp.*"))  # temp file cleaned up
        restored = load_streaming_state(path)
        assert _coreset_points(restored.finalize()) == _coreset_points(sc.finalize())

    def test_atomic_write_replaces_whole_file(self, tmp_path):
        path = tmp_path / "x.json"
        atomic_write_json(path, {"v": 1})
        atomic_write_json(path, {"v": 2, "payload": list(range(50))})
        assert read_json(path)["v"] == 2

    def test_sharded_roundtrip_preserves_counters(self, world):
        stream, _, params = world
        ing = ShardedIngest(params, num_shards=3, seed=9)
        ing.apply_batch(stream)
        ing2 = sharded_state_from_dict(sharded_state_to_dict(ing))
        assert ing2.version == ing.version
        assert ing2.events_per_shard == ing.events_per_shard
        assert ing2.num_insertions == ing.num_insertions
        assert ing2.num_deletions == ing.num_deletions
        assert (_coreset_points(ing2.merged_state().finalize())
                == _coreset_points(ing.merged_state().finalize()))

    def test_bad_format_version_rejected(self, world):
        _, _, params = world
        sc = StreamingCoreset(params, seed=11)
        data = streaming_state_to_dict(sc)
        data["format_version"] = 999
        with pytest.raises(ValueError, match="format"):
            streaming_state_from_dict(data)


class TestQueryEngine:
    def test_cache_hit_until_ingest_invalidates(self, world):
        stream, _, params = world
        svc = ClusteringService(
            ServiceConfig(k=3, d=2, delta=64, num_shards=2, seed=17))
        svc.apply_events(stream)
        r1, hit1 = svc.query()
        r2, hit2 = svc.query()
        assert not hit1 and hit2
        assert r2 is r1  # memoized object, O(1) path
        svc.delete(materialize(stream, d=2)[:3])
        r3, hit3 = svc.query()
        assert not hit3 and r3.version > r1.version
        stats = svc.stats()
        assert stats["queries"] == 3 and stats["cache_hits"] == 1

    def test_nondefault_slack_bypasses_cache(self, world):
        stream, _, params = world
        svc = ClusteringService(
            ServiceConfig(k=3, d=2, delta=64, num_shards=2, seed=17))
        svc.apply_events(stream)
        svc.query()
        result, hit = svc.query(capacity_slack=2.0)
        assert not hit
        assert result.capacity > svc.query()[0].capacity

    def test_service_checkpoint_restore(self, world, tmp_path):
        stream, _, params = world
        svc = ClusteringService(
            ServiceConfig(k=3, d=2, delta=64, num_shards=3, seed=17))
        svc.apply_events(stream)
        want, _ = svc.query()
        info = svc.checkpoint(tmp_path / "svc.json")
        assert info["version"] == svc.ingest.version

        twin = ClusteringService.restore(tmp_path / "svc.json")
        got, hit = twin.query()
        assert not hit  # the result cache is not part of the checkpoint
        assert np.allclose(got.centers, want.centers)
        assert got.cost == want.cost and got.o == want.o


class TestServiceEndToEnd:
    """The acceptance-criterion scenario, over a real TCP socket."""

    def test_ingest_query_checkpoint_restore(self, world, tmp_path):
        stream, survivors, params = world
        config = ServiceConfig(k=3, d=2, delta=64, num_shards=2, seed=17,
                               capacity_slack=1.2)
        server, _ = start_server(ClusteringService(config))
        host, port = server.server_address
        inserts = np.array([ev.point for ev in stream if ev.sign > 0])
        deletes = np.array([ev.point for ev in stream if ev.sign < 0])
        ckpt = tmp_path / "e2e.ckpt.json"
        try:
            with ServiceClient(host, port) as cli:
                assert cli.ping()
                assert cli.insert(inserts, batch_size=64) == len(inserts)
                assert cli.delete(deletes) == len(deletes)

                answer = cli.query()
                assert not answer["cache_hit"]
                centers = np.asarray(answer["centers"], dtype=float)
                assert centers.shape == (3, 2)

                # Quality vs the offline pipeline on the materialized set.
                t = len(survivors) / 3 * config.capacity_slack
                off_cs = build_coreset_auto(survivors, params, seed=17)
                solver = CapacitatedKClustering(
                    k=3, capacity=off_cs.total_weight / 3 * config.capacity_slack,
                    r=2.0, restarts=2, seed=17)
                off = solver.fit(off_cs.points.astype(float),
                                 weights=off_cs.weights)
                svc_cost = capacitated_cost(survivors, centers, t, r=2.0)
                off_cost = capacitated_cost(survivors, off.centers, t, r=2.0)
                assert svc_cost <= (1 + 4 * params.eps) * off_cost

                # Unchanged stream ⇒ second query is served from cache.
                again = cli.query()
                assert again["cache_hit"]
                assert again["centers"] == answer["centers"]
                assert cli.stats()["cache_hits"] == 1

                cli.checkpoint(ckpt)
        finally:
            server.shutdown()
            server.server_close()

        # "Kill" the server; a fresh process restores and answers identically.
        twin, _ = start_server(ClusteringService.restore(ckpt))
        try:
            with ServiceClient(*twin.server_address) as cli:
                restored = cli.query()
                assert restored["centers"] == answer["centers"]
                assert restored["cost"] == answer["cost"]
                assert restored["version"] == answer["version"]
        finally:
            twin.shutdown()
            twin.server_close()

    def test_out_of_range_insert_rejected_atomically(self, world):
        """Regression: an insert with a coordinate outside [0, Δ] used to
        alias to a different point's key mid-batch, corrupting the sketches
        and leaving a partially-applied batch behind.  The server must now
        answer a clean error envelope with *zero* events applied and keep
        both the connection and the state healthy."""
        from repro.service.client import ServiceError

        server, _ = start_server(ClusteringService(
            ServiceConfig(k=3, d=2, delta=64, num_shards=2, seed=1)))
        host, port = server.server_address
        try:
            with ServiceClient(host, port) as cli:
                for bad in ([[3, 3], [1, -1]],   # negative coordinate
                            [[3, 3], [0, 65]],   # > Δ
                            [[2**70, 1]]):       # json int too big for int64
                    with pytest.raises(ServiceError, match="point"):
                        cli.request("insert", points=bad)
                    stats = cli.stats()
                    assert stats["events"] == 0 and stats["version"] == 0
                # The boundary coordinates 0 and Δ are legal.
                assert cli.insert(np.array([[0, 0], [64, 64]])) == 2
                assert cli.stats()["events"] == 2
        finally:
            server.shutdown()
            server.server_close()

    def test_oversized_request_line_rejected(self, world):
        """Regression: the handler read request lines with an unbounded
        ``readline()``, so one newline-free client could balloon server
        memory.  Over-long frames now get an error envelope and a close."""
        import socket

        server, _ = start_server(
            ClusteringService(ServiceConfig(k=3, d=2, delta=64, num_shards=2,
                                            seed=1)),
            max_request_bytes=2048)
        host, port = server.server_address
        try:
            with socket.create_connection((host, port), timeout=10) as sock:
                fh = sock.makefile("rwb")
                fh.write(b'{"op": "insert", "points": [' + b"9" * 4096)
                fh.flush()
                resp = json.loads(fh.readline())
                assert resp["ok"] is False
                assert "exceeds 2048 bytes" in resp["error"]
                # Mid-frame resync is impossible: the server closes.
                assert fh.readline() == b""
            # The server itself survives and serves new connections.
            with socket.create_connection((host, port), timeout=10) as sock:
                fh = sock.makefile("rwb")
                fh.write(b'{"op": "ping"}\n')
                fh.flush()
                assert json.loads(fh.readline())["ok"] is True
        finally:
            server.shutdown()
            server.server_close()

    def test_malformed_requests_get_error_responses(self, world):
        server, _ = start_server(ClusteringService(
            ServiceConfig(k=3, d=2, delta=64, num_shards=2, seed=1)))
        host, port = server.server_address
        try:
            import socket

            with socket.create_connection((host, port), timeout=10) as sock:
                fh = sock.makefile("rwb")
                for junk in (b"not json\n", b'{"op": "nope"}\n',
                             b'{"op": "insert", "points": "x"}\n'):
                    fh.write(junk)
                    fh.flush()
                    resp = json.loads(fh.readline())
                    assert resp["ok"] is False and resp["error"]
                # The connection survives all of that.
                fh.write(b'{"op": "ping"}\n')
                fh.flush()
                assert json.loads(fh.readline())["ok"] is True
        finally:
            server.shutdown()
            server.server_close()


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        """Satellite: ``python -m repro`` must resolve to the CLI."""
        import os
        from pathlib import Path

        src = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True, timeout=120, env=env,
        )
        assert proc.returncode == 0
        assert "serve" in proc.stdout and "client" in proc.stdout
