"""Tests for coreset serialization and the CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core import CoresetParams, build_coreset_auto
from repro.core.io import load_coreset, params_from_dict, params_to_dict, save_coreset
from repro.data.synthetic import gaussian_mixture


@pytest.fixture(scope="module")
def built(tmp_path_factory):
    pts = np.unique(gaussian_mixture(1500, 2, 256, k=3, seed=33), axis=0)
    params = CoresetParams.practical(k=3, d=2, delta=256)
    cs = build_coreset_auto(pts, params, seed=5)
    return pts, params, cs


class TestIO:
    def test_roundtrip(self, built, tmp_path):
        pts, params, cs = built
        path = tmp_path / "c.npz"
        save_coreset(path, cs, params)
        loaded, lparams = load_coreset(path)
        assert np.array_equal(loaded.points, cs.points)
        assert np.allclose(loaded.weights, cs.weights)
        assert np.array_equal(loaded.part_ids, cs.part_ids)
        assert loaded.o == cs.o
        assert loaded.parts == cs.parts
        assert lparams == params

    def test_roundtrip_without_params(self, built, tmp_path):
        _, _, cs = built
        path = tmp_path / "c2.npz"
        save_coreset(path, cs)
        loaded, lparams = load_coreset(path)
        assert lparams is None
        assert len(loaded) == len(cs)

    def test_params_dict_roundtrip(self, built):
        _, params, _ = built
        assert params_from_dict(params_to_dict(params)) == params

    def test_loaded_coreset_usable_for_transfer(self, built, tmp_path):
        """A reloaded coreset must still drive Section 3.3 extension."""
        from repro.assignment.transfer import extend_assignment_to_points
        from repro.grid.grids import HierarchicalGrids
        from repro.solvers.kmeanspp import kmeans_plusplus
        from repro.utils.rng import derive_seed

        pts, params, cs = built
        path = tmp_path / "c3.npz"
        save_coreset(path, cs, params)
        loaded, lparams = load_coreset(path)
        grids = HierarchicalGrids(256, 2, seed=derive_seed(5, "grids"))
        Z = kmeans_plusplus(pts.astype(float), 3, seed=1)
        labels = extend_assignment_to_points(pts, loaded, lparams, grids, Z,
                                             len(pts) / 3 * 1.3)
        assert labels.shape == (len(pts),)


class TestCLI:
    def test_generate_build_info_pipeline(self, tmp_path, capsys):
        pts_path = tmp_path / "pts.npy"
        cs_path = tmp_path / "cs.npz"
        assert main(["generate", str(pts_path), "--n", "1500", "--d", "2",
                     "--delta", "256", "--k", "3", "--seed", "1"]) == 0
        assert main(["build", str(pts_path), str(cs_path), "--k", "3",
                     "--delta", "256", "--seed", "2"]) == 0
        assert main(["info", str(cs_path)]) == 0
        out = capsys.readouterr().out
        assert "coreset" in out
        assert "accepted guess o" in out

    def test_solve_command(self, tmp_path, capsys):
        pts_path = tmp_path / "pts.npy"
        cs_path = tmp_path / "cs.npz"
        main(["generate", str(pts_path), "--n", "1200", "--d", "2",
              "--delta", "256", "--k", "2", "--seed", "3"])
        main(["build", str(pts_path), str(cs_path), "--k", "2",
              "--delta", "256"])
        assert main(["solve", str(cs_path)]) == 0
        assert "max load / capacity" in capsys.readouterr().out

    def test_evaluate_command_passes(self, tmp_path, capsys):
        pts_path = tmp_path / "pts.npy"
        cs_path = tmp_path / "cs.npz"
        main(["generate", str(pts_path), "--n", "1500", "--d", "2",
              "--delta", "256", "--k", "3", "--seed", "4"])
        main(["build", str(pts_path), str(cs_path), "--k", "3",
              "--delta", "256"])
        rc = main(["evaluate", str(pts_path), str(cs_path), "--centers", "2"])
        out = capsys.readouterr().out
        assert "worst ratio" in out
        assert rc == 0

    def test_stream_command(self, tmp_path, capsys):
        pts_path = tmp_path / "pts.npy"
        cs_path = tmp_path / "cs.npz"
        main(["generate", str(pts_path), "--n", "1200", "--d", "2",
              "--delta", "256", "--k", "3", "--seed", "5"])
        assert main(["stream", str(pts_path), str(cs_path), "--k", "3",
                     "--delta", "256", "--delete-fraction", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "deletions" in out

    def test_solve_without_params_exits_2(self, built, tmp_path):
        _, _, cs = built
        path = tmp_path / "noparams.npz"
        save_coreset(path, cs)
        assert main(["solve", str(path)]) == 2
