"""Extra coverage for thinner corners: CLI kinds, distributed internals,
weighted-set helpers, stream constructors, codec determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core import CoresetParams
from repro.core.weighted import WeightedPointSet
from repro.data.synthetic import gaussian_mixture
from repro.distributed.network import Network
from repro.distributed.protocol import _machine_substreams
from repro.grid.grids import HierarchicalGrids
from repro.streaming.stream import DELETE, Stream
from repro.streaming.streaming_coreset import _SharedHashes
from repro.utils.rng import derive_seed


class TestCLIGenerateKinds:
    @pytest.mark.parametrize("kind", ["mixture", "unbalanced", "uniform", "outliers"])
    def test_all_kinds(self, kind, tmp_path):
        out = tmp_path / f"{kind}.npy"
        rc = main(["generate", str(out), "--n", "300", "--d", "2",
                   "--delta", "64", "--k", "2", "--kind", kind, "--seed", "1"])
        assert rc == 0
        pts = np.load(out)
        assert pts.shape[1] == 2
        assert pts.min() >= 1 and pts.max() <= 64


class TestMachineSubstreams:
    def test_union_over_machines_equals_central(self):
        """Selections are functions of the shared hashes only, so the union
        over any partition equals the selection over the union."""
        pts = np.unique(gaussian_mixture(600, 2, 128, k=2, seed=3), axis=0)
        params = CoresetParams.practical(k=2, d=2, delta=128)
        grids = HierarchicalGrids(128, 2, seed=derive_seed(9, "grids"))
        shared = _SharedHashes(params, grids, derive_seed(9, "hashes"))
        o = 5e4
        whole = _machine_substreams(pts, grids, shared, params, o)
        net = Network.partition(pts, 3, seed=4)
        parts = [_machine_substreams(m.points, grids, shared, params, o)
                 for m in net.machines]
        for stream_idx in range(3):
            for level in range(params.L + 1):
                merged = sorted(
                    item for pm in parts for item in pm[stream_idx][level]
                )
                assert merged == sorted(whole[stream_idx][level])

    def test_empty_machine(self):
        params = CoresetParams.practical(k=2, d=2, delta=64)
        grids = HierarchicalGrids(64, 2, seed=1)
        shared = _SharedHashes(params, grids, 2)
        out = _machine_substreams(np.empty((0, 2), dtype=np.int64),
                                  grids, shared, params, 100.0)
        assert all(not lvl for group in out for lvl in group)


class TestWeightedPointSet:
    def test_unit_constructor(self):
        ws = WeightedPointSet.unit(np.array([[1, 2], [3, 4]]))
        assert np.allclose(ws.weights, 1.0)
        assert ws.total_weight == 2.0

    def test_subset(self):
        ws = WeightedPointSet(np.array([[1, 2], [3, 4], [5, 6]]),
                              np.array([1.0, 2.0, 3.0]))
        sub = ws.subset(np.array([0, 2]))
        assert len(sub) == 2
        assert sub.total_weight == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedPointSet(np.array([[1, 2]]), np.array([-1.0]))
        with pytest.raises(ValueError):
            WeightedPointSet(np.array([1, 2]), np.array([1.0]))


class TestStreamConstructors:
    def test_from_points_delete_sign(self):
        s = Stream.from_points(np.array([[1, 2]]), sign=DELETE)
        assert s.events[0].sign == DELETE

    def test_events_preserve_coordinates(self):
        s = Stream.from_points(np.array([[7, 9]], dtype=np.int64))
        assert s.events[0].point == (7, 9)


class TestCodecDeterminism:
    def test_cell_keys_stable_across_processes_simulation(self):
        """Same (delta, d, seed) must give identical keys — the property the
        distributed broadcast relies on."""
        a = HierarchicalGrids(256, 3, seed=77)
        b = HierarchicalGrids(256, 3, seed=77)
        pts = np.random.default_rng(0).integers(1, 257, size=(50, 3))
        for level in (0, 4, 8):
            assert list(a.cell_keys(pts, level)) == list(b.cell_keys(pts, level))

    def test_shared_hashes_deterministic(self):
        params = CoresetParams.practical(k=2, d=2, delta=64)
        grids = HierarchicalGrids(64, 2, seed=5)
        h1 = _SharedHashes(params, grids, 42)
        h2 = _SharedHashes(params, grids, 42)
        keys = [3, 17, 999]
        for i in range(params.L + 1):
            assert h1.h[i].values(keys) == h2.h[i].values(keys)
            assert h1.hhat[i].values(keys) == h2.hhat[i].values(keys)
