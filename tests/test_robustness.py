"""Robustness of the coreset across adversarial geometries.

Each geometry is a known stressor for grid-based summaries (see
:mod:`repro.data.structured`); the strong-coreset sandwich must hold on all
of them, and Lemma 3.8's half-space structure must exist for optimal
assignments across random instances — the paper's central claim, trialed
broadly.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.assignment.capacitated import capacitated_assignment
from repro.core import CoresetParams, build_coreset_auto
from repro.core.halfspace import canonicalize_assignment, is_halfspace_consistent
from repro.data.structured import annulus, filaments, power_law_clusters, two_scale_clusters
from repro.metrics.evaluation import evaluate_coreset_quality
from repro.solvers.kmeanspp import kmeans_plusplus


GEOMETRIES = [
    ("power-law", lambda: power_law_clusters(5000, 2, 512, k=6, seed=1)),
    ("annulus", lambda: annulus(5000, 512, seed=2)),
    ("filaments", lambda: filaments(5000, 512, k=3, seed=3)),
    ("two-scale", lambda: two_scale_clusters(5000, 2, 512, k=3, seed=4)),
]


class TestGeometryGenerators:
    @pytest.mark.parametrize("name,gen", GEOMETRIES)
    def test_valid_grid_points(self, name, gen):
        pts = gen()
        assert pts.dtype == np.int64
        assert pts.min() >= 1 and pts.max() <= 512

    def test_power_law_sizes_heavy_tailed(self):
        pts = power_law_clusters(6000, 2, 512, k=6, alpha=2.0, seed=7)
        assert len(pts) > 0  # head cluster dominates; exact split is internal

    def test_annulus_far_from_center(self):
        pts = annulus(2000, 512, seed=5).astype(float)
        center = np.array([256.0, 256.0])
        dist = np.linalg.norm(pts - center, axis=1)
        assert dist.min() > 0.15 * 512


class TestSandwichAcrossGeometries:
    @pytest.mark.parametrize("name,gen", GEOMETRIES)
    def test_sandwich_holds(self, name, gen):
        pts = np.unique(gen(), axis=0)
        n = len(pts)
        k = 3
        params = CoresetParams.practical(k=k, d=2, delta=512,
                                         eps=0.25, eta=0.25)
        cs = build_coreset_auto(pts, params, seed=11)
        Zs = [kmeans_plusplus(pts.astype(float), k, seed=s) for s in (1, 2)]
        rep = evaluate_coreset_quality(pts, cs, Zs, [n / k, math.inf],
                                       r=2.0, eps=0.25, eta=0.25)
        assert rep.entries, name
        assert rep.worst_ratio <= 1.25, (
            f"{name}: worst ratio {rep.worst_ratio:.4f}"
        )

    @pytest.mark.parametrize("name,gen", GEOMETRIES)
    def test_compression_nontrivial(self, name, gen):
        pts = np.unique(gen(), axis=0)
        params = CoresetParams.practical(k=3, d=2, delta=512)
        cs = build_coreset_auto(pts, params, seed=13)
        # Some geometries compress less, but the construction must never
        # blow up beyond the input.
        assert len(cs) <= len(pts)
        assert cs.total_weight == pytest.approx(len(pts), rel=0.3)


class TestLemma38Trials:
    """Lemma 3.8, trialed: every optimal capacitated assignment canonicalizes
    at zero cost change into a half-space-consistent one."""

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("r", [1.0, 2.0])
    def test_optimal_assignments_are_halfspace_representable(self, seed, r):
        rng = np.random.default_rng(seed)
        pts = np.unique(rng.integers(0, 64, size=(30, 2)), axis=0).astype(float)
        k = int(rng.integers(2, 4))
        ctr = rng.integers(0, 64, size=(k, 2)).astype(float)
        t = int(np.ceil(len(pts) / k * rng.uniform(1.0, 1.5)))
        res = capacitated_assignment(pts, ctr, t, r=r)
        if res.labels is None:
            pytest.skip("infeasible draw")
        canon = canonicalize_assignment(pts, res.labels, ctr, r)
        # Same cost (the switches of Lemma 3.8 are cost-neutral on optima)…
        from repro.assignment.capacitated import assignment_cost

        assert assignment_cost(pts, ctr, canon, r) == pytest.approx(
            res.cost, rel=1e-9, abs=1e-9
        )
        # …and the canonical form is induced by half-spaces.
        assert is_halfspace_consistent(pts, canon, ctr, r)
