"""Shared helpers for the experiment benchmarks (E1-E9).

Each bench prints the rows of its table / the series of its figure using
:func:`print_table`, so `pytest benchmarks/ --benchmark-only -s` regenerates
the full evaluation.  DESIGN.md maps experiments to modules; EXPERIMENTS.md
records claim-vs-measured.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core import CoresetParams, build_coreset_auto
from repro.data.synthetic import gaussian_mixture, unbalanced_mixture
from repro.solvers.kmeanspp import kmeans_plusplus

__all__ = [
    "print_table",
    "append_bench_record",
    "make_mixture",
    "make_unbalanced",
    "standard_params",
    "build_standard_coreset",
    "center_battery",
]


def append_bench_record(record: dict, out=None) -> Path:
    """Append one run record to ``BENCH_service.json`` (repo root).

    The file holds ``{"format": 2, "runs": [...]}`` so successive bench
    invocations accumulate a history instead of clobbering each other; a
    pre-format-2 file (one bare run dict) is absorbed as the first run.
    """
    out = (Path(out) if out is not None
           else Path(__file__).resolve().parents[1] / "BENCH_service.json")
    doc = {"format": 2, "runs": []}
    if out.exists():
        try:
            existing = json.loads(out.read_text())
        except json.JSONDecodeError:
            existing = None
        if isinstance(existing, dict) and existing.get("format") == 2 \
                and isinstance(existing.get("runs"), list):
            doc = existing
        elif isinstance(existing, dict):
            doc["runs"].append(existing)
    doc["runs"].append(record)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    return out


def print_table(title: str, header: list, rows: list) -> None:
    """Render one experiment table to stdout."""
    widths = [max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0))
              for i, h in enumerate(header)]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    print("  ".join("-" * w for w in widths))
    for r in rows:
        print("  ".join(_fmt(v).ljust(w) for v, w in zip(r, widths)))
    print()


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0 or (1e-3 < abs(v) < 1e5):
            return f"{v:.3f}"
        return f"{v:.3g}"
    return str(v)


def make_mixture(n: int, d: int, delta: int, k: int, seed: int = 0,
                 spread: float = 0.02):
    """Deduplicated balanced mixture + planted means."""
    pts, means, _ = gaussian_mixture(n, d, delta, k, spread=spread, seed=seed,
                                     return_truth=True)
    return np.unique(pts, axis=0), means.astype(float)


def make_unbalanced(n: int, d: int, delta: int, k: int, imbalance: float = 8.0,
                    seed: int = 0):
    pts, means, _ = unbalanced_mixture(n, d, delta, k, imbalance=imbalance,
                                       spread=0.02, seed=seed, return_truth=True)
    return np.unique(pts, axis=0), means.astype(float)


def standard_params(k: int, d: int, delta: int, eps: float = 0.25,
                    eta: float = 0.25, r: float = 2.0) -> CoresetParams:
    return CoresetParams.practical(k=k, d=d, delta=delta, eps=eps, eta=eta, r=r)


def build_standard_coreset(pts, params, seed: int = 7):
    """Pilot-guided construction (the default pipeline)."""
    return build_coreset_auto(pts, params, seed=seed)


def center_battery(pts, means, k: int, r: float = 2.0, seed: int = 3,
                   extra_random: int = 1):
    """Adversarial center sets: planted optimum, k-means++ seeds, random."""
    rng = np.random.default_rng(seed)
    out = [means[:k]] if means is not None and len(means) >= k else []
    out.append(kmeans_plusplus(pts.astype(float), k, r=r, seed=seed))
    delta = int(pts.max())
    for _ in range(extra_random):
        out.append(rng.integers(1, delta + 1, size=(k, pts.shape[1])).astype(float))
    return out
