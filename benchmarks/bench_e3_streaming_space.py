"""E3 — Streaming space (Theorem 4.5).

Claim: one pass over a dynamic stream, poly(ε⁻¹η⁻¹ k d log Δ) bits of space.

Table: stream length n vs (a) the *charged* sketch layout of the winning
guess (the worst-case O(α·β)-per-level budget Lemma 4.2 allocates — flat in
n by construction), (b) the *resident* bits actually materialized, and
(c) the raw input size n·d·log₂Δ.  The shape to check: both sketch series
flatten while the input grows linearly, so the crossover where the sketch
wins appears at moderate n.
"""

from __future__ import annotations

import time

import pytest

from common import make_mixture, print_table, standard_params
from repro.data.workloads import churn_stream
from repro.solvers.pilot import estimate_opt_cost
from repro.streaming import StreamingCoreset, materialize
from repro.utils.bits import point_bits


def _one(n, params, seed=7):
    pts, _ = make_mixture(n, 2, 1024, 3, seed=seed)
    stream = churn_stream(pts, delete_fraction=0.3, seed=seed)
    survivors = materialize(stream, d=2)
    pilot = estimate_opt_cost(survivors, 3, r=2.0, seed=seed)
    sc = StreamingCoreset(params, seed=31, backend="sketch",
                          o_range=(pilot / 16, pilot / 4))
    t0 = time.time()
    sc.process(stream)
    cs, inst = sc.finalize_with_instance()
    dt = time.time() - t0
    charged = inst.space_bits()
    resident = sum(
        s.resident_bits()
        for group in (inst.store_h, inst.store_hp, inst.store_hhat)
        for s in group
    )
    raw = len(survivors) * point_bits(2, 1024)
    return [len(stream), len(survivors), len(cs),
            charged // 8000, resident // 8000, raw // 8000,
            round(dt, 1)]


@pytest.mark.benchmark(group="E3")
def test_e3_space_vs_stream_length(benchmark):
    params = standard_params(3, 2, 1024)
    rows = [_one(n, params) for n in (2000, 4000, 8000)]
    print_table(
        "E3: streaming sketch space vs stream length (k=3, d=2, Δ=1024; 30% churn)",
        ["events", "survivors", "|Q'|", "charged KB", "resident KB",
         "raw input KB", "sec"],
        rows,
    )
    charged = [r[3] for r in rows]
    raw = [r[5] for r in rows]
    # The charged layout must be essentially flat while input grows ~4x.
    assert charged[-1] <= 2 * charged[0] + 1
    assert raw[-1] >= 3 * raw[0]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.benchmark(group="E3")
def test_e3_exact_backend_throughput(benchmark):
    """Throughput of the reference (dictionary) backend over the full
    parallel-guess driver — the practical configuration."""
    params = standard_params(3, 2, 1024)
    pts, _ = make_mixture(4000, 2, 1024, 3, seed=3)
    stream = churn_stream(pts, delete_fraction=0.3, seed=3)
    survivors = materialize(stream, d=2)
    pilot = estimate_opt_cost(survivors, 3, r=2.0, seed=3)

    def run():
        sc = StreamingCoreset(params, seed=9, backend="exact",
                              o_range=(pilot / 64, pilot / 4))
        sc.process(stream)
        return sc.finalize()

    cs = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "E3b: exact-backend driver",
        ["events", "survivors", "|Q'|", "o"],
        [[len(stream), len(survivors), len(cs), f"{cs.o:.3g}"]],
    )
