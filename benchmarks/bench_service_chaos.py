"""Chaos smoke benchmark — a seeded fault plan against the live service.

Runs the robustness stack end to end: a :class:`~repro.service.faults.
FaultPlan` kills shard workers (SIGKILL and soft crash), drops connections
around insert/delete requests (before *and* after execution), and fails a
checkpoint write, while a resilient :class:`ServiceClient` ingests a churn
workload.  The pass bar is the same as ``tests/test_service_chaos.py``:
the faulted service's serialized sketch state must be bit-identical to a
fault-free in-process reference fed the same logical stream — no event
lost, none double-counted — and a co-resident steady tenant must be
untouched by the chaos tenant's faults.

Also runnable as a script::

    PYTHONPATH=src python benchmarks/bench_service_chaos.py           # in-process
    PYTHONPATH=src python benchmarks/bench_service_chaos.py --smoke   # subprocess

``--smoke`` (the CI chaos check, ``make chaos-smoke``) boots a real
``python -m repro serve --fault-plan ...`` subprocess so the plan rides
the exact activation path operators use, drives the workload over TCP,
and shuts the server down over the wire.  Both modes append a record to
``BENCH_service.json``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from common import append_bench_record, print_table
from repro.service import (
    ClusteringService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    TenantRegistry,
    faults,
    start_async_server,
)

#: Service shape under chaos: 2 supervised workers per tenant, so a kill
#: costs a respawn + journal replay, not the run.  Only fields the ``serve``
#: CLI exposes — the smoke's local references must mirror the subprocess
#: server's config exactly (``o_range`` etc. shape the sketch state).
CHAOS_CONFIG = dict(k=3, d=2, delta=128, workers=2, seed=17)

#: One seeded plan covering the whole failure menagerie; ``decide()`` is
#: deterministic, so every run fires the same schedule.
CHAOS_PLAN_SPEC = {
    "seed": 99,
    "rules": [
        {"point": "worker.kill", "mode": "hard", "after": 2, "times": 1},
        {"point": "worker.kill", "mode": "soft", "after": 9, "times": 1},
        {"point": "server.reset", "after": 2, "times": 3,
         "match": {"op": "insert"}},
        {"point": "server.reset", "after": 1, "times": 1,
         "match": {"op": "delete"}},
        {"point": "server.reset", "mode": "pre", "times": 1,
         "match": {"op": "insert"}},
        {"point": "checkpoint.write", "times": 1},
    ],
}


def chaos_workload(delta: int = 128, n: int = 4000, seed: int = 23):
    """Deterministic churn workload: 12 insert chunks, 3 delete chunks
    (every delete removes a previously inserted point)."""
    rng = np.random.default_rng(seed)
    pts = np.unique(rng.integers(1, delta + 1, size=(n, 2)), axis=0)
    return np.array_split(pts, 12), np.array_split(pts[::3][:120], 3)


def _reference_for(config: ServiceConfig) -> ClusteringService:
    """Fault-free in-process oracle with the worker pool's shard count."""
    shards = config.workers if config.workers > 0 else config.num_shards
    return ClusteringService(dataclasses.replace(
        config, workers=0, num_shards=shards))


def drive_chaos_tenant(host: str, port: int, sid: str, ckpt_path,
                       reference: ClusteringService) -> dict:
    """Push the chaos workload through one tenant, mirroring every op into
    ``reference``; returns events/stats plus the bit-identity verdict."""
    ins, dels = chaos_workload()
    events = 0
    with ServiceClient(host, port, stream_id=sid, retries=6,
                       backoff_s=0.02) as cli:
        for chunk in ins[:8]:
            events += cli.insert(chunk)
            reference.insert(chunk)
        try:
            cli.checkpoint(ckpt_path)
            ckpt_write_failed = False
        except ServiceError as exc:
            ckpt_write_failed = "injected checkpoint" in str(exc)
        cli.checkpoint(ckpt_path)  # rule exhausted: the retry lands
        for chunk in dels:
            events += cli.delete(chunk)
            reference.delete(chunk)
        for chunk in ins[8:]:
            events += cli.insert(chunk)
            reference.insert(chunk)
        cli.checkpoint(ckpt_path)
        stats = cli.stats()
        reconnects = cli.reconnects
    payload = json.loads(Path(ckpt_path).read_text(encoding="utf-8"))
    identical = (json.dumps(payload["ingest"], sort_keys=True)
                 == json.dumps(reference.ingest.to_state_dict(),
                               sort_keys=True))
    ref_stats = reference.stats()
    ledger_ok = all(stats[k] == ref_stats[k]
                    for k in ("events", "insertions", "deletions", "version"))
    return {
        "events": events,
        "reconnects": reconnects,
        "restarts": stats.get("restarts", 0),
        "recovery_events": len(stats.get("recovery_events", [])),
        "fire_counts": stats.get("fault_plan", {}).get("fire_counts", {}),
        "ckpt_write_failed": ckpt_write_failed,
        "identical": identical,
        "ledger_ok": ledger_ok,
    }


def _check_steady_tenant(host: str, port: int, sid: str,
                         config: ServiceConfig) -> bool:
    """A clean tenant next to the chaos one must answer bit-identically to
    its own fault-free reference — chaos does not leak across tenants."""
    rng = np.random.default_rng(5)
    pts = rng.integers(1, 129, size=(200, 2))
    ref = _reference_for(config)
    try:
        with ServiceClient(host, port, stream_id=sid) as cli:
            cli.insert(pts)
            got = cli.query()
            got.pop("cache_hit")
        ref.insert(pts)
        result, _ = ref.query()
        return got == json.loads(json.dumps(result.to_dict()))
    finally:
        ref.close()


def _verdict(chaos: dict, steady_ok: bool) -> bool:
    fires = chaos["fire_counts"]
    return bool(
        chaos["identical"] and chaos["ledger_ok"] and steady_ok
        and chaos["ckpt_write_failed"]
        and chaos["restarts"] >= 2
        and fires.get("worker.kill", 0) >= 2
        and fires.get("server.reset", 0) >= 5
        and fires.get("checkpoint.write", 0) >= 1)


def run_chaos_inprocess() -> dict:
    """In-process async server + installed plan (no subprocess)."""
    config = ServiceConfig(**CHAOS_CONFIG)
    faults.install(faults.plan_from_spec(CHAOS_PLAN_SPEC))
    registry = TenantRegistry(config)
    server, thread = start_async_server(registry)
    host, port = server.address
    reference = _reference_for(registry.tenant_config("chaos"))
    try:
        with tempfile.TemporaryDirectory(prefix="chaos_bench_") as td:
            t0 = time.perf_counter()
            chaos = drive_chaos_tenant(host, port, "chaos",
                                       Path(td) / "chaos.ckpt.json",
                                       reference)
            steady_ok = _check_steady_tenant(
                host, port, "steady", registry.tenant_config("steady"))
            elapsed = time.perf_counter() - t0
        return {
            "bench": "service chaos in-process",
            "cpu_count": os.cpu_count(),
            "elapsed_s": round(elapsed, 3),
            "events_per_s": int(chaos["events"] / max(elapsed, 1e-9)),
            "steady_isolated": steady_ok,
            "passed": _verdict(chaos, steady_ok),
            **chaos,
        }
    finally:
        server.shutdown()
        thread.join(10)
        registry.close()
        reference.close()
        faults.uninstall()


def run_subprocess_smoke() -> dict:
    """Boot ``python -m repro serve --fault-plan ...`` and survive it.

    The CI chaos check: the plan is activated exactly the way operators
    activate it (CLI flag with inline JSON), the workload rides real TCP,
    and the server is shut down over the wire afterwards.
    """
    config = ServiceConfig(**CHAOS_CONFIG)
    with tempfile.TemporaryDirectory(prefix="chaos_smoke_") as td:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--k", "3", "--d", "2", "--delta", "128", "--workers", "2",
             "--seed", "17", "--fault-plan", json.dumps(CHAOS_PLAN_SPEC)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env={**os.environ,
                 "PYTHONPATH": str(Path(__file__).resolve().parents[1] / "src")},
        )
        reference = None
        try:
            host = port = None
            for _ in range(10):  # scalar-ok: startup banner scan, not data plane
                line = proc.stdout.readline()
                if "fault plan installed" in line:
                    continue
                m = re.search(r"listening on ([\d.]+):(\d+)", line)
                if m:
                    host, port = m.group(1), int(m.group(2))
                break
            if host is None:
                raise RuntimeError(f"server did not start: {line!r}")

            # Config math only: per-tenant derived configs for references.
            ref_registry = TenantRegistry(config)
            chaos_cfg = ref_registry.tenant_config("chaos")
            steady_cfg = ref_registry.tenant_config("steady")
            ref_registry.close()
            reference = _reference_for(chaos_cfg)

            t0 = time.perf_counter()
            chaos = drive_chaos_tenant(host, port, "chaos",
                                       Path(td) / "chaos.ckpt.json",
                                       reference)
            steady_ok = _check_steady_tenant(host, port, "steady", steady_cfg)
            elapsed = time.perf_counter() - t0

            with ServiceClient(host, port) as cli:
                cli.shutdown()
            proc.wait(timeout=30)
            return {
                "bench": "service chaos subprocess smoke",
                "elapsed_s": round(elapsed, 3),
                "events_per_s": int(chaos["events"] / max(elapsed, 1e-9)),
                "steady_isolated": steady_ok,
                "exit_code": proc.returncode,
                "passed": _verdict(chaos, steady_ok),
                **chaos,
            }
        finally:
            if reference is not None:
                reference.close()
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="subprocess server via --fault-plan "
                             "(the CI chaos check)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: repo-root "
                             "BENCH_service.json; runs append)")
    args = parser.parse_args(argv)
    report = run_subprocess_smoke() if args.smoke else run_chaos_inprocess()
    fires = report["fire_counts"]
    print_table(
        f"{report['bench']}: kills/resets/ckpt-fails = "
        f"{fires.get('worker.kill', 0)}/{fires.get('server.reset', 0)}/"
        f"{fires.get('checkpoint.write', 0)}",
        ["events", "sec", "events/s", "restarts", "reconnects",
         "identical", "ledger ok", "steady", "passed"],
        [[report["events"], report["elapsed_s"], report["events_per_s"],
          report["restarts"], report["reconnects"], report["identical"],
          report["ledger_ok"], report["steady_isolated"],
          report["passed"]]],
    )
    report["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    out = append_bench_record(report, out=args.out)
    print(f"appended record to {out}")
    if not report["passed"]:
        raise SystemExit("FAIL: chaos run diverged from fault-free reference")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
