"""E2 — Strong (η, ε)-coreset property (Definition of §1.1).

Claim: for every capacity t ≥ n/k and every center set Z,

    cost_{(1+η)²t}(Q,Z)/(1+ε) ≤ cost_{(1+η)t}(Q',Z,w') ≤ (1+ε)·cost_t(Q,Z).

Figure series: worst and median two-sided ratio over an adversarial battery
of center sets × capacities, for r ∈ {1, 2}, balanced and unbalanced inputs.
All ratios must stay below 1+ε.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from common import (
    build_standard_coreset,
    center_battery,
    make_mixture,
    make_unbalanced,
    print_table,
    standard_params,
)
from repro.metrics.evaluation import evaluate_coreset_quality


def _evaluate(tag, pts, means, k, r, eps=0.25, eta=0.25, seed=7):
    params = standard_params(k, pts.shape[1], 1024, eps=eps, eta=eta, r=r)
    cs = build_standard_coreset(pts, params, seed=seed)
    n = len(pts)
    Zs = center_battery(pts, means, k, r=r, seed=seed)
    caps = [n / k, 1.25 * n / k, 2.0 * n / k, math.inf]
    rep = evaluate_coreset_quality(pts, cs, Zs, caps, r=r, eps=eps, eta=eta)
    ratios = [max(e.upper_ratio, e.lower_ratio) for e in rep.entries]
    return [tag, n, len(cs), round(float(np.median(ratios)), 4),
            round(rep.worst_ratio, 4), f"<= {1 + eps:.2f}",
            "PASS" if rep.holds() else "FAIL"], rep


@pytest.mark.benchmark(group="E2")
def test_e2_sandwich_r2(benchmark):
    rows = []
    pts, means = make_mixture(12000, 3, 1024, 4, seed=11)
    row, rep = _evaluate("balanced r=2", pts, means, 4, 2.0)
    rows.append(row)
    upts, umeans = make_unbalanced(12000, 3, 1024, 4, seed=12)
    row, rep_u = _evaluate("unbalanced r=2", upts, umeans, 4, 2.0)
    rows.append(row)
    print_table(
        "E2a: strong-coreset sandwich, capacitated k-means (r=2)",
        ["input", "n", "|Q'|", "median ratio", "worst ratio", "bound", "verdict"],
        rows,
    )
    assert rep.holds() and rep_u.holds()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.benchmark(group="E2")
def test_e2_sandwich_r1(benchmark):
    rows = []
    pts, means = make_mixture(12000, 3, 1024, 4, seed=13)
    row, rep = _evaluate("balanced r=1", pts, means, 4, 1.0)
    rows.append(row)
    upts, umeans = make_unbalanced(12000, 3, 1024, 4, seed=14)
    row, rep_u = _evaluate("unbalanced r=1", upts, umeans, 4, 1.0)
    rows.append(row)
    print_table(
        "E2b: strong-coreset sandwich, capacitated k-median (r=1)",
        ["input", "n", "|Q'|", "median ratio", "worst ratio", "bound", "verdict"],
        rows,
    )
    assert rep.holds() and rep_u.holds()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.benchmark(group="E2")
def test_e2_tight_capacity_binding(benchmark):
    """The motivating regime: capacity binds hard (t = n/k on an 8:1
    unbalanced input) and the capacitated cost is far above the free cost —
    the coreset must track the *capacitated* value, which is exactly what
    uncapacitated coresets cannot do (see E6)."""
    from repro.metrics.costs import capacitated_cost, uncapacitated_cost

    pts, means = make_unbalanced(10000, 3, 1024, 3, imbalance=8.0, seed=15)
    n = len(pts)
    params = standard_params(3, 3, 1024)
    cs = build_standard_coreset(pts, params, seed=5)
    Z = means[:3]
    t = n / 3
    free = uncapacitated_cost(pts, Z, 2.0)
    full = capacitated_cost(pts, Z, t, 2.0)
    core = capacitated_cost(cs.points, Z, (1 + 0.25) * t, 2.0, weights=cs.weights)
    relaxed = capacitated_cost(pts, Z, (1 + 0.25) ** 2 * t, 2.0)
    print_table(
        "E2c: capacity-binding sanity (unbalanced 8:1, t=n/k)",
        ["quantity", "value"],
        [["uncapacitated cost(Q,Z)", f"{free:.4g}"],
         ["capacitated cost_t(Q,Z)", f"{full:.4g}"],
         ["binding factor", round(full / free, 2)],
         ["coreset cost_{(1+η)t}(Q',Z,w')", f"{core:.4g}"],
         ["upper ratio (<=1.25)", round(core / full, 4)],
         ["lower ratio (<=1.25)", round(relaxed / core, 4)]],
    )
    assert full > 1.5 * free, "capacity did not bind; workload miscalibrated"
    assert core <= 1.25 * full
    assert relaxed <= 1.25 * core
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
