"""E9 — Ablations of the design choices DESIGN.md calls out.

Each row toggles one mechanism and reports coreset size + worst sandwich
ratio on a fixed workload:

- heavy-cell threshold coefficient θ (= threshold_c): the compression lever;
- small-part cutoff γ (Lemma 3.4): dropping it (γ→0) keeps everything the
  sampler touches; raising it drops real mass;
- sampling budget (samples_per_part / φ numerator): variance of the
  estimate;
- λ-wise independence vs minimal (pairwise) hashing;
- guess selection: pilot-descent (≈OPT) vs smallest non-FAIL.
"""

from __future__ import annotations

import math

import pytest

from common import make_mixture, print_table, standard_params
from repro.core import build_coreset_auto
from repro.metrics.evaluation import evaluate_coreset_quality
from repro.solvers.kmeanspp import kmeans_plusplus


def _quality(pts, means, cs, k=4, eps=0.25, eta=0.25):
    n = len(pts)
    Zs = [means[:k], kmeans_plusplus(pts.astype(float), k, seed=3)]
    rep = evaluate_coreset_quality(pts, cs, Zs, [n / k, math.inf],
                                   r=2.0, eps=eps, eta=eta)
    return rep.worst_ratio


@pytest.mark.benchmark(group="E9")
def test_e9_mechanism_ablations(benchmark):
    pts, means = make_mixture(12000, 3, 1024, 4, seed=81)
    n = len(pts)
    base = standard_params(4, 3, 1024)
    variants = [
        ("default (θ=2, γ=0.2, m₀=32, λ-wise)", base),
        ("θ=0.01 (paper's constant)", base.with_overrides(threshold_c=0.01)),
        ("θ=8 (very coarse)", base.with_overrides(threshold_c=8.0)),
        ("γ→0.01 (keep small parts)", base.with_overrides(gamma=0.01)),
        ("γ=0.5 (drop aggressively)", base.with_overrides(gamma=0.5)),
        ("m₀=8 (few samples/part)", base.with_overrides(phi_numerator=8.0)),
        ("m₀=128 (many samples/part)", base.with_overrides(phi_numerator=128.0)),
        ("pairwise hashing (λ=2)", base.with_overrides(lam=2, lam_est=2)),
    ]
    rows = []
    for tag, params in variants:
        cs = build_coreset_auto(pts, params, seed=7)
        worst = _quality(pts, means, cs)
        rows.append([tag, len(cs), round(n / max(len(cs), 1), 1),
                     round(cs.total_weight / n, 3), round(worst, 4)])
    print_table(
        f"E9a: mechanism ablations (n={n}, k=4, d=3, ε=η=0.25; bound 1.25)",
        ["variant", "|Q'|", "compression", "weight/n", "worst ratio"],
        rows,
    )
    # The default must hold the sandwich; the point of the table is the
    # size/quality trade-off pattern, which EXPERIMENTS.md interprets.
    assert rows[0][4] <= 1.25 * 1.05
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.benchmark(group="E9")
def test_e9_guess_selection(benchmark):
    """Pilot descent picks o near OPT (big parts, compressed); smallest
    non-FAIL picks a tiny o (no compression) — same guarantee either way."""
    pts, means = make_mixture(12000, 3, 1024, 4, seed=82)
    n = len(pts)
    params = standard_params(4, 3, 1024)
    rows = []
    for tag, pilot in (("pilot descent (default)", "auto"),
                       ("smallest non-FAIL (Thm 3.19 verbatim)", None)):
        cs = build_coreset_auto(pts, params, seed=9, pilot_cost=pilot)
        worst = _quality(pts, means, cs)
        rows.append([tag, f"{cs.o:.3g}", len(cs),
                     round(n / max(len(cs), 1), 1), round(worst, 4)])
    print_table(
        "E9b: guess-o selection rule",
        ["rule", "accepted o", "|Q'|", "compression", "worst ratio"],
        rows,
    )
    for r in rows:
        assert r[4] <= 1.25 * 1.05
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
