"""Fleet benchmark — real multi-process coordinator runs vs. the E7 twin.

Spawns ``s`` real ``repro serve`` site processes per row, feeds each its
partition share over TCP, pulls and merges all site states through the
bit-metered :class:`~repro.distributed.fleet.Coordinator`, and reports:

- ingest throughput (events/s) vs. site count;
- measured uplink/downlink bits on the *real* wire path, side by side
  with :func:`~repro.distributed.fleet.simulate_fleet`'s in-process
  accounting of the identical partition/seed — the Theorem 4.7 check E7
  makes, now validated on real sockets (the two must be equal, and are
  by construction: both charge the same policy functions on sketches
  with identical contents);
- the bit-identity verdicts: merged state and query answer byte-equal to
  a single-process reference fed the same batches.

Also runnable as a script::

    PYTHONPATH=src python benchmarks/bench_fleet.py              # sweep sites
    PYTHONPATH=src python benchmarks/bench_fleet.py --smoke      # CI check

``--smoke`` (the CI fleet check, ``make fleet-smoke``) is one 2-site run
with a seeded ``site.kill`` fault plan: site 1 is SIGKILLed mid-run and
recovered from its checkpoint + journal replay, and the final merged
state must still be bit-identical — the acceptance criterion of the
fleet subsystem.  Both modes append a record to ``BENCH_service.json``.
"""

from __future__ import annotations

import argparse
import os
import time

from common import append_bench_record, make_mixture, print_table
from repro.service import ServiceConfig, faults
from repro.service.faults import FaultPlan, FaultRule

#: Site shape: only fields the ``serve`` CLI exposes (spawned sites run
#: the auto-pilot guess schedule; ``o_range`` has no CLI flag).
FLEET_CONFIG = dict(k=3, d=2, delta=64, num_shards=2, seed=7, restarts=1)

#: The smoke's failure schedule: kill site 1 after its first acked batch,
#: once — recovery must replay the journal and stay bit-identical.
SMOKE_KILL_PLAN = FaultPlan(
    [FaultRule(point="site.kill", match={"site": 1}, after=1, times=1)],
    seed=3)


def _workload(n: int, delete_fraction: float):
    pts, _ = make_mixture(n, FLEET_CONFIG["d"], FLEET_CONFIG["delta"],
                          FLEET_CONFIG["k"], seed=2)
    return pts, delete_fraction


def run_sweep(site_counts, n: int, delete_fraction: float,
              batch_size: int) -> dict:
    """One run_fleet row per site count, same workload throughout."""
    from repro.distributed.fleet import run_fleet

    pts, frac = _workload(n, delete_fraction)
    rows = []
    for s in site_counts:
        report = run_fleet(ServiceConfig(**FLEET_CONFIG), pts, s,
                           batch_size=batch_size, delete_fraction=frac,
                           checkpoint_every=4)
        rows.append(report)
    return {
        "bench": "distributed fleet sweep",
        "cpu_count": os.cpu_count(),
        "points": int(len(pts)),
        "delete_fraction": frac,
        "rows": [{k: r[k] for k in
                  ("sites", "events", "batches", "events_per_s", "ingest_s",
                   "merge_s", "uplink_bits", "downlink_bits",
                   "sim_uplink_bits", "sim_downlink_bits",
                   "bits_match_simulation", "state_identical",
                   "answer_identical", "passed")} for r in rows],
        "passed": all(r["passed"] for r in rows),
    }


def run_smoke(n: int, batch_size: int) -> dict:
    """The CI fleet check: 2 real sites, one killed mid-run, bit-identity
    asserted after checkpoint + journal-replay recovery."""
    from repro.distributed.fleet import run_fleet

    pts, frac = _workload(n, 0.2)
    faults.install(SMOKE_KILL_PLAN)
    try:
        report = run_fleet(ServiceConfig(**FLEET_CONFIG), pts, 2,
                           batch_size=batch_size, delete_fraction=frac,
                           checkpoint_every=2)
    finally:
        faults.uninstall()
    report["bench"] = "distributed fleet smoke (site kill + recovery)"
    report["passed"] = bool(report["passed"] and report["recoveries"] >= 1
                            and report["restarts"] >= 1)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="one 2-site run with an injected site kill "
                             "(the CI fleet check)")
    parser.add_argument("--sites", default="1,2,3",
                        help="comma-separated site counts for the sweep")
    parser.add_argument("--n", type=int, default=None,
                        help="points in the workload (default: 1500, "
                             "smoke: 400)")
    parser.add_argument("--delete-fraction", type=float, default=0.2)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: repo-root "
                             "BENCH_service.json; runs append)")
    args = parser.parse_args(argv)

    if args.smoke:
        report = run_smoke(args.n or 400, args.batch_size)
        print_table(
            f"{report['bench']}: recoveries={report['recoveries']} "
            f"restarts={report['restarts']}",
            ["sites", "events", "events/s", "up bits", "sim up", "down bits",
             "state==", "answer==", "bits==sim", "passed"],
            [[report["sites"], report["events"], report["events_per_s"],
              report["uplink_bits"], report["sim_uplink_bits"],
              report["downlink_bits"], report["state_identical"],
              report["answer_identical"], report["bits_match_simulation"],
              report["passed"]]],
        )
    else:
        counts = [int(t) for t in args.sites.split(",") if t.strip()]
        report = run_sweep(counts, args.n or 1500, args.delete_fraction,
                           args.batch_size)
        print_table(
            "distributed fleet: events/s and wire bits vs. site count",
            ["sites", "events", "events/s", "ingest s", "merge s",
             "up bits", "sim up", "down bits", "sim down", "passed"],
            [[r["sites"], r["events"], r["events_per_s"], r["ingest_s"],
              r["merge_s"], r["uplink_bits"], r["sim_uplink_bits"],
              r["downlink_bits"], r["sim_downlink_bits"], r["passed"]]
             for r in report["rows"]],
        )
    report["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    out = append_bench_record(report, out=args.out)
    print(f"appended record to {out}")
    if not report["passed"]:
        raise SystemExit("FAIL: fleet run diverged from the single-process "
                         "reference or the simulated bit accounting")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
