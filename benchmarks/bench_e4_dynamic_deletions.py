"""E4 — Correctness under deletions (Theorem 4.5's headline novelty).

Claim: "unlike the previous algorithm, our algorithm handles both insertions
and deletions".  Figure series: coreset quality on the *survivor* set after
streams that delete 25/50/75% of points, and after deleting entire clusters
(which changes the optimum's structure, the hardest dynamic case).  The
three-pass baseline of [BBLM14] cannot run these streams at all.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from common import print_table, standard_params
from repro.data.synthetic import gaussian_mixture
from repro.data.workloads import churn_stream, deletion_heavy_stream
from repro.metrics.evaluation import evaluate_coreset_quality
from repro.solvers.kmeanspp import kmeans_plusplus
from repro.solvers.pilot import estimate_opt_cost
from repro.streaming import StreamingCoreset, materialize


def _quality_after(stream, k, eps=0.25, eta=0.25, seed=17):
    params = standard_params(k, 2, 1024, eps=eps, eta=eta)
    survivors = materialize(stream, d=2)
    pilot = estimate_opt_cost(survivors, k, r=2.0, seed=seed)
    sc = StreamingCoreset(params, seed=seed, backend="exact",
                          o_range=(pilot / 64, pilot / 4))
    sc.process(stream)
    cs = sc.finalize()
    n = len(survivors)
    Zs = [kmeans_plusplus(survivors.astype(float), k, seed=s) for s in (1, 2)]
    rep = evaluate_coreset_quality(survivors, cs, Zs, [n / k, math.inf],
                                   r=2.0, eps=eps, eta=eta)
    return survivors, cs, rep


@pytest.mark.benchmark(group="E4")
def test_e4_churn_fractions(benchmark):
    pts = np.unique(gaussian_mixture(6000, 2, 1024, k=3, spread=0.02, seed=21),
                    axis=0)
    rows = []
    worst = []
    for frac in (0.25, 0.5, 0.75):
        stream = churn_stream(pts, delete_fraction=frac, seed=5)
        survivors, cs, rep = _quality_after(stream, 3)
        rows.append([f"{int(frac*100)}%", len(stream), len(survivors), len(cs),
                     round(rep.worst_ratio, 4), "<= 1.25",
                     "PASS" if rep.holds(slack=1.1) else "FAIL"])
        worst.append(rep.worst_ratio)
    print_table(
        "E4a: coreset quality after interleaved deletions (k=3, d=2)",
        ["deleted", "events", "survivors", "|Q'|", "worst ratio", "bound", "verdict"],
        rows,
    )
    assert max(worst) <= 1.25 * 1.1
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.benchmark(group="E4")
def test_e4_whole_cluster_deletion(benchmark):
    """Delete an entire planted cluster: the heavy cells of the survivor set
    differ structurally from the full history's."""
    pts, means, labels = gaussian_mixture(6000, 2, 1024, k=4, spread=0.02,
                                          seed=23, return_truth=True)
    rows = []
    worst = []
    for clusters in ([0], [0, 1]):
        stream = deletion_heavy_stream(pts, labels, delete_clusters=clusters, seed=7)
        k_left = 4 - len(clusters)
        survivors, cs, rep = _quality_after(stream, k_left)
        rows.append([f"deleted clusters {clusters}", len(survivors), len(cs),
                     round(rep.worst_ratio, 4),
                     "PASS" if rep.holds(slack=1.1) else "FAIL"])
        worst.append(rep.worst_ratio)
    print_table(
        "E4b: whole-cluster deletions (structure of OPT changes)",
        ["workload", "survivors", "|Q'|", "worst ratio", "verdict"],
        rows,
    )
    assert max(worst) <= 1.25 * 1.1
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.benchmark(group="E4")
def test_e4_baseline_cannot_delete(benchmark):
    """[BBLM14] three-pass mapping coreset: insertion-only by construction."""
    from repro.baselines import ThreePassMappingCoreset

    pts = np.unique(gaussian_mixture(2000, 2, 1024, k=3, seed=25), axis=0)
    stream = churn_stream(pts, delete_fraction=0.3, seed=9)
    bl = ThreePassMappingCoreset(k=3, num_representatives=64, seed=1)
    bl.start_pass(1)
    failed = False
    try:
        for ev in stream:
            bl.update(ev)
    except NotImplementedError:
        failed = True
    print_table(
        "E4c: deletion support",
        ["algorithm", "passes", "handles deletions"],
        [["this paper (Algorithm 4)", 1, "yes"],
         ["[BBLM14] mapping coreset", 3, "no (raises)"]],
    )
    assert failed
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
