"""E7 — Distributed protocol (Theorem 4.7).

Claim: a coordinator protocol leaving a strong coreset with
s · poly(ε⁻¹η⁻¹ k d log Δ) bits of total communication.

Table: machines s vs communication bits (uplink/downlink), coreset size and
quality — under both random and adversarial (spatially skewed) partitions.
Shape to check: bits grow additively in s (global content + s·overhead),
quality is partition-independent.
"""

from __future__ import annotations

import math

import pytest

from common import make_mixture, print_table, standard_params
from repro.distributed import Network, distributed_coreset
from repro.metrics.evaluation import evaluate_coreset_quality
from repro.solvers.kmeanspp import kmeans_plusplus
from repro.utils.bits import point_bits


@pytest.mark.benchmark(group="E7")
def test_e7_communication_vs_machines(benchmark):
    pts, means = make_mixture(8000, 2, 1024, 3, seed=61)
    n = len(pts)
    params = standard_params(3, 2, 1024)
    rows = []
    worst = []
    for s in (2, 4, 8, 16):
        net = Network.partition(pts, s, seed=s, mode="random")
        cs = distributed_coreset(net, params, seed=11)
        Zs = [means[:3], kmeans_plusplus(pts.astype(float), 3, seed=1)]
        rep = evaluate_coreset_quality(pts, cs, Zs, [n / 3, math.inf],
                                       r=2.0, eps=0.25, eta=0.25)
        worst.append(rep.worst_ratio)
        rows.append([s, net.uplink_bits // 8000, net.downlink_bits // 8000,
                     net.total_bits // 8000, len(cs),
                     round(rep.worst_ratio, 4)])
    raw_kb = n * point_bits(2, 1024) // 8000
    print_table(
        f"E7a: communication vs machines (n={n}, raw input = {raw_kb} KB)",
        ["s", "uplink KB", "downlink KB", "total KB", "|Q'|", "worst ratio"],
        rows,
    )
    totals = [r[3] for r in rows]
    # Additive in s (global content + s·overhead): 8x machines must cost far
    # less than 8x bits.
    assert totals[-1] < 8 * totals[0]
    assert max(worst) <= 1.25 * 1.1
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.benchmark(group="E7")
def test_e7_adversarial_partition(benchmark):
    """Skewed partition: machines hold disjoint spatial slabs, so no machine
    sees the global cluster structure; the merged sketches must still equal
    the centralized computation (linearity)."""
    pts, means = make_mixture(8000, 2, 1024, 3, seed=62)
    n = len(pts)
    params = standard_params(3, 2, 1024)
    rows = []
    results = {}
    for mode in ("random", "skewed"):
        net = Network.partition(pts, 8, seed=5, mode=mode)
        cs = distributed_coreset(net, params, seed=13, o=None)
        Zs = [means[:3], kmeans_plusplus(pts.astype(float), 3, seed=1)]
        rep = evaluate_coreset_quality(pts, cs, Zs, [n / 3, math.inf],
                                       r=2.0, eps=0.25, eta=0.25)
        results[mode] = (cs, rep)
        rows.append([mode, net.total_bits // 8000, len(cs),
                     round(rep.worst_ratio, 4)])
    print_table(
        "E7b: partition adversary (s=8)",
        ["partition", "total KB", "|Q'|", "worst ratio"],
        rows,
    )
    for mode in results:
        assert results[mode][1].worst_ratio <= 1.25 * 1.1
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
