"""Multi-tenant service benchmark — interleaved streams, isolation, eviction.

Drives one async server with N named streams from concurrent clients and
measures aggregate ingest/query throughput while a small
``max_live_tenants`` budget forces LRU evict → restore churn underneath.
Correctness rides along: a sample of tenants is re-answered by reference
single-tenant services built from ``tenant_config(stream_id)`` and must
match bit-identically.

Also runnable as a script::

    PYTHONPATH=src python benchmarks/bench_service_tenants.py           # in-process
    PYTHONPATH=src python benchmarks/bench_service_tenants.py --smoke   # subprocess

``--smoke`` (the CI async-service check, ``make bench-tenants-smoke``)
boots a real ``python -m repro serve`` subprocess, drives 3 tenants
concurrently over TCP, asserts isolation, and shuts the server down over
the wire.  Both modes append a record to ``BENCH_service.json``.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import threading
import time
import zlib
from pathlib import Path

import numpy as np
import pytest

from common import append_bench_record, print_table
from repro.service import (
    ClusteringService,
    ServiceClient,
    ServiceConfig,
    TenantRegistry,
    start_async_server,
)

# Small-but-real tenant shape (matches tests/test_service_tenants.py): a
# tenant costs ~50 ms to create and ~10 ms to query, so eviction churn —
# not sketch construction — dominates what this bench measures.
CHEAP = dict(k=2, d=2, delta=32, num_shards=1, seed=11,
             o_range=(1.0, 8.0), restarts=1)


def stream_points(stream_id: str, n: int, delta: int = 32,
                  d: int = 2) -> np.ndarray:
    rng = np.random.default_rng(zlib.crc32(stream_id.encode()))
    return rng.integers(0, delta + 1, size=(n, d))


def _reference_answer(config: ServiceConfig, batches: int,
                      batch_n: int, sid: str) -> dict:
    ref = ClusteringService(config)
    try:
        for _ in range(batches):
            ref.insert(stream_points(sid, batch_n))
        result, _ = ref.query()
        return json.loads(json.dumps(result.to_dict()))
    finally:
        ref.close()


def run_tenant_bench(n_tenants: int = 24, max_live: int = 8,
                     batches: int = 2, batch_n: int = 64,
                     drivers: int = 4, check_sample: int = 6,
                     tenants_dir=None) -> dict:
    """N interleaved tenants against one in-process async server.

    ``drivers`` client threads partition the tenants and interleave their
    ingest batches, then every tenant is queried; ``check_sample`` of the
    answers are verified against reference single-tenant services.
    """
    config = ServiceConfig(**CHEAP)
    own_dir = tenants_dir is None
    if own_dir:
        tenants_dir = tempfile.mkdtemp(prefix="bench_tenants_")
    registry = TenantRegistry(config, tenants_dir=tenants_dir,
                              max_live_tenants=max_live)
    server, thread = start_async_server(registry)
    host, port = server.address
    streams = [f"t{i:03d}" for i in range(n_tenants)]
    errors: list[BaseException] = []

    def drive(mine: list[str]) -> None:
        try:
            with ServiceClient(host, port) as cli:
                for b in range(batches):  # interleave: batch b of every stream
                    for sid in mine:
                        cli.stream_id = sid
                        cli.insert(stream_points(sid, batch_n))
                for sid in mine:
                    cli.stream_id = sid
                    cli.query()
        except BaseException as exc:
            errors.append(exc)

    try:
        t0 = time.perf_counter()
        workers = [threading.Thread(target=drive, args=(streams[i::drivers],))
                   for i in range(drivers)]
        for w in workers:
            w.start()
        for w in workers:
            w.join(600)
        elapsed = time.perf_counter() - t0
        if errors:
            raise errors[0]

        rows = {t["stream_id"]: t for t in registry.overview()}
        evictions = sum(t.get("evictions", 0) for t in rows.values())
        restores = sum(t.get("restores", 0) for t in rows.values())

        sample = streams[:: max(1, n_tenants // max(1, check_sample))]
        isolated = True
        with ServiceClient(host, port) as cli:
            for sid in sample:
                cli.stream_id = sid
                got = cli.query()
                got.pop("cache_hit")
                want = _reference_answer(registry.tenant_config(sid),
                                         batches, batch_n, sid)
                isolated = isolated and got == want

        events = n_tenants * batches * batch_n
        return {
            "bench": "service multi-tenant interleaved",
            "cpu_count": os.cpu_count(),
            "tenants": n_tenants,
            "max_live": max_live,
            "drivers": drivers,
            "events": events,
            "queries": n_tenants,
            "elapsed_s": round(elapsed, 3),
            "events_per_s": int(events / max(elapsed, 1e-9)),
            "evictions": evictions,
            "restores": restores,
            "live_at_end": registry.live_count(),
            "isolated_sample": len(sample),
            "isolated": isolated,
        }
    finally:
        server.shutdown()
        thread.join(10)
        registry.close(persist=not own_dir)


def run_subprocess_smoke(n_tenants: int = 3, batch_n: int = 160) -> dict:
    """Boot ``python -m repro serve`` for real and drive it concurrently.

    The CI async-service check: a subprocess server on an OS-assigned port,
    ``n_tenants`` clients ingesting and querying their own streams at the
    same time, isolation asserted against local references, clean wire
    shutdown.  Uses the CLI's default config so it exercises exactly what
    ``repro serve`` ships.
    """
    config = ServiceConfig(k=2, d=2, delta=32, num_shards=1, seed=7)
    with tempfile.TemporaryDirectory(prefix="smoke_tenants_") as td:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--k", "2", "--d", "2", "--delta", "32", "--shards", "1",
             "--tenants-dir", td, "--max-live-tenants", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env={**os.environ,
                 "PYTHONPATH": str(Path(__file__).resolve().parents[1] / "src")},
        )
        try:
            line = proc.stdout.readline()
            m = re.search(r"listening on ([\d.]+):(\d+)", line)
            if not m:
                raise RuntimeError(f"server did not start: {line!r}")
            host, port = m.group(1), int(m.group(2))

            streams = [f"smoke{i}" for i in range(n_tenants)]
            errors: list[BaseException] = []
            answers: dict[str, dict] = {}

            def drive(sid: str) -> None:
                try:
                    with ServiceClient(host, port, stream_id=sid) as cli:
                        cli.insert(stream_points(sid, batch_n))
                        got = cli.query()
                        got.pop("cache_hit")
                        answers[sid] = got
                except BaseException as exc:
                    errors.append(exc)

            t0 = time.perf_counter()
            workers = [threading.Thread(target=drive, args=(sid,))
                       for sid in streams]
            for w in workers:
                w.start()
            for w in workers:
                w.join(120)
            elapsed = time.perf_counter() - t0
            if errors:
                raise errors[0]

            ref_registry = TenantRegistry(config)  # config math only
            isolated = all(
                answers[sid] == _reference_answer(
                    ref_registry.tenant_config(sid), 1, batch_n, sid)
                for sid in streams)
            ref_registry.close()

            with ServiceClient(host, port) as cli:
                n_known = len(cli.tenants())
                cli.shutdown()
            proc.wait(timeout=30)
            return {
                "bench": "service tenants subprocess smoke",
                "tenants": n_tenants,
                "events": n_tenants * batch_n,
                "elapsed_s": round(elapsed, 3),
                "tenants_seen_by_server": n_known,
                "isolated": isolated,
                "exit_code": proc.returncode,
            }
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


@pytest.mark.benchmark(group="service")
def test_service_tenants_interleaved(benchmark):
    """Interleaved multi-tenant ingest/query with eviction churn underneath;
    sampled answers must match single-tenant references bit-identically."""
    report = run_tenant_bench(n_tenants=12, max_live=4, batches=2,
                              batch_n=48, drivers=4, check_sample=4)
    print_table(
        f"service: {report['tenants']} tenants, max_live="
        f"{report['max_live']} ({report['cpu_count']} cores)",
        ["events", "sec", "events/s", "evictions", "restores",
         "live at end", "isolated"],
        [[report["events"], report["elapsed_s"], report["events_per_s"],
          report["evictions"], report["restores"], report["live_at_end"],
          report["isolated"]]],
    )
    assert report["isolated"]
    assert report["evictions"] > 0 and report["restores"] > 0
    assert report["live_at_end"] <= report["max_live"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="subprocess server + 3 concurrent tenants "
                             "(the CI async-service check)")
    parser.add_argument("--tenants", type=int, default=None)
    parser.add_argument("--max-live", type=int, default=None)
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: repo-root "
                             "BENCH_service.json; runs append)")
    args = parser.parse_args(argv)
    if args.smoke:
        report = run_subprocess_smoke(n_tenants=args.tenants or 3)
        print_table(
            "service: subprocess async smoke -> shutdown over the wire",
            ["tenants", "events", "sec", "seen by server", "isolated",
             "exit code"],
            [[report["tenants"], report["events"], report["elapsed_s"],
              report["tenants_seen_by_server"], report["isolated"],
              report["exit_code"]]],
        )
    else:
        report = run_tenant_bench(n_tenants=args.tenants or 24,
                                  max_live=args.max_live or 8)
        print_table(
            f"service: {report['tenants']} tenants, max_live="
            f"{report['max_live']} ({report['cpu_count']} cores)",
            ["events", "sec", "events/s", "evictions", "restores",
             "live at end", "isolated"],
            [[report["events"], report["elapsed_s"], report["events_per_s"],
              report["evictions"], report["restores"], report["live_at_end"],
              report["isolated"]]],
        )
    report["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    out = append_bench_record(report, out=args.out)
    print(f"appended record to {out}")
    if not report["isolated"]:
        raise SystemExit("FAIL: tenant answers diverged from references")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
